//! Offline stand-in for the `criterion` crate (API subset).
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! implements the benchmarking surface the workspace uses: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark is timed with `std::time::Instant` over
//! auto-scaled batches and reported as `name  ...  <t>/iter (<n> iters)`.
//! Positional `cargo bench -- <filter>` arguments select benchmarks by
//! substring, as upstream does.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark at the default sample size.
const BASE_BUDGET: Duration = Duration::from_millis(300);

/// Drives closures handed to [`Bencher::iter`].
pub struct Bencher {
    budget: Duration,
    /// Best observed nanoseconds per iteration.
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, called in auto-scaled batches until the time budget is
    /// spent; records the fastest batch (least external noise).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: grow the batch until it runs >= ~1ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 8;
        }
        let mut best = f64::INFINITY;
        let mut total_iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
            total_iters += batch;
        }
        self.result_ns = best;
        self.iters = total_iters;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    filters: Vec<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- foo` forwards `foo`; flags like `--bench` are not
        // name filters.
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        Criterion { filters, sample_size: 100 }
    }
}

impl Criterion {
    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    fn run_one(&mut self, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.selected(name) {
            return;
        }
        // Scale the time budget with the group's requested sample size so
        // `sample_size(10)` keeps heavyweight benches quick, as upstream's
        // sampling model effectively does.
        let budget = BASE_BUDGET.mul_f64((sample_size as f64 / 100.0).clamp(0.05, 1.0));
        let mut b = Bencher { budget, result_ns: 0.0, iters: 0 };
        f(&mut b);
        println!("{name:<40} {:>12}/iter ({} iters)", fmt_ns(b.result_ns), b.iters);
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let n = self.sample_size;
        self.run_one(name, n, &mut f);
        self
    }

    /// Opens a named group; benchmarks inside are reported as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, prefix: name.to_string(), sample_size: None }
    }
}

/// See [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Adjusts the sampling effort for this group (upstream semantics:
    /// fewer samples for heavyweight benchmarks).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        let n = self.sample_size.unwrap_or(self.c.sample_size);
        self.c.run_one(&full, n, &mut f);
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
