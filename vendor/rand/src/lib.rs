//! Offline stand-in for the `rand` crate (API subset).
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! implements exactly the surface the workspace uses: [`rngs::SmallRng`]
//! (an xoshiro256++ generator), the [`Rng`] extension methods `gen`,
//! `gen_range`, and `gen_bool`, and [`SeedableRng::seed_from_u64`].
//!
//! Determinism is the only contract the simulator relies on: the same seed
//! always yields the same stream. Statistical quality matches the real
//! `SmallRng` family (xoshiro256++ is the generator rand 0.8 uses on
//! 64-bit targets), but streams are not bit-compatible with the upstream
//! crate — every expected value in this repo was produced with this
//! implementation.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` (the subset of
/// rand's `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`] (rand's `Rng` trait subset).
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open integer range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::uniform(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator — xoshiro256++, the same
    /// algorithm rand 0.8's `SmallRng` uses on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u8..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..1000 {
            let v = r.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            seen_low |= v < 0.3;
            seen_high |= v > 0.7;
        }
        assert!(seen_low && seen_high);
    }
}
