//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! implements the surface the workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/collection strategies, `prop_map`,
//! [`prop_oneof!`], `any::<T>()`, `prop::sample::select`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (override with `PROPTEST_SEED`), and failing cases
//! are *not* shrunk — the panic message reports the seed and case number
//! so a failure can be replayed exactly.

use rand::rngs::SmallRng;

/// The generator handed to strategies. A thin wrapper over the vendored
/// xoshiro generator.
pub type TestRng = SmallRng;

pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected by `prop_assume!` (retried, not a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            }
        }
    }

    /// Runner configuration (the subset the workspace sets).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases each property must pass.
        pub cases: u32,
        /// Maximum rejected cases (via `prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        /// A default configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    fn base_seed(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a over the test name: distinct, stable streams per test.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drives one property: generates and runs cases until `cfg.cases`
    /// pass, panicking on the first failure.
    pub fn run(
        cfg: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let seed = base_seed(name);
        let mut passed = 0u32;
        let mut rejects = 0u32;
        let mut case_no = 0u64;
        while passed < cfg.cases {
            // One fresh, replayable generator per case.
            let mut rng = TestRng::seed_from_u64(seed ^ case_no.wrapping_mul(0x9E3779B97F4A7C15));
            case_no += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects < cfg.max_global_rejects,
                        "proptest {name}: too many rejected cases ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest {name}: case #{} failed (seed {seed:#x}): {msg}", case_no - 1);
                }
            }
        }
    }
}

pub mod strategy {
    use super::TestRng;
    use rand::{Rng, UniformInt};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: UniformInt + 'static> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_range_inclusive {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range");
                    let span = hi as u128 - lo as u128 + 1;
                    (lo as u128 + (rng.gen::<u64>() as u128 % span)) as $t
                }
            }
        )*};
    }
    impl_range_inclusive!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple {
        ($($s:ident/$v:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple!(S0 / v0 / 0);
    impl_tuple!(S0 / v0 / 0, S1 / v1 / 1);
    impl_tuple!(S0 / v0 / 0, S1 / v1 / 1, S2 / v2 / 2);
    impl_tuple!(S0 / v0 / 0, S1 / v1 / 1, S2 / v2 / 2, S3 / v3 / 3);

    /// See [`crate::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen::<T>()
        }
    }
}

/// Uniform strategy over every value of `T` (rand's full-width sample).
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Collection size specifications (`5`, `0..10`, `1..=8`).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = self.hi_inclusive - self.lo + 1;
            self.lo + (rng.gen::<u64>() as usize % span)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec`s of `element` values with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of `element` values with a size in `size`.
    /// If the element domain is too small to reach the drawn size, the set
    /// is as large as the domain allows (bounded retries).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 16 + 64 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Uniform choice from a fixed list of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// Declares property tests. See the crate docs for the supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for properties; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop` path alias (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map(op in prop_oneof![
            (0..10u64).prop_map(|v| v * 2),
            (0..10u64).prop_map(|v| v * 2 + 1),
        ]) {
            prop_assert!(op < 20);
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn btree_set_bounded_domain() {
        use crate::strategy::Strategy;
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        let s = crate::collection::btree_set(0u8..3, 1..=8);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() <= 3);
        }
    }
}
