//! Property test for the shard scaffold's semantics-preservation claim:
//! running any experiment-scale scenario under a k-way partition (k ∈
//! 1..=4) of the shard executor — at *any* worker-thread count — yields
//! exactly the run the identity partition yields single-threaded: same
//! event count, same per-node delivery counters, same checksum over
//! every counter the engine and protocols maintain.
//!
//! The thread axis gates the determinism-mode contract from
//! [`simnet::threaded`]: in [`ExecMode::Determinism`] the configured
//! thread count must be *ignored* (the engine keeps the serial
//! global-min merge), so every `(partition, threads)` combination below
//! must observe bit-identically. The scenarios are miniatures of the
//! chapter 4 (SMR over the B⁺-tree service) and chapter 5 (Ring Paxos /
//! Multi-Ring Paxos) experiment deployments, so the equivalence is
//! exercised through the full protocol stacks — multicast fan-out, TCP
//! client channels, disk-backed acceptors, timers, and the coalesced
//! delivery path — not just through synthetic traffic.
//!
//! A final (non-property) test drives the chapter 9 unplanned-crash
//! schedule — coordinator crash, loss burst, CPU straggler, respawn —
//! under the *fast-mode* threaded executor and checks that the run is
//! thread-count invariant and still heals the ring.

use hpsmr_core::deploy::{deploy_smr, SmrOptions};
use multiring::{deploy_multiring, MultiRingOptions};
use proptest::prelude::*;
use recovery::NullApp;
use ringpaxos::cluster::{
    deploy_mring, deploy_uring_recoverable, respawn_uring, MRingOptions, URingOptions,
    URingRecoveryOptions,
};
use simnet::prelude::*;
use simnet::ExecMode;
use workload::WorkloadKind;

/// Everything observable about a finished run: virtual end time, event
/// count, and every non-zero counter in deterministic order.
type Observed = (u64, u64, Vec<(usize, String, u64)>);

fn observe(sim: &Sim) -> Observed {
    let mut counters = Vec::new();
    sim.metrics().for_each_counter(|n, name, v| counters.push((n.0, name.to_string(), v)));
    (sim.now().as_nanos(), sim.events_processed(), counters)
}

/// A fresh determinism-mode sim with `shards` executor shards and
/// `threads` configured workers (nodes home round-robin as the deploy
/// adds them; `shards == 1` is the identity partition; the thread count
/// must be a no-op in this mode).
fn sim_with(seed: u64, shards: usize, threads: usize) -> Sim {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    let mut sim = if shards > 1 {
        Sim::with_partition(cfg, Partition::modulo(0, shards))
    } else {
        Sim::new(cfg)
    };
    sim.set_threads(threads);
    sim
}

/// The `(shards, threads)` grid a scenario must be invariant over:
/// identity first, then every k ∈ 2..=4 at 1, 2, and k workers.
fn grid() -> Vec<(usize, usize)> {
    let mut g = vec![(1, 1)];
    for k in 2..=4usize {
        for t in [1, 2, k] {
            if !g.contains(&(k, t)) {
                g.push((k, t));
            }
        }
    }
    g
}

/// Chapter 4 miniature: SMR over the B⁺-tree service.
fn run_smr(
    seed: u64,
    clients: usize,
    replicas: usize,
    workload: WorkloadKind,
    shards: usize,
    threads: usize,
) -> Observed {
    let mut sim = sim_with(seed, shards, threads);
    let opts =
        SmrOptions { n_replicas: replicas, n_clients: clients, workload, ..SmrOptions::default() };
    let _d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_millis(120));
    observe(&sim)
}

/// Chapter 5 miniature: one Ring Paxos ring with loss injection.
fn run_mring(
    seed: u64,
    ring_size: usize,
    rate_mbps: u64,
    shards: usize,
    threads: usize,
) -> Observed {
    let mut sim = sim_with(seed, shards, threads);
    let opts = MRingOptions {
        ring_size,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: rate_mbps * 1_000_000,
        proposer_stop: Some(Time::from_millis(80)),
        ..MRingOptions::default()
    };
    let _d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_millis(120));
    observe(&sim)
}

/// Chapter 5 miniature: Multi-Ring Paxos, two rings, one merge learner.
fn run_multiring(seed: u64, rate_mbps: u64, shards: usize, threads: usize) -> Observed {
    let mut sim = sim_with(seed, shards, threads);
    let opts = MultiRingOptions {
        n_rings: 2,
        ring_size: 2,
        proposers_per_ring: 1,
        rates_per_ring_bps: vec![rate_mbps * 1_000_000; 2],
        learners: vec![vec![0, 1]],
        ..MultiRingOptions::default()
    };
    let _d = deploy_multiring(&mut sim, &opts);
    sim.run_until(Time::from_millis(120));
    observe(&sim)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Ch. 4 SMR scenarios are invariant over the whole
    /// (partition, threads) grid in determinism mode.
    #[test]
    fn smr_scenarios_are_partition_invariant(
        seed in 0u64..1000,
        clients in 2usize..8,
        replicas in 1usize..4,
        wk in prop_oneof![
            Just(WorkloadKind::Queries),
            Just(WorkloadKind::InsDelSingle),
            Just(WorkloadKind::InsDelBatch),
        ],
    ) {
        let identity = run_smr(seed, clients, replicas, wk, 1, 1);
        for (k, t) in grid().into_iter().skip(1) {
            let sharded = run_smr(seed, clients, replicas, wk, k, t);
            prop_assert_eq!(&sharded, &identity, "SMR run diverged under k={} threads={}", k, t);
        }
    }

    /// Ch. 5 Ring Paxos scenarios are invariant over the whole
    /// (partition, threads) grid in determinism mode.
    #[test]
    fn mring_scenarios_are_partition_invariant(
        seed in 0u64..1000,
        ring_size in 2usize..5,
        rate_mbps in 20u64..120,
    ) {
        let identity = run_mring(seed, ring_size, rate_mbps, 1, 1);
        for (k, t) in grid().into_iter().skip(1) {
            let sharded = run_mring(seed, ring_size, rate_mbps, k, t);
            prop_assert_eq!(&sharded, &identity, "M-Ring run diverged under k={} threads={}", k, t);
        }
    }

    /// Ch. 5 Multi-Ring Paxos scenarios are invariant over the whole
    /// (partition, threads) grid in determinism mode.
    #[test]
    fn multiring_scenarios_are_partition_invariant(
        seed in 0u64..1000,
        rate_mbps in 20u64..100,
    ) {
        let identity = run_multiring(seed, rate_mbps, 1, 1);
        for (k, t) in grid().into_iter().skip(1) {
            let sharded = run_multiring(seed, rate_mbps, k, t);
            prop_assert_eq!(&sharded, &identity, "Multi-Ring run diverged under k={} threads={}", k, t);
        }
    }
}

/// The ch. 9 unplanned-crash schedule under the fast-mode threaded
/// executor: a recoverable U-Ring loses its coordinator at 1.0s inside
/// a loss burst (0.4–1.6s) with a CPU straggler on a survivor
/// (0.5–1.5s); the old coordinator respawns over its disk at 2.2s.
/// FaultPlan drives the run in 250ms control-plane segments — each
/// segment executes on the worker pool, fault actions apply serially
/// between segments. The run must (a) be identical at 2, 3, and 4
/// workers, and (b) still fail over and deliver through the outage.
#[test]
fn ch9_fault_schedule_is_thread_count_invariant_in_fast_mode() {
    fn run(threads: usize) -> Observed {
        let mut sim = Sim::with_partition(SimConfig::default(), Partition::modulo(0, 4));
        sim.set_exec_mode(ExecMode::Fast);
        sim.set_threads(threads);
        let opts = URingOptions {
            ring_len: 5,
            n_acceptors: 3,
            proposer_positions: vec![1, 2],
            proposer_rate_bps: 60_000_000,
            msg_bytes: 16 * 1024,
            burst: 1,
            proposer_stop: Some(Time::from_millis(2800)),
        };
        let rec = URingRecoveryOptions { checkpoint_interval: 256, ..Default::default() };
        let ru = deploy_uring_recoverable(
            &mut sim,
            &opts,
            rec,
            |cfg| cfg.suspicion_timeout = Some(Dur::millis(40)),
            |_| Some(Box::new(NullApp::default())),
        );
        let coord = ru.d.ring[0];
        let mut plan = FaultPlan::new()
            .loss_burst(Time::from_millis(400), Time::from_millis(1600), 0.002)
            .straggler(ru.d.ring[2], Time::from_millis(500), Time::from_millis(1500), 2.0)
            .at(Time::from_millis(1000), FaultAction::Crash(coord))
            .at(Time::from_millis(2200), FaultAction::Respawn(coord));
        let step = Dur::millis(250);
        for i in 1..=12u64 {
            plan.step(&mut sim, Time::ZERO + step * i, &mut |sim, _| {
                respawn_uring(sim, &ru, 0, Some(Box::new(NullApp::default())))
            });
        }
        let takeovers: u64 =
            (1..5).map(|p| sim.metrics().counter(ru.d.ring[p], "rp.became_coord")).sum();
        assert!(takeovers >= 1, "no survivor took over after the coordinator crash");
        let delivered = sim.metrics().counter(ru.d.ring[3], "abcast.delivered_bytes");
        assert!(delivered > 0, "observer delivered nothing through the fault schedule");
        observe(&sim)
    }

    let two = run(2);
    for threads in [3, 4] {
        assert_eq!(run(threads), two, "fast-mode fault run diverged at {threads} workers");
    }
}
