//! Property test for the shard scaffold's semantics-preservation claim:
//! running any experiment-scale scenario under a k-way partition (k ∈
//! 1..=4) of the round-robin shard executor yields *exactly* the run the
//! identity partition yields — same event count, same per-node delivery
//! counters, same checksum over every counter the engine and protocols
//! maintain.
//!
//! The scenarios are miniatures of the chapter 4 (SMR over the B⁺-tree
//! service) and chapter 5 (Ring Paxos / Multi-Ring Paxos) experiment
//! deployments, so the equivalence is exercised through the full
//! protocol stacks — multicast fan-out, TCP client channels, disk-backed
//! acceptors, timers, and the coalesced delivery path — not just through
//! synthetic traffic.

use btree::WorkloadKind;
use hpsmr_core::deploy::{deploy_smr, SmrOptions};
use multiring::{deploy_multiring, MultiRingOptions};
use proptest::prelude::*;
use ringpaxos::cluster::{deploy_mring, MRingOptions};
use simnet::prelude::*;

/// Everything observable about a finished run: virtual end time, event
/// count, and every non-zero counter in deterministic order.
type Observed = (u64, u64, Vec<(usize, String, u64)>);

fn observe(sim: &Sim) -> Observed {
    let mut counters = Vec::new();
    sim.metrics().for_each_counter(|n, name, v| counters.push((n.0, name.to_string(), v)));
    (sim.now().as_nanos(), sim.events_processed(), counters)
}

/// A fresh sim with `shards` executor shards (nodes home round-robin as
/// the deploy adds them; `shards == 1` is the identity partition).
fn sim_with(seed: u64, shards: usize) -> Sim {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    let mut sim = Sim::new(cfg);
    if shards > 1 {
        sim.set_partition(Partition::modulo(0, shards));
    }
    sim
}

/// Chapter 4 miniature: SMR over the B⁺-tree service.
fn run_smr(
    seed: u64,
    clients: usize,
    replicas: usize,
    workload: WorkloadKind,
    shards: usize,
) -> Observed {
    let mut sim = sim_with(seed, shards);
    let opts =
        SmrOptions { n_replicas: replicas, n_clients: clients, workload, ..SmrOptions::default() };
    let _d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_millis(120));
    observe(&sim)
}

/// Chapter 5 miniature: one Ring Paxos ring with loss injection.
fn run_mring(seed: u64, ring_size: usize, rate_mbps: u64, shards: usize) -> Observed {
    let mut sim = sim_with(seed, shards);
    let opts = MRingOptions {
        ring_size,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: rate_mbps * 1_000_000,
        proposer_stop: Some(Time::from_millis(80)),
        ..MRingOptions::default()
    };
    let _d = deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_millis(120));
    observe(&sim)
}

/// Chapter 5 miniature: Multi-Ring Paxos, two rings, one merge learner.
fn run_multiring(seed: u64, rate_mbps: u64, shards: usize) -> Observed {
    let mut sim = sim_with(seed, shards);
    let opts = MultiRingOptions {
        n_rings: 2,
        ring_size: 2,
        proposers_per_ring: 1,
        rates_per_ring_bps: vec![rate_mbps * 1_000_000; 2],
        learners: vec![vec![0, 1]],
        ..MultiRingOptions::default()
    };
    let _d = deploy_multiring(&mut sim, &opts);
    sim.run_until(Time::from_millis(120));
    observe(&sim)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Ch. 4 SMR scenarios are partition-invariant for every k in 1..=4.
    #[test]
    fn smr_scenarios_are_partition_invariant(
        seed in 0u64..1000,
        clients in 2usize..8,
        replicas in 1usize..4,
        wk in prop_oneof![
            Just(WorkloadKind::Queries),
            Just(WorkloadKind::InsDelSingle),
            Just(WorkloadKind::InsDelBatch),
        ],
    ) {
        let identity = run_smr(seed, clients, replicas, wk, 1);
        for k in 2..=4usize {
            let sharded = run_smr(seed, clients, replicas, wk, k);
            prop_assert_eq!(&sharded, &identity, "SMR run diverged under k={}", k);
        }
    }

    /// Ch. 5 Ring Paxos scenarios are partition-invariant for every k in
    /// 1..=4.
    #[test]
    fn mring_scenarios_are_partition_invariant(
        seed in 0u64..1000,
        ring_size in 2usize..5,
        rate_mbps in 20u64..120,
    ) {
        let identity = run_mring(seed, ring_size, rate_mbps, 1);
        for k in 2..=4usize {
            let sharded = run_mring(seed, ring_size, rate_mbps, k);
            prop_assert_eq!(&sharded, &identity, "M-Ring run diverged under k={}", k);
        }
    }

    /// Ch. 5 Multi-Ring Paxos scenarios are partition-invariant for
    /// every k in 1..=4.
    #[test]
    fn multiring_scenarios_are_partition_invariant(
        seed in 0u64..1000,
        rate_mbps in 20u64..100,
    ) {
        let identity = run_multiring(seed, rate_mbps, 1);
        for k in 2..=4usize {
            let sharded = run_multiring(seed, rate_mbps, k);
            prop_assert_eq!(&sharded, &identity, "Multi-Ring run diverged under k={}", k);
        }
    }
}
