//! Ablations of the design choices DESIGN.md calls out: batching,
//! ring-of-majority vs ring-of-all-acceptors, the flow-control window,
//! and the speculation execution/ordering overlap window.

use abcast::metric;
use hpsmr_core::deploy::{deploy_smr, SmrOptions};
use hpsmr_core::{SMR_COMPLETED, SMR_LATENCY};
use psmr::{
    deploy_parallel, EngineCosts, ExecModel, ParallelOptions, PsmrWorkload, PSMR_COMPLETED,
};
use ringpaxos::cluster::{deploy_mring, MRingOptions};
use simnet::prelude::*;
use workload::WorkloadKind;

use crate::harness::{header, Window};
use crate::Experiment;

/// The ablation experiments.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "abl_batch",
            title: "ablation: consensus packet (batch) size",
            run: abl_batch,
        },
        Experiment {
            id: "abl_ring",
            title: "ablation: ring of majority vs all acceptors",
            run: abl_ring,
        },
        Experiment {
            id: "abl_window",
            title: "ablation: outstanding-instance window",
            run: abl_window,
        },
        Experiment {
            id: "abl_spec",
            title: "ablation: speculation window (exec cost vs ordering)",
            run: abl_spec,
        },
        Experiment {
            id: "abl_sched",
            title: "ablation: SDPE scheduler cost vs P-SMR",
            run: abl_sched,
        },
        Experiment {
            id: "abl_sync",
            title: "ablation: P-SMR barrier cost under conflicts",
            run: abl_sync,
        },
    ]
}

fn parallel_point(model: ExecModel, costs: EngineCosts, dep_pct: u32) -> f64 {
    let mut cfg = SimConfig::default();
    cfg.cores_per_node = model.cores_needed().max(4);
    let mut sim = Sim::new(cfg);
    let opts = ParallelOptions {
        model,
        n_clients: 120,
        workload: PsmrWorkload { n_groups: 8, dep_pct, ..PsmrWorkload::default() },
        costs,
        n_replicas: 2,
        ..ParallelOptions::default()
    };
    let d = deploy_parallel(&mut sim, &opts);
    let w = Window::open(&mut sim, Dur::millis(400), Dur::secs(1), &[]);
    let before: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, PSMR_COMPLETED)).sum();
    w.close(&mut sim);
    let after: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, PSMR_COMPLETED)).sum();
    (after - before) as f64 / w.len().as_secs_f64() / 1e3
}

fn abl_sched() {
    println!("Ablation — how cheap must SDPE's scheduler be to match P-SMR? (8 workers, dep%=0)");
    header(&["sched cost", "SDPE Kcps", "P-SMR Kcps"]);
    let psmr = parallel_point(ExecModel::Psmr { workers: 8 }, EngineCosts::default(), 0);
    for &us in &[60u64, 30, 15, 8, 4, 1] {
        let costs = EngineCosts { sched: Dur::micros(us), ..EngineCosts::default() };
        let sdpe = parallel_point(ExecModel::Sdpe { workers: 8 }, costs, 0);
        println!("  {:7} us | {sdpe:9.1} | {psmr:10.1}", us);
    }
    println!("  finding: the scheduler cost caps SDPE until ~cost/workers per command, and");
    println!("  even a free scheduler leaves a gap — dispatching in delivery order parks a");
    println!("  worker whenever its command still waits on a domain, capacity P-SMR's");
    println!("  per-domain queues never waste. The §6.2.4 bottleneck is structural.");
}

fn abl_sync() {
    println!("Ablation — P-SMR barrier overhead under a 10%-dependent workload (8 workers)");
    header(&["sync cost", "Kcps"]);
    for &us in &[0u64, 10, 50, 200, 1000] {
        let costs = EngineCosts { sync: Dur::micros(us), ..EngineCosts::default() };
        let kcps = parallel_point(ExecModel::Psmr { workers: 8 }, costs, 10);
        println!("  {:7} us | {kcps:6.1}", us);
    }
    println!("  finding: with dependent commands in the mix, throughput is dominated by the");
    println!("  all-worker serialization itself; the barrier's own cost only matters once it");
    println!("  rivals the command execution time.");
}

fn mring_point(configure: impl FnOnce(&mut ringpaxos::MRingConfig), rate: u64) -> (f64, Dur) {
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: rate / 2,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, configure);
    let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
    let b = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
    w.close(&mut sim);
    let a = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
    (w.mbps_of(b, a), sim.metrics().latency(metric::LATENCY).mean)
}

fn abl_batch() {
    println!("Ablation — batching: consensus packet size under 256 B application messages");
    header(&["packet", "Mbps", "latency"]);
    for &packet in &[256u32, 1024, 4096, 8192, 32768] {
        let mut sim = Sim::new(SimConfig::default());
        let opts = MRingOptions {
            ring_size: 3,
            n_learners: 2,
            n_proposers: 2,
            proposer_rate_bps: 200_000_000,
            msg_bytes: 256,
            ..MRingOptions::default()
        };
        let d = deploy_mring(&mut sim, &opts, |c| c.packet_bytes = packet);
        let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
        let b = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        w.close(&mut sim);
        let a = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        let lat = sim.metrics().latency(metric::LATENCY).mean;
        println!("  {packet:6} | {:4.0} | {lat}", w.mbps_of(b, a));
    }
    println!(
        "  without batching the per-instance costs cap throughput (§3.3.2's batch optimization)."
    );
}

fn abl_ring() {
    println!("Ablation — ring membership: majority (f+1, paper) vs all acceptors (2f+1)");
    header(&["ring", "Mbps", "latency"]);
    // The paper places an m-quorum in the ring to cut communication
    // steps; putting all 2f+1 acceptors in lengthens the 2B relay.
    let (t1, l1) = mring_point(|_| {}, 950_000_000); // ring of 3 = f+1 (f=2 of 5)
    println!("  {:>9} | {t1:4.0} | {l1}", "f+1 (3)");
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 5,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 475_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
    let b = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
    w.close(&mut sim);
    let a = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
    let lat = sim.metrics().latency(metric::LATENCY).mean;
    println!("  {:>9} | {:4.0} | {lat}", "2f+1 (5)", w.mbps_of(b, a));
    println!(
        "  longer rings keep throughput but add relay hops to latency (Table 3.1's f+3 steps)."
    );
}

fn abl_window() {
    println!("Ablation — coordinator outstanding-instance window");
    header(&["window", "Mbps", "latency"]);
    for &win in &[2u32, 8, 32, 64, 256] {
        let (t, l) = mring_point(
            |c| {
                c.flow.initial_window = win;
                c.flow.max_window = win;
                c.flow.min_window = win.min(2);
            },
            950_000_000,
        );
        println!("  {win:6} | {t:4.0} | {l}");
    }
    println!(
        "  tiny windows serialize instances (throughput collapses); huge ones only add queueing."
    );
}

fn abl_spec() {
    println!("Ablation — speculation gain vs execution cost (min(Δo, Δe) prediction, §4.2.1)");
    header(&["workload", "plain lat", "spec lat", "saved"]);
    for (wk, label, clients) in [
        (WorkloadKind::InsDelSingle, "single updates (tiny Δe)", 30usize),
        (WorkloadKind::InsDelBatch, "batched updates", 30),
        (WorkloadKind::Queries, "range queries (large Δe)", 10),
    ] {
        let base =
            SmrOptions { n_replicas: 2, n_clients: clients, workload: wk, ..SmrOptions::default() };
        let lat = |speculative| {
            let mut sim = Sim::new(SimConfig::default());
            let opts = SmrOptions { speculative, ..base.clone() };
            let d = deploy_smr(&mut sim, &opts);
            let w = Window::open(&mut sim, Dur::millis(500), Dur::secs(1), &[SMR_LATENCY]);
            let before = w.snapshot(&sim, &d.clients, SMR_COMPLETED);
            w.close(&mut sim);
            let _ = before;
            sim.metrics().latency(SMR_LATENCY).mean
        };
        let plain = lat(false);
        let spec = lat(true);
        println!(
            "  {label:<26} | {:9} | {:8} | {}",
            format!("{plain}"),
            format!("{spec}"),
            plain.saturating_sub(spec)
        );
    }
    println!("  the saving tracks min(ordering time, execution time): biggest where both are comparable.");
}
