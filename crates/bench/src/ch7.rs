//! Chapter 7 experiments — "Paxos in the cloud", substituted onto the
//! simulated cluster: the thesis benchmarks four *third-party* open-source
//! Paxos libraries on Amazon EC2 (S-Paxos, OpenReplica, U-Ring Paxos,
//! Libpaxos/Libpaxos+) with and without failures. The binaries and EC2
//! are out of reach, so we run the same study over this repository's own
//! implementations of the corresponding protocol architectures and
//! reproduce the chapter's *lessons*: peak ranking, and how differently
//! each architecture behaves when a process fails.
//!
//! Substitutions (see DESIGN.md):
//! * S-Paxos → `baselines::spaxos` (replica dissemination + id ordering).
//! * OpenReplica → `baselines::pfsb` (unicast star around the leader —
//!   the same all-unicast, leader-centric architecture).
//! * U-Ring Paxos → `ringpaxos::uring`.
//! * Libpaxos → `baselines::libpaxos`; Libpaxos+ (the chapter's improved
//!   variant) → `ringpaxos::mring`, which embodies the same fixes the
//!   chapter proposes (windowing, batching, ring-based votes, failover).

use baselines::{deploy_libpaxos, deploy_pfsb, deploy_spaxos};
use ringpaxos::cluster::{deploy_mring, deploy_uring, MRingOptions, URingOptions};
use simnet::prelude::*;

use abcast::metric;

use crate::harness::{header, throughput_trace, Window};
use crate::Experiment;

/// All ch. 7 experiments in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment { id: "tab7_01", title: "evaluated systems and configurations", run: tab7_01 },
        Experiment { id: "fig7_02", title: "peak performance of the Paxos stacks", run: fig7_02 },
        Experiment { id: "fig7_03", title: "S-Paxos under a replica failure", run: fig7_03 },
        Experiment {
            id: "fig7_05",
            title: "U-Ring Paxos under a ring-process failure",
            run: fig7_05,
        },
        Experiment {
            id: "fig7_06",
            title: "coordinator failure and takeover (Libpaxos+ policy)",
            run: fig7_06,
        },
        Experiment { id: "fig7_07", title: "acceptor failure and spare replacement", run: fig7_07 },
    ]
}

fn tab7_01() {
    println!("Table 7.1 — systems under study (EC2 originals → this repository's stand-ins)");
    header(&["paper system", "stand-in", "architecture", "failure policy"]);
    for row in [
        (
            "S-Paxos",
            "baselines::spaxos",
            "all replicas disseminate; leader orders ids",
            "continues at f failures",
        ),
        ("OpenReplica", "baselines::pfsb", "leader-centric unicast star", "blocks on leader loss"),
        (
            "U-Ring Paxos",
            "ringpaxos::uring",
            "all-unicast pipelined ring",
            "ring stalls until reconfigured",
        ),
        (
            "Libpaxos",
            "baselines::libpaxos",
            "ip-multicast Paxos, full payloads ordered",
            "new coordinator election",
        ),
        (
            "Libpaxos+",
            "ringpaxos::mring",
            "multicast dissemination + ring votes",
            "failover + spare promotion",
        ),
    ] {
        println!("  {:<12} | {:<19} | {:<44} | {}", row.0, row.1, row.2, row.3);
    }
}

/// Deploys one stack offering `total_bps` of application load, returning
/// the learner node whose delivery we observe.
fn deploy_stack(sim: &mut Sim, stack: &str, total_bps: u64) -> NodeId {
    match stack {
        "spaxos" => deploy_spaxos(sim, 1, total_bps / 3, 32 * 1024).0[0],
        "openreplica" => deploy_pfsb(sim, 1, 2, 2, total_bps / 2, 200).0[0],
        "uring" => {
            let opts = URingOptions {
                ring_len: 5,
                n_acceptors: 3,
                proposer_positions: (0..5).collect(),
                proposer_rate_bps: total_bps / 5,
                msg_bytes: 32 * 1024,
                ..URingOptions::default()
            };
            deploy_uring(sim, &opts, |_| {}).ring[2]
        }
        "libpaxos" => deploy_libpaxos(sim, 1, 2, 2, total_bps / 2, 4096).1[0],
        "mring" => {
            let opts = MRingOptions {
                ring_size: 3,
                n_learners: 2,
                n_proposers: 2,
                proposer_rate_bps: total_bps / 2,
                msg_bytes: 8192,
                ..MRingOptions::default()
            };
            deploy_mring(sim, &opts, |_| {}).learners[0]
        }
        _ => unreachable!("unknown stack"),
    }
}

/// Delivered throughput (Mbps), mean latency, and the `p50/p99/p999`
/// cell at `total_bps` offered.
fn measure_stack(stack: &str, total_bps: u64) -> (f64, Dur, String) {
    let mut sim = Sim::new(SimConfig::default());
    let node = deploy_stack(&mut sim, stack, total_bps);
    let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(2), &[metric::LATENCY]);
    let before = sim.metrics().counter(node, metric::DELIVERED_BYTES);
    w.close(&mut sim);
    let after = sim.metrics().counter(node, metric::DELIVERED_BYTES);
    (
        w.mbps_of(before, after),
        sim.metrics().latency(metric::LATENCY).mean,
        crate::harness::pctl_cell(&sim, metric::LATENCY),
    )
}

fn fig7_02() {
    println!("Fig 7.2 — peak throughput (saturated) and latency at 70% of peak");
    header(&["system", "peak Mbps", "latency @70%", "p50/p99/p999 @70%"]);
    for (label, stack, saturate_bps) in [
        ("S-Paxos", "spaxos", 450_000_000u64),
        ("OpenReplica*", "openreplica", 100_000_000),
        ("U-Ring Paxos", "uring", 1_100_000_000),
        ("Libpaxos", "libpaxos", 200_000_000),
        ("Libpaxos+ (M-RP)", "mring", 950_000_000),
    ] {
        // Pass 1: offer each stack's saturating load to find its peak
        // throughput (§7.3.2's methodology; offering far beyond the
        // peak makes the weaker stacks collapse rather than saturate,
        // exactly the overload behaviour ch. 7 warns about).
        let (peak_mbps, _, _) = measure_stack(stack, saturate_bps);
        // Pass 2: latency at a sustainable fraction of the peak.
        let offered = ((peak_mbps * 0.7) as u64 * 1_000_000).max(5_000_000);
        let (_, lat, pctls) = measure_stack(stack, offered);
        println!("  {label:<16} | {peak_mbps:9.0} | {:12} | {pctls}", format!("{lat}"));
    }
    println!("  shape: ring/multicast stacks sit near wire speed; leader-centric unicast");
    println!("  stacks an order of magnitude below (paper Fig 7.2's ranking).");
}

/// Prints a per-interval delivered-Mbps trace from `observer`, applying
/// `at_step` before each step (failure/recovery injection).
fn trace(
    sim: &mut Sim,
    observer: NodeId,
    steps: u64,
    step_len: Dur,
    at_step: impl FnMut(&mut Sim, u64),
) {
    header(&["t (s)", "delivered Mbps"]);
    throughput_trace(
        sim,
        observer,
        metric::DELIVERED_BYTES,
        steps,
        step_len,
        at_step,
        |step, rate| {
            println!("  {:5.1} | {rate:14.0}", (step_len * step).as_secs_f64());
        },
    );
}

fn fig7_03() {
    println!("Fig 7.3 — S-Paxos, 3 replicas: replica 2 crashes at t=1.5s");
    let mut sim = Sim::new(SimConfig::default());
    let (replicas, log) = deploy_spaxos(&mut sim, 1, 150_000_000, 32 * 1024);
    let victim = replicas[2];
    trace(&mut sim, replicas[0], 8, Dur::millis(500), |sim, step| {
        if step == 4 {
            sim.set_node_up(victim, false);
        }
    });
    log.lock().unwrap().check_total_order().expect("order preserved across the failure");
    println!("  shape: throughput dips by the dead replica's dissemination share and");
    println!("  stabilizes — S-Paxos keeps running at f failures (paper Fig 7.3).");
}

fn fig7_05() {
    println!("Fig 7.5 — U-Ring Paxos, 5 processes: ring position 3 crashes at t=1.5s");
    let mut sim = Sim::new(SimConfig::default());
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: (0..5).collect(),
        proposer_rate_bps: 180_000_000,
        msg_bytes: 32 * 1024,
        ..URingOptions::default()
    };
    let d = deploy_uring(&mut sim, &opts, |_| {});
    let victim = d.ring[3];
    trace(&mut sim, d.ring[1], 8, Dur::millis(500), |sim, step| {
        if step == 4 {
            sim.set_node_up(victim, false);
        }
    });
    println!("  shape: delivery collapses to zero and stays there — a broken unicast ring");
    println!("  moves no traffic until it is reconfigured, the chapter's U-Ring lesson");
    println!("  (paper Fig 7.5; its library needed an external reconfiguration service).");
}

fn fig7_06() {
    println!("Fig 7.6 — M-Ring Paxos (the Libpaxos+ policy): coordinator crashes at t=1.5s");
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 200_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    let coord = d.coordinator();
    trace(&mut sim, d.learners[0], 10, Dur::millis(500), |sim, step| {
        if step == 4 {
            sim.set_node_up(coord, false);
        }
    });
    d.log.lock().unwrap().check_total_order().expect("order preserved across failover");
    println!("  shape: a short outage (suspicion timeout), then a surviving acceptor takes");
    println!("  over, re-runs Phase 1, and throughput recovers (paper Figs 7.6/7.7).");
}

fn fig7_07() {
    println!("Fig 7.7 — M-Ring Paxos: mid-ring acceptor crashes at t=1.5s, spare promoted");
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        spares: 1,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 200_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    let victim = d.ring[1];
    trace(&mut sim, d.learners[0], 10, Dur::millis(500), |sim, step| {
        if step == 4 {
            sim.set_node_up(victim, false);
        }
    });
    d.log.lock().unwrap().check_total_order().expect("order preserved across ring repair");
    println!("  shape: the coordinator suspects the silent acceptor, lays out a new ring");
    println!("  pulling in the spare, and throughput recovers (ch. 3 §3.3.5's policy —");
    println!("  the failure handling the chapter finds missing in most libraries).");
}
