//! Shared measurement plumbing for the experiment runners.

use simnet::prelude::*;

/// Steady-state measurement: runs `sim` through `warmup`, snapshots the
/// interesting counters, runs a further `window`, and reports the diffs.
pub struct Window {
    start: Time,
    len: Dur,
}

impl Window {
    /// Advances `sim` past `warmup` and opens a measurement window of
    /// `window`. Latency samples recorded before the window are drained
    /// so `latency` reports the window only.
    pub fn open(sim: &mut Sim, warmup: Dur, window: Dur, latency_names: &[&'static str]) -> Window {
        let start = Time::ZERO + warmup;
        sim.run_until(start);
        for name in latency_names {
            let _ = sim.metrics_mut().take_latency(name);
        }
        Window { start, len: window }
    }

    /// The counter value of `(node, name)` at the window start must be
    /// captured by the caller *before* calling [`Window::close`]; this
    /// helper snapshots a set of counters.
    pub fn snapshot(&self, sim: &Sim, nodes: &[NodeId], name: &'static str) -> Vec<u64> {
        nodes.iter().map(|&n| sim.metrics().counter(n, name)).collect()
    }

    /// Runs the simulation to the end of the window.
    pub fn close(&self, sim: &mut Sim) {
        sim.run_until(self.start + self.len);
    }

    /// Window length.
    pub fn len(&self) -> Dur {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == Dur::ZERO
    }

    /// Throughput in Mbps for a counter diff.
    pub fn mbps_of(&self, before: u64, after: u64) -> f64 {
        mbps(after.saturating_sub(before), self.len)
    }

    /// Rate per second for a counter diff.
    pub fn rate_of(&self, before: u64, after: u64) -> f64 {
        per_sec(after.saturating_sub(before), self.len)
    }
}

/// Per-interval delivered-throughput trace, built on the probe layer's
/// [`simnet::probe::CounterSampler`] — the one place the experiment
/// chapters' "bucketed Mbps over time" figures sample counters.
///
/// Runs `steps` buckets of `step_len` from `Time::ZERO`, calling
/// `at_step(sim, step)` *before* advancing each bucket (fault injection
/// at exact intra-bucket times is the callback's job — it may freely
/// `run_until` an instant inside the bucket), then samples the delta of
/// `(observer, counter)` and hands each bucket's Mbps to `row` for
/// chapter-specific formatting. Returns the full Mbps series.
pub fn throughput_trace(
    sim: &mut Sim,
    observer: NodeId,
    counter: &'static str,
    steps: u64,
    step_len: Dur,
    mut at_step: impl FnMut(&mut Sim, u64),
    mut row: impl FnMut(u64, f64),
) -> Vec<f64> {
    let mut sampler = simnet::probe::CounterSampler::new(counter, Some(observer));
    sampler.rebase(sim);
    let mut series = Vec::with_capacity(steps as usize);
    for step in 1..=steps {
        at_step(sim, step);
        sim.run_until(Time::ZERO + step_len * step);
        let rate = mbps(sampler.sample(sim), step_len);
        row(step, rate);
        series.push(rate);
    }
    series
}

/// CPU utilization (%) of one core over an interval, from busy-time diffs.
pub fn cpu_pct(busy_before: Dur, busy_after: Dur, window: Dur) -> f64 {
    (busy_after.saturating_sub(busy_before)).as_secs_f64() / window.as_secs_f64() * 100.0
}

/// One table cell holding the p50/p99/p999 of the samples recorded
/// under `name`, or `-` when nothing was recorded. Reads the live
/// histogram, so call it before anything drains the name (e.g. a later
/// [`Window::open`] listing it) and after the window of interest.
pub fn pctl_cell(sim: &Sim, name: &'static str) -> String {
    let p = |frac| sim.metrics().percentile(name, frac);
    match (p(0.50), p(0.99), p(0.999)) {
        (Some(p50), Some(p99), Some(p999)) => format!("{p50}/{p99}/{p999}"),
        _ => "-".into(),
    }
}

/// Prints a table header: `name | col col col`.
pub fn header(cols: &[&str]) {
    println!("  {}", cols.join(" | "));
    println!("  {}", cols.iter().map(|c| "-".repeat(c.len())).collect::<Vec<_>>().join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_pct_diffs() {
        assert!((cpu_pct(Dur::millis(100), Dur::millis(600), Dur::secs(1)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn window_rates() {
        let w = Window { start: Time::ZERO, len: Dur::secs(2) };
        assert!((w.rate_of(100, 300) - 100.0).abs() < 1e-9);
        assert!(!w.is_empty());
    }
}
