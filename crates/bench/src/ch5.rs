//! Chapter 5 experiments — the Multi-Ring Paxos evaluation (Figs. 5.1,
//! 5.2, 5.4–5.11).

use abcast::metric;
use multiring::{deploy_multiring, MultiRingOptions, MRP_LATENCY};
use ringpaxos::cluster::{deploy_mring, MRingOptions};
use ringpaxos::StorageMode;
use simnet::prelude::*;

use crate::harness::{cpu_pct, header, pctl_cell, Window};
use crate::Experiment;

/// All ch. 5 experiments in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment { id: "fig5_01", title: "in-memory vs recoverable Ring Paxos", run: fig5_01 },
        Experiment {
            id: "fig5_02",
            title: "partitioned service over one ring does not scale",
            run: fig5_02,
        },
        Experiment {
            id: "fig5_04",
            title: "Multi-Ring Paxos scalability (one group per learner)",
            run: fig5_04,
        },
        Experiment { id: "fig5_05", title: "learner subscribing to all groups", run: fig5_05 },
        Experiment { id: "fig5_06", title: "impact of Delta", run: fig5_06 },
        Experiment { id: "fig5_07", title: "impact of M", run: fig5_07 },
        Experiment { id: "fig5_08", title: "impact of lambda, equal constant rates", run: fig5_08 },
        Experiment { id: "fig5_09", title: "impact of lambda, 2:1 rates", run: fig5_09 },
        Experiment { id: "fig5_10", title: "impact of lambda, oscillating rates", run: fig5_10 },
        Experiment { id: "fig5_11", title: "coordinator failure and recovery", run: fig5_11 },
        Experiment {
            id: "probe5_mring",
            title: "M-Ring latency decomposition (probe layer)",
            run: crate::probes::probe5_mring,
        },
    ]
}

fn fig5_01() {
    println!("Fig 5.1 — latency vs delivery throughput: In-memory vs Recoverable Ring Paxos");
    header(&["mode", "offered Mbps", "delivered Mbps", "latency", "p50/p99/p999", "coord CPU %"]);
    for (mode, label) in
        [(StorageMode::InMemory, "in-memory"), (StorageMode::AsyncDisk, "recoverable")]
    {
        for &rate in &[200u64, 400, 600, 800, 950] {
            let mut sim = Sim::new(SimConfig::default());
            let opts = MRingOptions {
                ring_size: 3,
                n_learners: 2,
                n_proposers: 2,
                proposer_rate_bps: rate * 1_000_000 / 2,
                msg_bytes: 8192,
                ..MRingOptions::default()
            };
            let d = deploy_mring(&mut sim, &opts, |c| c.storage = mode);
            let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
            let b = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
            let cpu0 = sim.cpu_busy(d.coordinator(), 0);
            w.close(&mut sim);
            let a = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
            let lat = sim.metrics().latency(metric::LATENCY).trimmed_mean_95;
            let cpu = cpu_pct(cpu0, sim.cpu_busy(d.coordinator(), 0), w.len());
            println!(
                "  {label:<11} | {rate:12} | {:14.0} | {:7} | {:12} | {cpu:11.0}",
                w.mbps_of(b, a),
                format!("{lat}"),
                pctl_cell(&sim, metric::LATENCY)
            );
        }
    }
    println!("  shape: in-memory CPU/network bound near wire speed; recoverable saturates at the disk (paper Fig 5.1).");
}

fn fig5_02() {
    println!("Fig 5.2 — partitions sharing ONE ring split a fixed ordering capacity");
    header(&["partitions", "total Mbps", "per-partition Mbps"]);
    for &parts in &[1usize, 2, 4, 8] {
        // One ring; `parts` proposer/learner pairs each with their own
        // share of the offered load (a partitioned dummy service).
        let mut sim = Sim::new(SimConfig::default());
        let opts = MRingOptions {
            ring_size: 3,
            n_learners: parts,
            n_proposers: parts,
            proposer_rate_bps: 950_000_000 / parts as u64,
            msg_bytes: 8192,
            ..MRingOptions::default()
        };
        let d = deploy_mring(&mut sim, &opts, |_| {});
        let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[]);
        let before = w.snapshot(&sim, &d.learners, metric::DELIVERED_BYTES);
        w.close(&mut sim);
        let after = w.snapshot(&sim, &d.learners, metric::DELIVERED_BYTES);
        let per = w.mbps_of(before[0], after[0]);
        println!("  {parts:10} | {:10.0} | {per:18.0}", per * 1.0);
    }
    println!("  shape: total ordering capacity is constant — more partitions just divide it (paper Fig 5.2).");
}

fn fig5_04() {
    println!("Fig 5.4 — Multi-Ring Paxos scalability, one group per learner (aggregate Gbps)");
    header(&["rings", "RAM aggregate Mbps", "DISK aggregate Mbps"]);
    for &rings in &[1usize, 2, 4, 8] {
        let mut row = Vec::new();
        for storage in [StorageMode::InMemory, StorageMode::AsyncDisk] {
            let mut sim = Sim::new(SimConfig::default());
            let opts = MultiRingOptions {
                n_rings: rings,
                rates_per_ring_bps: vec![950_000_000; rings],
                storage,
                learners: (0..rings).map(|r| vec![r]).collect(),
                ..MultiRingOptions::default()
            };
            let d = deploy_multiring(&mut sim, &opts);
            let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[]);
            let before = w.snapshot(&sim, &d.learners, metric::DELIVERED_BYTES);
            w.close(&mut sim);
            let after = w.snapshot(&sim, &d.learners, metric::DELIVERED_BYTES);
            let total: f64 = before.iter().zip(&after).map(|(&b, &a)| w.mbps_of(b, a)).sum();
            row.push(total);
        }
        println!("  {rings:5} | {:18.0} | {:19.0}", row[0], row[1]);
    }
    println!("  shape: aggregate grows linearly with rings, both in-memory and recoverable (paper Fig 5.4).");
}

fn fig5_05() {
    println!("Fig 5.5 — one learner subscribed to ALL groups: capped by its ingress link");
    header(&["rings", "learner Mbps"]);
    for &rings in &[1usize, 2, 4] {
        let mut sim = Sim::new(SimConfig::default());
        let opts = MultiRingOptions {
            n_rings: rings,
            rates_per_ring_bps: vec![700_000_000; rings],
            learners: vec![(0..rings).collect()],
            ..MultiRingOptions::default()
        };
        let d = deploy_multiring(&mut sim, &opts);
        let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[]);
        let b = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        w.close(&mut sim);
        let a = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        println!("  {rings:5} | {:11.0}", w.mbps_of(b, a));
    }
    println!("  shape: throughput saturates at the learner's gigabit link, not the rings (paper Fig 5.5).");
}

fn delta_m_sweep(param: &str) {
    header(&[param, "delivered Mbps", "latency", "p50/p99/p999"]);
    let values: &[u64] = &[1, 10, 100];
    for &v in values {
        let mut sim = Sim::new(SimConfig::default());
        let opts = MultiRingOptions {
            n_rings: 2,
            rates_per_ring_bps: vec![300_000_000, 300_000_000],
            delta: if param == "delta_ms" { Dur::millis(v) } else { Dur::millis(1) },
            m: if param == "M" { v } else { 1 },
            learners: vec![vec![0, 1]],
            ..MultiRingOptions::default()
        };
        let d = deploy_multiring(&mut sim, &opts);
        let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[MRP_LATENCY]);
        let b = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        w.close(&mut sim);
        let a = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        let lat = sim.metrics().latency(MRP_LATENCY).mean;
        println!("  {v:8} | {:14.0} | {lat} | {}", w.mbps_of(b, a), pctl_cell(&sim, MRP_LATENCY));
    }
}

fn fig5_06() {
    println!("Fig 5.6 — impact of ∆ (skip-check interval), 2 rings, 1 learner on both");
    delta_m_sweep("delta_ms");
    println!("  shape: large ∆ raises latency; max throughput unchanged (paper Fig 5.6).");
}

fn fig5_07() {
    println!("Fig 5.7 — impact of M (instances merged per ring per turn)");
    delta_m_sweep("M");
    println!("  shape: large M raises latency; throughput and CPU unchanged (paper Fig 5.7).");
}

fn lambda_trace(rates: (u64, u64), lambdas: &[u64], oscillate: bool, fig: &str) {
    for &lambda in lambdas {
        println!(" lambda = {lambda}/s:");
        header(&["t (s)", "delivered Mbps", "latency (window)", "p50/p99 (window)"]);
        let mut sim = Sim::new(SimConfig::default());
        let opts = MultiRingOptions {
            n_rings: 2,
            rates_per_ring_bps: vec![rates.0, rates.1],
            lambda_per_sec: lambda,
            learners: vec![vec![0, 1]],
            ..MultiRingOptions::default()
        };
        let d = deploy_multiring(&mut sim, &opts);
        let mut prev = 0u64;
        for step in 1..=8u64 {
            let t = Time::from_millis(step * 500);
            if oscillate {
                // Ring 1's rate oscillates every second.
                let phase = (step / 2) % 2;
                d.rings[1].set_rate(if phase == 0 { rates.1 } else { rates.1 / 4 });
            }
            sim.run_until(t);
            let cur = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
            // The per-window drain hands back summary stats, so the tail
            // columns come from there rather than the live histogram.
            let lat = sim.metrics_mut().take_latency(MRP_LATENCY);
            println!(
                "  {:5.1} | {:14.0} | {:16} | {}/{}",
                t.as_secs_f64(),
                mbps(cur - prev, Dur::millis(500)),
                format!("{}", lat.mean),
                lat.p50,
                lat.p99
            );
            prev = cur;
        }
    }
    println!("  shape: too-small lambda starves the merge (latency blows up / delivery stalls); a large one keeps it stable (paper {fig}).");
}

fn fig5_08() {
    println!("Fig 5.8 — lambda with equal constant rates (2 x 250 Mbps)");
    lambda_trace((250_000_000, 250_000_000), &[0, 1000, 9000], false, "Fig 5.8");
}

fn fig5_09() {
    println!("Fig 5.9 — lambda with 2:1 rates (300 / 150 Mbps)");
    lambda_trace((300_000_000, 150_000_000), &[1000, 9000], false, "Fig 5.9");
}

fn fig5_10() {
    println!("Fig 5.10 — lambda with oscillating rates");
    lambda_trace((300_000_000, 300_000_000), &[5000, 12000], true, "Fig 5.10");
}

fn fig5_11() {
    println!("Fig 5.11 — pausing ring 0's coordinator for 1s halts merged delivery; skips flush on recovery");
    header(&["t (s)", "delivered Mbps"]);
    let mut sim = Sim::new(SimConfig::default());
    let opts = MultiRingOptions {
        n_rings: 2,
        rates_per_ring_bps: vec![250_000_000, 250_000_000],
        learners: vec![vec![0, 1]],
        ..MultiRingOptions::default()
    };
    let d = deploy_multiring(&mut sim, &opts);
    let coord = d.rings[0].coordinator();
    let mut prev = 0u64;
    for step in 1..=10u64 {
        let t = Time::from_millis(step * 500);
        if t == Time::from_millis(1500) {
            sim.set_node_up(coord, false);
        }
        if t == Time::from_millis(2500) {
            sim.restart_node(coord);
        }
        sim.run_until(t);
        let cur = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        println!("  {:5.1} | {:14.0}", t.as_secs_f64(), mbps(cur - prev, Dur::millis(500)));
        prev = cur;
    }
    println!("  shape: delivery drops toward zero during the outage, spikes on recovery (buffer flush), then normalizes (paper Fig 5.11).");
}
