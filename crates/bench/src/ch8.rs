//! Chapter 8 experiments — the recovery subsystem. These go beyond the
//! thesis's own evaluation (which measures disk-bound acceptors in
//! §3.5.5 and treats recovery qualitatively): a U-Ring replica is
//! crashed and respawned mid-load over its stable store, and we measure
//! what the recovery design trades — time-to-recover and catch-up
//! volume against checkpoint interval, the throughput dip the outage
//! leaves in the delivered stream, and the write-ahead log's commit
//! modes (per-vote sync vs. group commit) on the §3.5.5-calibrated
//! disk.

use recovery::{LogMode, NullApp};
use ringpaxos::cluster::{
    deploy_uring_recoverable, respawn_uring, RecoverableURing, URingOptions, URingRecoveryOptions,
};
use simnet::prelude::*;

use crate::harness::{header, pctl_cell, throughput_trace};
use crate::Experiment;

/// All ch. 8 experiments in order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig8_01",
            title: "time-to-recover and catch-up volume vs checkpoint interval",
            run: fig8_01,
        },
        Experiment {
            id: "fig8_02",
            title: "throughput through a replica crash and recovery",
            run: fig8_02,
        },
        Experiment {
            id: "tab8_03",
            title: "write-ahead vote log: sync vs group commit",
            run: tab8_03,
        },
    ]
}

const VICTIM: usize = 4; // learner-only position of the 5-ring
const CRASH_AT: u64 = 1000; // ms
const RESTART_AT: u64 = 1300; // ms

fn opts() -> URingOptions {
    URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: vec![0, 1, 2],
        proposer_rate_bps: 60_000_000,
        msg_bytes: 16 * 1024,
        burst: 1,
        proposer_stop: Some(Time::from_millis(3000)),
    }
}

fn deploy(sim: &mut Sim, rec: URingRecoveryOptions) -> RecoverableURing {
    deploy_uring_recoverable(sim, &opts(), rec, |_| {}, |_| Some(Box::new(NullApp::default())))
}

/// Runs one crash-and-respawn cycle, returning the simulation at 5 s.
fn crash_cycle(rec: URingRecoveryOptions) -> (Sim, RecoverableURing) {
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy(&mut sim, rec);
    sim.run_until(Time::from_millis(CRASH_AT));
    sim.set_node_up(ru.d.ring[VICTIM], false);
    sim.run_until(Time::from_millis(RESTART_AT));
    respawn_uring(&mut sim, &ru, VICTIM, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_secs(5));
    (sim, ru)
}

fn fig8_01() {
    println!("Fig 8.1 — recovery cost vs checkpoint interval (crash at 1.0s, respawn at 1.3s)");
    header(&["ckpt interval", "checkpoints", "resume point", "catch-up inst", "transfer", "TTR"]);
    for interval in [64u64, 256, 1024, 4096] {
        let rec = URingRecoveryOptions {
            checkpoint_interval: interval,
            catchup_retention: 8192, // serve any outage from the suffix
            ..URingRecoveryOptions::default()
        };
        let (sim, ru) = crash_cycle(rec);
        let v = ru.d.ring[VICTIM];
        let log = ru.d.log.lock().unwrap();
        log.check_crash_agreement(&[0, 1, 2, 3, 4]).expect("agreement");
        let resume = log.restarts_of(VICTIM).first().map(|&(_, p, _)| p).unwrap_or(0);
        let ckpts = sim.metrics().counter(v, "rec.checkpoints");
        let caught = sim.metrics().counter(v, "rec.catchup_instances");
        let transfers = sim.metrics().counter(v, "rec.state_transfers");
        let ttr = sim.metrics().latency("rec.ttr").max;
        println!(
            "  {interval:>13} | {ckpts:>11} | {resume:>12} | {caught:>13} | {:>8} | {ttr}",
            if transfers > 0 { "yes" } else { "no" },
        );
    }
    println!("  shape: longer intervals mean fewer checkpoint writes but a longer decided");
    println!("  suffix to fetch and replay — time-to-recover grows with the interval while");
    println!("  the resume point falls further behind the crash.");
}

fn fig8_02() {
    println!("Fig 8.2 — delivered throughput at a healthy learner through the crash");
    println!("  (victim crashes at 1.0s, fresh process respawns over its disk at 1.3s)");
    header(&["t (s)", "delivered Mbps"]);
    let rec = URingRecoveryOptions { checkpoint_interval: 256, ..Default::default() };
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy(&mut sim, rec);
    let observer = ru.d.ring[3];
    let step = Dur::millis(250);
    let mut crashed = false;
    let mut respawned = false;
    throughput_trace(
        &mut sim,
        observer,
        "abcast.delivered_bytes",
        16,
        step,
        |sim, i| {
            // Apply the crash and the respawn at their exact times, even
            // when they fall inside a trace bucket.
            let target = step * i;
            if !crashed && target >= Dur::millis(CRASH_AT) {
                sim.run_until(Time::from_millis(CRASH_AT));
                sim.set_node_up(ru.d.ring[VICTIM], false);
                crashed = true;
            }
            if !respawned && target >= Dur::millis(RESTART_AT) {
                sim.run_until(Time::from_millis(RESTART_AT));
                respawn_uring(sim, &ru, VICTIM, Some(Box::new(NullApp::default())));
                respawned = true;
            }
        },
        |i, rate| println!("  {:5.2} | {rate:14.0}", (step * i).as_secs_f64()),
    );
    ru.d.log.lock().unwrap().check_crash_agreement(&[0, 1, 2, 3, 4]).expect("agreement");
    println!("  shape: the ring stalls while the process is down (U-Ring moves no traffic");
    println!("  through a dead member — Fig 7.5's lesson), then recovers past the restart:");
    println!("  re-proposal heals the window and catch-up replays the suffix.");
}

fn tab8_03() {
    println!("Table 8.3 — write-ahead vote log commit modes (§3.5.5 disk calibration)");
    header(&["mode", "delivered Mbps", "disk MB written", "mean latency", "p50/p99/p999"]);
    for (label, mode) in [
        ("sync (per-vote)", LogMode::Sync),
        ("group 1 ms", LogMode::Group { interval: Dur::millis(1), max_bytes: 256 * 1024 }),
        ("group 5 ms", LogMode::Group { interval: Dur::millis(5), max_bytes: 1024 * 1024 }),
    ] {
        let rec = URingRecoveryOptions { wal_mode: mode, ..Default::default() };
        let mut sim = Sim::new(SimConfig::default());
        let ru = deploy(&mut sim, rec);
        sim.run_until(Time::from_secs(3));
        let window = Dur::secs(3);
        let delivered = sim.metrics().counter(ru.d.ring[3], "abcast.delivered_bytes");
        let disk_mb = sim.metrics().sum("disk.written_bytes") as f64 / 1e6;
        let lat = sim.metrics().latency(abcast::metric::LATENCY).mean;
        println!(
            "  {label:<15} | {:14.0} | {disk_mb:15.1} | {:12} | {}",
            simnet::stats::mbps(delivered, window),
            format!("{lat}"),
            pctl_cell(&sim, abcast::metric::LATENCY)
        );
    }
    println!("  shape: group commit amortizes the per-operation latency across a whole");
    println!("  group of votes; larger flush windows add delivery latency in exchange.");
}
