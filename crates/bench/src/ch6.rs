//! Chapter 6 experiments — parallel state-machine replication: the
//! survey comparison (Table 6.1) and the P-SMR evaluation against
//! sequential SMR, pipelined SMR, and SDPE (Figs. 6.3–6.7).

use psmr::{
    deploy_parallel, EngineCosts, ExecModel, ParallelOptions, PsmrWorkload, PSMR_COMPLETED,
    PSMR_LATENCY,
};
use simnet::prelude::*;

use crate::harness::{header, Window};
use crate::Experiment;

/// All ch. 6 experiments in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "tab6_01",
            title: "comparison of approaches to parallelizing SMR",
            run: tab6_01,
        },
        Experiment { id: "fig6_03", title: "performance with independent commands", run: fig6_03 },
        Experiment { id: "fig6_04", title: "performance with dependent commands", run: fig6_04 },
        Experiment {
            id: "fig6_05",
            title: "mixed workloads: throughput vs conflict share",
            run: fig6_05,
        },
        Experiment { id: "fig6_06", title: "P-SMR scalability, uniform workload", run: fig6_06 },
        Experiment { id: "fig6_07", title: "P-SMR under skewed workloads", run: fig6_07 },
    ]
}

/// Stage costs used across the ch. 6 runs: execution-bound commands
/// (100 µs) with visible dispatch/marshal overheads so the pipelined
/// model's gain is observable, and the scheduler cost SDPE pays per
/// command (its §6.2.4 bottleneck).
fn costs() -> EngineCosts {
    EngineCosts {
        dispatch: Dur::micros(10),
        sched: Dur::micros(30),
        sync: Dur::micros(10),
        marshal: Dur::micros(10),
        ..EngineCosts::default()
    }
}

struct Measured {
    kcps: f64,
    latency: Dur,
    /// `p50/p99/p999` of the same window, preformatted for the tables.
    pctls: String,
}

fn measure(model: ExecModel, workload: PsmrWorkload, clients: usize) -> Measured {
    let mut cfg = SimConfig::default();
    cfg.cores_per_node = model.cores_needed().max(4);
    let mut sim = Sim::new(cfg);
    let opts = ParallelOptions {
        model,
        n_clients: clients,
        workload,
        costs: costs(),
        n_replicas: 2,
        ..ParallelOptions::default()
    };
    let d = deploy_parallel(&mut sim, &opts);
    let w = Window::open(&mut sim, Dur::millis(400), Dur::secs(1), &[PSMR_LATENCY]);
    let before = w.snapshot(&sim, &d.clients, PSMR_COMPLETED);
    w.close(&mut sim);
    let after = w.snapshot(&sim, &d.clients, PSMR_COMPLETED);
    let done: u64 = after.iter().sum::<u64>() - before.iter().sum::<u64>();
    Measured {
        kcps: done as f64 / w.len().as_secs_f64() / 1e3,
        latency: sim.metrics().latency(PSMR_LATENCY).mean,
        pctls: crate::harness::pctl_cell(&sim, PSMR_LATENCY),
    }
}

fn models_for(workers: usize) -> [ExecModel; 5] {
    [
        ExecModel::Sequential,
        ExecModel::Pipelined,
        ExecModel::Sdpe { workers },
        ExecModel::Ev { workers, batch: 50 },
        ExecModel::Psmr { workers },
    ]
}

fn tab6_01() {
    println!("Table 6.1 — approaches to parallelizing SMR (§6.2)");
    header(&["approach", "delivery", "execution", "scheduler", "rollback", "scales with threads"]);
    for row in [
        ("non-replicated", "none", "parallel", "none", "no", "yes (no fault tolerance)"),
        ("sequential SMR", "sequential", "sequential", "none", "no", "no"),
        ("pipelined SMR", "staged", "sequential", "none", "no", "no (pipeline depth only)"),
        ("SDPE", "sequential", "parallel", "centralized", "no", "until the scheduler saturates"),
        (
            "EV (execute-verify)",
            "parallel",
            "parallel",
            "none",
            "yes (on divergence)",
            "yes, workload permitting",
        ),
        ("P-SMR (PDPE)", "parallel", "parallel", "none", "no", "yes, workload permitting"),
    ] {
        println!(
            "  {:<19} | {:<10} | {:<10} | {:<11} | {:<19} | {}",
            row.0, row.1, row.2, row.3, row.4, row.5
        );
    }
    println!("  P-SMR reaches parallel delivery *and* execution without a scheduler or rollback");
    println!("  by mapping commands to multicast groups at the client proxy (§6.3).");
}

fn fig6_03() {
    println!("Fig 6.3 — independent commands only (dep% = 0), throughput and latency");
    header(&["workers", "model", "Kcps", "latency", "p50/p99/p999"]);
    for &w in &[1usize, 2, 4, 8] {
        let workload = PsmrWorkload { n_groups: w.max(1), dep_pct: 0, ..PsmrWorkload::default() };
        for model in models_for(w) {
            // Sequential and pipelined do not use the worker pool: show
            // them once, at the first sweep point.
            if matches!(model, ExecModel::Sequential | ExecModel::Pipelined) && w != 1 {
                continue;
            }
            let clients = (25 * w).max(50);
            let m = measure(model, workload, clients);
            println!(
                "  {w:7} | {:<10} | {:6.1} | {:8} | {}",
                model.label(),
                m.kcps,
                format!("{}", m.latency),
                m.pctls
            );
        }
    }
    println!("  shape: P-SMR grows ~linearly with workers; SDPE plateaus at the scheduler's");
    println!("  capacity; sequential/pipelined are flat single-thread lines (paper Fig 6.3).");
}

fn fig6_04() {
    println!("Fig 6.4 — dependent commands only (dep% = 100, all groups)");
    header(&["workers", "model", "Kcps", "latency", "p50/p99/p999"]);
    for &w in &[2usize, 4, 8] {
        let workload = PsmrWorkload { n_groups: w, dep_pct: 100, ..PsmrWorkload::default() };
        for model in models_for(w) {
            if matches!(model, ExecModel::Sequential | ExecModel::Pipelined) && w != 2 {
                continue;
            }
            let m = measure(model, workload, 40);
            println!(
                "  {w:7} | {:<10} | {:6.1} | {:8} | {}",
                model.label(),
                m.kcps,
                format!("{}", m.latency),
                m.pctls
            );
        }
    }
    println!("  shape: every model collapses to a sequential execution rate — dependent");
    println!("  commands synchronize all workers; parallelism cannot help (paper Fig 6.4).");
}

fn fig6_05() {
    println!("Fig 6.5 — mixed workloads, 8 workers: throughput vs dependent share");
    header(&["dep %", "P-SMR Kcps", "SDPE Kcps", "EV Kcps", "pipelined Kcps"]);
    for &dep in &[0u32, 1, 5, 10, 25, 50, 75, 100] {
        let workload = PsmrWorkload { n_groups: 8, dep_pct: dep, ..PsmrWorkload::default() };
        let p = measure(ExecModel::Psmr { workers: 8 }, workload, 140);
        let s = measure(ExecModel::Sdpe { workers: 8 }, workload, 140);
        let ev = measure(ExecModel::Ev { workers: 8, batch: 50 }, workload, 140);
        let pl = measure(ExecModel::Pipelined, workload, 60);
        println!(
            "  {dep:5} | {:10.1} | {:9.1} | {:7.1} | {:9.1}",
            p.kcps, s.kcps, ev.kcps, pl.kcps
        );
    }
    println!("  shape: even a few percent of dependent commands costs P-SMR dearly (each");
    println!("  barriers all 8 workers); EV collapses fastest (one raced command rolls a");
    println!("  whole batch back); by 100% all models converge (paper Fig 6.5).");
}

fn fig6_06() {
    println!("Fig 6.6 — P-SMR scalability with a uniform independent workload");
    header(&["workers", "Kcps", "speedup", "ideal"]);
    let mut base = 0.0f64;
    for &w in &[1usize, 2, 4, 6, 8] {
        let workload = PsmrWorkload { n_groups: w, dep_pct: 0, ..PsmrWorkload::default() };
        let m = measure(ExecModel::Psmr { workers: w }, workload, (25 * w).max(50));
        if w == 1 {
            base = m.kcps;
        }
        println!("  {w:7} | {:6.1} | {:7.2} | {:5}", m.kcps, m.kcps / base, w);
    }
    println!("  shape: near-linear scaling — ordering (one ring per group) and execution");
    println!("  (one worker per group) both scale with added groups (paper Fig 6.6).");
}

fn fig6_07() {
    println!("Fig 6.7 — P-SMR under skew, 8 workers: extra load on group 0");
    header(&["hot %", "Kcps", "latency", "p50/p99/p999"]);
    for &hot in &[0u32, 20, 40, 60, 80] {
        let workload =
            PsmrWorkload { n_groups: 8, dep_pct: 0, hot_pct: hot, ..PsmrWorkload::default() };
        let m = measure(ExecModel::Psmr { workers: 8 }, workload, 140);
        println!("  {hot:5} | {:6.1} | {:8} | {}", m.kcps, format!("{}", m.latency), m.pctls);
    }
    println!("  shape: throughput falls toward a single worker's rate as the hottest group");
    println!("  absorbs the load — parallelism is bounded by the busiest thread (paper Fig 6.7).");
}
