//! # bench — the experiment harness
//!
//! One runner per table and figure of the thesis's ch. 3–5 evaluation,
//! plus later chapters the thesis doesn't have (recovery, failover, and
//! the ch. 10 million-session client tier). Each experiment deploys the
//! relevant system on the simulated cluster, warms it up, measures a
//! steady-state window, and prints the same rows or series the paper
//! reports — latency columns carry p50/p99/p999 beside the means. Run
//! them through the `figures` binary:
//!
//! ```text
//! cargo run --release -p bench --bin figures -- list
//! cargo run --release -p bench --bin figures -- fig3_07
//! cargo run --release -p bench --bin figures -- all
//! ```
//!
//! Absolute numbers come from a calibrated simulator, so they are not
//! expected to equal the paper's testbed measurements; the *shapes* (who
//! wins, scaling trends, crossover points) are the reproduction target.

pub mod ablations;
pub mod ch10;
pub mod ch3;
pub mod ch4;
pub mod ch5;
pub mod ch6;
pub mod ch7;
pub mod ch8;
pub mod ch9;
pub mod harness;
pub mod probes;

/// One runnable experiment.
pub struct Experiment {
    /// Identifier (`fig3_07`, `tab3_03`, …).
    pub id: &'static str,
    /// What the paper shows there.
    pub title: &'static str,
    /// Runs the experiment, printing its rows.
    pub run: fn(),
}

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    let mut v = Vec::new();
    v.extend(ch3::experiments());
    v.extend(ch4::experiments());
    v.extend(ch5::experiments());
    v.extend(ch6::experiments());
    v.extend(ch7::experiments());
    v.extend(ch8::experiments());
    v.extend(ch9::experiments());
    v.extend(ch10::experiments());
    v.extend(ablations::experiments());
    v
}
