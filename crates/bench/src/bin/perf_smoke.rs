//! Engine performance smoke test: fixed-seed U-Ring and M-Ring runs that
//! report *wall-clock* events/sec and delivered msgs/sec, so the simulator's
//! per-event cost is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p bench --bin perf_smoke                   # print + write BENCH_simcore.json
//! cargo run --release -p bench --bin perf_smoke -- --runs 5       # best of 5 instead of 3
//! cargo run --release -p bench --bin perf_smoke -- --partition 2  # 2-shard round-robin executor
//! cargo run --release -p bench --bin perf_smoke -- --partition 4 --threads 4   # fast-mode pool
//! cargo run --release -p bench --bin perf_smoke -- --no-write
//! cargo run --release -p bench --bin perf_smoke -- --sessions 1_000_000   # session-table scale
//! perf_smoke --paired "target/release/perf_smoke --threads 1" \
//!                     "target/release/perf_smoke --threads 4"    # interleaved A/B
//! ```
//!
//! `--partition k` runs the same scenarios under a k-shard round-robin
//! partition of the executor (`k = 1`, the default, is the identity
//! partition). Virtual-time results are identical for every `k` — the
//! shard scaffold is semantics-preserving — so the flag isolates the
//! wall-clock overhead of the cross-shard handoff path.
//!
//! `--threads t` (t > 1) switches the executor to [`ExecMode::Fast`]
//! with `t` workers over the configured partition. Fast mode trades the
//! serial global interleaving for window-parallel execution, so
//! virtual-time results differ slightly from the serial/determinism
//! numbers (port contention resolves in switch-arrival order) but are
//! themselves deterministic and thread-count invariant; the JSON
//! records `mode` and `threads` beside every row.
//!
//! `--paired A B` interleaves two *commands* (typically two builds of
//! this binary, or the same build under two flag sets) A B A B … for
//! `--runs` pairs, parses each child's `total_events_per_sec`, and
//! reports the median paired delta and ratio. Interleaving means slow
//! build-box drift hits both sides of every pair equally — the ±7 %
//! swings that poisoned earlier PR-to-PR comparisons cancel instead of
//! accumulating. The paired record is appended to `BENCH_simcore.json`
//! as a second JSON line.
//!
//! Virtual-time results (events, delivered counts) are deterministic for
//! the fixed seed; only the wall-clock rates vary with the host. The
//! JSON written to `BENCH_simcore.json` is the complete machine-readable
//! record of a measurement — best-of-N selection happens here, every
//! wall-clock sample is included, and nothing needs hand-editing when
//! the ROADMAP perf table is updated from it.

use std::time::Instant;

use abcast::metric;
use ringpaxos::cluster::{deploy_mring, deploy_uring, MRingOptions, URingOptions};
use simnet::prelude::*;

struct RunResult {
    name: &'static str,
    events: u64,
    wall_s: f64,
    /// Every wall-clock sample measured, in run order (`wall_s` is the
    /// minimum); recorded so the noise band is visible in the artifact.
    wall_samples: Vec<f64>,
    delivered: u64,
    virtual_ms: u64,
    /// Batched delivery dispatch: actor callbacks made for deliveries
    /// and the messages they carried (identical across repetitions).
    dispatches: u64,
    dispatched_msgs: u64,
    /// Events that crossed a shard boundary (0 under the identity
    /// partition; identical across repetitions).
    cross_shard: u64,
    /// Mean per-worker barrier wait, seconds of wall clock (0 in
    /// determinism mode; from capacity-0 executor probes, so nothing is
    /// buffered during the measured run).
    barrier_wait_mean_s: f64,
}

impl RunResult {
    fn json(&self) -> String {
        let samples =
            self.wall_samples.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>().join(",");
        format!(
            "\"{}\":{{\"events\":{},\"wall_s\":{:.4},\"wall_s_samples\":[{}],\"events_per_sec\":{:.0},\"delivered_msgs\":{},\"delivered_per_wall_sec\":{:.0},\"virtual_ms\":{},\"delivery_dispatches\":{},\"delivery_msgs\":{},\"mean_batch\":{:.3},\"cross_shard_events\":{},\"barrier_wait_mean_s\":{:.4}}}",
            self.name,
            self.events,
            self.wall_s,
            samples,
            self.events as f64 / self.wall_s,
            self.delivered,
            self.delivered as f64 / self.wall_s,
            self.virtual_ms,
            self.dispatches,
            self.dispatched_msgs,
            self.dispatched_msgs as f64 / self.dispatches.max(1) as f64,
            self.cross_shard,
            self.barrier_wait_mean_s,
        )
    }
}

/// Applies the partition/threads configuration to a fresh sim. Threads
/// above 1 select the fast-mode worker pool (determinism mode ignores
/// the thread count by contract, so measuring it would be a no-op).
fn configure(sim: &mut Sim, shards: usize, threads: usize) {
    if shards > 1 {
        sim.set_partition(Partition::modulo(0, shards));
    }
    if threads > 1 {
        sim.set_exec_mode(ExecMode::Fast);
        sim.set_threads(threads);
        // Capacity-0 executor probes: per-worker barrier-wait telemetry
        // and the handoff aggregates without buffering a single event.
        sim.set_probes(ProbeConfig::executor_only());
    }
}

/// Mean per-worker barrier wait in seconds (0 when no telemetry ran).
fn barrier_wait_mean(sim: &Sim) -> f64 {
    let tel = sim.worker_telemetry();
    if tel.is_empty() {
        return 0.0;
    }
    tel.iter().map(|w| w.barrier_wait.as_secs_f64()).sum::<f64>() / tel.len() as f64
}

fn run_uring(shards: usize, threads: usize) -> RunResult {
    let virtual_ms = 4_000;
    let mut cfg = SimConfig::default();
    cfg.seed = 0xBEEF;
    let mut sim = Sim::new(cfg);
    configure(&mut sim, shards, threads);
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_rate_bps: 150_000_000,
        ..URingOptions::default()
    };
    deploy_uring(&mut sim, &opts, |_| {});
    let t = Instant::now();
    sim.run_until(Time::from_millis(virtual_ms));
    let wall_s = t.elapsed().as_secs_f64();
    let (dispatches, dispatched_msgs) = sim.delivery_dispatch_stats();
    RunResult {
        name: "uring",
        events: sim.events_processed(),
        wall_s,
        wall_samples: vec![wall_s],
        delivered: sim.metrics().sum(metric::DELIVERED_MSGS),
        virtual_ms,
        dispatches,
        dispatched_msgs,
        cross_shard: sim.cross_shard_events(),
        barrier_wait_mean_s: barrier_wait_mean(&sim),
    }
}

fn run_mring(shards: usize, threads: usize) -> RunResult {
    let virtual_ms = 1_500;
    let mut cfg = SimConfig::default();
    cfg.seed = 0xF00D;
    cfg.random_loss = 0.001; // exercise the loss/retransmission paths too
    let mut sim = Sim::new(cfg);
    configure(&mut sim, shards, threads);
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 300_000_000,
        ..MRingOptions::default()
    };
    deploy_mring(&mut sim, &opts, |_| {});
    let t = Instant::now();
    sim.run_until(Time::from_millis(virtual_ms));
    let wall_s = t.elapsed().as_secs_f64();
    let (dispatches, dispatched_msgs) = sim.delivery_dispatch_stats();
    RunResult {
        name: "mring",
        events: sim.events_processed(),
        wall_s,
        wall_samples: vec![wall_s],
        delivered: sim.metrics().sum(metric::DELIVERED_MSGS),
        virtual_ms,
        dispatches,
        dispatched_msgs,
        cross_shard: sim.cross_shard_events(),
        barrier_wait_mean_s: barrier_wait_mean(&sim),
    }
}

/// Best (fastest-wall) of `runs`: virtual-time results are identical
/// across repetitions, so this only de-noises the wall clock. Every
/// sample is kept in the result for the JSON artifact.
fn best_of(runs: usize, f: impl Fn() -> RunResult) -> RunResult {
    let mut best = f();
    let mut samples = best.wall_samples.clone();
    for _ in 1..runs {
        let r = f();
        samples.push(r.wall_s);
        if r.wall_s < best.wall_s {
            best = r;
        }
    }
    best.wall_samples = samples;
    best
}

/// Peak resident set (MB) of this process, from `VmHWM` in
/// `/proc/self/status`; `0` where procfs is unavailable.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).map(String::from))
        })
        .and_then(|kb| kb.parse::<f64>().ok())
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// Session-table scale smoke: hosts `target` open-loop Zipfian sessions
/// over the partitioned B⁺-tree and runs until `target` requests have
/// completed, reporting wall-clock sessions/s, the latency tail, and
/// peak RSS as its own `BENCH_simcore.json` line.
fn run_sessions(target: u64, rate_per_table: f64, no_write: bool) {
    use hpsmr_core::deploy::{deploy_smr_sessions, PartitionOptions, SessionOptions};
    use workload::{SESSIONS_COMPLETED, SESSIONS_SHED, SESSION_LATENCY};

    let n_tables = 8u64;
    let mut cfg = SimConfig::default();
    cfg.seed = 0x5E55;
    let mut sim = Sim::new(cfg);
    let opts = SessionOptions {
        n_tables: n_tables as usize,
        sessions_per_table: target.div_ceil(n_tables),
        rate_per_table,
        // Spread execution over four partitions: mass-session traffic is
        // replica-execution-bound long before the batched ring saturates.
        partitions: Some(PartitionOptions { n: 4, replicas_per: 2, cross_pct: 0 }),
        ..SessionOptions::default()
    };
    let d = deploy_smr_sessions(&mut sim, &opts);
    let count = |sim: &Sim, name: &'static str| -> u64 {
        d.tables.iter().map(|&t| sim.metrics().counter(t, name)).sum()
    };
    let completed = |sim: &Sim| count(sim, SESSIONS_COMPLETED);
    let t = Instant::now();
    // Step in coarse chunks until the target count lands. The ceiling is
    // the open-loop drain time plus slack — reaching it means the system
    // cannot sustain the offered rate, and the assert below fires.
    let drain_s = target as f64 / (rate_per_table * n_tables as f64);
    let cap = Time::ZERO + Dur::millis((drain_s * 2_000.0) as u64 + 4_000);
    let mut now = Time::ZERO;
    while completed(&sim) < target && now < cap {
        now += Dur::millis(250);
        sim.run_until(now);
        if now.as_nanos().is_multiple_of(4_000_000_000) {
            eprintln!(
                "  t={:3.0}s submitted {} completed {} retries {} shed {}",
                now.as_secs_f64(),
                count(&sim, workload::SESSIONS_SUBMITTED),
                completed(&sim),
                count(&sim, workload::SESSIONS_RETRIES),
                count(&sim, SESSIONS_SHED),
            );
        }
    }
    let wall_s = t.elapsed().as_secs_f64();
    let done = completed(&sim);
    let shed: u64 = d.tables.iter().map(|&t| sim.metrics().counter(t, SESSIONS_SHED)).sum();
    let pctl_us = |frac: f64| -> f64 {
        sim.metrics()
            .percentile(SESSION_LATENCY, frac)
            .map(|d| d.as_nanos() as f64 / 1e3)
            .unwrap_or(0.0)
    };
    let line = format!(
        "{{\"bench\":\"sessions\",\"target\":{target},\"hosted_sessions\":{},\"completed\":{done},\"shed\":{shed},\"virtual_ms\":{},\"wall_s\":{wall_s:.2},\"sessions_per_wall_sec\":{:.0},\"events\":{},\"events_per_sec\":{:.0},\"p50_us\":{:.0},\"p99_us\":{:.0},\"p999_us\":{:.0},\"peak_rss_mb\":{:.0}}}",
        n_tables * opts.sessions_per_table,
        now.as_nanos() / 1_000_000,
        done as f64 / wall_s,
        sim.events_processed(),
        sim.events_processed() as f64 / wall_s,
        pctl_us(0.50),
        pctl_us(0.99),
        pctl_us(0.999),
        peak_rss_mb(),
    );
    println!("{line}");
    assert!(done >= target, "sessions run fell short of the target: {done} < {target}");
    if !no_write {
        let path = artifact_path();
        let body = std::fs::read_to_string(&path).unwrap_or_default();
        // The sessions record is its own line; keep every other record.
        let mut kept: Vec<&str> =
            body.lines().filter(|l| !l.contains("\"bench\":\"sessions\"")).collect();
        kept.push(&line);
        if let Err(e) = std::fs::write(&path, format!("{}\n", kept.join("\n"))) {
            eprintln!("could not write {path}: {e}");
        }
    }
}

/// Workspace-root artifact path (cwd fallback outside cargo).
fn artifact_path() -> String {
    let dir = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".to_string());
    format!("{dir}/BENCH_simcore.json")
}

/// Runs one child command (whitespace-split program + args, with
/// `--no-write --runs 1` appended) and parses its
/// `total_events_per_sec` from the JSON line on stdout.
fn paired_sample(cmd: &str) -> f64 {
    let mut parts = cmd.split_whitespace();
    let prog = parts.next().expect("--paired operand is empty");
    let out = std::process::Command::new(prog)
        .args(parts)
        .args(["--no-write", "--runs", "1"])
        .output()
        .unwrap_or_else(|e| panic!("could not run paired command `{cmd}`: {e}"));
    assert!(out.status.success(), "paired command `{cmd}` failed: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let key = "\"total_events_per_sec\":";
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.contains(key))
        .unwrap_or_else(|| panic!("no total_events_per_sec in `{cmd}` output"));
    let tail = &line[line.rfind(key).unwrap() + key.len()..];
    let num: String =
        tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    num.parse().expect("malformed total_events_per_sec")
}

/// Interleaved A/B: runs A B A B … for `pairs` pairs so slow wall-clock
/// drift hits both sides of every pair equally, then reports the median
/// paired delta (B − A, events/s) and median ratio (B / A). The record
/// is appended to `BENCH_simcore.json` as its own JSON line.
fn run_paired(a: &str, b: &str, pairs: usize, no_write: bool) {
    // One throwaway pair warms caches/allocator for both sides.
    let _ = paired_sample(a);
    let _ = paired_sample(b);
    let mut a_eps = Vec::new();
    let mut b_eps = Vec::new();
    for i in 0..pairs {
        a_eps.push(paired_sample(a));
        b_eps.push(paired_sample(b));
        eprintln!(
            "  pair {}/{pairs}: A {:.0} ev/s, B {:.0} ev/s, ratio {:.3}",
            i + 1,
            a_eps[i],
            b_eps[i],
            b_eps[i] / a_eps[i]
        );
    }
    let mut deltas: Vec<f64> = a_eps.iter().zip(&b_eps).map(|(a, b)| b - a).collect();
    let mut ratios: Vec<f64> = a_eps.iter().zip(&b_eps).map(|(a, b)| b / a).collect();
    deltas.sort_by(|x, y| x.total_cmp(y));
    ratios.sort_by(|x, y| x.total_cmp(y));
    let median = |v: &[f64]| {
        if v.len() % 2 == 1 {
            v[v.len() / 2]
        } else {
            (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
        }
    };
    let fmt = |v: &[f64]| v.iter().map(|s| format!("{s:.0}")).collect::<Vec<_>>().join(",");
    let line = format!(
        "{{\"bench\":\"simcore_paired\",\"a\":\"{a}\",\"b\":\"{b}\",\"pairs\":{pairs},\"a_events_per_sec\":[{}],\"b_events_per_sec\":[{}],\"median_delta\":{:.0},\"median_ratio\":{:.4}}}",
        fmt(&a_eps),
        fmt(&b_eps),
        median(&deltas),
        median(&ratios),
    );
    println!("{line}");
    if !no_write {
        let path = artifact_path();
        let body = std::fs::read_to_string(&path).unwrap_or_default();
        // Replace any previous paired record, keep the trajectory row.
        let mut kept: Vec<&str> =
            body.lines().filter(|l| !l.contains("\"simcore_paired\"")).collect();
        kept.push(&line);
        if let Err(e) = std::fs::write(&path, format!("{}\n", kept.join("\n"))) {
            eprintln!("could not write {path}: {e}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let no_write = args.iter().any(|a| a == "--no-write");
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(3)
        .max(1);
    if let Some(i) = args.iter().position(|a| a == "--sessions") {
        let target = args
            .get(i + 1)
            .map(|n| n.replace('_', ""))
            .and_then(|n| n.parse::<u64>().ok())
            .expect("--sessions needs a count");
        let rate = args
            .iter()
            .position(|a| a == "--rate")
            .and_then(|i| args.get(i + 1))
            .and_then(|n| n.replace('_', "").parse::<f64>().ok())
            // Default sits below the measured completion knee (~6k/s per
            // table collapses into a retry storm; see ch. 10's figures).
            .unwrap_or(4_000.0);
        run_sessions(target.max(1), rate, no_write);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--paired") {
        let a = args.get(i + 1).expect("--paired needs two command operands").clone();
        let b = args.get(i + 2).expect("--paired needs two command operands").clone();
        run_paired(&a, &b, runs, no_write);
        return;
    }
    let partition = args
        .iter()
        .position(|a| a == "--partition")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    // Threads only bite in fast mode over a real partition; default the
    // partition to the thread count so `--threads 4` alone means
    // "4 shards, 4 workers".
    let partition = if threads > 1 && partition == 1 { threads } else { partition };
    let mode = if threads > 1 { "fast" } else { "determinism" };
    // Warm up caches/allocator so the measured passes are steady-state.
    let _ = run_uring(partition, threads);
    let uring = best_of(runs, || run_uring(partition, threads));
    let mring = best_of(runs, || run_mring(partition, threads));
    let total_events = uring.events + mring.events;
    let total_wall = uring.wall_s + mring.wall_s;
    let line = format!(
        "{{\"bench\":\"simcore\",\"best_of\":{runs},\"partition\":{partition},\"threads\":{threads},\"mode\":\"{mode}\",{},{},\"total_events_per_sec\":{:.0}}}",
        uring.json(),
        mring.json(),
        total_events as f64 / total_wall,
    );
    println!("{line}");
    if !no_write {
        let path = artifact_path();
        // Keep the paired record (its own line) across trajectory runs.
        let paired: Option<String> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|b| b.lines().find(|l| l.contains("\"simcore_paired\"")).map(String::from));
        let body = match paired {
            Some(p) => format!("{line}\n{p}\n"),
            None => format!("{line}\n"),
        };
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("could not write {path}: {e}");
        }
    }
}
