//! Engine performance smoke test: fixed-seed U-Ring and M-Ring runs that
//! report *wall-clock* events/sec and delivered msgs/sec, so the simulator's
//! per-event cost is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p bench --bin perf_smoke                   # print + write BENCH_simcore.json
//! cargo run --release -p bench --bin perf_smoke -- --runs 5       # best of 5 instead of 3
//! cargo run --release -p bench --bin perf_smoke -- --partition 2  # 2-shard round-robin executor
//! cargo run --release -p bench --bin perf_smoke -- --no-write
//! ```
//!
//! `--partition k` runs the same scenarios under a k-shard round-robin
//! partition of the executor (`k = 1`, the default, is the identity
//! partition). Virtual-time results are identical for every `k` — the
//! shard scaffold is semantics-preserving — so the flag isolates the
//! wall-clock overhead of the cross-shard handoff path.
//!
//! Virtual-time results (events, delivered counts) are deterministic for
//! the fixed seed; only the wall-clock rates vary with the host. The
//! JSON written to `BENCH_simcore.json` is the complete machine-readable
//! record of a measurement — best-of-N selection happens here, every
//! wall-clock sample is included, and nothing needs hand-editing when
//! the ROADMAP perf table is updated from it.

use std::time::Instant;

use abcast::metric;
use ringpaxos::cluster::{deploy_mring, deploy_uring, MRingOptions, URingOptions};
use simnet::prelude::*;

struct RunResult {
    name: &'static str,
    events: u64,
    wall_s: f64,
    /// Every wall-clock sample measured, in run order (`wall_s` is the
    /// minimum); recorded so the noise band is visible in the artifact.
    wall_samples: Vec<f64>,
    delivered: u64,
    virtual_ms: u64,
    /// Batched delivery dispatch: actor callbacks made for deliveries
    /// and the messages they carried (identical across repetitions).
    dispatches: u64,
    dispatched_msgs: u64,
}

impl RunResult {
    fn json(&self) -> String {
        let samples =
            self.wall_samples.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>().join(",");
        format!(
            "\"{}\":{{\"events\":{},\"wall_s\":{:.4},\"wall_s_samples\":[{}],\"events_per_sec\":{:.0},\"delivered_msgs\":{},\"delivered_per_wall_sec\":{:.0},\"virtual_ms\":{},\"delivery_dispatches\":{},\"delivery_msgs\":{},\"mean_batch\":{:.3}}}",
            self.name,
            self.events,
            self.wall_s,
            samples,
            self.events as f64 / self.wall_s,
            self.delivered,
            self.delivered as f64 / self.wall_s,
            self.virtual_ms,
            self.dispatches,
            self.dispatched_msgs,
            self.dispatched_msgs as f64 / self.dispatches.max(1) as f64,
        )
    }
}

fn run_uring(shards: usize) -> RunResult {
    let virtual_ms = 4_000;
    let mut cfg = SimConfig::default();
    cfg.seed = 0xBEEF;
    let mut sim = Sim::new(cfg);
    if shards > 1 {
        sim.set_partition(Partition::modulo(0, shards));
    }
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_rate_bps: 150_000_000,
        ..URingOptions::default()
    };
    deploy_uring(&mut sim, &opts, |_| {});
    let t = Instant::now();
    sim.run_until(Time::from_millis(virtual_ms));
    let wall_s = t.elapsed().as_secs_f64();
    let (dispatches, dispatched_msgs) = sim.delivery_dispatch_stats();
    RunResult {
        name: "uring",
        events: sim.events_processed(),
        wall_s,
        wall_samples: vec![wall_s],
        delivered: sim.metrics().sum(metric::DELIVERED_MSGS),
        virtual_ms,
        dispatches,
        dispatched_msgs,
    }
}

fn run_mring(shards: usize) -> RunResult {
    let virtual_ms = 1_500;
    let mut cfg = SimConfig::default();
    cfg.seed = 0xF00D;
    cfg.random_loss = 0.001; // exercise the loss/retransmission paths too
    let mut sim = Sim::new(cfg);
    if shards > 1 {
        sim.set_partition(Partition::modulo(0, shards));
    }
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 300_000_000,
        ..MRingOptions::default()
    };
    deploy_mring(&mut sim, &opts, |_| {});
    let t = Instant::now();
    sim.run_until(Time::from_millis(virtual_ms));
    let wall_s = t.elapsed().as_secs_f64();
    let (dispatches, dispatched_msgs) = sim.delivery_dispatch_stats();
    RunResult {
        name: "mring",
        events: sim.events_processed(),
        wall_s,
        wall_samples: vec![wall_s],
        delivered: sim.metrics().sum(metric::DELIVERED_MSGS),
        virtual_ms,
        dispatches,
        dispatched_msgs,
    }
}

/// Best (fastest-wall) of `runs`: virtual-time results are identical
/// across repetitions, so this only de-noises the wall clock. Every
/// sample is kept in the result for the JSON artifact.
fn best_of(runs: usize, f: impl Fn() -> RunResult) -> RunResult {
    let mut best = f();
    let mut samples = best.wall_samples.clone();
    for _ in 1..runs {
        let r = f();
        samples.push(r.wall_s);
        if r.wall_s < best.wall_s {
            best = r;
        }
    }
    best.wall_samples = samples;
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let no_write = args.iter().any(|a| a == "--no-write");
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(3)
        .max(1);
    let partition = args
        .iter()
        .position(|a| a == "--partition")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    // Warm up caches/allocator so the measured passes are steady-state.
    let _ = run_uring(partition);
    let uring = best_of(runs, || run_uring(partition));
    let mring = best_of(runs, || run_mring(partition));
    let total_events = uring.events + mring.events;
    let total_wall = uring.wall_s + mring.wall_s;
    let line = format!(
        "{{\"bench\":\"simcore\",\"best_of\":{runs},\"partition\":{partition},{},{},\"total_events_per_sec\":{:.0}}}",
        uring.json(),
        mring.json(),
        total_events as f64 / total_wall,
    );
    println!("{line}");
    if !no_write {
        // Written at the workspace root when run via cargo, else the cwd.
        let dir = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".to_string());
        let path = format!("{dir}/BENCH_simcore.json");
        if let Err(e) = std::fs::write(&path, format!("{line}\n")) {
            eprintln!("could not write {path}: {e}");
        }
    }
}
