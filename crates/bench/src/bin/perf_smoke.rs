//! Engine performance smoke test: fixed-seed U-Ring and M-Ring runs that
//! report *wall-clock* events/sec and delivered msgs/sec, so the simulator's
//! per-event cost is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p bench --bin perf_smoke            # print + write BENCH_simcore.json
//! cargo run --release -p bench --bin perf_smoke -- --no-write
//! ```
//!
//! Virtual-time results (events, delivered counts) are deterministic for
//! the fixed seed; only the wall-clock rates vary with the host.

use std::time::Instant;

use abcast::metric;
use ringpaxos::cluster::{deploy_mring, deploy_uring, MRingOptions, URingOptions};
use simnet::prelude::*;

struct RunResult {
    name: &'static str,
    events: u64,
    wall_s: f64,
    delivered: u64,
    virtual_ms: u64,
}

impl RunResult {
    fn json(&self) -> String {
        format!(
            "\"{}\":{{\"events\":{},\"wall_s\":{:.4},\"events_per_sec\":{:.0},\"delivered_msgs\":{},\"delivered_per_wall_sec\":{:.0},\"virtual_ms\":{}}}",
            self.name,
            self.events,
            self.wall_s,
            self.events as f64 / self.wall_s,
            self.delivered,
            self.delivered as f64 / self.wall_s,
            self.virtual_ms,
        )
    }
}

fn run_uring() -> RunResult {
    let virtual_ms = 4_000;
    let mut cfg = SimConfig::default();
    cfg.seed = 0xBEEF;
    let mut sim = Sim::new(cfg);
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_rate_bps: 150_000_000,
        ..URingOptions::default()
    };
    deploy_uring(&mut sim, &opts, |_| {});
    let t = Instant::now();
    sim.run_until(Time::from_millis(virtual_ms));
    let wall_s = t.elapsed().as_secs_f64();
    RunResult {
        name: "uring",
        events: sim.events_processed(),
        wall_s,
        delivered: sim.metrics().sum(metric::DELIVERED_MSGS),
        virtual_ms,
    }
}

fn run_mring() -> RunResult {
    let virtual_ms = 1_500;
    let mut cfg = SimConfig::default();
    cfg.seed = 0xF00D;
    cfg.random_loss = 0.001; // exercise the loss/retransmission paths too
    let mut sim = Sim::new(cfg);
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 300_000_000,
        ..MRingOptions::default()
    };
    deploy_mring(&mut sim, &opts, |_| {});
    let t = Instant::now();
    sim.run_until(Time::from_millis(virtual_ms));
    let wall_s = t.elapsed().as_secs_f64();
    RunResult {
        name: "mring",
        events: sim.events_processed(),
        wall_s,
        delivered: sim.metrics().sum(metric::DELIVERED_MSGS),
        virtual_ms,
    }
}

/// Best (fastest-wall) of three runs: virtual-time results are identical
/// across repetitions, so this only de-noises the wall clock.
fn best_of_3(f: fn() -> RunResult) -> RunResult {
    let mut best = f();
    for _ in 0..2 {
        let r = f();
        if r.wall_s < best.wall_s {
            best = r;
        }
    }
    best
}

fn main() {
    let no_write = std::env::args().any(|a| a == "--no-write");
    // Warm up caches/allocator so the measured passes are steady-state.
    let _ = run_uring();
    let uring = best_of_3(run_uring);
    let mring = best_of_3(run_mring);
    let total_events = uring.events + mring.events;
    let total_wall = uring.wall_s + mring.wall_s;
    let line = format!(
        "{{\"bench\":\"simcore\",{},{},\"total_events_per_sec\":{:.0}}}",
        uring.json(),
        mring.json(),
        total_events as f64 / total_wall,
    );
    println!("{line}");
    if !no_write {
        // Written at the workspace root when run via cargo, else the cwd.
        let dir = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../.."))
            .unwrap_or_else(|_| ".".to_string());
        let path = format!("{dir}/BENCH_simcore.json");
        if let Err(e) = std::fs::write(&path, format!("{line}\n")) {
            eprintln!("could not write {path}: {e}");
        }
    }
}
