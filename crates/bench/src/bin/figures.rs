//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! figures list            # enumerate experiments
//! figures fig3_07         # run one
//! figures ch4             # run a chapter
//! figures all             # run everything
//! ```

use bench::all_experiments;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "list".to_string());
    let experiments = all_experiments();
    match arg.as_str() {
        "list" => {
            println!("available experiments:");
            for e in &experiments {
                println!("  {:<8} {}", e.id, e.title);
            }
            println!("  all       run everything");
            println!("  ch3..ch10 run one chapter");
        }
        "all" => {
            for e in &experiments {
                banner(e.id, e.title);
                (e.run)();
            }
        }
        ch @ ("ch3" | "ch4" | "ch5" | "ch6" | "ch7" | "ch8" | "ch9" | "ch10") => {
            let prefix = format!("fig{}", &ch[2..]);
            let tprefix = format!("tab{}", &ch[2..]);
            for e in experiments
                .iter()
                .filter(|e| e.id.starts_with(&prefix) || e.id.starts_with(&tprefix))
            {
                banner(e.id, e.title);
                (e.run)();
            }
        }
        id => match experiments.iter().find(|e| e.id == id) {
            Some(e) => {
                banner(e.id, e.title);
                (e.run)();
            }
            None => {
                eprintln!("unknown experiment '{id}'; try 'list'");
                std::process::exit(2);
            }
        },
    }
}

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id} — {title}");
    println!("================================================================");
}
