//! Runs the chapter 10 experiments — the unified client tier at scale
//! (equivalent to `figures ch10`, as its own entry point so the
//! million-session runs are one `cargo run --release -p bench --bin
//! ch10` away).

fn main() {
    for e in bench::ch10::experiments() {
        println!("\n================================================================");
        println!("{} — {}", e.id, e.title);
        println!("================================================================");
        (e.run)();
    }
}
