//! Trace exporter: runs the probed U-Ring scenario (and, in fast mode,
//! a partitioned executor run) and writes the CI observability
//! artifacts:
//!
//! * `TRACE_uring.perfetto.json` — the probe stream as Chrome/Perfetto
//!   `trace_event` JSON (open at <https://ui.perfetto.dev>): per-node
//!   instant events, one async span per consensus instance, and worker
//!   busy/barrier-wait spans when executor telemetry ran.
//! * `LATENCY_decomposition.json` — per-stage statistics of the
//!   propose→2A→2B→decide→deliver lifecycle, one JSON object per
//!   scenario line.
//!
//! ```text
//! cargo run --release -p bench --bin trace_export            # write both artifacts
//! cargo run --release -p bench --bin trace_export -- --dir out/
//! ```
//!
//! Artifacts are non-gating: the gating determinism guarantees live in
//! `simnet`'s probe tests and `ringpaxos`'s golden-trace suite.

use bench::probes::{probed_mring, probed_uring, report_of};
use simnet::prelude::*;

fn out_dir() -> String {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--dir") {
        return args.get(i + 1).expect("--dir needs a path").trim_end_matches('/').to_string();
    }
    std::env::var("CARGO_MANIFEST_DIR").map(|d| format!("{d}/../..")).unwrap_or_else(|_| ".".into())
}

fn main() {
    let dir = out_dir();

    // Full-category probed U-Ring run under a 4-shard fast-mode
    // executor: the exported trace carries protocol lifecycle spans AND
    // worker busy/barrier-wait spans in one file.
    let mut cfg = SimConfig::default();
    cfg.seed = 0x0451;
    let mut sim = Sim::with_partition(cfg, Partition::modulo(0, 4));
    sim.set_exec_mode(ExecMode::Fast);
    sim.set_threads(4);
    sim.set_probes(ProbeConfig::all());
    let opts = ringpaxos::cluster::URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_rate_bps: 120_000_000,
        ..Default::default()
    };
    ringpaxos::cluster::deploy_uring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(2));
    let events = sim.probe_events();
    let perfetto = simnet::probe::perfetto_json(&events, sim.worker_telemetry());
    let trace_path = format!("{dir}/TRACE_uring.perfetto.json");
    std::fs::write(&trace_path, &perfetto).expect("write perfetto trace");
    println!(
        "wrote {trace_path}: {} probe events ({} dropped), {} workers",
        events.len(),
        sim.probe_dropped(),
        sim.worker_telemetry().len()
    );
    for w in sim.worker_telemetry() {
        println!(
            "  worker {}: {} rounds, {} events, busy {:?}, barrier wait {:?} ({:.0}%)",
            w.worker,
            w.rounds,
            w.events,
            w.busy,
            w.barrier_wait,
            100.0 * w.barrier_frac()
        );
    }

    // Latency decompositions for both protocols, serial probed runs.
    let scenarios = [
        ("uring", report_of(&probed_uring(ProbeConfig::lifecycle()))),
        ("mring", {
            let sim = probed_mring(ProbeConfig::lifecycle());
            report_of(&sim)
        }),
    ];
    let body: String = scenarios
        .iter()
        .map(|(name, rep)| format!("{{\"scenario\":\"{name}\",\"report\":{}}}\n", rep.to_json()))
        .collect();
    let decomp_path = format!("{dir}/LATENCY_decomposition.json");
    std::fs::write(&decomp_path, &body).expect("write decomposition");
    println!("wrote {decomp_path}:");
    print!("{body}");
}
