//! Chapter 9 experiments — self-healing rings. Ch. 8 measured planned
//! recovery of a learner-only member while the ring stalled around the
//! outage; here the crash is *unplanned* and hits the coordinator
//! itself: suspicion fires, a survivor bumps the configuration epoch
//! and takes over, the ring re-forms around the dead member, and the
//! old coordinator later respawns over its disk and rejoins as a plain
//! member. The fault schedule (loss burst + CPU straggler around the
//! crash) runs through [`FaultPlan`], the same layer the failover and
//! fault-matrix tests drive.

use recovery::NullApp;
use ringpaxos::cluster::{
    deploy_uring_recoverable, respawn_uring, RecoverableURing, URingOptions, URingRecoveryOptions,
};
use simnet::prelude::*;

use crate::harness::{header, pctl_cell, throughput_trace};
use crate::Experiment;

/// All ch. 9 experiments in order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig9_01",
            title: "throughput through an unplanned coordinator crash and ring repair",
            run: fig9_01,
        },
        Experiment { id: "tab9_02", title: "time-to-takeover vs suspicion timeout", run: tab9_02 },
    ]
}

const CRASH_AT: u64 = 1000; // ms
const REJOIN_AT: u64 = 2200; // ms
const SUSPICION: Dur = Dur::millis(40);

fn opts() -> URingOptions {
    URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        // Survivor positions only: the crash removes the coordinator
        // role, not the offered load.
        proposer_positions: vec![1, 2],
        proposer_rate_bps: 60_000_000,
        msg_bytes: 16 * 1024,
        burst: 1,
        proposer_stop: Some(Time::from_millis(3500)),
    }
}

fn deploy(sim: &mut Sim) -> RecoverableURing {
    let rec = URingRecoveryOptions { checkpoint_interval: 256, ..Default::default() };
    deploy_uring_recoverable(
        sim,
        &opts(),
        rec,
        |cfg| cfg.suspicion_timeout = Some(SUSPICION),
        |_| Some(Box::new(NullApp::default())),
    )
}

fn fig9_01() {
    println!("Fig 9.1 — delivered throughput at a survivor through an unplanned");
    println!("  coordinator crash (1.0s) with a concurrent loss burst (0.4–1.6s) and a");
    println!("  CPU straggler on a surviving acceptor (0.5–1.5s); the old coordinator");
    println!("  respawns over its disk at 2.2s and rejoins as a plain member");
    header(&["t (s)", "delivered Mbps", "event"]);
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy(&mut sim);
    let coord = ru.d.ring[0];
    let observer = ru.d.ring[3];
    let mut plan = FaultPlan::new()
        .loss_burst(Time::from_millis(400), Time::from_millis(1600), 0.002)
        .straggler(ru.d.ring[2], Time::from_millis(500), Time::from_millis(1500), 2.0)
        .at(Time::from_millis(CRASH_AT), FaultAction::Crash(coord))
        .at(Time::from_millis(REJOIN_AT), FaultAction::Respawn(coord));
    let step = Dur::millis(250);
    let series = throughput_trace(
        &mut sim,
        observer,
        "abcast.delivered_bytes",
        16,
        step,
        |sim, i| {
            // The fault plan advances the sim itself, applying each
            // scheduled action at its exact time inside the bucket.
            plan.step(sim, Time::ZERO + step * i, &mut |sim, _| {
                respawn_uring(sim, &ru, 0, Some(Box::new(NullApp::default())))
            });
        },
        |i, rate| {
            let t_ms = 250 * i;
            let event = match t_ms {
                t if t == CRASH_AT => "<- coordinator crashes",
                t if t == CRASH_AT + 250 => "   (takeover + ring repair)",
                t if (REJOIN_AT..REJOIN_AT + 250).contains(&t) => "<- old coordinator rejoins",
                _ => "",
            };
            println!("  {:5.2} | {rate:14.0} | {event}", (step * i).as_secs_f64());
        },
    );
    // Repair quality: the mean of the two buckets after the crash
    // bucket against the mean of the two before it.
    let before = (series[1] + series[2]) / 2.0;
    let after = (series[4] + series[5]) / 2.0;
    let survivors: u64 =
        (1..5).map(|p| sim.metrics().counter(ru.d.ring[p], "rp.became_coord")).sum();
    let repairs: u64 = (1..5).map(|p| sim.metrics().counter(ru.d.ring[p], "rp.ring_repair")).sum();
    // The join is counted at whichever survivor is coordinator when the
    // rejoining member's JoinReq lands.
    let joins: u64 = (0..5).map(|p| sim.metrics().counter(ru.d.ring[p], "rp.joins")).sum();
    println!(
        "  repair: {survivors} takeover(s), {repairs} ring re-formation(s), {joins} rejoin(s);"
    );
    println!(
        "  two-bucket recovery {:.0}% of pre-crash throughput ({before:.0} -> {after:.0} Mbps)",
        100.0 * after / before.max(1e-9)
    );
    ru.d.log.lock().unwrap().check_crash_agreement(&[0, 1, 2, 3, 4]).expect("agreement");
    println!("  shape: unlike Fig 8.2 the ring does NOT stall for the outage — suspicion");
    println!("  fires within the timeout, the epoch bump fences the dead coordinator, and");
    println!("  delivery resumes around the spliced ring well before the rejoin.");
}

fn tab9_02() {
    println!("Table 9.2 — time from coordinator crash to epoch takeover at a survivor,");
    println!("  as the failure detector's suspicion timeout varies (crash at 1.0s; the");
    println!("  old coordinator stays down)");
    header(&["suspicion", "takeover after", "epochs bumped", "delivered by 5s", "p50/p99/p999"]);
    for timeout_ms in [20u64, 40, 80, 160] {
        let mut sim = Sim::new(SimConfig::default());
        let rec = URingRecoveryOptions { checkpoint_interval: 256, ..Default::default() };
        let ru = deploy_uring_recoverable(
            &mut sim,
            &opts(),
            rec,
            |cfg| cfg.suspicion_timeout = Some(Dur::millis(timeout_ms)),
            |_| Some(Box::new(NullApp::default())),
        );
        let observer = ru.d.ring[3];
        sim.run_until(Time::from_millis(CRASH_AT));
        sim.set_node_up(ru.d.ring[0], false);
        // Poll in 5 ms steps until a survivor bumps the epoch.
        let takeovers = |sim: &Sim| -> u64 {
            (1..5).map(|p| sim.metrics().counter(ru.d.ring[p], "rp.became_coord")).sum()
        };
        let mut gap = Dur::millis(0);
        while takeovers(&sim) == 0 && gap < Dur::secs(2) {
            gap += Dur::millis(5);
            sim.run_until(Time::from_millis(CRASH_AT) + gap);
        }
        sim.run_until(Time::from_secs(5));
        // The old coordinator stays down in this sweep; agreement is
        // over the survivors.
        ru.d.log.lock().unwrap().check_crash_agreement(&[1, 2, 3, 4]).expect("agreement");
        println!(
            "  {:>6} ms | {:>11.0} ms | {:>13} | {:>15} | {}",
            timeout_ms,
            gap.as_secs_f64() * 1e3,
            takeovers(&sim),
            sim.metrics().counter(observer, "abcast.delivered_msgs"),
            pctl_cell(&sim, abcast::metric::LATENCY),
        );
    }
    println!("  shape: time-to-takeover tracks the suspicion timeout (detection dominates;");
    println!("  the takeover itself is a round trip), so the timeout is the availability");
    println!("  knob — at the cost of false suspicion under stragglers when set too low.");
}
