//! Chapter 3 experiments: the Ring Paxos evaluation (Figs. 3.2–3.14,
//! Tables 3.2–3.4).

use abcast::metric;
use baselines::{deploy_lcr, deploy_libpaxos, deploy_pfsb, deploy_spaxos, deploy_totem};
use ringpaxos::cluster::{deploy_mring, deploy_uring, MRingOptions, URingOptions};
use ringpaxos::StorageMode;
use simnet::prelude::*;

use crate::harness::{cpu_pct, header, Window};
use crate::Experiment;

/// All ch. 3 experiments in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig3_02",
            title: "one-to-many: unicast vs multicast vs pipeline",
            run: fig3_02,
        },
        Experiment { id: "fig3_03", title: "multi-sender ip-multicast packet loss", run: fig3_03 },
        Experiment { id: "fig3_04", title: "many-to-one: pipeline vs unicast", run: fig3_04 },
        Experiment {
            id: "fig3_07",
            title: "Ring Paxos vs other atomic broadcast protocols",
            run: fig3_07,
        },
        Experiment { id: "tab3_02", title: "protocol efficiency at 10 receivers", run: tab3_02 },
        Experiment { id: "fig3_08", title: "impact of processes in the ring", run: fig3_08 },
        Experiment { id: "fig3_09", title: "impact of synchronous disk writes", run: fig3_09 },
        Experiment { id: "fig3_10", title: "M-Ring Paxos vs message size", run: fig3_10 },
        Experiment { id: "fig3_11", title: "U-Ring Paxos vs message size", run: fig3_11 },
        Experiment { id: "fig3_12", title: "M-Ring Paxos vs socket buffer size", run: fig3_12 },
        Experiment { id: "fig3_13", title: "U-Ring Paxos vs socket buffer size", run: fig3_13 },
        Experiment { id: "fig3_14", title: "flow control under a slow learner", run: fig3_14 },
        Experiment { id: "tab3_03", title: "CPU and memory per role, M-Ring Paxos", run: tab3_03 },
        Experiment { id: "tab3_04", title: "CPU and memory per role, U-Ring Paxos", run: tab3_04 },
        Experiment {
            id: "probe3_uring",
            title: "U-Ring latency decomposition (probe layer)",
            run: crate::probes::probe3_uring,
        },
    ]
}

struct Quiet;
impl Actor for Quiet {
    fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
}

/// A sender that paces raw datagrams to a destination set, unicast or
/// multicast, in bursts (used by the motivation experiments).
struct RawSender {
    dsts: Vec<NodeId>,
    group: Option<GroupId>,
    pacer: abcast::Pacer,
    relay: Option<NodeId>,
    start_offset: Dur,
}

impl Actor for RawSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.start_offset, TimerToken(1));
    }
    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        // Pipeline relay: forward to the successor.
        if let Some(next) = self.relay {
            ctx.udp_forward(next, env.payload.clone(), env.wire_bytes);
            ctx.counter_add("raw.recv", env.wire_bytes as u64);
        }
    }
    fn on_timer(&mut self, _t: TimerToken, ctx: &mut Ctx) {
        let due = self.pacer.due(ctx.now());
        let bytes = self.pacer.msg_bytes();
        for _ in 0..due {
            match self.group {
                Some(g) => ctx.mcast(g, 0u8, bytes),
                None => {
                    for &d in &self.dsts {
                        ctx.udp_send(d, 0u8, bytes);
                    }
                }
            }
        }
        ctx.set_timer(self.pacer.interval(), TimerToken(1));
    }
}

struct RawReceiver {
    relay: Option<NodeId>,
}
impl Actor for RawReceiver {
    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        ctx.counter_add("raw.recv", env.wire_bytes as u64);
        if let Some(next) = self.relay {
            ctx.udp_forward(next, env.payload.clone(), env.wire_bytes);
        }
    }
}

fn fig3_02() {
    println!(
        "Fig 3.2 — one-to-many, 8 KB packets, per-receiver throughput (Mbps) and sender CPU (%)"
    );
    header(&[
        "receivers",
        "unicast Mbps",
        "mcast Mbps",
        "pipeline Mbps",
        "uni CPU",
        "mc CPU",
        "pipe CPU",
    ]);
    for &n in &[1usize, 5, 10, 15, 20, 25] {
        let mut row = vec![format!("{n:9}")];
        let mut cpus = Vec::new();
        for mode in ["unicast", "mcast", "pipeline"] {
            let mut sim = Sim::new(SimConfig::default());
            let sender = sim.add_node(Box::new(Quiet));
            let receivers: Vec<NodeId> = (0..n)
                .map(|i| {
                    let relay_pending = mode == "pipeline" && i > 0;
                    let _ = relay_pending;
                    sim.add_node(Box::new(RawReceiver { relay: None }))
                })
                .collect();
            // Pipeline: receiver i relays to i+1.
            if mode == "pipeline" {
                for i in 0..n.saturating_sub(1) {
                    sim.replace_actor(
                        receivers[i],
                        Box::new(RawReceiver { relay: Some(receivers[i + 1]) }),
                    );
                }
            }
            let group = sim.add_group();
            for &r in &receivers {
                sim.subscribe(r, group);
            }
            // A saturating sender offers the link rate in total; the
            // unicast sender divides it across its n copies.
            let rate = if mode == "unicast" { 960_000_000 / n as u64 } else { 960_000_000 };
            let pacer = abcast::Pacer::new(rate, 8192, 1);
            let actor = RawSender {
                dsts: if mode == "unicast" { receivers.clone() } else { vec![receivers[0]] },
                group: (mode == "mcast").then_some(group),
                pacer,
                relay: None,
                start_offset: Dur::ZERO,
            };
            sim.replace_actor(sender, Box::new(actor));
            let w = Window::open(&mut sim, Dur::millis(200), Dur::secs(1), &[]);
            let before = w.snapshot(&sim, &receivers, "raw.recv");
            let cpu0 = sim.cpu_busy(sender, 0);
            w.close(&mut sim);
            let after = w.snapshot(&sim, &receivers, "raw.recv");
            let last = receivers.len() - 1;
            let tput = w.mbps_of(before[last], after[last]);
            let cpu = cpu_pct(cpu0, sim.cpu_busy(sender, 0), w.len());
            row.push(format!("{tput:12.0}"));
            cpus.push(format!("{cpu:7.0}"));
        }
        println!("  {} | {} | ", row.join(" | "), cpus.join(" | "));
    }
    println!(
        "  shape: unicast falls ~1/n; multicast and pipeline stay near wire speed (paper Fig 3.2)."
    );
}

fn fig3_03() {
    println!("Fig 3.3 — packet loss vs aggregate rate, 14 multicast receivers, bursty senders");
    header(&["senders", "rate Mbps", "lost %"]);
    for &senders in &[1usize, 2, 5] {
        for &rate in &[200u64, 400, 600, 800, 950] {
            let mut cfg = SimConfig::default();
            // The motivation experiment runs with commodity defaults:
            // small switch port buffers expose burst collisions.
            cfg.switch_port_buffer = 96 * 1024;
            let mut sim = Sim::new(cfg);
            let txs: Vec<NodeId> = (0..senders).map(|_| sim.add_node(Box::new(Quiet))).collect();
            let receivers: Vec<NodeId> =
                (0..14).map(|_| sim.add_node(Box::new(RawReceiver { relay: None }))).collect();
            let group = sim.add_group();
            for &r in &receivers {
                sim.subscribe(r, group);
            }
            for (i, &t) in txs.iter().enumerate() {
                // Timer-driven app batching: each sender wakes every
                // ~10 ms and blasts its accumulated data at wire speed;
                // longer bursts (higher rates) overlap more often, which
                // is what makes concurrent multicast senders collide.
                let per_sender = rate * 1_000_000 / senders as u64;
                let burst = ((per_sender / 100 / 8) / 8192).max(1) as u32;
                // Slightly different periods per sender: burst phases
                // drift past each other instead of staying locked, so
                // overlap becomes probabilistic (as on real hosts).
                let jitter = per_sender * (1000 + 13 * i as u64) / 1000;
                let pacer = abcast::Pacer::new(jitter, 8192, burst);
                sim.replace_actor(
                    t,
                    Box::new(RawSender {
                        dsts: vec![],
                        group: Some(group),
                        pacer,
                        relay: None,
                        start_offset: Dur::micros(1_300 * i as u64),
                    }),
                );
            }
            sim.run_until(Time::from_secs(1));
            let sent: u64 = txs.iter().map(|&t| sim.metrics().counter(t, "net.sent_pkts")).sum();
            let dropped: u64 =
                receivers.iter().map(|&r| sim.metrics().counter(r, "net.switch_drop")).sum();
            let copies = sent * receivers.len() as u64;
            let lost = dropped as f64 / copies.max(1) as f64 * 100.0;
            println!("  {senders:7} | {rate:9} | {lost:6.2}");
        }
    }
    println!("  shape: more senders -> loss starts at lower aggregate rates (paper Fig 3.3).");
}

fn fig3_04() {
    println!("Fig 3.4 — many-to-one (4 senders -> 1 receiver): pipeline vs unicast");
    header(&["packet KB", "uni Mbps", "pipe Mbps", "uni rcv CPU%", "pipe rcv CPU%"]);
    for &kb in &[1u32, 2, 4, 8] {
        let mut per_mode = Vec::new();
        for pipeline in [false, true] {
            let mut sim = Sim::new(SimConfig::default());
            let receiver = sim.add_node(Box::new(RawReceiver { relay: None }));
            let senders: Vec<NodeId> = (0..4).map(|_| sim.add_node(Box::new(Quiet))).collect();
            for (i, &s) in senders.iter().enumerate() {
                let next = if pipeline {
                    if i + 1 < senders.len() {
                        senders[i + 1]
                    } else {
                        receiver
                    }
                } else {
                    receiver
                };
                let pacer = abcast::Pacer::new(300_000_000, kb * 1024, 1);
                let actor = RawSender {
                    dsts: vec![next],
                    group: None,
                    pacer,
                    relay: if pipeline && i > 0 { Some(next) } else { None },
                    start_offset: Dur::ZERO,
                };
                sim.replace_actor(s, Box::new(actor));
            }
            let w = Window::open(&mut sim, Dur::millis(200), Dur::secs(1), &[]);
            let before = sim.metrics().counter(receiver, "raw.recv");
            let cpu0 = sim.cpu_busy(receiver, 0);
            w.close(&mut sim);
            let after = sim.metrics().counter(receiver, "raw.recv");
            let tput = w.mbps_of(before, after);
            let cpu = cpu_pct(cpu0, sim.cpu_busy(receiver, 0), w.len());
            per_mode.push((tput, cpu));
        }
        println!(
            "  {kb:9} | {:8.0} | {:9.0} | {:12.0} | {:13.0}",
            per_mode[0].0, per_mode[1].0, per_mode[0].1, per_mode[1].1
        );
    }
    println!("  shape: pipelining batches small messages and balances links (paper Fig 3.4).");
}

/// Per-receiver delivered Mbps for one protocol at `n` receivers.
fn protocol_tput(proto: &str, receivers: usize) -> f64 {
    let mut sim = Sim::new(SimConfig::default());
    let (node, _all): (NodeId, Vec<NodeId>) = match proto {
        "mring" => {
            let opts = MRingOptions {
                ring_size: 3,
                n_learners: receivers,
                n_proposers: 2,
                proposer_rate_bps: 475_000_000,
                msg_bytes: 8192,
                ..MRingOptions::default()
            };
            let d = deploy_mring(&mut sim, &opts, |_| {});
            (d.learners[0], d.learners.clone())
        }
        "uring" => {
            let n = receivers.max(3);
            let opts = URingOptions {
                ring_len: n,
                n_acceptors: n.div_ceil(2),
                proposer_positions: (0..n).collect(),
                proposer_rate_bps: 1_100_000_000 / n as u64,
                msg_bytes: 32 * 1024,
                ..URingOptions::default()
            };
            let d = deploy_uring(&mut sim, &opts, |_| {});
            (d.ring[n / 2], d.ring.clone())
        }
        "lcr" => {
            let n = receivers.max(2);
            let (ring, _) = deploy_lcr(&mut sim, n, 1_100_000_000 / n as u64, 32 * 1024);
            (ring[n / 2], ring)
        }
        "spaxos" => {
            let (replicas, _) = deploy_spaxos(&mut sim, 2, 75_000_000, 32 * 1024);
            (replicas[0], replicas)
        }
        "totem" => {
            let (rx, _) = deploy_totem(&mut sim, 3, receivers, 3, 150_000_000, 16 * 1024);
            (rx[0], rx)
        }
        "libpaxos" => {
            let (_cfg, learners, _) = deploy_libpaxos(&mut sim, 1, receivers, 2, 100_000_000, 4096);
            (learners[0], learners)
        }
        "pfsb" => {
            let (learners, _) = deploy_pfsb(&mut sim, 1, receivers, 2, 50_000_000, 200);
            (learners[0], learners)
        }
        _ => unreachable!("unknown protocol"),
    };
    let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(2), &[]);
    let before = sim.metrics().counter(node, metric::DELIVERED_BYTES);
    w.close(&mut sim);
    let after = sim.metrics().counter(node, metric::DELIVERED_BYTES);
    w.mbps_of(before, after)
}

fn fig3_07() {
    println!("Fig 3.7 — Ring Paxos vs other protocols, per-receiver Mbps (best message size each)");
    let protos = ["mring", "uring", "lcr", "spaxos", "totem", "libpaxos", "pfsb"];
    header(&["receivers", "M-RP", "U-RP", "LCR", "S-Paxos", "Spread", "Libpaxos", "PFSB"]);
    for &n in &[5usize, 10, 20] {
        let row: Vec<String> =
            protos.iter().map(|p| format!("{:8.0}", protocol_tput(p, n))).collect();
        println!("  {n:9} | {}", row.join(" | "));
    }
    println!("  shape: ring/multicast protocols flat near wire speed; S-Paxos/Spread/Libpaxos/PFSB far below (paper Fig 3.7).");
}

fn tab3_02() {
    println!("Table 3.2 — efficiency at 10 receivers (paper: LCR 91%, U-RP 90.4%, M-RP 90%, S-Paxos 31.2%, Spread 18%, PFSB 4%, Libpaxos 3%)");
    header(&["protocol", "msg size", "Mbps", "efficiency %"]);
    for (proto, label, size) in [
        ("lcr", "LCR", "32 KB"),
        ("uring", "U-Ring Paxos", "32 KB"),
        ("mring", "M-Ring Paxos", "8 KB"),
        ("spaxos", "S-Paxos", "32 KB"),
        ("totem", "Spread", "16 KB"),
        ("pfsb", "PFSB", "200 B"),
        ("libpaxos", "Libpaxos", "4 KB"),
    ] {
        let tput = protocol_tput(proto, 10);
        println!("  {label:<13} | {size:>8} | {tput:6.0} | {:10.1}", tput / 10.0);
    }
}

fn fig3_08() {
    println!("Fig 3.8 — throughput and latency vs processes in the ring");
    header(&["processes", "M-RP Mbps", "M-RP lat", "U-RP Mbps", "U-RP lat", "LCR Mbps", "LCR lat"]);
    for &n in &[3usize, 5, 9, 15, 21] {
        let mut cells = Vec::new();
        // M-Ring Paxos: n = acceptors in the ring.
        {
            let mut sim = Sim::new(SimConfig::default());
            let opts = MRingOptions {
                ring_size: n,
                n_learners: 2,
                n_proposers: 2,
                proposer_rate_bps: 475_000_000,
                msg_bytes: 8192,
                ..MRingOptions::default()
            };
            let d = deploy_mring(&mut sim, &opts, |_| {});
            let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
            let b = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
            w.close(&mut sim);
            let a = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
            let lat = sim.metrics().latency(metric::LATENCY).mean;
            cells.push(format!("{:9.0} | {:8}", w.mbps_of(b, a), format!("{lat}")));
        }
        // U-Ring Paxos and LCR: n = all processes.
        {
            let mut sim = Sim::new(SimConfig::default());
            let opts = URingOptions {
                ring_len: n,
                n_acceptors: n.div_ceil(2),
                proposer_positions: (0..n).collect(),
                proposer_rate_bps: 1_100_000_000 / n as u64,
                msg_bytes: 32 * 1024,
                ..URingOptions::default()
            };
            let d = deploy_uring(&mut sim, &opts, |_| {});
            let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
            let b = sim.metrics().counter(d.ring[n / 2], metric::DELIVERED_BYTES);
            w.close(&mut sim);
            let a = sim.metrics().counter(d.ring[n / 2], metric::DELIVERED_BYTES);
            let lat = sim.metrics().latency(metric::LATENCY).mean;
            cells.push(format!("{:9.0} | {:8}", w.mbps_of(b, a), format!("{lat}")));
        }
        {
            let mut sim = Sim::new(SimConfig::default());
            let (ring, _) = deploy_lcr(&mut sim, n, 1_100_000_000 / n as u64, 32 * 1024);
            let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
            let b = sim.metrics().counter(ring[n / 2], metric::DELIVERED_BYTES);
            w.close(&mut sim);
            let a = sim.metrics().counter(ring[n / 2], metric::DELIVERED_BYTES);
            let lat = sim.metrics().latency(metric::LATENCY).mean;
            cells.push(format!("{:8.0} | {:7}", w.mbps_of(b, a), format!("{lat}")));
        }
        println!("  {n:9} | {}", cells.join(" | "));
    }
    println!(
        "  shape: throughput ~flat; latency grows with ring size, least for M-RP (paper Fig 3.8)."
    );
}

fn fig3_09() {
    println!(
        "Fig 3.9 — synchronous disk writes: latency vs ring size (throughput disk-bound ~270 Mbps)"
    );
    header(&["processes", "M-RP lat", "U-RP lat", "M-RP Mbps", "U-RP Mbps"]);
    for &n in &[3usize, 5, 9] {
        let mut sim = Sim::new(SimConfig::default());
        let opts = MRingOptions {
            ring_size: n,
            n_learners: 2,
            n_proposers: 2,
            proposer_rate_bps: 200_000_000,
            msg_bytes: 8192,
            ..MRingOptions::default()
        };
        let d = deploy_mring(&mut sim, &opts, |c| c.storage = StorageMode::SyncDisk);
        let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
        let b = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        w.close(&mut sim);
        let a = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        let m_lat = sim.metrics().latency(metric::LATENCY).trimmed_mean_95;
        let m_tput = w.mbps_of(b, a);

        let mut sim = Sim::new(SimConfig::default());
        let opts = URingOptions {
            ring_len: n,
            n_acceptors: n.div_ceil(2),
            proposer_positions: (0..n).collect(),
            proposer_rate_bps: 400_000_000 / n as u64,
            msg_bytes: 32 * 1024,
            ..URingOptions::default()
        };
        let d = deploy_uring(&mut sim, &opts, |c| c.storage = StorageMode::SyncDisk);
        let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
        let b = sim.metrics().counter(d.ring[n / 2], metric::DELIVERED_BYTES);
        w.close(&mut sim);
        let a = sim.metrics().counter(d.ring[n / 2], metric::DELIVERED_BYTES);
        let u_lat = sim.metrics().latency(metric::LATENCY).trimmed_mean_95;
        let u_tput = w.mbps_of(b, a);
        println!("  {n:9} | {m_lat:8} | {u_lat:8} | {m_tput:9.0} | {u_tput:9.0}");
    }
    println!("  shape: all disk-bound near 270 Mbps; M-RP latency lower (parallel writes) (paper Fig 3.9).");
}

fn msg_size_sweep(uring: bool) {
    let sizes: &[u32] = if uring {
        &[200, 1024, 2048, 4096, 8192, 32 * 1024]
    } else {
        &[200, 1024, 2048, 4096, 8192]
    };
    header(&["msg bytes", "Mbps", "latency", "msgs/s", "batches/s"]);
    for &size in sizes {
        let mut sim = Sim::new(SimConfig::default());
        let (node, coord) = if uring {
            let opts = URingOptions {
                ring_len: 5,
                n_acceptors: 3,
                proposer_positions: vec![0, 1, 2, 3, 4],
                proposer_rate_bps: 240_000_000,
                msg_bytes: size,
                ..URingOptions::default()
            };
            let d = deploy_uring(&mut sim, &opts, |_| {});
            (d.ring[2], d.ring[0])
        } else {
            let opts = MRingOptions {
                ring_size: 3,
                n_learners: 2,
                n_proposers: 2,
                proposer_rate_bps: 475_000_000,
                msg_bytes: size,
                ..MRingOptions::default()
            };
            let d = deploy_mring(&mut sim, &opts, |_| {});
            (d.learners[0], d.coordinator())
        };
        let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
        let b_bytes = sim.metrics().counter(node, metric::DELIVERED_BYTES);
        let b_msgs = sim.metrics().counter(node, metric::DELIVERED_MSGS);
        let b_inst = sim.metrics().counter(coord, metric::INSTANCES);
        w.close(&mut sim);
        let a_bytes = sim.metrics().counter(node, metric::DELIVERED_BYTES);
        let a_msgs = sim.metrics().counter(node, metric::DELIVERED_MSGS);
        let a_inst = sim.metrics().counter(coord, metric::INSTANCES);
        let lat = sim.metrics().latency(metric::LATENCY).mean;
        println!(
            "  {size:9} | {:4.0} | {:7} | {:6.0} | {:9.0}",
            w.mbps_of(b_bytes, a_bytes),
            format!("{lat}"),
            w.rate_of(b_msgs, a_msgs),
            w.rate_of(b_inst, a_inst),
        );
    }
}

fn fig3_10() {
    println!("Fig 3.10 — M-Ring Paxos vs application message size (8 KB consensus packets)");
    msg_size_sweep(false);
    println!("  shape: throughput rises with message size; small messages batch many per instance (paper Fig 3.10).");
}

fn fig3_11() {
    println!("Fig 3.11 — U-Ring Paxos vs application message size (32 KB consensus packets)");
    msg_size_sweep(true);
    println!("  shape: throughput rises to the 32 KB packet size (paper Fig 3.11).");
}

fn fig3_12() {
    println!("Fig 3.12 — M-Ring Paxos vs socket buffer size");
    header(&["buffer", "Mbps", "latency"]);
    for &buf in &[100_000u32, 1_000_000, 4_000_000, 16_000_000] {
        let mut cfg = SimConfig::default();
        cfg.udp_socket_buffer = buf;
        let mut sim = Sim::new(cfg);
        let opts = MRingOptions {
            ring_size: 3,
            n_learners: 2,
            n_proposers: 2,
            proposer_rate_bps: 475_000_000,
            msg_bytes: 8192,
            ..MRingOptions::default()
        };
        let d = deploy_mring(&mut sim, &opts, |_| {});
        let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
        let b = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        w.close(&mut sim);
        let a = sim.metrics().counter(d.learners[0], metric::DELIVERED_BYTES);
        let lat = sim.metrics().latency(metric::LATENCY).mean;
        println!("  {:>8} | {:4.0} | {lat}", format!("{}K", buf / 1000), w.mbps_of(b, a));
    }
    println!("  shape: near max even with small buffers (retransmission absorbs losses) (paper Fig 3.12).");
}

fn fig3_13() {
    println!("Fig 3.13 — U-Ring Paxos vs socket buffer (TCP window) size");
    header(&["buffer", "Mbps", "latency"]);
    for &buf in &[100_000u32, 500_000, 1_000_000, 4_000_000, 16_000_000] {
        let mut cfg = SimConfig::default();
        // The TCP window tracks the configured socket buffer (halved for
        // congestion-control headroom).
        cfg.tcp_window_bytes = buf / 2;
        let mut sim = Sim::new(cfg);
        let opts = URingOptions {
            ring_len: 5,
            n_acceptors: 3,
            proposer_positions: vec![0, 1, 2, 3, 4],
            proposer_rate_bps: 240_000_000,
            msg_bytes: 32 * 1024,
            ..URingOptions::default()
        };
        let d = deploy_uring(&mut sim, &opts, |_| {});
        let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(1), &[metric::LATENCY]);
        let b = sim.metrics().counter(d.ring[2], metric::DELIVERED_BYTES);
        w.close(&mut sim);
        let a = sim.metrics().counter(d.ring[2], metric::DELIVERED_BYTES);
        let lat = sim.metrics().latency(metric::LATENCY).mean;
        println!("  {:>8} | {:4.0} | {lat}", format!("{}K", buf / 1000), w.mbps_of(b, a));
    }
    println!("  shape: buffers below ~1 MB throttle TCP throughput (paper Fig 3.13).");
}

fn fig3_14() {
    println!("Fig 3.14 — flow control trace: learner slows down during t=[20,40)s (compressed to [0.75,1.75)s)");
    header(&["t (s)", "deliver Mbps", "coord window", "slowdowns"]);
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 3,
        n_proposers: 2,
        proposer_rate_bps: 250_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    // The slow learner's per-batch application cost is flipped at runtime
    // through a cost control; deploy manually to attach one.
    let slow_cost = std::sync::Arc::new(std::sync::Mutex::new(Dur::ZERO));
    let d = deploy_mring(&mut sim, &opts, |cfg| {
        cfg.flow.learner_threshold = 256;
    });
    // Replace learner 0 with a cost-controlled copy.
    let slow = d.learners[0];
    let actor = ringpaxos::mring::MRingProcess::new(d.cfg.clone(), slow, None, Some(d.log.clone()))
        .with_cost_control(slow_cost.clone());
    sim.replace_actor(slow, Box::new(actor));

    let mut prev = 0u64;
    for step in 1..=10u64 {
        let t = Time::from_millis(step * 250);
        if t == Time::from_millis(750) {
            *slow_cost.lock().unwrap() = Dur::micros(150); // can only process ~6.7k batches/s
        }
        if t == Time::from_millis(1750) {
            *slow_cost.lock().unwrap() = Dur::ZERO;
        }
        sim.run_until(t);
        let cur = sim.metrics().counter(slow, metric::DELIVERED_BYTES);
        let slowdowns = sim.metrics().counter(slow, "rp.slowdown");
        println!(
            "  {:5.2} | {:12.0} | {:12} | {slowdowns:9}",
            t.as_secs_f64(),
            mbps(cur - prev, Dur::millis(250)),
            "-",
        );
        prev = cur;
    }
    println!("  shape: delivery dips while the learner is slow, coordinator throttles, then recovers (paper Fig 3.14).");
}

fn tab3_03() {
    println!("Table 3.3 — M-Ring Paxos CPU per role at peak (paper: proposer 37%, coord 88%, acceptor 24%, learner 21%)");
    let mut sim = Sim::new(SimConfig::default());
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 475_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(2), &[]);
    let nodes = [
        ("proposer", d.proposers[0]),
        ("coordinator", d.coordinator()),
        ("acceptor", d.ring[0]),
        ("learner", d.learners[0]),
    ];
    let before: Vec<Dur> = nodes.iter().map(|&(_, n)| sim.cpu_busy(n, 0)).collect();
    w.close(&mut sim);
    header(&["role", "CPU %", "memory (buffer)"]);
    for (i, &(role, n)) in nodes.iter().enumerate() {
        let pct = cpu_pct(before[i], sim.cpu_busy(n, 0), w.len());
        let mem = if role == "proposer" { "90 MB" } else { "160 MB circular buffer" };
        println!("  {role:<12} | {pct:5.0} | {mem}");
    }
}

fn tab3_04() {
    println!("Table 3.4 — U-Ring Paxos CPU per role at peak (paper: ~48% each, 80 MB)");
    let mut sim = Sim::new(SimConfig::default());
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: vec![0, 1, 2, 3, 4],
        proposer_rate_bps: 240_000_000,
        msg_bytes: 32 * 1024,
        ..URingOptions::default()
    };
    let d = deploy_uring(&mut sim, &opts, |_| {});
    let w = Window::open(&mut sim, Dur::secs(1), Dur::secs(2), &[]);
    let before: Vec<Dur> = d.ring.iter().map(|&n| sim.cpu_busy(n, 0)).collect();
    w.close(&mut sim);
    header(&["position", "CPU %", "memory (buffer)"]);
    for (i, &n) in d.ring.iter().enumerate() {
        let pct = cpu_pct(before[i], sim.cpu_busy(n, 0), w.len());
        println!("  {i:<8} | {pct:5.0} | 16 MB per proposer (80 MB)");
    }
}
