//! Probe-layer reporting: per-instance latency decomposition over
//! [`simnet::probe`]'s lifecycle spans.
//!
//! The ch. 3 and ch. 5 latency figures report one end-to-end number per
//! configuration; the thesis's discussion of *where* that latency comes
//! from (dissemination vs. voting vs. the learner's gap-free delivery
//! wait, §3.4/§5.4) is qualitative. These runners make it quantitative:
//! every consensus instance's propose→2A→2B→decide→deliver span is
//! recorded by the protocol probes and decomposed into per-stage
//! statistics. The same probed runs back the `trace_export` binary,
//! which writes the spans as a Perfetto/Chrome `trace_event` file plus
//! a machine-readable decomposition JSON for the CI artifacts.

use ringpaxos::cluster::{deploy_mring, deploy_uring, MRingOptions, URingOptions};
use simnet::prelude::*;
use simnet::probe::{decompose, lifecycle_spans, LifecycleReport, StageStats};

use crate::harness::header;

/// A fixed-seed U-Ring deployment with lifecycle probes on, run to 2 s
/// of virtual time (≈1.4 s of steady state past warmup).
pub fn probed_uring(probes: ProbeConfig) -> Sim {
    let mut cfg = SimConfig::default();
    cfg.seed = 0x0451;
    let mut sim = Sim::new(cfg);
    sim.set_probes(probes);
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_rate_bps: 120_000_000,
        ..URingOptions::default()
    };
    deploy_uring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(2));
    sim
}

/// A fixed-seed single-group M-Ring deployment with lifecycle probes
/// on, run to 2 s of virtual time.
pub fn probed_mring(probes: ProbeConfig) -> Sim {
    let mut cfg = SimConfig::default();
    cfg.seed = 0x601D;
    let mut sim = Sim::new(cfg);
    sim.set_probes(probes);
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 200_000_000,
        msg_bytes: 8192,
        ..MRingOptions::default()
    };
    deploy_mring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(2));
    sim
}

/// Decomposes a probed run's lifecycle stream into a report.
pub fn report_of(sim: &Sim) -> LifecycleReport {
    decompose(&lifecycle_spans(&sim.probe_events()))
}

fn row(label: &str, s: &StageStats) {
    println!(
        "  {label:<18} | {:>9} | {:>10} | {:>10} | {:>10} | {:>10}",
        s.count,
        format!("{}", s.mean),
        format!("{}", s.p50),
        format!("{}", s.p95),
        format!("{}", s.max),
    );
}

fn print_report(rep: &LifecycleReport) {
    header(&[
        "stage             ",
        "instances",
        "      mean",
        "       p50",
        "       p95",
        "       max",
    ]);
    row("propose -> 2A", &rep.propose_to_2a);
    row("2A -> 2B", &rep.a2_to_2b);
    row("2B -> decide", &rep.b2_to_decide);
    row("decide -> deliver", &rep.decide_to_deliver);
    row("total", &rep.total);
}

/// `probe3_uring` — where U-Ring's delivery latency is spent.
pub fn probe3_uring() {
    println!("Probe report — U-Ring latency decomposition (companion to Fig 3.11's");
    println!("  latency axis): per-instance propose→2A→2B→decide→deliver spans");
    let sim = probed_uring(ProbeConfig::lifecycle());
    let rep = report_of(&sim);
    print_report(&rep);
    println!("  shape: the ring trip dominates — a value circulates the full unicast ring");
    println!("  before deciding, and delivery follows the decide almost immediately (the");
    println!("  learner is on the ring); batching shows up as propose→2A queueing.");
}

/// `probe5_mring` — where M-Ring's delivery latency is spent.
pub fn probe5_mring() {
    println!("Probe report — M-Ring latency decomposition (companion to Fig 5.1's");
    println!("  latency axis): per-instance propose→2A→2B→decide→deliver spans");
    let sim = probed_mring(ProbeConfig::lifecycle());
    let rep = report_of(&sim);
    print_report(&rep);
    println!("  shape: multicast dissemination makes 2A→2B the acceptor-ring vote trip");
    println!("  only; decide→deliver stays small while a single group never waits on");
    println!("  the deterministic round-robin merge (contrast ch. 5's multi-group runs).");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uring_decomposition_has_spans() {
        let sim = probed_uring(ProbeConfig::lifecycle());
        let rep = report_of(&sim);
        assert!(rep.instances > 0);
        assert!(rep.total.count > 0);
        assert!(rep.total.mean >= rep.b2_to_decide.mean);
        // The exported JSON is parseable enough to be an artifact.
        let json = rep.to_json();
        assert!(json.contains("\"instances\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
