//! Chapter 10 experiments — the unified client tier at scale. These go
//! beyond the thesis's evaluation (closed-loop clients, one actor each):
//! a [`workload::SessionTable`] hosts a million open-loop sessions over
//! the partitioned B⁺-tree, keys drawn Zipfian, and the figures track
//! throughput *and* the latency tail — first against key skew, then
//! through a mid-run coordinator crash injected by a [`FaultPlan`].

use hpsmr_core::deploy::{
    deploy_smr_sessions, PartitionOptions, SessionDeployment, SessionOptions,
};
use simnet::prelude::*;
use workload::{SESSIONS_COMPLETED, SESSIONS_RETRIES, SESSION_LATENCY};

use crate::harness::{header, pctl_cell};
use crate::Experiment;

/// All ch. 10 experiments in order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig10_01",
            title: "open-loop session throughput and tail vs Zipf skew",
            run: fig10_01,
        },
        Experiment {
            id: "fig10_02",
            title: "one million sessions through a coordinator crash",
            run: fig10_02,
        },
    ]
}

/// Eight tables over a 4-partition tree: the same shape the perf smoke
/// (`perf_smoke --sessions`) measures, sized by the caller.
fn opts(hosted: u64, rate_per_table: f64, zipf_s: f64) -> SessionOptions {
    let n_tables = 8;
    SessionOptions {
        n_tables,
        sessions_per_table: hosted.div_ceil(n_tables as u64),
        rate_per_table,
        zipf_s,
        partitions: Some(PartitionOptions { n: 4, replicas_per: 2, cross_pct: 0 }),
        ..SessionOptions::default()
    }
}

fn completed(sim: &Sim, d: &SessionDeployment) -> u64 {
    d.tables.iter().map(|&t| sim.metrics().counter(t, SESSIONS_COMPLETED)).sum()
}

fn fig10_01() {
    println!("Fig 10.1 — 200k open-loop sessions, 32k req/s offered: key skew vs");
    println!("  throughput and the response-time tail (uniform to Zipf 0.99)");
    header(&["zipf s", "completed/s", "p50/p99/p999"]);
    for &s in &[0.0f64, 0.5, 0.99] {
        let mut sim = Sim::new(SimConfig::default());
        let d = deploy_smr_sessions(&mut sim, &opts(200_000, 4_000.0, s));
        // Skip the ramp-up second, then measure four.
        sim.run_until(Time::from_secs(1));
        let _ = sim.metrics_mut().take_latency(SESSION_LATENCY);
        let before = completed(&sim, &d);
        sim.run_until(Time::from_secs(5));
        let rate = (completed(&sim, &d) - before) as f64 / 4.0;
        println!("  {s:6.2} | {rate:11.0} | {}", pctl_cell(&sim, SESSION_LATENCY));
    }
    println!("  shape: ordering is skew-blind (one total order regardless of key), so");
    println!("  throughput holds; the tail moves only via per-partition execution load —");
    println!("  scattered keys keep even Zipf 0.99 spread across the four partitions.");
}

fn fig10_02() {
    const CRASH_AT: u64 = 10; // s
    let target = 1_000_000u64;
    println!("Fig 10.2 — one million Zipf(0.99) open-loop sessions at 24k req/s; the ring");
    println!(
        "  coordinator crashes at t={CRASH_AT}s and a survivor takes over (suspicion + rotation)"
    );
    header(&["t (s)", "completed/s", "window p50", "window p99", "event"]);
    let mut sim = Sim::new(SimConfig::default());
    let o = opts(target, 3_000.0, 0.99);
    let d = deploy_smr_sessions(&mut sim, &o);
    let mut plan =
        FaultPlan::new().at(Time::from_secs(CRASH_AT), FaultAction::Crash(d.coordinator()));
    let step = Dur::secs(2);
    let mut prev = 0u64;
    let mut n = 0u64;
    while completed(&sim, &d) < target && n < 40 {
        n += 1;
        let t = Time::ZERO + step * n;
        plan.step(&mut sim, t, &mut |_, _| {});
        sim.run_until(t);
        let cur = completed(&sim, &d);
        // Windowed drain: the crash bucket's p99 spike *is* the figure.
        let lat = sim.metrics_mut().take_latency(SESSION_LATENCY);
        let event = match t.as_secs_f64() as u64 {
            x if x == CRASH_AT + 2 => "<- coordinator crashed",
            x if x == CRASH_AT + 4 => "   (takeover + backlog drain)",
            _ => "",
        };
        println!(
            "  {:5.0} | {:11.0} | {:10} | {:10} | {event}",
            t.as_secs_f64(),
            (cur - prev) as f64 / step.as_secs_f64(),
            format!("{}", lat.p50),
            format!("{}", lat.p99),
        );
        prev = cur;
    }
    let done = completed(&sim, &d);
    let retries: u64 = d.tables.iter().map(|&t| sim.metrics().counter(t, SESSIONS_RETRIES)).sum();
    let takeovers: u64 = d.ring.iter().map(|&r| sim.metrics().counter(r, "rp.became_coord")).sum();
    println!(
        "  {done} sessions completed ({} hosted), {retries} deadline retries, {takeovers} takeover(s)",
        o.sessions_per_table * o.n_tables as u64,
    );
    assert!(done >= target, "the run must complete the full million: {done}");
    println!("  shape: the crash bucket stalls completions and blows the window p99 out to");
    println!("  the retry backoff; the survivor takes over within the suspicion timeout and");
    println!("  the outage backlog drains, but the two-member ring runs closer to its knee,");
    println!("  so the tail settles higher than before the crash while throughput holds the");
    println!("  offered rate. Offer more than the degraded ring can order and the open loop");
    println!("  never drains — the retry storm collapses it (the knee ch. 10's smoke probes).");
}
