//! Chapter 4 experiments — the DSN 2011 evaluation: the cost of
//! replication, speculative execution, and state partitioning over the
//! B⁺-tree service (Figs. 4.1, 4.3–4.10).

use hpsmr_core::deploy::{deploy_cs, deploy_smr, PartitionOptions, SmrOptions};
use hpsmr_core::{SMR_COMPLETED, SMR_LATENCY};
use simnet::prelude::*;
use workload::WorkloadKind;

use crate::harness::{cpu_pct, header, pctl_cell, Window};
use crate::Experiment;

/// All ch. 4 experiments in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig4_01",
            title: "CS vs SMR: latency and read-only scalability",
            run: fig4_01,
        },
        Experiment { id: "fig4_03", title: "cost of replication, three workloads", run: fig4_03 },
        Experiment {
            id: "fig4_04",
            title: "throughput/latency vs number of replicas",
            run: fig4_04,
        },
        Experiment { id: "fig4_05", title: "speculative execution, queries", run: fig4_05 },
        Experiment { id: "fig4_06", title: "speculative execution, batched updates", run: fig4_06 },
        Experiment { id: "fig4_07", title: "state partitioning speedups", run: fig4_07 },
        Experiment {
            id: "fig4_08",
            title: "cross-partition queries, 2 replicas/partition",
            run: fig4_08,
        },
        Experiment {
            id: "fig4_09",
            title: "cross-partition queries, 3 replicas/partition",
            run: fig4_09,
        },
        Experiment { id: "fig4_10", title: "speculation + partitioning combined", run: fig4_10 },
    ]
}

struct Measured {
    kcps: f64,
    latency: Dur,
    /// `p50/p99/p999` of the same window, preformatted for the tables.
    pctls: String,
}

fn measure_cs(workload: WorkloadKind, clients: usize) -> Measured {
    let mut sim = Sim::new(SimConfig::default());
    let d = deploy_cs(&mut sim, clients, workload, None);
    let w = Window::open(&mut sim, Dur::millis(500), Dur::secs(1), &[SMR_LATENCY]);
    let before = w.snapshot(&sim, &d.clients, SMR_COMPLETED);
    w.close(&mut sim);
    let after = w.snapshot(&sim, &d.clients, SMR_COMPLETED);
    let done: u64 = after.iter().sum::<u64>() - before.iter().sum::<u64>();
    Measured {
        kcps: done as f64 / w.len().as_secs_f64() / 1e3,
        latency: sim.metrics().latency(SMR_LATENCY).mean,
        pctls: pctl_cell(&sim, SMR_LATENCY),
    }
}

fn measure_smr(opts: &SmrOptions) -> Measured {
    let mut sim = Sim::new(SimConfig::default());
    let d = deploy_smr(&mut sim, opts);
    let w = Window::open(&mut sim, Dur::millis(500), Dur::secs(1), &[SMR_LATENCY]);
    let before = w.snapshot(&sim, &d.clients, SMR_COMPLETED);
    w.close(&mut sim);
    let after = w.snapshot(&sim, &d.clients, SMR_COMPLETED);
    let done: u64 = after.iter().sum::<u64>() - before.iter().sum::<u64>();
    Measured {
        kcps: done as f64 / w.len().as_secs_f64() / 1e3,
        latency: sim.metrics().latency(SMR_LATENCY).mean,
        pctls: pctl_cell(&sim, SMR_LATENCY),
    }
}

fn fig4_01() {
    println!("Fig 4.1 — CS vs SMR with read-only commands");
    println!(" (left) latency vs clients:");
    header(&["clients", "CS latency", "CS p50/p99/p999", "SMR latency", "SMR p50/p99/p999"]);
    for &n in &[1usize, 2, 5, 10, 20, 40] {
        let cs = measure_cs(WorkloadKind::Queries, n);
        let smr = measure_smr(&SmrOptions {
            n_replicas: 1,
            n_clients: n,
            workload: WorkloadKind::Queries,
            ..SmrOptions::default()
        });
        println!(
            "  {n:7} | {:10} | {:15} | {:11} | {}",
            format!("{}", cs.latency),
            cs.pctls,
            format!("{}", smr.latency),
            smr.pctls
        );
    }
    println!(" (right) read-only throughput vs replicas (Kcps):");
    header(&["replicas", "Kcps"]);
    let cs = measure_cs(WorkloadKind::Queries, 80);
    println!("  {:8} | {:5.1}", "CS", cs.kcps);
    for &r in &[1usize, 2, 4, 8] {
        let smr = measure_smr(&SmrOptions {
            n_replicas: r,
            n_clients: 80,
            workload: WorkloadKind::Queries,
            ..SmrOptions::default()
        });
        println!("  {r:8} | {:5.1}", smr.kcps);
    }
    println!("  shape: SMR latency > CS; read throughput grows with replicas then flattens (paper Fig 4.1).");
}

fn fig4_03() {
    println!("Fig 4.3 — CS vs SMR (1 replica group) across the three workloads");
    for (wk, label, clients) in [
        (WorkloadKind::Queries, "Queries", vec![5usize, 10, 20, 40]),
        (WorkloadKind::InsDelSingle, "Ins/Del (single)", vec![25, 50, 100, 200]),
        (WorkloadKind::InsDelBatch, "Ins/Del (batch)", vec![25, 50, 100, 200]),
    ] {
        println!(" {label}:");
        header(&["clients", "CS Kcps", "SMR Kcps", "CS lat", "SMR lat", "SMR p50/p99/p999"]);
        for &n in &clients {
            let cs = measure_cs(wk, n);
            let smr = measure_smr(&SmrOptions {
                n_replicas: 2,
                n_clients: n,
                workload: wk,
                ..SmrOptions::default()
            });
            println!(
                "  {n:7} | {:7.1} | {:8.1} | {:7} | {:7} | {}",
                cs.kcps,
                smr.kcps,
                format!("{}", cs.latency),
                format!("{}", smr.latency),
                smr.pctls
            );
        }
    }
    println!("  shape: queries/batch CPU-bound (similar peaks); single updates instance-rate-bound in SMR (paper Fig 4.3).");
}

fn fig4_04() {
    println!("Fig 4.4 — throughput and latency vs replicas, 3 workloads (Kcps)");
    header(&["replicas", "Queries", "Ins/Del single", "Ins/Del batch"]);
    let q = measure_cs(WorkloadKind::Queries, 80);
    let s = measure_cs(WorkloadKind::InsDelSingle, 150);
    let b = measure_cs(WorkloadKind::InsDelBatch, 150);
    println!("  {:8} | {:7.1} | {:14.1} | {:13.1}", "CS", q.kcps, s.kcps, b.kcps);
    for &r in &[1usize, 2, 4, 8] {
        let row: Vec<f64> = [
            (WorkloadKind::Queries, 80usize),
            (WorkloadKind::InsDelSingle, 150),
            (WorkloadKind::InsDelBatch, 150),
        ]
        .iter()
        .map(|&(wk, n)| {
            measure_smr(&SmrOptions {
                n_replicas: r,
                n_clients: n,
                workload: wk,
                ..SmrOptions::default()
            })
            .kcps
        })
        .collect();
        println!("  {r:8} | {:7.1} | {:14.1} | {:13.1}", row[0], row[1], row[2]);
    }
    println!("  shape: queries scale with replicas; updates do not (all replicas execute them) (paper Fig 4.4).");
}

fn speculation_sweep(workload: WorkloadKind, clients: &[usize]) {
    header(&[
        "replicas",
        "clients",
        "plain Kcps",
        "spec Kcps",
        "plain lat",
        "spec lat",
        "spec p50/p99/p999",
    ]);
    for &r in &[1usize, 2, 4, 8] {
        for &n in clients {
            let base =
                SmrOptions { n_replicas: r, n_clients: n, workload, ..SmrOptions::default() };
            let plain = measure_smr(&SmrOptions { speculative: false, ..base.clone() });
            let spec = measure_smr(&SmrOptions { speculative: true, ..base });
            println!(
                "  {r:8} | {n:7} | {:10.1} | {:9.1} | {:9} | {:8} | {}",
                plain.kcps,
                spec.kcps,
                format!("{}", plain.latency),
                format!("{}", spec.latency),
                spec.pctls
            );
        }
    }
}

fn fig4_05() {
    println!("Fig 4.5 — speculative execution, Queries workload");
    speculation_sweep(WorkloadKind::Queries, &[20, 40]);
    println!(
        "  shape: speculation cuts latency; throughput follows (Little's law) (paper Fig 4.5)."
    );
}

fn fig4_06() {
    println!("Fig 4.6 — speculative execution, Ins/Del (batch) workload");
    speculation_sweep(WorkloadKind::InsDelBatch, &[50, 150]);
    println!("  shape: gains are most visible for batched updates (paper Fig 4.6).");
}

fn fig4_07() {
    println!("Fig 4.7 — state partitioning speedups, no cross-partition commands");
    println!(" (paper speedups over SMR: queries 2.1x / 3.9x; batch 1.8x / 2.6x)");
    header(&["workload", "SMR Kcps", "2P Kcps", "4P Kcps", "2P speedup", "4P speedup"]);
    for (wk, label, clients) in [
        (WorkloadKind::Queries, "Queries", 150usize),
        (WorkloadKind::InsDelBatch, "Ins/Del (batch)", 200),
    ] {
        let base =
            SmrOptions { n_replicas: 2, n_clients: clients, workload: wk, ..SmrOptions::default() };
        let smr = measure_smr(&base);
        let p2 = measure_smr(&SmrOptions {
            partitions: Some(PartitionOptions { n: 2, replicas_per: 2, cross_pct: 0 }),
            ..base.clone()
        });
        let p4 = measure_smr(&SmrOptions {
            partitions: Some(PartitionOptions { n: 4, replicas_per: 2, cross_pct: 0 }),
            ..base
        });
        println!(
            "  {label:<15} | {:8.1} | {:7.1} | {:7.1} | {:9.1}x | {:9.1}x",
            smr.kcps,
            p2.kcps,
            p4.kcps,
            p2.kcps / smr.kcps,
            p4.kcps / smr.kcps
        );
    }
}

fn cross_partition_sweep(replicas_per: usize) {
    header(&[
        "cross %",
        "Kcps",
        "latency",
        "p50/p99/p999",
        "exec CPU %",
        "resp CPU %",
        "out Mbps/replica",
    ]);
    for &cross in &[0u32, 25, 50, 75, 100] {
        let mut sim = Sim::new(SimConfig::default());
        let opts = SmrOptions {
            n_clients: 150,
            workload: WorkloadKind::Queries,
            partitions: Some(PartitionOptions { n: 2, replicas_per, cross_pct: cross }),
            ..SmrOptions::default()
        };
        let d = deploy_smr(&mut sim, &opts);
        let w = Window::open(&mut sim, Dur::millis(500), Dur::secs(1), &[SMR_LATENCY]);
        let before = w.snapshot(&sim, &d.clients, SMR_COMPLETED);
        let replica = d.replicas[0][0];
        let exec0 = sim.cpu_busy(replica, 1);
        let resp0 = sim.cpu_busy(replica, 2);
        let sent0 = sim.metrics().counter(replica, "net.sent_bytes");
        w.close(&mut sim);
        let after = w.snapshot(&sim, &d.clients, SMR_COMPLETED);
        let done: u64 = after.iter().sum::<u64>() - before.iter().sum::<u64>();
        let lat = sim.metrics().latency(SMR_LATENCY).mean;
        let exec = cpu_pct(exec0, sim.cpu_busy(replica, 1), w.len());
        let resp = cpu_pct(resp0, sim.cpu_busy(replica, 2), w.len());
        let sent = sim.metrics().counter(replica, "net.sent_bytes");
        println!(
            "  {cross:7} | {:4.1} | {:7} | {:12} | {exec:10.0} | {resp:10.0} | {:6.0}",
            done as f64 / w.len().as_secs_f64() / 1e3,
            format!("{lat}"),
            pctl_cell(&sim, SMR_LATENCY),
            w.mbps_of(sent0, sent)
        );
    }
}

fn fig4_08() {
    println!("Fig 4.8 — cross-partition queries, 2 partitions x 2 replicas");
    cross_partition_sweep(2);
    println!("  shape: mid cross-% fastest (sub-queries are cheaper); response thread load grows with cross-% (paper Fig 4.8).");
}

fn fig4_09() {
    println!("Fig 4.9 — cross-partition queries, 2 partitions x 3 replicas");
    cross_partition_sweep(3);
    println!("  shape: extra replicas remove the outgoing-bandwidth bottleneck (paper Fig 4.9).");
}

fn fig4_10() {
    println!("Fig 4.10 — speculation + partitioning: improvement over plain partitioned SMR");
    header(&["cross %", "tput gain %", "latency cut %"]);
    for &cross in &[0u32, 25, 50, 75, 100] {
        let base = SmrOptions {
            n_clients: 100,
            workload: WorkloadKind::Queries,
            partitions: Some(PartitionOptions { n: 2, replicas_per: 2, cross_pct: cross }),
            ..SmrOptions::default()
        };
        let plain = measure_smr(&SmrOptions { speculative: false, ..base.clone() });
        let spec = measure_smr(&SmrOptions { speculative: true, ..base });
        let tput_gain = (spec.kcps / plain.kcps - 1.0) * 100.0;
        let lat_cut =
            (1.0 - spec.latency.as_nanos() as f64 / plain.latency.as_nanos().max(1) as f64) * 100.0;
        println!("  {cross:7} | {tput_gain:11.1} | {lat_cut:12.1}");
    }
    println!("  shape: modest latency cuts, shrinking with cross-% (cheaper sub-queries leave less to overlap) (paper Fig 4.10).");
}
