//! Criterion micro-benchmarks for the hot paths under every experiment:
//! B⁺-tree operations, Paxos role state machines, the deterministic
//! merge, and a short end-to-end M-Ring Paxos simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use abcast::MsgId;
use btree::{BPlusTree, TreeCommand, TreeService};
use multiring::{DeterministicMerge, MergeEntry};
use paxos::prelude::*;
use psmr::{Engine, EngineCosts, ExecModel, PCommand, PStored};
use ringpaxos::cluster::{deploy_mring, MRingOptions};
use simnet::prelude::*;

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);
    g.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new();
            for k in 0..10_000u64 {
                t.insert(black_box(k * 7 % 10_000), k);
            }
            black_box(t.len())
        })
    });
    let mut tree = BPlusTree::new();
    for k in 0..100_000u64 {
        tree.insert(k, k);
    }
    g.bench_function("range_1000_of_100k", |b| {
        b.iter(|| black_box(tree.range(black_box(40_000), black_box(40_999)).len()))
    });
    g.bench_function("get_of_100k", |b| b.iter(|| black_box(tree.get(black_box(77_777)))));
    g.finish();
}

fn bench_service_undo(c: &mut Criterion) {
    c.bench_function("service/apply_rollback_100", |b| {
        b.iter(|| {
            let mut s = TreeService::new();
            for k in 0..100u64 {
                s.apply(TreeCommand::Insert { key: k, value: k });
            }
            s.rollback(100);
            black_box(s.tree().len())
        })
    });
}

fn bench_paxos_window(c: &mut Criterion) {
    // Steady-state coordinator pipeline over a sliding window: propose,
    // quorum of 2Bs, periodic GC — the dense per-instance window's hot
    // loop (previously one BTreeMap search per 2B).
    c.bench_function("paxos/window_pipeline_1k", |b| {
        let mut coord: Coordinator<u64> = Coordinator::new(0, 3);
        let PaxosMsg::Phase1a { round } = coord.start_phase1(Round::ZERO) else { unreachable!() };
        for a in 0..3 {
            coord.receive_1b(a, round, &[]);
        }
        b.iter(|| {
            let mut last = InstanceId(0);
            for v in 0..1_000u64 {
                let (inst, _) = coord.propose(black_box(v)).expect("ready");
                for a in 0..2 {
                    let _ = coord.receive_2b(a, inst, round);
                }
                last = inst;
                if v % 256 == 255 {
                    let _ = coord.gc_below(InstanceId(inst.0 - 128));
                }
            }
            black_box(last)
        })
    });
}

fn bench_paxos_roles(c: &mut Criterion) {
    c.bench_function("paxos/phase2_roundtrip", |b| {
        let mut coord: Coordinator<u64> = Coordinator::new(0, 3);
        let mut accs: Vec<Acceptor<u64>> = (0..3).map(|_| Acceptor::new()).collect();
        let PaxosMsg::Phase1a { round } = coord.start_phase1(Round::ZERO) else { unreachable!() };
        for (i, a) in accs.iter_mut().enumerate() {
            if let Some(PaxosMsg::Phase1b { round, votes }) = a.receive_1a(round) {
                coord.receive_1b(i as u32, round, &votes);
            }
        }
        b.iter(|| {
            let (inst, msg) = coord.propose(black_box(42)).expect("ready");
            let PaxosMsg::Phase2a { round, value, .. } = msg else { unreachable!() };
            for (i, a) in accs.iter_mut().enumerate() {
                if a.receive_2a(inst, round, value).is_some() {
                    let _ = coord.receive_2b(i as u32, inst, round);
                }
            }
            black_box(inst)
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    c.bench_function("multiring/merge_4rings_1k", |b| {
        b.iter(|| {
            let mut m = DeterministicMerge::new(4, 1);
            for i in 0..1000u64 {
                let entry = MergeEntry { batch: ringpaxos::BatchData::empty(), weight: 1 };
                m.push((i % 4) as usize, entry);
            }
            let mut n = 0;
            while m.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_psmr_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("psmr_engine");
    let mk = |i: u64, groups: Vec<u8>| PStored {
        cmd: PCommand {
            writes: groups.iter().map(|&x| (x as u64, i)).collect(),
            groups,
            cost: Dur::micros(100),
        },
        client: NodeId(0),
        reply_bytes: 64,
    };
    g.bench_function("psmr_10k_independent", |b| {
        b.iter(|| {
            let mut e = Engine::new(ExecModel::Psmr { workers: 8 }, EngineCosts::default());
            let mut last = Time::ZERO;
            for i in 0..10_000u64 {
                let grp = (i % 8) as u8;
                if let Some((_, s)) =
                    e.deliver(MsgId(i), &mk(i, vec![grp]), Some(grp), Time::ZERO).pop()
                {
                    last = s.done;
                }
            }
            black_box(last)
        })
    });
    g.bench_function("sdpe_10k_mixed", |b| {
        b.iter(|| {
            let mut e = Engine::new(ExecModel::Sdpe { workers: 8 }, EngineCosts::default());
            let mut last = Time::ZERO;
            for i in 0..10_000u64 {
                let groups = if i % 10 == 0 { vec![0u8, 1, 2, 3] } else { vec![(i % 8) as u8] };
                if let Some((_, s)) = e.deliver(MsgId(i), &mk(i, groups), None, Time::ZERO).pop() {
                    last = s.done;
                }
            }
            black_box(last)
        })
    });
    g.bench_function("psmr_barriers_2k_dependent", |b| {
        b.iter(|| {
            let mut e = Engine::new(ExecModel::Psmr { workers: 4 }, EngineCosts::default());
            let all = vec![0u8, 1, 2, 3];
            let mut last = Time::ZERO;
            for i in 0..2_000u64 {
                for g in 0..4u8 {
                    if let Some((_, s)) =
                        e.deliver(MsgId(i), &mk(i, all.clone()), Some(g), Time::ZERO).pop()
                    {
                        last = s.done;
                    }
                }
            }
            black_box(last)
        })
    });
    g.finish();
}

fn bench_mring_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("mring_100ms_sim", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            let opts = MRingOptions {
                ring_size: 3,
                n_learners: 2,
                n_proposers: 2,
                proposer_rate_bps: 200_000_000,
                ..MRingOptions::default()
            };
            let d = deploy_mring(&mut sim, &opts, |_| {});
            sim.run_until(Time::from_millis(100));
            black_box(sim.metrics().counter(d.learners[0], "abcast.delivered_msgs"))
        })
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    use hpsmr_core::snapshot::Snapshot;
    use recovery::DecidedCache;
    use ringpaxos::{BatchData, DeliveredTracker, Value};

    let mut g = c.benchmark_group("recovery");
    g.sample_size(20);

    // Checkpoint write path: externalize a 10k-entry tree and restore a
    // fresh service from it (what every periodic checkpoint and every
    // state transfer pays per snapshot, beyond the modelled disk time).
    let mut svc = TreeService::new();
    for k in 0..10_000u64 {
        svc.apply(TreeCommand::Insert { key: k.wrapping_mul(0x9e3779b97f4a7c15), value: k });
    }
    svc.commit();
    g.bench_function("checkpoint_write_10k", |b| {
        b.iter(|| {
            let snap = svc.snapshot();
            let mut fresh = TreeService::new();
            Snapshot::restore(&mut fresh, &snap);
            black_box((snap.len(), fresh.tree().len()))
        })
    });

    // Catch-up replay path: serve 1k decided batches from the cache in
    // chunks and re-run the delivery filter over them (the recovering
    // learner's CPU-side work per CatchupRep).
    let mut cache: DecidedCache<ringpaxos::Batch> = DecidedCache::new();
    for i in 0..1000u64 {
        let vals: Vec<Value> = (0..4)
            .map(|j| Value {
                id: MsgId(i * 4 + j),
                proposer: NodeId((j % 3) as usize),
                seq: i * 4 + j,
                bytes: 8192,
                submitted: Time::ZERO,
                mask: u32::MAX,
            })
            .collect();
        cache.record(paxos::msg::InstanceId(i), BatchData::new(vals));
    }
    g.bench_function("catchup_replay_1k", |b| {
        b.iter(|| {
            let mut tracker = DeliveredTracker::new();
            let mut next = paxos::msg::InstanceId(0);
            let mut delivered = 0u64;
            loop {
                let chunk = cache.serve(next, 64);
                if chunk.is_empty() {
                    break;
                }
                for (i, batch) in &chunk {
                    for v in batch.iter() {
                        if tracker.fresh(v.proposer, v.seq) {
                            delivered += 1;
                        }
                    }
                    next = i.next();
                }
            }
            black_box(delivered)
        })
    });
    g.finish();
}

fn bench_simcore(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore");
    g.sample_size(20);

    struct Quiet;
    impl Actor for Quiet {
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }

    // Raw per-datagram engine cost: send path, switch, receive path,
    // event queue — no protocol logic on top.
    g.bench_function("datagram_dispatch_5k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            let a = sim.add_node(Box::new(Quiet));
            let dst = sim.add_node(Box::new(Quiet));
            sim.with_ctx(a, |ctx| {
                for i in 0..5_000u32 {
                    ctx.udp_send(dst, black_box(i), 1_000);
                }
            });
            sim.run_to_idle();
            black_box(sim.events_processed())
        })
    });

    // TCP under a small window: exercises the dense channel table on
    // every segment, ack, and pump step.
    g.bench_function("tcp_pump_small_window_1k", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::default();
            cfg.tcp_window_bytes = 64 * 1024;
            let mut sim = Sim::new(cfg);
            let a = sim.add_node(Box::new(Quiet));
            let dst = sim.add_node(Box::new(Quiet));
            sim.with_ctx(a, |ctx| {
                for i in 0..1_000u32 {
                    ctx.tcp_send(dst, black_box(i), 32 * 1024);
                }
            });
            sim.run_to_idle();
            black_box(sim.events_processed())
        })
    });

    // Batched delivery dispatch: an infinite-bandwidth burst lands a
    // whole window of same-instant deliveries on one node, so the
    // engine coalesces the run into single `on_batch` slices instead of
    // paying the actor indirection per packet. Tracks the tentpole of
    // the PR-5 hot-path work alongside `datagram_dispatch_5k` (which,
    // with real costs, exercises the uncoalesced path).
    g.bench_function("deliver_batch_fanin_5k", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::default();
            cfg.link_bandwidth_bps = 0; // infinite: same-instant arrivals
            cfg.send_syscall_cost = Dur::ZERO;
            cfg.send_ns_per_kib = 0;
            cfg.recv_frame_cost = Dur::ZERO;
            cfg.recv_ns_per_kib = 0;
            let mut sim = Sim::new(cfg);
            let a = sim.add_node(Box::new(Quiet));
            let dst = sim.add_node(Box::new(Quiet));
            sim.with_ctx(a, |ctx| {
                for i in 0..5_000u32 {
                    ctx.udp_send(dst, black_box(i), 1_000);
                }
            });
            sim.run_to_idle();
            let (dispatches, msgs) = sim.delivery_dispatch_stats();
            assert!(dispatches < msgs, "burst must coalesce");
            black_box(sim.events_processed())
        })
    });

    // Payload arena churn in isolation: one allocation + two clones +
    // drops per iteration, the per-packet pattern of a 3-hop relay.
    g.bench_function("payload_arena_roundtrip_10k", |b| {
        #[derive(Clone, Copy)]
        struct Msg {
            _instance: u64,
            _round: u64,
            _bytes: u32,
        }
        b.iter(|| {
            let mut live = 0u32;
            for i in 0..10_000u64 {
                let p = Payload::new(Msg { _instance: i, _round: 1, _bytes: 8192 });
                let q = p.clone();
                let r = q.clone();
                live += r.is::<Msg>() as u32;
            }
            black_box(live)
        })
    });

    // Event-queue churn across both calendar regimes: dense near-future
    // timers (bucket path) interleaved with sparse far-future ones
    // (overflow heap path).
    g.bench_function("timer_calendar_10k", |b| {
        struct Fanout;
        impl Actor for Fanout {
            fn on_start(&mut self, ctx: &mut Ctx) {
                for i in 0..10_000u64 {
                    // 0..40 ms of near timers plus every 100th at 0.1-1 s.
                    let delay = if i % 100 == 0 {
                        Dur::millis(100 + i % 900)
                    } else {
                        Dur::micros(4 * (i % 10_000))
                    };
                    ctx.set_timer(delay, TimerToken(i));
                }
            }
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Ctx) {}
        }
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            sim.add_node(Box::new(Fanout));
            sim.run_to_idle();
            black_box(sim.events_processed())
        })
    });

    // Counter matrix and histogram recorder in isolation.
    g.bench_function("metrics_record_10k", |b| {
        b.iter(|| {
            let mut m = Metrics::new();
            for i in 0..10_000u64 {
                let node = NodeId((i % 8) as usize);
                m.add_id(node, simnet::stats::mid::NET_SENT_BYTES, i);
                m.add_id(node, simnet::stats::mid::NET_SENT_PKTS, 1);
                m.record_latency("bench.lat", Dur::nanos(i * 131 % 10_000_000));
            }
            black_box((m.sum_id(simnet::stats::mid::NET_SENT_PKTS), m.latency("bench.lat").p99))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_btree,
    bench_service_undo,
    bench_paxos_window,
    bench_paxos_roles,
    bench_merge,
    bench_psmr_engine,
    bench_mring_sim,
    bench_recovery,
    bench_simcore
);
criterion_main!(benches);
