//! The four execution models of the ch. 6 survey (§6.2) as virtual-time
//! engines: sequential SMR, pipelined SMR, sequential delivery–parallel
//! execution (SDPE), and P-SMR (parallel delivery–parallel execution).
//!
//! An engine turns "command delivered at virtual time *t*" into "response
//! ready at virtual time *t′*", tracking one clock per worker thread plus
//! the model's auxiliary stages. The engines are pure (no simulator
//! dependency): they return the CPU charges to apply, so the same logic
//! is unit-testable and drives the simulated replicas.
//!
//! # Model summaries (§6.2)
//!
//! * **Sequential SMR** — one thread delivers, executes, and responds;
//!   throughput caps at `1/(dispatch + cost + marshal)`.
//! * **Pipelined SMR** — delivery, execution, and response are separate
//!   pipeline stages; execution is still sequential, so the cap is
//!   `1/max(stage)` — better, but it does not scale with threads.
//! * **SDPE** — one scheduler thread delivers the totally-ordered stream,
//!   tracks command interdependencies, and dispatches independent
//!   commands to a pool of workers. Conflicting commands serialize; the
//!   scheduler itself caps throughput at `1/sched` (the bottleneck the
//!   chapter identifies).
//! * **P-SMR** — no scheduler: worker *i* delivers group *g_i* directly
//!   from Multi-Ring Paxos. Independent commands execute concurrently;
//!   a multi-group command executes once, when its last occurrence has
//!   been merged, with every involved worker held at the barrier
//!   (§6.3.3, Fig. 6.2's synchronized mode).
//! * **EV (execute-verify)** — batches execute optimistically with no
//!   conflict tracking at all; a verification step then checks whether
//!   conflicting commands actually raced. A clean batch commits after
//!   one verification exchange; a dirty one rolls back and re-executes
//!   sequentially (§6.2.5). Verification of one batch pipelines with
//!   the execution of the next.

use std::collections::{HashMap, HashSet};

use abcast::MsgId;
use simnet::time::{Dur, Time};

use crate::command::PStored;

/// Core index of the network-delivery thread (shared with the protocol).
pub const DELIVERY_CORE: usize = 0;
/// Core index of the scheduler (SDPE) / dispatch (pipelined) stage.
pub const SCHED_CORE: usize = 1;
/// First worker core; worker `w` runs on `WORKER_CORE_BASE + w`.
pub const WORKER_CORE_BASE: usize = 2;

/// Replica execution model (§6.2's survey axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecModel {
    /// Single-threaded delivery + execution + response (§6.2.2).
    Sequential,
    /// Staged delivery/execution/response pipeline (§6.2.3).
    Pipelined,
    /// Sequential delivery, scheduler-dispatched parallel execution
    /// (§6.2.4) with the given worker-pool size.
    Sdpe {
        /// Worker threads in the execution pool.
        workers: usize,
    },
    /// Parallel delivery–parallel execution on Multi-Ring Paxos (§6.3)
    /// with one worker (and one multicast group) per conflict domain.
    Psmr {
        /// Worker threads (= multicast groups = conflict domains).
        workers: usize,
    },
    /// Execute-verify (§6.2.5): optimistic batched parallel execution,
    /// a verification round per batch, and whole-batch rollback with
    /// sequential re-execution when conflicting commands raced.
    Ev {
        /// Worker threads executing optimistically.
        workers: usize,
        /// Commands per verification batch.
        batch: usize,
    },
}

impl ExecModel {
    /// Worker threads the model runs.
    pub fn workers(&self) -> usize {
        match *self {
            ExecModel::Sequential | ExecModel::Pipelined => 1,
            ExecModel::Sdpe { workers }
            | ExecModel::Psmr { workers }
            | ExecModel::Ev { workers, .. } => workers,
        }
    }

    /// Cores a replica node needs (delivery + sched + workers + response).
    pub fn cores_needed(&self) -> usize {
        WORKER_CORE_BASE + self.workers() + 1
    }

    /// Core of the response stage.
    pub fn resp_core(&self) -> usize {
        WORKER_CORE_BASE + self.workers()
    }

    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ExecModel::Sequential => "sequential",
            ExecModel::Pipelined => "pipelined",
            ExecModel::Sdpe { .. } => "SDPE",
            ExecModel::Psmr { .. } => "P-SMR",
            ExecModel::Ev { .. } => "EV",
        }
    }
}

/// Per-stage cost constants of the replica thread model.
#[derive(Clone, Copy, Debug)]
pub struct EngineCosts {
    /// Delivery-side per-command handling (dequeue, lookup).
    pub dispatch: Dur,
    /// SDPE scheduler work per command (dependency check + dispatch).
    pub sched: Dur,
    /// P-SMR barrier entry/exit overhead per dependent command.
    pub sync: Dur,
    /// Response marshalling per reply.
    pub marshal: Dur,
    /// EV: one verification exchange per batch (replica hash round).
    pub verify: Dur,
    /// EV: a partial batch commits after this long (keeps closed-loop
    /// clients from deadlocking on a batch that never fills).
    pub ev_flush: Dur,
}

impl Default for EngineCosts {
    fn default() -> Self {
        EngineCosts {
            dispatch: Dur::micros(2),
            sched: Dur::micros(30),
            sync: Dur::micros(10),
            marshal: Dur::micros(4),
            verify: Dur::micros(150),
            ev_flush: Dur::millis(1),
        }
    }
}

/// An execution scheduled by the engine.
#[derive(Clone, Debug)]
pub struct Scheduled {
    /// Virtual time at which the response is ready to leave the replica
    /// (execution plus response marshalling).
    pub done: Time,
    /// Virtual time at which the command's execution finished (before
    /// the response stage; conflict serialization is judged on this).
    pub exec_end: Time,
    /// CPU charges to book for utilization metrics: `(core, cost)`.
    pub charges: Vec<(usize, Dur)>,
    /// Worker that executed the command.
    pub worker: usize,
}

/// Commands released by one engine call: `(id, schedule)` pairs. Most
/// models release at most the delivered command itself; EV releases a
/// whole batch when it commits.
pub type Deliveries = Vec<(MsgId, Scheduled)>;

/// One EV command awaiting its batch's verification.
#[derive(Debug)]
struct EvCmd {
    id: MsgId,
    gmask: u32,
    cost: Dur,
    start: Time,
    end: Time,
    worker: usize,
}

/// Virtual-time execution engine for one replica.
#[derive(Debug)]
pub struct Engine {
    model: ExecModel,
    costs: EngineCosts,
    /// Completion clock per worker thread.
    clocks: Vec<Time>,
    /// SDPE scheduler / pipelined dispatch stage clock.
    sched_clock: Time,
    /// Pipelined / SDPE response stage clock.
    resp_clock: Time,
    /// SDPE: completion time of the last command per conflict domain.
    domain_done: HashMap<u8, Time>,
    /// P-SMR: group-occurrence bits seen per pending multi-group command.
    seen: HashMap<MsgId, u32>,
    /// Commands already executed (dedups client retries).
    executed: HashSet<MsgId>,
    /// Dependent commands executed (barrier count).
    dependent_execs: u64,
    /// EV: the open batch, its opening time, and its members.
    ev_batch: Vec<EvCmd>,
    ev_opened: Option<Time>,
    ev_pending: HashSet<MsgId>,
    /// EV: batches rolled back and re-executed sequentially.
    ev_rollbacks: u64,
}

impl Engine {
    /// Creates an engine for `model` with the given stage costs.
    pub fn new(model: ExecModel, costs: EngineCosts) -> Engine {
        Engine {
            model,
            costs,
            clocks: vec![Time::ZERO; model.workers()],
            sched_clock: Time::ZERO,
            resp_clock: Time::ZERO,
            domain_done: HashMap::new(),
            seen: HashMap::new(),
            executed: HashSet::new(),
            dependent_execs: 0,
            ev_batch: Vec::new(),
            ev_opened: None,
            ev_pending: HashSet::new(),
            ev_rollbacks: 0,
        }
    }

    /// The engine's model.
    pub fn model(&self) -> ExecModel {
        self.model
    }

    /// Dependent (multi-worker) commands executed so far.
    pub fn dependent_execs(&self) -> u64 {
        self.dependent_execs
    }

    /// Multi-group commands still waiting for occurrences (P-SMR).
    pub fn pending_barriers(&self) -> usize {
        self.seen.len()
    }

    /// Whether `id` has already executed (a re-delivery of such a
    /// command is a client retry whose response was probably lost).
    pub fn is_executed(&self, id: MsgId) -> bool {
        self.executed.contains(&id)
    }

    /// EV batches rolled back and re-executed sequentially.
    pub fn ev_rollbacks(&self) -> u64 {
        self.ev_rollbacks
    }

    /// When the engine needs a [`Engine::flush`] call (an EV batch that
    /// is open but not full commits at this deadline).
    pub fn deadline(&self) -> Option<Time> {
        match self.model {
            ExecModel::Ev { .. } => self.ev_opened.map(|t| t + self.costs.ev_flush),
            _ => None,
        }
    }

    /// Commits a partial EV batch whose flush deadline has passed.
    pub fn flush(&mut self, now: Time) -> Deliveries {
        if self.deadline().is_some_and(|d| d <= now) {
            self.commit_ev()
        } else {
            Vec::new()
        }
    }

    /// Feeds one delivered occurrence of command `id` to the engine.
    ///
    /// `ring` identifies the group whose stream delivered this occurrence
    /// (P-SMR); pass `None` for totally-ordered (single-ring) models.
    /// Returns the executions this delivery releases: one, for most
    /// models; none, while a P-SMR barrier awaits occurrences or an EV
    /// batch fills; a whole batch, when an EV batch commits. Duplicate
    /// deliveries of an executed command release nothing.
    pub fn deliver(
        &mut self,
        id: MsgId,
        stored: &PStored,
        ring: Option<u8>,
        now: Time,
    ) -> Deliveries {
        if self.executed.contains(&id) {
            return Vec::new();
        }
        if let ExecModel::Ev { workers, batch } = self.model {
            return self.deliver_ev(id, stored, now, workers, batch);
        }
        let cost = stored.cmd.cost;
        let sched = match self.model {
            ExecModel::Ev { .. } => unreachable!("EV is dispatched above"),
            ExecModel::Sequential => {
                let total = self.costs.dispatch + cost + self.costs.marshal;
                let start = self.clocks[0].max(now);
                let done = start + total;
                self.clocks[0] = done;
                Scheduled {
                    done,
                    exec_end: start + self.costs.dispatch + cost,
                    charges: vec![(WORKER_CORE_BASE, total)],
                    worker: 0,
                }
            }
            ExecModel::Pipelined => {
                let d = self.sched_clock.max(now) + self.costs.dispatch;
                self.sched_clock = d;
                let e = self.clocks[0].max(d) + cost;
                self.clocks[0] = e;
                let m = self.resp_clock.max(e) + self.costs.marshal;
                self.resp_clock = m;
                Scheduled {
                    done: m,
                    exec_end: e,
                    charges: vec![
                        (SCHED_CORE, self.costs.dispatch),
                        (WORKER_CORE_BASE, cost),
                        (self.model.resp_core(), self.costs.marshal),
                    ],
                    worker: 0,
                }
            }
            ExecModel::Sdpe { .. } => {
                // Scheduler stage: dependency analysis is serial (§6.2.4).
                let s = self.sched_clock.max(now) + self.costs.sched;
                self.sched_clock = s;
                // Conflicting predecessors must finish first.
                let ready = stored
                    .cmd
                    .groups
                    .iter()
                    .filter_map(|g| self.domain_done.get(g))
                    .copied()
                    .fold(s, Time::max);
                // Dispatch to the least-loaded worker.
                let (w, &wclock) = self
                    .clocks
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &c)| c)
                    .expect("at least one worker");
                let start = ready.max(wclock);
                let e = start + cost;
                self.clocks[w] = e;
                for &g in &stored.cmd.groups {
                    self.domain_done.insert(g, e);
                }
                if stored.cmd.is_dependent() {
                    self.dependent_execs += 1;
                }
                let m = self.resp_clock.max(e) + self.costs.marshal;
                self.resp_clock = m;
                Scheduled {
                    done: m,
                    exec_end: e,
                    charges: vec![
                        (SCHED_CORE, self.costs.sched),
                        (WORKER_CORE_BASE + w, cost),
                        (self.model.resp_core(), self.costs.marshal),
                    ],
                    worker: w,
                }
            }
            ExecModel::Psmr { workers } => {
                let gmask = stored.cmd.group_mask();
                let bits = self.seen.entry(id).or_insert(0);
                match ring {
                    Some(g) => *bits |= 1 << g,
                    // No ring tag (tests, retries re-injected whole):
                    // treat as all occurrences present.
                    None => *bits = gmask,
                }
                if *bits & gmask != gmask {
                    return Vec::new(); // barrier: occurrences still missing
                }
                self.seen.remove(&id);
                let involved: Vec<usize> = stored
                    .cmd
                    .groups
                    .iter()
                    .map(|&g| g as usize)
                    .filter(|&g| g < workers)
                    .collect();
                debug_assert!(!involved.is_empty(), "command maps to no worker");
                // Barrier: the executing worker starts once every
                // involved worker has reached the command (§6.3.3).
                let mut start = now;
                for &w in &involved {
                    start = start.max(self.clocks[w]);
                }
                if involved.len() > 1 {
                    start += self.costs.sync;
                    self.dependent_execs += 1;
                }
                let e = start + self.costs.dispatch + cost;
                let exec = involved[0];
                for &w in &involved {
                    self.clocks[w] = e;
                }
                // The executing worker also marshals its own response —
                // there is no shared response stage to bottleneck on.
                let m = e + self.costs.marshal;
                self.clocks[exec] = m;
                Scheduled {
                    done: m,
                    exec_end: e,
                    charges: vec![(
                        WORKER_CORE_BASE + exec,
                        self.costs.dispatch + cost + self.costs.marshal,
                    )],
                    worker: exec,
                }
            }
        };
        self.executed.insert(id);
        vec![(id, sched)]
    }

    /// EV optimistic enqueue. The *mixer* (Eve's batch-formation stage)
    /// routes single-domain commands to a per-domain worker so they
    /// serialize instead of racing; only multi-domain commands — whose
    /// conflicts the mixer cannot fully contain — go to the least-loaded
    /// worker and may trigger a verification failure.
    fn deliver_ev(
        &mut self,
        id: MsgId,
        stored: &PStored,
        now: Time,
        workers: usize,
        batch: usize,
    ) -> Deliveries {
        if !self.ev_pending.insert(id) {
            return Vec::new(); // already enqueued in the open batch
        }
        let w = if stored.cmd.groups.len() == 1 {
            stored.cmd.groups[0] as usize % workers
        } else {
            self.clocks
                .iter()
                .enumerate()
                .min_by_key(|&(_, &c)| c)
                .map(|(i, _)| i)
                .expect("workers")
        };
        let wclock = self.clocks[w];
        let start = wclock.max(now);
        let end = start + stored.cmd.cost;
        self.clocks[w] = end;
        if stored.cmd.is_dependent() {
            self.dependent_execs += 1;
        }
        if self.ev_opened.is_none() {
            self.ev_opened = Some(now);
        }
        self.ev_batch.push(EvCmd {
            id,
            gmask: stored.cmd.group_mask(),
            cost: stored.cmd.cost,
            start,
            end,
            worker: w,
        });
        if self.ev_batch.len() >= batch {
            self.commit_ev()
        } else {
            Vec::new()
        }
    }

    /// EV batch verification: a clean batch commits behind one
    /// verification exchange (pipelined with the next batch's
    /// execution); a raced batch rolls back and re-executes
    /// sequentially, stalling every worker.
    fn commit_ev(&mut self) -> Deliveries {
        let batch = std::mem::take(&mut self.ev_batch);
        self.ev_opened = None;
        if batch.is_empty() {
            return Vec::new();
        }
        let raced = batch.iter().enumerate().any(|(i, a)| {
            batch[i + 1..]
                .iter()
                .any(|b| a.gmask & b.gmask != 0 && a.start < b.end && b.start < a.end)
        });
        let base = batch.iter().map(|c| c.end).fold(Time::ZERO, Time::max);
        let mut out = Vec::with_capacity(batch.len());
        if raced {
            self.ev_rollbacks += 1;
            // The optimistic work is wasted: re-execute everything in
            // delivery order on worker 0.
            let serial_total = batch.iter().fold(Dur::ZERO, |a, c| a + c.cost);
            let serial_end = base + serial_total;
            let vend = serial_end + self.costs.verify;
            for (i, c) in batch.iter().enumerate() {
                let m = self.resp_clock.max(vend) + self.costs.marshal;
                self.resp_clock = m;
                self.executed.insert(c.id);
                self.ev_pending.remove(&c.id);
                let mut charges = vec![(WORKER_CORE_BASE + c.worker, c.cost)];
                if i == 0 {
                    charges.push((WORKER_CORE_BASE, serial_total));
                    charges.push((SCHED_CORE, self.costs.verify));
                }
                out.push((c.id, Scheduled { done: m, exec_end: serial_end, charges, worker: 0 }));
            }
            // Batch barrier: every worker waits out the serial pass.
            for cl in self.clocks.iter_mut() {
                *cl = (*cl).max(serial_end);
            }
        } else {
            let vend = base + self.costs.verify;
            for (i, c) in batch.iter().enumerate() {
                let m = self.resp_clock.max(vend) + self.costs.marshal;
                self.resp_clock = m;
                self.executed.insert(c.id);
                self.ev_pending.remove(&c.id);
                let mut charges = vec![(WORKER_CORE_BASE + c.worker, c.cost)];
                if i == 0 {
                    charges.push((SCHED_CORE, self.costs.verify));
                }
                out.push((c.id, Scheduled { done: m, exec_end: c.end, charges, worker: c.worker }));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use simnet::ids::NodeId;

    use super::*;
    use crate::command::PCommand;

    fn cost() -> Dur {
        Dur::micros(100)
    }

    fn stored(groups: &[u8]) -> PStored {
        PStored {
            cmd: PCommand {
                groups: groups.to_vec(),
                writes: groups.iter().map(|&g| (g as u64, 1)).collect(),
                cost: cost(),
            },
            client: NodeId(0),
            reply_bytes: 64,
        }
    }

    fn costs() -> EngineCosts {
        EngineCosts {
            dispatch: Dur::micros(2),
            sched: Dur::micros(30),
            sync: Dur::micros(10),
            marshal: Dur::micros(4),
            ..EngineCosts::default()
        }
    }

    /// Unwraps the single execution a non-batching delivery releases.
    fn one(d: Deliveries) -> Scheduled {
        assert_eq!(d.len(), 1, "expected exactly one released execution");
        d.into_iter().next().expect("checked").1
    }

    #[test]
    fn sequential_serializes_everything() {
        let mut e = Engine::new(ExecModel::Sequential, costs());
        let a = one(e.deliver(MsgId(1), &stored(&[0]), None, Time::ZERO));
        let b = one(e.deliver(MsgId(2), &stored(&[0]), None, Time::ZERO));
        let per = Dur::micros(2 + 100 + 4);
        assert_eq!(a.done, Time::ZERO + per);
        assert_eq!(b.done, Time::ZERO + per + per);
    }

    #[test]
    fn pipelined_spacing_is_the_slowest_stage() {
        let mut e = Engine::new(ExecModel::Pipelined, costs());
        let mut last = Time::ZERO;
        let mut gaps = Vec::new();
        for i in 0..4 {
            let s = one(e.deliver(MsgId(i), &stored(&[0]), None, Time::ZERO));
            if i > 0 {
                gaps.push(s.done.saturating_since(last));
            }
            last = s.done;
        }
        // Steady state: one command per execution-stage slot.
        for g in gaps {
            assert_eq!(g, cost());
        }
    }

    #[test]
    fn pipelined_beats_sequential() {
        let (mut p, mut s) = (
            Engine::new(ExecModel::Pipelined, costs()),
            Engine::new(ExecModel::Sequential, costs()),
        );
        let n = 50;
        let (mut pd, mut sd) = (Time::ZERO, Time::ZERO);
        for i in 0..n {
            pd = one(p.deliver(MsgId(i), &stored(&[0]), None, Time::ZERO)).done;
            sd = one(s.deliver(MsgId(i), &stored(&[0]), None, Time::ZERO)).done;
        }
        assert!(pd < sd, "pipeline {pd:?} should finish before sequential {sd:?}");
    }

    #[test]
    fn sdpe_parallelizes_independent_commands() {
        let mut e = Engine::new(ExecModel::Sdpe { workers: 2 }, costs());
        let a = one(e.deliver(MsgId(1), &stored(&[0]), None, Time::ZERO));
        let b = one(e.deliver(MsgId(2), &stored(&[1]), None, Time::ZERO));
        assert_ne!(a.worker, b.worker);
        // Both executions overlap: second ends one sched-slot later, not
        // one execution later.
        assert!(b.done.saturating_since(a.done) < cost());
    }

    #[test]
    fn sdpe_serializes_conflicting_commands() {
        let mut e = Engine::new(ExecModel::Sdpe { workers: 4 }, costs());
        let a = one(e.deliver(MsgId(1), &stored(&[2]), None, Time::ZERO));
        let b = one(e.deliver(MsgId(2), &stored(&[2]), None, Time::ZERO));
        assert!(b.done.saturating_since(a.done) >= cost(), "same-domain commands must serialize");
    }

    #[test]
    fn sdpe_scheduler_is_the_cap() {
        // With plenty of workers and all-independent commands, spacing
        // converges to the scheduler cost.
        let mut e = Engine::new(ExecModel::Sdpe { workers: 16 }, costs());
        let mut last = Time::ZERO;
        let mut gap = Dur::ZERO;
        for i in 0..32 {
            let s = one(e.deliver(MsgId(i), &stored(&[(i % 16) as u8]), None, Time::ZERO));
            gap = s.done.saturating_since(last);
            last = s.done;
        }
        assert_eq!(gap, Dur::micros(30));
    }

    #[test]
    fn psmr_independent_groups_run_fully_parallel() {
        let mut e = Engine::new(ExecModel::Psmr { workers: 2 }, costs());
        let a = one(e.deliver(MsgId(1), &stored(&[0]), Some(0), Time::ZERO));
        let b = one(e.deliver(MsgId(2), &stored(&[1]), Some(1), Time::ZERO));
        assert_eq!(a.done, b.done, "different workers execute concurrently");
    }

    #[test]
    fn psmr_multi_group_waits_for_all_occurrences() {
        let mut e = Engine::new(ExecModel::Psmr { workers: 2 }, costs());
        let dep = stored(&[0, 1]);
        assert!(e.deliver(MsgId(5), &dep, Some(0), Time::ZERO).is_empty());
        assert_eq!(e.pending_barriers(), 1);
        let s = one(e.deliver(MsgId(5), &dep, Some(1), Time::ZERO + Dur::micros(50)));
        assert_eq!(e.pending_barriers(), 0);
        assert_eq!(e.dependent_execs(), 1);
        // Started at the merge of the second occurrence plus sync.
        assert_eq!(s.done, Time::ZERO + Dur::micros(50 + 10 + 2 + 100 + 4));
    }

    #[test]
    fn psmr_barrier_blocks_both_workers() {
        let mut e = Engine::new(ExecModel::Psmr { workers: 2 }, costs());
        // Occupy worker 1 until t=106us.
        let w1 = one(e.deliver(MsgId(1), &stored(&[1]), Some(1), Time::ZERO));
        // Dependent command: worker 0 idle, worker 1 busy.
        let dep = stored(&[0, 1]);
        e.deliver(MsgId(2), &dep, Some(0), Time::ZERO);
        let s = one(e.deliver(MsgId(2), &dep, Some(1), Time::ZERO));
        // Barrier start = worker 1's clock (the later one).
        assert!(s.done > w1.done + cost());
        // Worker 0 is held too: its next command starts after the barrier.
        let nxt = one(e.deliver(MsgId(3), &stored(&[0]), Some(0), Time::ZERO));
        assert!(nxt.done > s.done);
    }

    #[test]
    fn psmr_duplicate_occurrence_does_not_fire_early() {
        let mut e = Engine::new(ExecModel::Psmr { workers: 2 }, costs());
        let dep = stored(&[0, 1]);
        assert!(e.deliver(MsgId(9), &dep, Some(0), Time::ZERO).is_empty());
        assert!(e.deliver(MsgId(9), &dep, Some(0), Time::ZERO).is_empty(), "retry, same ring");
        assert!(!e.deliver(MsgId(9), &dep, Some(1), Time::ZERO).is_empty());
    }

    #[test]
    fn executed_commands_are_deduplicated() {
        for model in [
            ExecModel::Sequential,
            ExecModel::Pipelined,
            ExecModel::Sdpe { workers: 2 },
            ExecModel::Psmr { workers: 2 },
        ] {
            let mut e = Engine::new(model, costs());
            assert!(!e.deliver(MsgId(1), &stored(&[0]), Some(0), Time::ZERO).is_empty());
            assert!(
                e.deliver(MsgId(1), &stored(&[0]), Some(0), Time::ZERO).is_empty(),
                "{model:?} must dedup re-deliveries"
            );
        }
    }

    #[test]
    fn ev_commits_a_clean_batch_after_verification() {
        let mut e = Engine::new(ExecModel::Ev { workers: 2, batch: 2 }, costs());
        assert!(e.deliver(MsgId(1), &stored(&[0]), None, Time::ZERO).is_empty());
        assert!(e.deadline().is_some(), "open batch must have a flush deadline");
        let out = e.deliver(MsgId(2), &stored(&[1]), None, Time::ZERO);
        assert_eq!(out.len(), 2, "full batch commits both commands");
        assert_eq!(e.ev_rollbacks(), 0);
        assert!(e.deadline().is_none(), "committed batch clears the deadline");
        // Both executed optimistically in parallel; responses released
        // after one verification exchange.
        let verify = Dur::micros(150);
        assert!(out[0].1.done >= Time::ZERO + cost() + verify);
        assert_ne!(out[0].1.worker, out[1].1.worker);
    }

    #[test]
    fn ev_racing_conflict_rolls_back_the_batch() {
        let mut e = Engine::new(ExecModel::Ev { workers: 2, batch: 2 }, costs());
        // Two multi-domain commands sharing domain 1 land on different
        // workers (the mixer cannot contain them) and overlap: a race.
        e.deliver(MsgId(1), &stored(&[0, 1]), None, Time::ZERO);
        let out = e.deliver(MsgId(2), &stored(&[1, 2]), None, Time::ZERO);
        assert_eq!(out.len(), 2);
        assert_eq!(e.ev_rollbacks(), 1, "racing batch must roll back");
        // Serial re-execution: both cost units after the optimistic pass.
        let serial_end = Time::ZERO + cost() + cost() + cost();
        assert!(out[1].1.exec_end >= serial_end);
    }

    #[test]
    fn ev_mixer_serializes_same_domain_commands() {
        // The mixer routes same-domain commands to the same worker:
        // they serialize instead of racing — no rollback.
        let mut e = Engine::new(ExecModel::Ev { workers: 2, batch: 2 }, costs());
        e.deliver(MsgId(1), &stored(&[0]), None, Time::ZERO);
        let out = e.deliver(MsgId(2), &stored(&[0]), None, Time::ZERO);
        assert_eq!(out.len(), 2);
        assert_eq!(e.ev_rollbacks(), 0, "mixer must prevent same-domain races");
        assert_eq!(out[0].1.worker, out[1].1.worker);
    }

    #[test]
    fn ev_flush_commits_a_partial_batch() {
        let mut e = Engine::new(ExecModel::Ev { workers: 2, batch: 100 }, costs());
        e.deliver(MsgId(1), &stored(&[0]), None, Time::ZERO);
        let dl = e.deadline().expect("deadline armed");
        assert_eq!(dl, Time::ZERO + Dur::millis(1));
        assert!(e.flush(Time::ZERO + Dur::micros(500)).is_empty(), "too early to flush");
        let out = e.flush(dl);
        assert_eq!(out.len(), 1, "deadline flush commits the partial batch");
        assert!(e.deadline().is_none());
    }

    #[test]
    fn ev_dedups_pending_and_committed_commands() {
        let mut e = Engine::new(ExecModel::Ev { workers: 2, batch: 2 }, costs());
        e.deliver(MsgId(1), &stored(&[0]), None, Time::ZERO);
        assert!(e.deliver(MsgId(1), &stored(&[0]), None, Time::ZERO).is_empty(), "pending dup");
        let out = e.deliver(MsgId(2), &stored(&[1]), None, Time::ZERO);
        assert_eq!(out.len(), 2, "dup must not occupy a batch slot twice");
        assert!(e.is_executed(MsgId(1)));
        assert!(e.deliver(MsgId(1), &stored(&[0]), None, Time::ZERO).is_empty(), "committed dup");
    }

    #[test]
    fn model_geometry() {
        assert_eq!(ExecModel::Sequential.workers(), 1);
        assert_eq!(ExecModel::Psmr { workers: 8 }.workers(), 8);
        assert_eq!(ExecModel::Sdpe { workers: 4 }.cores_needed(), 7);
        assert_eq!(ExecModel::Pipelined.resp_core(), 3);
        assert_eq!(ExecModel::Psmr { workers: 2 }.label(), "P-SMR");
        assert_eq!(ExecModel::Ev { workers: 4, batch: 50 }.workers(), 4);
        assert_eq!(ExecModel::Ev { workers: 4, batch: 50 }.label(), "EV");
    }
}
