//! The parallel service's state: a key/value store divided into conflict
//! domains, with per-domain execution histories for the consistency
//! checks of §6.3 (conflicting commands must execute in the same order
//! on every replica).

use std::collections::HashMap;

use abcast::MsgId;

use crate::command::PCommand;

/// Replica state of the parallel service.
///
/// Besides the key/value data, the store records the order in which each
/// conflict domain executed commands and an order-sensitive digest of the
/// whole execution. Replicas of one deployment must agree on all three.
#[derive(Debug, Default)]
pub struct ObjStore {
    vals: HashMap<u64, u64>,
    history: Vec<Vec<MsgId>>,
    digest: u64,
    executed: u64,
}

impl ObjStore {
    /// Creates a store with `domains` conflict domains.
    pub fn new(domains: usize) -> ObjStore {
        ObjStore {
            vals: HashMap::new(),
            history: vec![Vec::new(); domains],
            digest: 0xcbf29ce484222325, // FNV offset basis
            executed: 0,
        }
    }

    /// Applies `cmd` (identified by `id`): writes every `(key, value)`
    /// pair and appends `id` to the history of every touched domain.
    pub fn apply(&mut self, id: MsgId, cmd: &PCommand) {
        for &(k, v) in &cmd.writes {
            self.vals.insert(k, v);
        }
        for &g in &cmd.groups {
            if let Some(h) = self.history.get_mut(g as usize) {
                h.push(id);
            }
        }
        // FNV-1a over the executed command id: order sensitive.
        self.digest ^= id.0;
        self.digest = self.digest.wrapping_mul(0x100000001b3);
        self.executed += 1;
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.vals.get(&key).copied()
    }

    /// Commands executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Order-sensitive digest of the execution (identical across the
    /// replicas of one deployment).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The execution history of conflict domain `g`.
    pub fn history(&self, g: usize) -> &[MsgId] {
        &self.history[g]
    }

    /// Number of conflict domains.
    pub fn domains(&self) -> usize {
        self.history.len()
    }

    /// All stored key/value pairs, sorted by key (for state-equivalence
    /// checks).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.vals.iter().map(|(&k, &x)| (k, x)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use simnet::time::Dur;

    use super::*;

    fn cmd(groups: &[u8], writes: &[(u64, u64)]) -> PCommand {
        PCommand { groups: groups.to_vec(), writes: writes.to_vec(), cost: Dur::micros(10) }
    }

    #[test]
    fn apply_writes_values_and_history() {
        let mut s = ObjStore::new(4);
        s.apply(MsgId(1), &cmd(&[0, 2], &[(5, 50), (9, 90)]));
        assert_eq!(s.get(5), Some(50));
        assert_eq!(s.get(9), Some(90));
        assert_eq!(s.history(0), &[MsgId(1)]);
        assert!(s.history(1).is_empty());
        assert_eq!(s.history(2), &[MsgId(1)]);
        assert_eq!(s.executed(), 1);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let (mut a, mut b) = (ObjStore::new(2), ObjStore::new(2));
        let (c1, c2) = (cmd(&[0], &[(1, 1)]), cmd(&[1], &[(2, 2)]));
        a.apply(MsgId(1), &c1);
        a.apply(MsgId(2), &c2);
        b.apply(MsgId(2), &c2);
        b.apply(MsgId(1), &c1);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn same_order_same_digest() {
        let (mut a, mut b) = (ObjStore::new(2), ObjStore::new(2));
        for s in [&mut a, &mut b] {
            s.apply(MsgId(3), &cmd(&[0], &[(1, 10)]));
            s.apply(MsgId(4), &cmd(&[0, 1], &[(1, 11), (2, 22)]));
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.history(0), b.history(0));
        assert_eq!(a.get(1), Some(11));
    }

    #[test]
    fn later_write_wins() {
        let mut s = ObjStore::new(1);
        s.apply(MsgId(1), &cmd(&[0], &[(7, 1)]));
        s.apply(MsgId(2), &cmd(&[0], &[(7, 2)]));
        assert_eq!(s.get(7), Some(2));
        assert_eq!(s.history(0), &[MsgId(1), MsgId(2)]);
    }
}
