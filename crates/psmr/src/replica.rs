//! The parallel-service replica: an ordering-layer learner feeding one
//! of the ch. 6 execution engines.
//!
//! The same wrapper serves both delivery layers: the single-ring models
//! (sequential, pipelined, SDPE — §6.2.2–6.2.4) embed an M-Ring Paxos
//! learner and read the totally-ordered log; P-SMR (§6.3) embeds a
//! Multi-Ring Paxos learner and reads the ring-tagged merge stream, so
//! each delivery is routed to the worker thread of its group.

use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

use abcast::{MsgId, SharedLog};
use multiring::RingSink;
use simnet::prelude::*;

use crate::command::PRegistry;
use crate::engine::{Deliveries, Engine};
use crate::store::ObjStore;

/// Latency samples recorded at the parallel service's clients.
pub const PSMR_LATENCY: &str = "psmr.latency";
/// Commands completed, per client.
pub const PSMR_COMPLETED: &str = "psmr.completed";
/// Commands submitted, per client.
pub const PSMR_SUBMITTED: &str = "psmr.submitted";
/// Dependent (multi-worker) commands executed, per replica.
pub const PSMR_DEP_EXECS: &str = "psmr.dep_execs";

const T_PRESP: u64 = 43 << 56;
const T_EVFLUSH: u64 = 45 << 56;
const KIND_MASK: u64 = 0xff << 56;

/// Response of the parallel service.
#[derive(Clone, Copy, Debug)]
pub struct PResponse {
    /// The completed command.
    pub id: MsgId,
}

/// A retrying client asks the designated replica to re-send a response
/// it may have lost (real SMR client libraries pair request retry with a
/// reply query — the ordering layer delivers each command only once).
#[derive(Clone, Copy, Debug)]
pub struct PReplyQuery {
    /// The command whose response went missing.
    pub id: MsgId,
    /// The querying client.
    pub from: NodeId,
}

/// How the replica consumes ordered deliveries.
pub enum DeliverySource {
    /// Totally-ordered log of a single ring (`log_index` = this
    /// replica's learner index).
    TotalOrder {
        /// The ring's shared delivery log.
        log: SharedLog,
        /// This replica's learner index in the log.
        log_index: usize,
    },
    /// Ring-tagged merge stream of Multi-Ring Paxos (P-SMR).
    RingTagged {
        /// The `(ring, message)` stream in merge order.
        sink: RingSink,
    },
}

/// A replica of the parallel service over any [`DeliverySource`].
pub struct ParallelReplica<I: Actor> {
    inner: I,
    source: DeliverySource,
    cursor: usize,
    me: NodeId,
    /// Replicas of the deployment, in a fixed shared order (designated
    /// responder selection).
    peers: Vec<NodeId>,
    registry: PRegistry,
    engine: Engine,
    store: Arc<Mutex<ObjStore>>,
    dep_execs_reported: u64,
    resp_q: VecDeque<(Time, MsgId, NodeId, u32)>,
}

impl<I: Actor> ParallelReplica<I> {
    /// Creates a replica wrapping the ordering-layer learner `inner`.
    pub fn new(
        inner: I,
        source: DeliverySource,
        me: NodeId,
        peers: Vec<NodeId>,
        registry: PRegistry,
        engine: Engine,
        store: Arc<Mutex<ObjStore>>,
    ) -> ParallelReplica<I> {
        ParallelReplica {
            inner,
            source,
            cursor: 0,
            me,
            peers,
            registry,
            engine,
            store,
            dep_execs_reported: 0,
            resp_q: VecDeque::new(),
        }
    }

    /// Whether this replica answers command `id` (one replica responds,
    /// chosen deterministically by id).
    fn is_designated(&self, id: MsgId) -> bool {
        if self.peers.is_empty() {
            return true;
        }
        let idx = (id.0 as usize) % self.peers.len();
        self.peers[idx] == self.me
    }

    /// Pulls newly delivered occurrences from the source.
    fn next_delivery(&mut self) -> Option<(Option<u8>, MsgId)> {
        match &self.source {
            DeliverySource::TotalOrder { log, log_index } => {
                let log = log.lock().unwrap();
                let seq = log.sequence(*log_index);
                if self.cursor >= seq.len() {
                    return None;
                }
                Some((None, seq[self.cursor]))
            }
            DeliverySource::RingTagged { sink } => {
                let sink = sink.lock().unwrap();
                if self.cursor >= sink.len() {
                    return None;
                }
                let (ring, id) = sink[self.cursor];
                Some((Some(ring), id))
            }
        }
    }

    fn drain(&mut self, ctx: &mut Ctx) {
        while let Some((ring, id)) = self.next_delivery() {
            self.cursor += 1;
            let Some(stored) = self.registry.get(id) else { continue };
            let already_executed = self.engine.is_executed(id);
            let released = self.engine.deliver(id, &stored, ring, ctx.now());
            if released.is_empty() {
                // A re-delivery of an executed command is a client retry:
                // its response was lost, so the designated replica
                // answers again (the command stays registered until the
                // client hears back).
                if already_executed && self.is_designated(id) {
                    ctx.udp_send(stored.client, PResponse { id }, stored.reply_bytes);
                }
                continue;
            }
            self.process(released, ctx);
        }
        let deps = self.engine.dependent_execs();
        if deps > self.dep_execs_reported {
            ctx.counter_add(PSMR_DEP_EXECS, deps - self.dep_execs_reported);
            self.dep_execs_reported = deps;
        }
        self.arm_flush(ctx);
    }

    /// Applies released executions to the service state and queues their
    /// responses (EV commits release whole batches at once).
    fn process(&mut self, released: Deliveries, ctx: &mut Ctx) {
        for (did, sched) in released {
            for (core, cost) in &sched.charges {
                ctx.charge_cpu(*core, *cost);
            }
            let Some(dstored) = self.registry.get(did) else { continue };
            self.store.lock().unwrap().apply(did, &dstored.cmd);
            if self.is_designated(did) {
                self.resp_q.push_back((sched.done, did, dstored.client, dstored.reply_bytes));
                ctx.set_timer(sched.done.saturating_since(ctx.now()), TimerToken(T_PRESP));
            }
        }
    }

    /// Arms a timer for an EV batch that must commit by deadline.
    fn arm_flush(&mut self, ctx: &mut Ctx) {
        if let Some(dl) = self.engine.deadline() {
            ctx.set_timer(dl.saturating_since(ctx.now()), TimerToken(T_EVFLUSH));
        }
    }

    fn flush_responses(&mut self, ctx: &mut Ctx) {
        // Completion times are not monotone across workers: scan for all
        // due responses rather than relying on FIFO order.
        let now = ctx.now();
        let mut i = 0;
        while i < self.resp_q.len() {
            if self.resp_q[i].0 <= now {
                let (_, id, client, bytes) = self.resp_q.remove(i).expect("index in bounds");
                ctx.udp_send(client, PResponse { id }, bytes);
            } else {
                i += 1;
            }
        }
    }

    /// The replica's service state (shared handle for checks).
    pub fn store(&self) -> Arc<Mutex<ObjStore>> {
        self.store.clone()
    }
}

impl<I: Actor> Actor for ParallelReplica<I> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        if let Some(&PReplyQuery { id, from }) = env.payload.downcast_ref::<PReplyQuery>() {
            ctx.counter_add("psmr.reply_queries", 1);
            // Answer only for commands that executed and whose response
            // already left (a queued response will go out on its own).
            let queued = self.resp_q.iter().any(|&(_, qid, _, _)| qid == id);
            if self.engine.is_executed(id) && self.is_designated(id) && !queued {
                ctx.counter_add("psmr.reply_resends", 1);
                if let Some(stored) = self.registry.get(id) {
                    ctx.udp_send(from, PResponse { id }, stored.reply_bytes);
                }
            }
            return;
        }
        self.inner.on_message(env, ctx);
        self.drain(ctx);
        self.flush_responses(ctx);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        if token.0 & KIND_MASK == T_PRESP {
            self.flush_responses(ctx);
            return;
        }
        if token.0 & KIND_MASK == T_EVFLUSH {
            let released = self.engine.flush(ctx.now());
            self.process(released, ctx);
            self.flush_responses(ctx);
            self.arm_flush(ctx);
            return;
        }
        self.inner.on_timer(token, ctx);
        self.drain(ctx);
        self.flush_responses(ctx);
    }
}
