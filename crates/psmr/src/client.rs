//! Closed-loop clients of the parallel service and the §6.5 workload
//! shapes: independent, dependent, mixed, and skewed command streams.
//!
//! The client proxy performs P-SMR's group mapping (§6.3.2): it derives
//! the multicast groups of every command from the conflict domains the
//! command accesses, then multicasts the command to those groups — one
//! proposal per involved ring. Single-ring models receive the same
//! commands through their one ordering ring.

use std::collections::HashSet;

use abcast::MsgId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ringpaxos::msg::MMsg;
use ringpaxos::value::{Value, ALL_PARTITIONS};
use simnet::prelude::*;
use workload::{rotation_pick, RetryDecision, RetryPolicy, Session};

use crate::command::{PCommand, PRegistry, PStored};
use crate::replica::{PReplyQuery, PResponse, PSMR_COMPLETED, PSMR_LATENCY, PSMR_SUBMITTED};

const T_RETRY: u64 = 44 << 56;

/// Workload of the §6.5 experiments.
#[derive(Clone, Copy, Debug)]
pub struct PsmrWorkload {
    /// Conflict domains (= multicast groups = P-SMR workers).
    pub n_groups: usize,
    /// Percentage of commands that are dependent (multi-group).
    pub dep_pct: u32,
    /// Groups a dependent command touches; `0` means all groups.
    pub dep_span: usize,
    /// Skew: percentage of independent commands directed at group 0
    /// *in addition* to its uniform share; `0` = uniform (§6.5.7).
    pub hot_pct: u32,
    /// Modelled service time per command.
    pub cost: Dur,
    /// Command size on the wire.
    pub cmd_bytes: u32,
    /// Reply size.
    pub reply_bytes: u32,
    /// Keys per conflict domain.
    pub keys_per_group: u64,
}

impl Default for PsmrWorkload {
    fn default() -> Self {
        PsmrWorkload {
            n_groups: 4,
            dep_pct: 0,
            dep_span: 0,
            hot_pct: 0,
            cost: Dur::micros(100),
            cmd_bytes: 200,
            reply_bytes: 64,
            keys_per_group: 100_000,
        }
    }
}

impl PsmrWorkload {
    /// Draws the next command.
    pub fn next_command(&self, rng: &mut SmallRng) -> PCommand {
        let dependent = self.dep_pct > 0 && rng.gen_range(0..100) < self.dep_pct;
        let groups: Vec<u8> = if dependent {
            let span = if self.dep_span == 0 || self.dep_span >= self.n_groups {
                self.n_groups
            } else {
                self.dep_span.max(2)
            };
            if span == self.n_groups {
                (0..self.n_groups as u8).collect()
            } else {
                let mut set = HashSet::new();
                while set.len() < span {
                    set.insert(rng.gen_range(0..self.n_groups as u8));
                }
                let mut v: Vec<u8> = set.into_iter().collect();
                v.sort_unstable();
                v
            }
        } else {
            let g = if self.hot_pct > 0 && rng.gen_range(0..100) < self.hot_pct {
                0
            } else {
                rng.gen_range(0..self.n_groups as u8)
            };
            vec![g]
        };
        let writes = groups
            .iter()
            .map(|&g| {
                let key = g as u64 * self.keys_per_group + rng.gen_range(0..self.keys_per_group);
                (key, rng.gen::<u64>())
            })
            .collect();
        PCommand { groups, writes, cost: self.cost }
    }
}

/// Where the client proposes commands. Besides the deployment-time
/// coordinator(s) it carries the full ring membership(s): after a
/// coordinator failover the client does not learn the new leader
/// directly — it re-looks it up by rotating retries across the ring
/// members, any live one of which relays the proposal to the
/// coordinator of its current view.
#[derive(Clone, Debug)]
pub enum PTarget {
    /// One ordering ring (sequential / pipelined / SDPE models).
    SingleRing {
        /// The ring's coordinator.
        coordinator: NodeId,
        /// Every ring member, for failover retry rotation.
        members: Vec<NodeId>,
    },
    /// One ring per group (P-SMR): `coordinators[g]` is group `g`'s
    /// ring coordinator.
    MultiRing {
        /// Ring coordinators indexed by group.
        coordinators: Vec<NodeId>,
        /// Ring members indexed by group, for failover retry rotation.
        members: Vec<Vec<NodeId>>,
    },
}

impl PTarget {
    /// The submission point of `group` at rotation `cursor`: the known
    /// coordinator first (cursor 0), then round-robin over the ring
    /// members — any live one relays to the coordinator it believes in.
    fn pick(&self, group: usize, cursor: usize) -> NodeId {
        let (coordinator, members) = match self {
            PTarget::SingleRing { coordinator, members } => (*coordinator, members),
            PTarget::MultiRing { coordinators, members } => (coordinators[group], &members[group]),
        };
        rotation_pick(coordinator, members, cursor)
    }

    fn n_groups(&self) -> usize {
        match self {
            PTarget::SingleRing { .. } => 1,
            PTarget::MultiRing { coordinators, .. } => coordinators.len(),
        }
    }
}

/// A closed-loop client of the parallel service.
pub struct PsmrClient {
    me: NodeId,
    target: PTarget,
    /// Replica nodes, in the deployment's shared order (reply queries go
    /// to the designated responder).
    replicas: Vec<NodeId>,
    registry: PRegistry,
    workload: PsmrWorkload,
    /// Deadline/backoff/abandon knobs of the shared session tier; the
    /// defaults are the constants this client used to hard-code.
    policy: RetryPolicy,
    rng: SmallRng,
    outstanding: Option<Session>,
    next_seq: u64,
    stop_at: Option<Time>,
    /// Per-group submission cursor into [`PTarget::pick`]'s rotation.
    /// Starts at the deployment-time coordinator and advances on every
    /// blown deadline — and *stays* there on success, so after a
    /// coordinator failover new commands go straight to a live member
    /// instead of re-paying a timeout against the dead leader each time.
    cursors: Vec<usize>,
}

impl PsmrClient {
    /// Creates a client at node `me` with its own deterministic RNG.
    pub fn new(
        me: NodeId,
        target: PTarget,
        replicas: Vec<NodeId>,
        registry: PRegistry,
        workload: PsmrWorkload,
        seed: u64,
        stop_at: Option<Time>,
    ) -> PsmrClient {
        let cursors = vec![0; target.n_groups()];
        PsmrClient {
            me,
            target,
            replicas,
            registry,
            workload,
            policy: RetryPolicy::default(),
            rng: SmallRng::seed_from_u64(seed),
            outstanding: None,
            next_seq: 0,
            stop_at,
            cursors,
        }
    }

    /// Overrides the retry policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> PsmrClient {
        self.policy = policy;
        self
    }

    fn send_next(&mut self, ctx: &mut Ctx) {
        if self.stop_at.is_some_and(|t| ctx.now() >= t) {
            self.outstanding = None;
            return;
        }
        let cmd = self.workload.next_command(&mut self.rng);
        let id = MsgId(((self.me.0 as u64) << 40) | self.next_seq);
        self.next_seq += 1;
        self.registry.put(
            id,
            PStored { cmd: cmd.clone(), client: self.me, reply_bytes: self.workload.reply_bytes },
        );
        self.outstanding = Some(Session::open(id, ctx.now(), &self.policy));
        self.submit(id, &cmd, ctx);
        ctx.counter_add(PSMR_SUBMITTED, 1);
    }

    fn submit(&mut self, id: MsgId, cmd: &PCommand, ctx: &mut Ctx) {
        let v = Value {
            id,
            proposer: self.me,
            seq: id.0 & 0xff_ffff_ffff,
            bytes: self.workload.cmd_bytes,
            submitted: ctx.now(),
            mask: ALL_PARTITIONS,
        };
        // One proposal per involved group's ring (§6.3.2's group mapping
        // at the client proxy); single-ring models involve exactly ring 0.
        let groups: &[u8] = match &self.target {
            PTarget::SingleRing { .. } => &[0],
            PTarget::MultiRing { .. } => &cmd.groups,
        };
        for &g in groups {
            let dst = self.target.pick(g as usize, self.cursors[g as usize]);
            ctx.udp_send(dst, MMsg::Propose(v), self.workload.cmd_bytes);
        }
    }

    /// The outstanding command blew its deadline: resubmit with
    /// exponential backoff, rotating the target across ring members
    /// (leader re-lookup after a coordinator failover), paired with a
    /// reply query in case only the response was lost. Gives up after
    /// [`RetryPolicy::max_attempts`] so the closed loop keeps flowing.
    fn retry_due(&mut self, ctx: &mut Ctx) {
        let policy = self.policy;
        let Some(p) = self.outstanding.as_mut() else { return };
        let id = match p.poll(ctx.now(), &policy) {
            RetryDecision::Wait => return,
            RetryDecision::Abandon => {
                ctx.counter_add("psmr.abandoned", 1);
                self.outstanding = None;
                self.send_next(ctx);
                return;
            }
            RetryDecision::Resubmit { .. } => p.id,
        };
        let Some(stored) = self.registry.get(id) else { return };
        ctx.counter_add("psmr.retries", 1);
        let cmd = stored.cmd.clone();
        // Rotate every involved group's submission point before
        // resubmitting; the cursor is sticky, so once it lands on a
        // live member subsequent commands skip the dead leader entirely.
        match &self.target {
            PTarget::SingleRing { .. } => self.cursors[0] += 1,
            PTarget::MultiRing { .. } => {
                for &g in &cmd.groups {
                    self.cursors[g as usize] += 1;
                }
            }
        }
        self.submit(id, &cmd, ctx);
        // The command may have executed already with only its response
        // lost (the ordering layer delivers each command once).
        if !self.replicas.is_empty() {
            let designated = self.replicas[(id.0 as usize) % self.replicas.len()];
            let me = self.me;
            ctx.udp_send(designated, PReplyQuery { id, from: me }, 64);
        }
    }
}

// Default `on_batch`: a closed-loop client has at most one outstanding
// command, so same-instant delivery runs of responses do not occur and
// there is nothing to amortize per burst.
impl Actor for PsmrClient {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.send_next(ctx);
        ctx.set_timer(self.policy.tick, TimerToken(T_RETRY));
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(&PResponse { id }) = env.payload.downcast_ref::<PResponse>() else {
            return;
        };
        let Some(p) = self.outstanding.as_ref() else { return };
        if p.id != id {
            return; // stale response of a retried or abandoned command
        }
        let started = p.started;
        self.outstanding = None;
        // The entry stays registered: lagging replicas may still be
        // recovering this command's delivery via retransmission, and the
        // registry stands in for payload retrieval (§3.3.4). A real
        // deployment prunes with the ring's GC watermark instead.
        // The reply strictly follows the request; `since` debug-asserts
        // that instead of masking an inversion as a zero latency.
        ctx.record_latency(PSMR_LATENCY, ctx.now().since(started));
        ctx.counter_add(PSMR_COMPLETED, 1);
        self.send_next(ctx);
    }

    fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
        if self.outstanding.is_some() {
            self.retry_due(ctx);
        } else if self.stop_at.is_none_or(|t| ctx.now() < t) {
            self.send_next(ctx);
        }
        ctx.set_timer(self.policy.tick, TimerToken(T_RETRY));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn independent_commands_touch_one_group() {
        let w = PsmrWorkload { dep_pct: 0, ..PsmrWorkload::default() };
        let mut r = rng();
        for _ in 0..100 {
            let c = w.next_command(&mut r);
            assert_eq!(c.groups.len(), 1);
            assert!((c.groups[0] as usize) < w.n_groups);
            assert_eq!(c.writes.len(), 1);
        }
    }

    #[test]
    fn dependent_commands_touch_all_groups_by_default() {
        let w = PsmrWorkload { dep_pct: 100, ..PsmrWorkload::default() };
        let mut r = rng();
        let c = w.next_command(&mut r);
        assert_eq!(c.groups, vec![0, 1, 2, 3]);
        assert_eq!(c.writes.len(), 4);
    }

    #[test]
    fn dep_span_limits_dependent_width() {
        let w = PsmrWorkload { dep_pct: 100, dep_span: 2, n_groups: 8, ..PsmrWorkload::default() };
        let mut r = rng();
        for _ in 0..50 {
            let c = w.next_command(&mut r);
            assert_eq!(c.groups.len(), 2);
            assert!(c.groups[0] < c.groups[1], "groups sorted and distinct");
        }
    }

    #[test]
    fn mixed_ratio_is_respected() {
        let w = PsmrWorkload { dep_pct: 30, ..PsmrWorkload::default() };
        let mut r = rng();
        let dep = (0..2000).filter(|_| w.next_command(&mut r).is_dependent()).count();
        assert!((400..800).contains(&dep), "~30% dependent, got {dep}/2000");
    }

    #[test]
    fn skew_prefers_group_zero() {
        let w = PsmrWorkload { hot_pct: 80, ..PsmrWorkload::default() };
        let mut r = rng();
        let hot = (0..1000).filter(|_| w.next_command(&mut r).groups[0] == 0).count();
        assert!(hot > 700, "hot group should dominate, got {hot}/1000");
    }

    #[test]
    fn keys_stay_in_their_domain_range() {
        let w = PsmrWorkload { dep_pct: 50, ..PsmrWorkload::default() };
        let mut r = rng();
        for _ in 0..200 {
            let c = w.next_command(&mut r);
            for (&g, &(k, _)) in c.groups.iter().zip(&c.writes) {
                let base = g as u64 * w.keys_per_group;
                assert!((base..base + w.keys_per_group).contains(&k));
            }
        }
    }
}
