//! # psmr — parallel state-machine replication (thesis ch. 6)
//!
//! State-machine replication demands sequential execution; multi-core
//! services demand concurrency. This crate reproduces the chapter's
//! survey of ways to reconcile the two, and its contribution, **P-SMR**:
//!
//! * [`ExecModel::Sequential`] — one thread delivers, executes, responds
//!   (§6.2.2).
//! * [`ExecModel::Pipelined`] — staged delivery/execution/response
//!   pipeline; execution still sequential (§6.2.3).
//! * [`ExecModel::Sdpe`] — sequential delivery, parallel execution: a
//!   scheduler thread tracks command interdependencies and dispatches
//!   independent commands onto a worker pool (§6.2.4).
//! * [`ExecModel::Psmr`] — parallel delivery, parallel execution: one
//!   Multi-Ring Paxos group per worker thread; the client proxy maps
//!   each command to the groups of the conflict domains it accesses.
//!   Independent commands flow to distinct workers with no central
//!   scheduler; a multi-group command executes once its last occurrence
//!   merges, with every involved worker held at a barrier (§6.3).
//!
//! Commands conflict when they access a shared domain and at least one
//! writes it; this service writes every domain it touches, so conflict
//! is exactly domain intersection ([`PCommand::conflicts_with`]).
//!
//! Multi-group delivery consistency: each occurrence of a dependent
//! command is ordered by its own ring, and every replica consumes the
//! same deterministic merge of all rings, so the *execution* points
//! (last-occurrence positions) are identical everywhere — conflicting
//! commands execute in the same relative order on every replica without
//! any cross-ring agreement, and barriers cannot deadlock.
//!
//! ```
//! use simnet::prelude::*;
//! use psmr::{deploy_parallel, ExecModel, ParallelOptions};
//!
//! let mut cfg = SimConfig::default();
//! cfg.cores_per_node = 8; // delivery + sched + 4 workers + response
//! let mut sim = Sim::new(cfg);
//! let opts = ParallelOptions {
//!     model: ExecModel::Psmr { workers: 4 },
//!     ..ParallelOptions::default()
//! };
//! let d = deploy_parallel(&mut sim, &opts);
//! sim.run_until(Time::from_millis(300));
//! assert!(d.stores[0].lock().unwrap().executed() > 0);
//! ```

pub mod client;
pub mod command;
pub mod deploy;
pub mod engine;
pub mod replica;
pub mod store;

pub use client::{PTarget, PsmrClient, PsmrWorkload};
pub use command::{PCommand, PRegistry, PStored};
pub use deploy::{deploy_parallel, ParallelDeployment, ParallelOptions};
pub use engine::{Engine, EngineCosts, ExecModel, Scheduled};
pub use replica::{
    PReplyQuery, PResponse, ParallelReplica, PSMR_COMPLETED, PSMR_DEP_EXECS, PSMR_LATENCY,
    PSMR_SUBMITTED,
};
pub use store::ObjStore;
