//! Deployment builders for the ch. 6 experiment topologies: the three
//! single-ring execution models (sequential, pipelined, SDPE) and P-SMR
//! over one M-Ring Paxos ring per multicast group.

use std::sync::Arc;
use std::sync::Mutex;

use abcast::{shared_log, SharedLog};
use multiring::{ring_sink, MultiRingLearner, RingSink};
use ringpaxos::mring::MRingProcess;
use ringpaxos::{MRingConfig, SkipConfig, StorageMode};
use simnet::prelude::*;
use workload::RetryPolicy;

use crate::client::{PTarget, PsmrClient, PsmrWorkload};
use crate::command::PRegistry;
use crate::engine::{Engine, EngineCosts, ExecModel};
use crate::replica::{DeliverySource, ParallelReplica};
use crate::store::ObjStore;

struct Idle;
impl Actor for Idle {
    fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
}

/// Options for [`deploy_parallel`].
#[derive(Clone, Debug)]
pub struct ParallelOptions {
    /// Replica execution model.
    pub model: ExecModel,
    /// Replicas of the service.
    pub n_replicas: usize,
    /// Acceptors per ring (coordinator included).
    pub ring_size: usize,
    /// Closed-loop clients.
    pub n_clients: usize,
    /// The command workload.
    pub workload: PsmrWorkload,
    /// Replica-side stage costs.
    pub costs: EngineCosts,
    /// Skip rate λ of each P-SMR ring (instances/s; 0 disables skips).
    pub lambda_per_sec: u64,
    /// Stop issuing commands at this time.
    pub stop_at: Option<Time>,
    /// Acceptor storage mode.
    pub storage: StorageMode,
    /// Client retry policy (deadline, backoff, abandonment). The default
    /// reproduces the constants the client historically hard-coded.
    pub policy: RetryPolicy,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            model: ExecModel::Psmr { workers: 4 },
            n_replicas: 2,
            ring_size: 3,
            n_clients: 40,
            workload: PsmrWorkload::default(),
            costs: EngineCosts::default(),
            lambda_per_sec: 10_000,
            stop_at: None,
            storage: StorageMode::InMemory,
            policy: RetryPolicy::default(),
        }
    }
}

/// A deployed parallel-service system.
pub struct ParallelDeployment {
    /// Replica nodes.
    pub replicas: Vec<NodeId>,
    /// Client nodes.
    pub clients: Vec<NodeId>,
    /// Ring coordinators (one per group for P-SMR; a single entry for
    /// the single-ring models).
    pub coordinators: Vec<NodeId>,
    /// Ring configurations, in group order.
    pub ring_cfgs: Vec<MRingConfig>,
    /// The shared command registry.
    pub registry: PRegistry,
    /// Each replica's service state, in `replicas` order.
    pub stores: Vec<Arc<Mutex<ObjStore>>>,
    /// Each replica's ring-tagged delivery stream (P-SMR only; empty for
    /// the single-ring models). Exposed for cross-replica stream checks.
    pub sinks: Vec<RingSink>,
    /// Ordered-delivery log (per replica, in `replicas` order).
    pub log: SharedLog,
}

/// Deploys the parallel service under `opts.model`.
///
/// # Panics
///
/// Panics when the simulated nodes have fewer cores than the model's
/// thread layout needs, or when a P-SMR model's worker count disagrees
/// with the workload's group count.
pub fn deploy_parallel(sim: &mut Sim, opts: &ParallelOptions) -> ParallelDeployment {
    assert!(
        sim.config().cores_per_node >= opts.model.cores_needed(),
        "model {:?} needs {} cores per node; SimConfig has {}",
        opts.model,
        opts.model.cores_needed(),
        sim.config().cores_per_node
    );
    if let ExecModel::Psmr { workers } = opts.model {
        assert_eq!(workers, opts.workload.n_groups, "P-SMR runs one worker per multicast group");
    }

    let replicas: Vec<NodeId> =
        (0..opts.n_replicas).map(|_| sim.add_node(Box::new(Idle))).collect();
    let clients: Vec<NodeId> = (0..opts.n_clients).map(|_| sim.add_node(Box::new(Idle))).collect();
    let registry = PRegistry::new();
    let log = shared_log(opts.n_replicas);
    let domains = opts.workload.n_groups;
    let stores: Vec<Arc<Mutex<ObjStore>>> =
        (0..opts.n_replicas).map(|_| Arc::new(Mutex::new(ObjStore::new(domains)))).collect();

    let n_rings = match opts.model {
        ExecModel::Psmr { workers } => workers,
        _ => 1,
    };

    // One M-Ring Paxos ring per group (a single ring for the
    // totally-ordered models).
    let mut ring_cfgs: Vec<MRingConfig> = Vec::new();
    let mut coordinators = Vec::new();
    for _ in 0..n_rings {
        let ring: Vec<NodeId> = (0..opts.ring_size).map(|_| sim.add_node(Box::new(Idle))).collect();
        let group = sim.add_group();
        let mut cfg = MRingConfig::new(ring.clone(), replicas.clone(), group);
        cfg.storage = opts.storage;
        cfg.packet_bytes = 8192;
        cfg.batch_timeout = Dur::micros(100);
        if n_rings > 1 && opts.lambda_per_sec > 0 {
            cfg.skip =
                Some(SkipConfig { lambda_per_sec: opts.lambda_per_sec, delta: Dur::millis(1) });
        }
        for &n in ring.iter().chain(&replicas) {
            sim.subscribe(n, group);
        }
        for &a in &ring {
            sim.replace_actor(a, Box::new(MRingProcess::new(cfg.clone(), a, None, None)));
        }
        coordinators.push(cfg.coordinator());
        ring_cfgs.push(cfg);
    }

    // Replicas: ordering-layer learner + execution engine.
    let mut sinks = Vec::new();
    for (i, &r) in replicas.iter().enumerate() {
        let engine = Engine::new(opts.model, opts.costs);
        let store = stores[i].clone();
        match opts.model {
            ExecModel::Psmr { .. } => {
                let sink = ring_sink();
                sinks.push(sink.clone());
                let learner = MultiRingLearner::new(r, i, ring_cfgs.clone(), 1, Some(log.clone()))
                    .with_ring_sink(sink.clone());
                let actor = ParallelReplica::new(
                    learner,
                    DeliverySource::RingTagged { sink },
                    r,
                    replicas.clone(),
                    registry.clone(),
                    engine,
                    store,
                );
                sim.replace_actor(r, Box::new(actor));
            }
            _ => {
                let cfg = &ring_cfgs[0];
                let inner = MRingProcess::new(cfg.clone(), r, None, Some(log.clone()));
                let log_index = cfg
                    .learners
                    .iter()
                    .position(|&l| l == r)
                    .expect("replica registered as learner");
                let actor = ParallelReplica::new(
                    inner,
                    DeliverySource::TotalOrder { log: log.clone(), log_index },
                    r,
                    replicas.clone(),
                    registry.clone(),
                    engine,
                    store,
                );
                sim.replace_actor(r, Box::new(actor));
            }
        }
    }

    // Clients. They carry each ring's full membership so retries can
    // rotate to surviving members after a coordinator failover.
    let members: Vec<Vec<NodeId>> = ring_cfgs.iter().map(|cfg| cfg.ring.clone()).collect();
    let target = match opts.model {
        ExecModel::Psmr { .. } => {
            PTarget::MultiRing { coordinators: coordinators.clone(), members: members.clone() }
        }
        _ => PTarget::SingleRing { coordinator: coordinators[0], members: members[0].clone() },
    };
    for (ci, &c) in clients.iter().enumerate() {
        let client = PsmrClient::new(
            c,
            target.clone(),
            replicas.clone(),
            registry.clone(),
            opts.workload,
            0x9a7a11e1 + ci as u64,
            opts.stop_at,
        )
        .with_policy(opts.policy);
        sim.replace_actor(c, Box::new(client));
    }

    ParallelDeployment { replicas, clients, coordinators, ring_cfgs, registry, stores, sinks, log }
}
