//! Commands of the parallel-service evaluation (§6.5.2) and the
//! client-side group mapping (§6.3.2).
//!
//! The service state is statically divided into `k` *conflict domains*,
//! one per worker thread; the client proxy maps every command to the
//! multicast groups of the domains it accesses. Two commands are
//! *dependent* iff their domain sets intersect (each touched domain is
//! written), *independent* otherwise — the definition of §6.1: commands
//! conflict when they access a common variable and at least one updates
//! it.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use abcast::MsgId;
use simnet::ids::NodeId;
use simnet::time::Dur;

/// One command of the parallel service: a write to one key in every
/// conflict domain it touches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PCommand {
    /// Conflict domains accessed, sorted and distinct. `groups.len() == 1`
    /// is an independent command; more is a dependent (multi-group) one.
    pub groups: Vec<u8>,
    /// `(key, value)` written per touched domain (same length and order
    /// as `groups`).
    pub writes: Vec<(u64, u64)>,
    /// Modelled service time of the command.
    pub cost: Dur,
}

impl PCommand {
    /// Whether the command synchronizes several workers (§6.3.3).
    pub fn is_dependent(&self) -> bool {
        self.groups.len() > 1
    }

    /// Bitmask of the touched domains.
    pub fn group_mask(&self) -> u32 {
        self.groups.iter().fold(0u32, |m, &g| m | 1 << g)
    }

    /// Whether `self` and `other` conflict (shared domain; every access
    /// is a write in this service).
    pub fn conflicts_with(&self, other: &PCommand) -> bool {
        self.group_mask() & other.group_mask() != 0
    }
}

/// A registered command: contents plus routing/reply metadata.
#[derive(Clone, Debug)]
pub struct PStored {
    /// The command itself.
    pub cmd: PCommand,
    /// Issuing client.
    pub client: NodeId,
    /// Reply size in bytes.
    pub reply_bytes: u32,
}

/// Shared command store keyed by message id (simulation plumbing: the
/// network models the command's full byte size; replicas look the
/// structured contents up at delivery).
pub struct PRegistry(Arc<Mutex<HashMap<MsgId, PStored>>>);

impl Clone for PRegistry {
    fn clone(&self) -> Self {
        PRegistry(self.0.clone())
    }
}

impl Default for PRegistry {
    fn default() -> Self {
        PRegistry(Arc::new(Mutex::new(HashMap::new())))
    }
}

impl PRegistry {
    /// Creates an empty registry.
    pub fn new() -> PRegistry {
        PRegistry::default()
    }

    /// Registers `cmd` under `id`.
    pub fn put(&self, id: MsgId, cmd: PStored) {
        self.0.lock().unwrap().insert(id, cmd);
    }

    /// Fetches the command registered under `id`.
    pub fn get(&self, id: MsgId) -> Option<PStored> {
        self.0.lock().unwrap().get(&id).cloned()
    }

    /// Removes a completed command.
    pub fn remove(&self, id: MsgId) {
        self.0.lock().unwrap().remove(&id);
    }

    /// Number of registered commands.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.0.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(groups: &[u8]) -> PCommand {
        PCommand {
            groups: groups.to_vec(),
            writes: groups.iter().map(|&g| (g as u64, 1)).collect(),
            cost: Dur::micros(100),
        }
    }

    #[test]
    fn dependence_is_group_count() {
        assert!(!cmd(&[2]).is_dependent());
        assert!(cmd(&[0, 3]).is_dependent());
    }

    #[test]
    fn group_mask_sets_one_bit_per_domain() {
        assert_eq!(cmd(&[0, 3, 5]).group_mask(), 0b101001);
        assert_eq!(cmd(&[7]).group_mask(), 1 << 7);
    }

    #[test]
    fn conflict_iff_domains_intersect() {
        assert!(cmd(&[0, 1]).conflicts_with(&cmd(&[1, 2])));
        assert!(!cmd(&[0, 1]).conflicts_with(&cmd(&[2, 3])));
        assert!(cmd(&[4]).conflicts_with(&cmd(&[4])));
    }

    #[test]
    fn registry_roundtrip() {
        let r = PRegistry::new();
        let id = MsgId(7);
        r.put(id, PStored { cmd: cmd(&[1]), client: NodeId(9), reply_bytes: 64 });
        assert_eq!(r.len(), 1);
        let got = r.get(id).expect("present");
        assert_eq!(got.client, NodeId(9));
        assert_eq!(got.cmd.groups, vec![1]);
        r.remove(id);
        assert!(r.is_empty());
        assert!(r.get(id).is_none());
    }
}
