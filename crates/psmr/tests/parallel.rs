//! Integration tests of the ch. 6 execution models: replica agreement,
//! conflict-order consistency, barrier liveness, and the scaling shapes
//! the chapter's evaluation reports.

use simnet::prelude::*;

use psmr::{
    deploy_parallel, ExecModel, ParallelDeployment, ParallelOptions, PsmrWorkload, PSMR_COMPLETED,
};

fn sim_for(model: ExecModel) -> Sim {
    let mut cfg = SimConfig::default();
    cfg.cores_per_node = model.cores_needed().max(4);
    Sim::new(cfg)
}

fn completed(sim: &Sim, d: &ParallelDeployment) -> u64 {
    d.clients.iter().map(|&c| sim.metrics().counter(c, PSMR_COMPLETED)).sum()
}

/// Runs `model` under `workload` for `ms` simulated milliseconds and
/// returns the deployment plus completed-command count.
fn run_model(
    model: ExecModel,
    workload: PsmrWorkload,
    n_clients: usize,
    ms: u64,
) -> (Sim, ParallelDeployment) {
    let mut sim = sim_for(model);
    let opts = ParallelOptions {
        model,
        n_clients,
        workload,
        n_replicas: 2,
        stop_at: Some(Time::from_millis(ms)),
        ..ParallelOptions::default()
    };
    let d = deploy_parallel(&mut sim, &opts);
    // Slack past stop_at lets outstanding commands finish.
    sim.run_until(Time::from_millis(ms + 200));
    (sim, d)
}

fn all_models(groups: usize) -> [ExecModel; 5] {
    [
        ExecModel::Sequential,
        ExecModel::Pipelined,
        ExecModel::Sdpe { workers: groups },
        ExecModel::Psmr { workers: groups },
        ExecModel::Ev { workers: groups, batch: 16 },
    ]
}

#[test]
fn replicas_agree_under_every_model() {
    let workload = PsmrWorkload { n_groups: 4, dep_pct: 20, ..PsmrWorkload::default() };
    for model in all_models(4) {
        let (_sim, d) = run_model(model, workload, 12, 150);
        let a = d.stores[0].lock().unwrap();
        let b = d.stores[1].lock().unwrap();
        assert!(a.executed() > 0, "{model:?} executed nothing");
        assert_eq!(a.executed(), b.executed(), "{model:?} executed-count divergence");
        assert_eq!(a.digest(), b.digest(), "{model:?} execution-order divergence");
        assert_eq!(a.snapshot(), b.snapshot(), "{model:?} state divergence");
    }
}

#[test]
fn conflict_domain_histories_match_across_replicas() {
    let workload =
        PsmrWorkload { n_groups: 4, dep_pct: 30, dep_span: 2, ..PsmrWorkload::default() };
    for model in all_models(4) {
        let (_sim, d) = run_model(model, workload, 10, 150);
        let a = d.stores[0].lock().unwrap();
        let b = d.stores[1].lock().unwrap();
        for g in 0..4 {
            assert_eq!(
                a.history(g),
                b.history(g),
                "{model:?}: domain {g} executed conflicting commands in different orders"
            );
        }
    }
}

#[test]
fn every_completed_command_was_executed_once() {
    let workload = PsmrWorkload { n_groups: 4, dep_pct: 50, ..PsmrWorkload::default() };
    for model in all_models(4) {
        let (sim, d) = run_model(model, workload, 8, 150);
        let done = completed(&sim, &d);
        let store = d.stores[0].lock().unwrap();
        assert!(done > 0, "{model:?}: no commands completed");
        // Replicas may have executed a few commands whose responses are
        // still in flight, but never fewer than the clients saw.
        assert!(
            store.executed() >= done,
            "{model:?}: clients saw {done} but replicas executed {}",
            store.executed()
        );
    }
}

#[test]
fn psmr_parallelizes_independent_commands() {
    let workload = PsmrWorkload { n_groups: 4, dep_pct: 0, ..PsmrWorkload::default() };
    let (seq_sim, seq_d) = run_model(ExecModel::Sequential, workload, 60, 300);
    let (par_sim, par_d) = run_model(ExecModel::Psmr { workers: 4 }, workload, 60, 300);
    let seq = completed(&seq_sim, &seq_d);
    let par = completed(&par_sim, &par_d);
    assert!(
        par as f64 > seq as f64 * 2.0,
        "P-SMR with 4 workers should far outrun sequential: {par} vs {seq}"
    );
}

#[test]
fn fully_dependent_workload_degrades_psmr_to_sequential() {
    let workload = PsmrWorkload { n_groups: 4, dep_pct: 100, ..PsmrWorkload::default() };
    let (seq_sim, seq_d) = run_model(ExecModel::Sequential, workload, 40, 300);
    let (par_sim, par_d) = run_model(ExecModel::Psmr { workers: 4 }, workload, 40, 300);
    let seq = completed(&seq_sim, &seq_d);
    let par = completed(&par_sim, &par_d);
    assert!(par > 0, "barriers must not deadlock");
    assert!(
        (par as f64) < seq as f64 * 1.3,
        "all-dependent P-SMR cannot beat sequential: {par} vs {seq}"
    );
}

#[test]
fn sdpe_beats_sequential_but_scheduler_caps_it() {
    let workload = PsmrWorkload { n_groups: 8, dep_pct: 0, ..PsmrWorkload::default() };
    let (seq_sim, seq_d) = run_model(ExecModel::Sequential, workload, 80, 300);
    let (sdpe_sim, sdpe_d) = run_model(ExecModel::Sdpe { workers: 8 }, workload, 80, 300);
    let (psmr_sim, psmr_d) = run_model(ExecModel::Psmr { workers: 8 }, workload, 80, 300);
    let seq = completed(&seq_sim, &seq_d);
    let sdpe = completed(&sdpe_sim, &sdpe_d);
    let psmr = completed(&psmr_sim, &psmr_d);
    assert!(sdpe > seq, "SDPE should beat sequential: {sdpe} vs {seq}");
    assert!(
        psmr as f64 > sdpe as f64 * 1.3,
        "P-SMR should outrun scheduler-capped SDPE at 8 workers: {psmr} vs {sdpe}"
    );
}

#[test]
fn skewed_workload_is_safe_and_slower() {
    let uniform = PsmrWorkload { n_groups: 4, dep_pct: 0, hot_pct: 0, ..PsmrWorkload::default() };
    let skewed = PsmrWorkload { n_groups: 4, dep_pct: 0, hot_pct: 80, ..PsmrWorkload::default() };
    let (usim, ud) = run_model(ExecModel::Psmr { workers: 4 }, uniform, 60, 300);
    let (ssim, sd) = run_model(ExecModel::Psmr { workers: 4 }, skewed, 60, 300);
    let u = completed(&usim, &ud);
    let s = completed(&ssim, &sd);
    // Safety under skew.
    let a = sd.stores[0].lock().unwrap();
    let b = sd.stores[1].lock().unwrap();
    assert_eq!(a.digest(), b.digest(), "skew broke replica agreement");
    // The hot worker serializes most of the load (§6.5.7).
    assert!(s > 0 && s < u, "skewed should underperform uniform: {s} vs {u}");
}

#[test]
fn mixed_workload_throughput_declines_with_conflicts() {
    let mut last = u64::MAX;
    for dep_pct in [0, 20, 100] {
        let workload = PsmrWorkload { n_groups: 4, dep_pct, ..PsmrWorkload::default() };
        let (sim, d) = run_model(ExecModel::Psmr { workers: 4 }, workload, 60, 300);
        let done = completed(&sim, &d);
        assert!(done > 0, "dep_pct={dep_pct} completed nothing");
        assert!(
            done < last,
            "throughput should fall as conflicts rise (dep {dep_pct}%: {done} !< {last})"
        );
        last = done;
    }
}

#[test]
fn quiescence_after_stop() {
    let workload = PsmrWorkload { n_groups: 2, dep_pct: 25, ..PsmrWorkload::default() };
    let (sim, d) = run_model(ExecModel::Psmr { workers: 2 }, workload, 8, 100);
    let submitted: u64 =
        d.clients.iter().map(|&c| sim.metrics().counter(c, "psmr.submitted")).sum();
    let done = completed(&sim, &d);
    assert_eq!(submitted, done, "all submitted commands must complete");
    // Entries stay registered (lagging replicas may still recover them);
    // every one of them corresponds to a submitted command.
    assert_eq!(d.registry.len() as u64, submitted);
}

#[test]
fn ev_scales_cleanly_but_collapses_under_conflicts() {
    let clean = PsmrWorkload { n_groups: 4, dep_pct: 0, ..PsmrWorkload::default() };
    let dirty = PsmrWorkload { n_groups: 4, dep_pct: 30, ..PsmrWorkload::default() };
    let (csim, cd) = run_model(ExecModel::Ev { workers: 4, batch: 16 }, clean, 60, 300);
    let (dsim, dd) = run_model(ExecModel::Ev { workers: 4, batch: 16 }, dirty, 60, 300);
    let (ssim, sd) = run_model(ExecModel::Sequential, clean, 60, 300);
    let c = completed(&csim, &cd);
    let d = completed(&dsim, &dd);
    let s = completed(&ssim, &sd);
    assert!(c as f64 > s as f64 * 2.0, "clean EV should scale past sequential: {c} vs {s}");
    assert!((d as f64) < c as f64 * 0.6, "conflict rollbacks should hurt EV badly: {d} !<< {c}");
    let a = dd.stores[0].lock().unwrap();
    let b = dd.stores[1].lock().unwrap();
    assert_eq!(a.digest(), b.digest(), "EV replicas diverged");
}

#[test]
fn ev_stays_consistent_under_message_loss() {
    // EV rides a single ordering ring: loss recovery (retransmissions,
    // client retries) must keep batch formation — and therefore the
    // rollback decisions — identical across replicas.
    let mut cfg = SimConfig::default();
    cfg.cores_per_node = 8;
    cfg.random_loss = 0.02;
    let mut sim = Sim::new(cfg);
    let opts = ParallelOptions {
        model: ExecModel::Ev { workers: 4, batch: 16 },
        n_replicas: 3,
        n_clients: 16,
        workload: PsmrWorkload { n_groups: 4, dep_pct: 15, ..PsmrWorkload::default() },
        stop_at: Some(Time::from_millis(800)),
        ..ParallelOptions::default()
    };
    let d = deploy_parallel(&mut sim, &opts);
    sim.run_until(Time::from_millis(2500));

    let submitted: u64 =
        d.clients.iter().map(|&c| sim.metrics().counter(c, "psmr.submitted")).sum();
    let done = completed(&sim, &d);
    assert_eq!(submitted, done, "EV lost commands under loss");
    let a = d.stores[0].lock().unwrap();
    assert!(a.executed() > 0);
    for st in &d.stores[1..] {
        let b = st.lock().unwrap();
        assert_eq!(a.executed(), b.executed(), "EV replica count divergence");
        assert_eq!(a.digest(), b.digest(), "EV batch decisions diverged");
        assert_eq!(a.snapshot(), b.snapshot(), "EV state divergence");
    }
}
