//! Client-side failover regression: a ring coordinator crashes mid-run
//! and the closed-loop clients must ride it out — the ordering layer
//! elects a new coordinator (M-Ring takeover), and the clients re-find
//! it by rotating their bounded-backoff retries across ring members,
//! who relay proposals to the coordinator of their current view.

use simnet::prelude::*;

use psmr::{
    deploy_parallel, ExecModel, ParallelDeployment, ParallelOptions, PsmrWorkload, PSMR_COMPLETED,
};

fn completed(sim: &Sim, d: &ParallelDeployment) -> u64 {
    d.clients.iter().map(|&c| sim.metrics().counter(c, PSMR_COMPLETED)).sum()
}

fn submitted(sim: &Sim, d: &ParallelDeployment) -> u64 {
    d.clients.iter().map(|&c| sim.metrics().counter(c, "psmr.submitted")).sum()
}

fn run_with_coordinator_crash(model: ExecModel, groups: usize) -> (Sim, ParallelDeployment) {
    let mut cfg = SimConfig::default();
    cfg.cores_per_node = model.cores_needed().max(4);
    let mut sim = Sim::new(cfg);
    let opts = ParallelOptions {
        model,
        n_clients: 12,
        n_replicas: 2,
        workload: PsmrWorkload { n_groups: groups, dep_pct: 20, ..PsmrWorkload::default() },
        stop_at: Some(Time::from_millis(2000)),
        ..ParallelOptions::default()
    };
    let d = deploy_parallel(&mut sim, &opts);

    sim.run_until(Time::from_millis(500));
    let at_crash = completed(&sim, &d);
    assert!(at_crash > 0, "commands must flow before the crash");
    // Unplanned crash of ring 0's coordinator (an acceptor node, not a
    // replica): the deployment-time submission point goes dark.
    sim.set_node_up(d.coordinators[0], false);

    // Suspicion (200 ms) + takeover + client retry rotation: commands
    // must be completing again well before the load stops.
    sim.run_until(Time::from_millis(1800));
    let after = completed(&sim, &d);
    assert!(
        after > at_crash + 50,
        "clients must re-find the leader and complete commands: {at_crash} -> {after}"
    );

    sim.run_until(Time::from_secs(4));
    (sim, d)
}

fn check_no_duplicate_apply(sim: &Sim, d: &ParallelDeployment) {
    // Retried proposals reach the ring more than once; the ordering
    // layer and replicas must apply each command exactly once. A
    // duplicate apply shows up either as a digest divergence or as more
    // executions than distinct submissions.
    let sub = submitted(sim, d);
    let a = d.stores[0].lock().unwrap();
    let b = d.stores[1].lock().unwrap();
    assert_eq!(a.executed(), b.executed(), "replica executed-count divergence");
    assert_eq!(a.digest(), b.digest(), "replica execution-order divergence");
    assert!(
        a.executed() <= sub,
        "replicas executed {} commands but only {sub} were submitted — duplicate apply",
        a.executed()
    );
    assert!(a.executed() >= completed(sim, d), "fewer executions than client completions");
}

#[test]
fn single_ring_clients_survive_coordinator_failover() {
    let (sim, d) = run_with_coordinator_crash(ExecModel::Sequential, 4);
    let retries: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, "psmr.retries")).sum();
    assert!(retries > 0, "the outage must have triggered client retries");
    check_no_duplicate_apply(&sim, &d);
}

#[test]
fn psmr_clients_survive_one_group_coordinator_failover() {
    let (sim, d) = run_with_coordinator_crash(ExecModel::Psmr { workers: 4 }, 4);
    check_no_duplicate_apply(&sim, &d);
}
