//! End-to-end property test: for random workload mixes and any execution
//! model, deployed replicas agree on execution count, order digest,
//! per-domain histories, and final state.

use proptest::prelude::*;
use simnet::prelude::*;

use psmr::{deploy_parallel, ExecModel, ParallelOptions, PsmrWorkload};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn replicas_always_agree(
        model_pick in 0..5usize,
        n_groups in 2usize..=4,
        dep_pct in 0u32..=100,
        hot_pct in prop::sample::select(vec![0u32, 60]),
        n_clients in 4usize..=10,
        seed in any::<u64>(),
    ) {
        let model = [
            ExecModel::Sequential,
            ExecModel::Pipelined,
            ExecModel::Sdpe { workers: n_groups },
            ExecModel::Psmr { workers: n_groups },
            ExecModel::Ev { workers: n_groups, batch: 16 },
        ][model_pick];
        let mut cfg = SimConfig::default();
        cfg.cores_per_node = model.cores_needed().max(4);
        cfg.seed = seed;
        let mut sim = Sim::new(cfg);
        let opts = ParallelOptions {
            model,
            n_replicas: 3,
            n_clients,
            workload: PsmrWorkload { n_groups, dep_pct, hot_pct, ..PsmrWorkload::default() },
            stop_at: Some(Time::from_millis(80)),
            ..ParallelOptions::default()
        };
        let d = deploy_parallel(&mut sim, &opts);
        sim.run_until(Time::from_millis(250));

        let first = d.stores[0].lock().unwrap();
        prop_assert!(first.executed() > 0, "{model:?}: nothing executed");
        for (i, store) in d.stores.iter().enumerate().skip(1) {
            let s = store.lock().unwrap();
            prop_assert_eq!(first.executed(), s.executed(), "replica {} count", i);
            prop_assert_eq!(first.digest(), s.digest(), "replica {} order digest", i);
            prop_assert_eq!(first.snapshot(), s.snapshot(), "replica {} state", i);
            for g in 0..n_groups {
                prop_assert_eq!(first.history(g), s.history(g), "replica {} domain {}", i, g);
            }
        }
    }
}
