//! Property tests of the execution engines: determinism, exactly-once,
//! and conflict serialization under arbitrary delivery interleavings.

use abcast::MsgId;
use proptest::prelude::*;
use simnet::ids::NodeId;
use simnet::time::{Dur, Time};

use psmr::{Engine, EngineCosts, ExecModel, PCommand, PStored};

/// A generated command: domains out of `n_groups`, all writes.
fn arb_commands(n_groups: u8, max: usize) -> impl Strategy<Value = Vec<PCommand>> {
    prop::collection::vec(
        (prop::collection::btree_set(0..n_groups, 1..=(n_groups as usize)), 1u64..400),
        1..max,
    )
    .prop_map(|cmds| {
        cmds.into_iter()
            .map(|(groups, cost_us)| {
                let groups: Vec<u8> = groups.into_iter().collect();
                PCommand {
                    writes: groups.iter().map(|&g| (g as u64, 1)).collect(),
                    groups,
                    cost: Dur::micros(cost_us),
                }
            })
            .collect()
    })
}

fn stored(cmd: &PCommand) -> PStored {
    PStored { cmd: cmd.clone(), client: NodeId(0), reply_bytes: 64 }
}

/// Builds per-ring occurrence streams (ring order = command index order,
/// the consistency Multi-Ring Paxos's merge provides) and interleaves
/// them according to `picks`.
fn interleave(cmds: &[PCommand], workers: usize, picks: &[u8]) -> Vec<(u8, usize)> {
    let mut streams: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (i, c) in cmds.iter().enumerate() {
        for &g in &c.groups {
            streams[g as usize].push(i);
        }
    }
    let mut cursors = vec![0usize; workers];
    let mut out = Vec::new();
    let mut pi = 0;
    loop {
        let live: Vec<u8> = (0..workers as u8)
            .filter(|&g| cursors[g as usize] < streams[g as usize].len())
            .collect();
        if live.is_empty() {
            break;
        }
        let g = live[picks.get(pi).copied().unwrap_or(0) as usize % live.len()];
        pi += 1;
        out.push((g, streams[g as usize][cursors[g as usize]]));
        cursors[g as usize] += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// P-SMR: every command executes exactly once and per-domain
    /// executions serialize — in *firing* order (a multi-group command
    /// fires at its last merged occurrence, which may legitimately
    /// reorder it against later single-group commands; what matters is
    /// that the firing order is a function of the merged stream, hence
    /// identical at every replica, and that conflicting executions never
    /// overlap in time).
    #[test]
    fn psmr_conflict_serialization(
        cmds in arb_commands(4, 24),
        picks in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let workers = 4;
        let mut e = Engine::new(ExecModel::Psmr { workers }, EngineCosts::default());
        let schedule = interleave(&cmds, workers, &picks);
        let mut done: Vec<Option<Time>> = vec![None; cmds.len()];
        // Executions per domain, in firing order.
        let mut fired: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (g, i) in schedule {
            let released = e.deliver(MsgId(i as u64), &stored(&cmds[i]), Some(g), Time::ZERO);
            for (did, s) in released {
                prop_assert_eq!(did, MsgId(i as u64), "P-SMR releases the delivered command");
                prop_assert!(done[i].is_none(), "command {i} executed twice");
                done[i] = Some(s.exec_end);
                for &cg in &cmds[i].groups {
                    fired[cg as usize].push(i);
                }
            }
        }
        // Exactly once.
        for (i, d) in done.iter().enumerate() {
            prop_assert!(d.is_some(), "command {i} never executed");
        }
        prop_assert_eq!(e.pending_barriers(), 0);
        // Per-domain serialization in firing order: consecutive
        // conflicting executions are separated by at least the later
        // command's execution cost (no overlap).
        for (g, seq) in fired.iter().enumerate() {
            for w in seq.windows(2) {
                let (prev, next) = (w[0], w[1]);
                let (pd, nd) = (done[prev].unwrap(), done[next].unwrap());
                prop_assert!(
                    nd.saturating_since(pd) >= cmds[next].cost,
                    "domain {g}: {prev} and {next} overlap ({pd:?} .. {nd:?})"
                );
            }
        }
    }

    /// SDPE: conflicting commands serialize; completion per domain
    /// follows the total delivery order.
    #[test]
    fn sdpe_conflict_serialization(cmds in arb_commands(4, 24)) {
        let mut e = Engine::new(ExecModel::Sdpe { workers: 4 }, EngineCosts::default());
        let mut done = Vec::new();
        for (i, c) in cmds.iter().enumerate() {
            let mut released = e.deliver(MsgId(i as u64), &stored(c), None, Time::ZERO);
            prop_assert_eq!(released.len(), 1, "total order executes immediately");
            done.push(released.pop().expect("checked").1.exec_end);
        }
        for g in 0..4u8 {
            let mut prev: Option<Time> = None;
            for (i, c) in cmds.iter().enumerate() {
                if !c.groups.contains(&g) {
                    continue;
                }
                if let Some(pd) = prev {
                    prop_assert!(done[i].saturating_since(pd) >= c.cost);
                }
                prev = Some(done[i]);
            }
        }
    }

    /// Any two engines fed the same occurrence stream produce identical
    /// completion times (replica determinism).
    #[test]
    fn engines_are_deterministic(
        cmds in arb_commands(3, 16),
        picks in prop::collection::vec(any::<u8>(), 0..128),
        model_pick in 0..5usize,
    ) {
        let model = [
            ExecModel::Sequential,
            ExecModel::Pipelined,
            ExecModel::Sdpe { workers: 3 },
            ExecModel::Psmr { workers: 3 },
            ExecModel::Ev { workers: 3, batch: 4 },
        ][model_pick];
        let mut a = Engine::new(model, EngineCosts::default());
        let mut b = Engine::new(model, EngineCosts::default());
        let schedule = match model {
            ExecModel::Psmr { workers } => interleave(&cmds, workers, &picks),
            _ => cmds.iter().enumerate().map(|(i, _)| (0u8, i)).collect(),
        };
        for (g, i) in schedule {
            let ring = matches!(model, ExecModel::Psmr { .. }).then_some(g);
            let sa = a.deliver(MsgId(i as u64), &stored(&cmds[i]), ring, Time::ZERO);
            let sb = b.deliver(MsgId(i as u64), &stored(&cmds[i]), ring, Time::ZERO);
            prop_assert_eq!(sa.len(), sb.len(), "engines disagreed on release count");
            for ((ida, x), (idb, y)) in sa.iter().zip(sb.iter()) {
                prop_assert_eq!(ida, idb);
                prop_assert_eq!(x.done, y.done);
                prop_assert_eq!(x.worker, y.worker);
            }
        }
        // Flush any open EV batch identically.
        let (fa, fb) = (a.flush(Time::from_millis(10)), b.flush(Time::from_millis(10)));
        prop_assert_eq!(fa.len(), fb.len());
    }

    /// Sequential is never faster than pipelined, which is never faster
    /// than SDPE's makespan on independent single-group commands.
    #[test]
    fn model_ordering_on_independent_commands(n in 4usize..40) {
        let cmds: Vec<PCommand> = (0..n)
            .map(|i| PCommand {
                groups: vec![(i % 4) as u8],
                writes: vec![(i as u64, 1)],
                cost: Dur::micros(100),
            })
            .collect();
        let mut makespans = Vec::new();
        for model in [
            ExecModel::Sequential,
            ExecModel::Pipelined,
            ExecModel::Sdpe { workers: 4 },
        ] {
            let mut e = Engine::new(model, EngineCosts::default());
            let mut last = Time::ZERO;
            for (i, c) in cmds.iter().enumerate() {
                let released = e.deliver(MsgId(i as u64), &stored(c), None, Time::ZERO);
                last = released.last().map(|(_, s)| s.done).unwrap_or(last);
            }
            makespans.push(last);
        }
        prop_assert!(makespans[1] <= makespans[0], "pipelined beat by sequential");
        prop_assert!(makespans[2] <= makespans[1], "sdpe beat by pipelined");
    }
}
