//! Keyed command generators: the paper's three B⁺-tree workload shapes
//! (§4.4.2, moved here from the `btree` crate so every client layer
//! shares one generator) and Zipf-skewed key selection for the
//! mass-session experiments.

use rand::rngs::SmallRng;
use rand::Rng;

use btree::service::QUERY_SPAN;
use btree::{Partitioning, TreeCommand};

/// Which workload a client generates (§4.4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// Range queries over intervals of 1000 keys, uniform keys.
    Queries,
    /// One insert-or-delete per command.
    InsDelSingle,
    /// Seven updates per command (the coordinator batches packets).
    InsDelBatch,
}

impl WorkloadKind {
    /// Command size on the wire (256 bytes in the paper).
    pub fn command_bytes(self) -> u32 {
        256
    }

    /// Reply size: 8 KB for range results, 256 B for update acks.
    pub fn reply_bytes(self) -> u32 {
        match self {
            WorkloadKind::Queries => 8192,
            _ => 256,
        }
    }

    /// Tree operations executed per command.
    pub fn ops_per_command(self) -> u32 {
        match self {
            WorkloadKind::Queries => 1,
            WorkloadKind::InsDelSingle => 1,
            WorkloadKind::InsDelBatch => 7,
        }
    }
}

/// Generates commands for one client.
#[derive(Debug)]
pub struct WorkloadGen {
    kind: WorkloadKind,
    key_space: u64,
    /// Fraction (0–100) of queries spanning two partitions (§4.4.5).
    cross_pct: u32,
    partitioning: Option<Partitioning>,
    flip: bool,
}

impl WorkloadGen {
    /// Creates a generator over `key_space` keys.
    pub fn new(kind: WorkloadKind, key_space: u64) -> WorkloadGen {
        WorkloadGen { kind, key_space, cross_pct: 0, partitioning: None, flip: false }
    }

    /// Enables partition-aware generation: `cross_pct`% of queries are
    /// laid across a partition boundary (they touch exactly two
    /// partitions, as in the paper's Figs. 4.8/4.9).
    pub fn with_partitions(mut self, p: Partitioning, cross_pct: u32) -> WorkloadGen {
        self.partitioning = Some(p);
        self.cross_pct = cross_pct.min(100);
        self
    }

    /// The workload kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Draws the operations of the next command. `InsDelBatch` yields 7
    /// updates; the others one operation.
    pub fn next_command(&mut self, rng: &mut SmallRng) -> Vec<TreeCommand> {
        match self.kind {
            WorkloadKind::Queries => vec![self.next_query(rng)],
            WorkloadKind::InsDelSingle => vec![self.next_update(rng)],
            WorkloadKind::InsDelBatch => (0..7).map(|_| self.next_update(rng)).collect(),
        }
    }

    fn next_update(&mut self, rng: &mut SmallRng) -> TreeCommand {
        // Alternate inserts and deletes so the tree size stays constant
        // over time (§4.4.2).
        let key = rng.gen_range(0..self.key_space);
        self.flip = !self.flip;
        if self.flip {
            TreeCommand::Insert { key, value: rng.gen() }
        } else {
            TreeCommand::Delete { key }
        }
    }

    fn next_query(&mut self, rng: &mut SmallRng) -> TreeCommand {
        if let Some(p) = self.partitioning {
            if rng.gen_range(0..100) < self.cross_pct && p.n > 1 {
                // A query straddling a random partition boundary.
                let boundary = p.span * rng.gen_range(1..p.n) as u64;
                let lo = boundary - QUERY_SPAN / 2;
                return TreeCommand::Query { lo, hi: lo + QUERY_SPAN - 1 };
            }
            // Single-partition query: keep the window inside a partition.
            let part = rng.gen_range(0..p.n) as u64;
            let lo = part * p.span + rng.gen_range(0..p.span - QUERY_SPAN);
            return TreeCommand::Query { lo, hi: lo + QUERY_SPAN - 1 };
        }
        let lo = rng.gen_range(0..self.key_space.saturating_sub(QUERY_SPAN).max(1));
        TreeCommand::Query { lo, hi: lo + QUERY_SPAN - 1 }
    }
}

/// Zipfian rank sampler by rejection inversion (Hörmann & Derflinger's
/// method, as used by Apache Commons and `rand_distr`): exact for any
/// exponent `s ≥ 0` and any `n`, O(1) per sample with an expected
/// rejection rate below 1.1. Rank `r ∈ [0, n)` is drawn with
/// probability proportional to `1 / (r + 1)^s`; rank 0 is the hottest.
#[derive(Clone, Copy, Debug)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    /// `H(n + ½)` — the lower end of the inversion range.
    h_n: f64,
    /// `H(1½) − h(1)` — the upper end.
    h_x1: f64,
    /// Acceptance threshold for the left-tail shortcut.
    threshold: f64,
}

/// `H(x) = ∫ t^(−s) dt`, i.e. `(x^(1−s) − 1)/(1−s)`, via the stable
/// form `helper((1−s)·ln x)·ln x` that survives `s → 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^(−s)`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inv(x: f64, s: f64) -> f64 {
    let t = (x * (1.0 - s)).max(-1.0);
    (helper_inv(t) * x).exp()
}

/// `(e^x − 1)/x`, stable near 0.
fn helper(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 * (1.0 + x / 3.0 * (1.0 + x / 4.0))
    }
}

/// `ln(1 + x)/x`, stable near 0.
fn helper_inv(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - x / 4.0))
    }
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `s` (`s = 0` is uniform;
    /// the paper-adjacent benchmarks use `s = 0.99`).
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf needs a non-empty rank space");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite and >= 0");
        ZipfSampler {
            n,
            s,
            h_n: h_integral(n as f64 + 0.5, s),
            h_x1: h_integral(1.5, s) - 1.0,
            threshold: 2.0 - h_integral_inv(h_integral(2.5, s) - h(2.0, s), s),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws a rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inv(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.threshold || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64 - 1;
            }
        }
    }
}

/// Scatters a Zipf rank across the key space with a fixed Fibonacci
/// hash, so hot keys land in different partitions instead of packing
/// the low key range (partition 0). Injective when `key_space` exceeds
/// the rank range is not guaranteed, but collisions merely merge two
/// ranks' heat — harmless for load generation.
fn scatter(rank: u64, key_space: u64) -> u64 {
    rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % key_space
}

/// A keyed command generator with optional Zipfian skew: the shapes of
/// [`WorkloadGen`] (alternating insert/delete, 1000-key range queries)
/// with keys drawn by rank popularity instead of uniformly.
#[derive(Clone, Debug)]
pub struct KeyedWorkload {
    kind: WorkloadKind,
    key_space: u64,
    zipf: Option<ZipfSampler>,
    flip: bool,
}

impl KeyedWorkload {
    /// Uniform key selection over `key_space`.
    pub fn uniform(kind: WorkloadKind, key_space: u64) -> KeyedWorkload {
        assert!(key_space > QUERY_SPAN, "key space must exceed one query span");
        KeyedWorkload { kind, key_space, zipf: None, flip: false }
    }

    /// Zipf(`s`)-skewed key selection: ranks over the whole key space,
    /// scattered so the hot set spreads across partitions.
    pub fn zipfian(kind: WorkloadKind, key_space: u64, s: f64) -> KeyedWorkload {
        assert!(key_space > QUERY_SPAN, "key space must exceed one query span");
        KeyedWorkload { kind, key_space, zipf: Some(ZipfSampler::new(key_space, s)), flip: false }
    }

    /// The workload kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    fn next_key(&mut self, rng: &mut SmallRng) -> u64 {
        match &self.zipf {
            Some(z) => scatter(z.sample(rng), self.key_space),
            None => rng.gen_range(0..self.key_space),
        }
    }

    /// Draws the operations of the next command (same shapes as
    /// [`WorkloadGen::next_command`]).
    pub fn next_command(&mut self, rng: &mut SmallRng) -> Vec<TreeCommand> {
        match self.kind {
            WorkloadKind::Queries => vec![self.next_query(rng)],
            WorkloadKind::InsDelSingle => vec![self.next_update(rng)],
            WorkloadKind::InsDelBatch => (0..7).map(|_| self.next_update(rng)).collect(),
        }
    }

    fn next_update(&mut self, rng: &mut SmallRng) -> TreeCommand {
        let key = self.next_key(rng);
        self.flip = !self.flip;
        if self.flip {
            TreeCommand::Insert { key, value: rng.gen() }
        } else {
            TreeCommand::Delete { key }
        }
    }

    fn next_query(&mut self, rng: &mut SmallRng) -> TreeCommand {
        let lo = self.next_key(rng).min(self.key_space - QUERY_SPAN);
        TreeCommand::Query { lo, hi: lo + QUERY_SPAN - 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btree::Partitioning;
    use rand::SeedableRng;

    #[test]
    fn batch_workload_yields_seven_updates() {
        let mut g = WorkloadGen::new(WorkloadKind::InsDelBatch, 1000);
        let mut rng = SmallRng::seed_from_u64(1);
        let cmds = g.next_command(&mut rng);
        assert_eq!(cmds.len(), 7);
        assert!(cmds.iter().all(|c| c.is_update()));
    }

    #[test]
    fn updates_alternate_insert_delete() {
        let mut g = WorkloadGen::new(WorkloadKind::InsDelSingle, 1000);
        let mut rng = SmallRng::seed_from_u64(2);
        let a = g.next_command(&mut rng)[0];
        let b = g.next_command(&mut rng)[0];
        assert!(matches!(a, TreeCommand::Insert { .. }));
        assert!(matches!(b, TreeCommand::Delete { .. }));
    }

    #[test]
    fn cross_partition_fraction_is_respected() {
        let p = Partitioning::new(2);
        let mut g = WorkloadGen::new(WorkloadKind::Queries, 2 * p.span).with_partitions(p, 50);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut cross = 0;
        for _ in 0..1000 {
            let c = g.next_command(&mut rng)[0];
            if p.mask_of(c).count_ones() == 2 {
                cross += 1;
            }
        }
        assert!((400..600).contains(&cross), "cross-partition count {cross}");
    }

    #[test]
    fn zero_cross_means_single_partition_queries() {
        let p = Partitioning::new(4);
        let mut g = WorkloadGen::new(WorkloadKind::Queries, 4 * p.span).with_partitions(p, 0);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..500 {
            let c = g.next_command(&mut rng)[0];
            assert_eq!(p.mask_of(c).count_ones(), 1);
        }
    }

    #[test]
    fn queries_span_1000_keys() {
        let mut g = WorkloadGen::new(WorkloadKind::Queries, 1_000_000);
        let mut rng = SmallRng::seed_from_u64(5);
        let TreeCommand::Query { lo, hi } = g.next_command(&mut rng)[0] else { panic!() };
        assert_eq!(hi - lo + 1, QUERY_SPAN);
    }

    /// Empirical rank frequencies against the exact Zipf pmf: the top
    /// ranks must each land within 10% relative error, and the sampler
    /// must stay in range.
    fn assert_zipf_fit(s: f64, seed: u64) {
        const N: u64 = 1000;
        const SAMPLES: usize = 400_000;
        let z = ZipfSampler::new(N, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; N as usize];
        for _ in 0..SAMPLES {
            let r = z.sample(&mut rng);
            assert!(r < N, "rank {r} out of range");
            counts[r as usize] += 1;
        }
        let norm: f64 = (1..=N).map(|k| (k as f64).powf(-s)).sum();
        for rank in 0..8usize {
            let expect = (rank as f64 + 1.0).powf(-s) / norm * SAMPLES as f64;
            let got = counts[rank] as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.10, "s={s} rank {rank}: got {got}, expect {expect:.0} (rel {rel:.3})");
        }
        // Frequencies decrease with rank overall: compare decile sums.
        let head: u64 = counts[..100].iter().sum();
        let tail: u64 = counts[900..].iter().sum();
        assert!(head > tail, "head {head} <= tail {tail} at s={s}");
    }

    #[test]
    fn zipf_frequency_rank_fit_heavy_skew() {
        assert_zipf_fit(0.99, 0x21bf);
    }

    #[test]
    fn zipf_frequency_rank_fit_mild_skew() {
        assert_zipf_fit(0.5, 0x21c0);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u64; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 800 && *max < 1200, "uniform spread, got {min}..{max}");
    }

    #[test]
    fn keyed_zipf_commands_stay_in_key_space() {
        let mut w = KeyedWorkload::zipfian(WorkloadKind::InsDelSingle, 50_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..2000 {
            match w.next_command(&mut rng)[0] {
                TreeCommand::Insert { key, .. } | TreeCommand::Delete { key } => {
                    assert!(key < 50_000);
                }
                TreeCommand::Query { .. } => panic!("update workload"),
            }
        }
    }

    #[test]
    fn keyed_queries_fit_the_key_space() {
        let mut w = KeyedWorkload::zipfian(WorkloadKind::Queries, 10_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..500 {
            let TreeCommand::Query { lo, hi } = w.next_command(&mut rng)[0] else { panic!() };
            assert!(hi < 10_000 && hi - lo + 1 == QUERY_SPAN);
        }
    }

    #[test]
    fn scatter_spreads_hot_ranks() {
        let key_space = 1_000_000u64;
        let quarters: Vec<u64> = (0..4).map(|r| scatter(r, key_space) / (key_space / 4)).collect();
        // The four hottest ranks do not all land in one quarter.
        assert!(quarters.iter().any(|&q| q != quarters[0]), "{quarters:?}");
    }
}
