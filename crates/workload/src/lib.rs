//! # workload — the unified client tier
//!
//! Every client of an ordered service in this workspace — the ch. 4
//! closed-loop B⁺-tree clients, the P-SMR clients with their retry
//! machinery, and the mass-session experiments of ch. 10 — now draws
//! its load-generation and session plumbing from this one crate.
//!
//! ## Open vs. closed loop
//!
//! The paper drives protocols two ways, and this tier models both:
//!
//! * **Closed loop** — a fixed number of sessions, each with exactly one
//!   command outstanding; the next command is issued when the response
//!   arrives. Offered load adapts to service latency, which is what the
//!   paper's latency/throughput curves (ch. 4) measure. Select with
//!   [`arrival::Arrival::Closed`] or use a dedicated client actor
//!   (`core::client::SmrClient`, `psmr::client::PsmrClient`) built on
//!   [`session`].
//! * **Open loop** — arrivals occur at a configured rate regardless of
//!   completions, as real user populations do. Two processes are
//!   provided: [`arrival::Poisson`], drawing exponential inter-arrival
//!   gaps from the actor's deterministic per-node RNG stream (so the
//!   arrival sequence is a pure function of the seed, independent of
//!   shard partition and thread count), and the paced burst submitter
//!   [`Pacer`] the ch. 3/5 throughput experiments already used
//!   (re-exported from `abcast`, where the ordering protocols' own
//!   drivers live below this crate).
//!
//! ## Keyed workloads
//!
//! [`keyed`] holds the key-addressed command generators: the paper's
//! three B⁺-tree workload shapes ([`keyed::WorkloadGen`], moved here
//! from `btree`), and [`keyed::KeyedWorkload`], which adds Zipfian skew
//! via [`keyed::ZipfSampler`] (rejection-inversion sampling, exact for
//! any exponent ≥ 0). Hot ranks are scattered across the key space with
//! a fixed Fibonacci hash so skew stresses contention, not just
//! partition 0.
//!
//! ## Sessions and the session table
//!
//! [`session`] generalizes what `psmr::client` pioneered: request
//! deadlines, bounded exponential backoff ([`session::RetryPolicy`] —
//! the old hard-coded constants are its defaults), and sticky
//! leader re-lookup by rotating resubmissions across ring members
//! ([`session::rotation_pick`]).
//!
//! [`table::SessionTable`] hosts N such sessions in **one** actor: a
//! slab of in-flight requests addressed by slot+generation [`MsgId`]s,
//! deadlines coalesced onto a [`simnet::wheel::TimerWheel`] driven by a
//! single periodic sim timer, and per-session latency recorded into the
//! metrics histograms (report with `Metrics::percentile` — p50/p99/p999).
//! One actor per simulated client would cost an arena slot, RNG stream,
//! and timer chain per session; the table design is what lets a single
//! run sustain 1M+ sessions.
//!
//! ## Adding a workload
//!
//! 1. Implement a generator producing your service's commands (see
//!    [`keyed::KeyedWorkload`] for the shape: draw from the `&mut
//!    SmallRng` you are handed, never an ambient RNG, so runs stay
//!    deterministic).
//! 2. Implement [`table::SessionDriver`] for your service: `submit`
//!    builds/registers/sends one request, `resubmit` re-sends it
//!    (rotating targets if the service has a leader), `on_response`
//!    maps a delivery back to the request id it completes, and `finish`
//!    drops per-request state.
//! 3. Deploy a [`table::SessionTable`] over your driver, or a
//!    one-session-per-actor client built on [`session::Session`] when
//!    the experiment needs only a handful of clients.

pub mod arrival;
pub mod keyed;
pub mod session;
pub mod table;

pub use abcast::Pacer;
pub use arrival::{Arrival, Poisson};
pub use keyed::{KeyedWorkload, WorkloadGen, WorkloadKind, ZipfSampler};
pub use session::{rotation_pick, RetryDecision, RetryPolicy, Session};
pub use table::{SessionDriver, SessionTable, SessionTableConfig};

/// Commands submitted by session tables (one per session interaction).
pub const SESSIONS_SUBMITTED: &str = "sessions.submitted";
/// Session interactions completed (response matched to request).
pub const SESSIONS_COMPLETED: &str = "sessions.completed";
/// Resubmissions after a blown deadline.
pub const SESSIONS_RETRIES: &str = "sessions.retries";
/// Requests given up after `RetryPolicy::max_attempts`.
pub const SESSIONS_ABANDONED: &str = "sessions.abandoned";
/// Arrivals shed because the in-flight slab was full (overload guard).
pub const SESSIONS_SHED: &str = "sessions.shed";
/// Sum of arrival instants, µs — with [`SESSIONS_SUBMITTED`] this pins
/// the arrival sequence for the determinism gate.
pub const SESSIONS_ARRIVAL_US: &str = "sessions.arrival_us";
/// Per-session request latency histogram (p50/p99/p999 reporting).
pub const SESSION_LATENCY: &str = "sessions.latency";
/// Inter-arrival gap histogram of the open-loop process.
pub const SESSION_ARRIVAL_GAP: &str = "sessions.arrival_gap";
