//! Session machinery, generalized from `psmr::client`: request
//! deadlines, bounded exponential backoff, and sticky leader re-lookup
//! by rotating resubmissions across ring members.
//!
//! A [`Session`] tracks one in-flight request; [`RetryPolicy`] carries
//! the knobs that used to be hard-coded constants in the P-SMR client
//! (whose values are the defaults here). Client actors poll their
//! sessions from a periodic timer ([`RetryPolicy::tick`]) — or, at
//! mass-session scale, from a [`simnet::wheel::TimerWheel`] entry per
//! deadline — and act on the returned [`RetryDecision`].

use abcast::MsgId;
use simnet::ids::NodeId;
use simnet::time::{Dur, Time};

/// Retry/backoff configuration of one client tier. The defaults are
/// the constants `psmr::client` shipped with, so existing deployments
/// behave identically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// First resubmission deadline; doubles per attempt up to `cap`.
    pub base: Dur,
    /// Ceiling of the exponential backoff.
    pub cap: Dur,
    /// Retry-check granularity (one periodic timer, not one per
    /// command).
    pub tick: Dur,
    /// Give up on a request after this many resubmissions. Replicas
    /// dedup by id, so an abandoned command that still executes is
    /// harmless (its late response is ignored as stale).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Dur::millis(200),
            cap: Dur::millis(1600),
            tick: Dur::millis(100),
            max_attempts: 10,
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempts + 1`: `base << attempts`,
    /// capped at `cap`.
    pub fn backoff(&self, attempts: u32) -> Dur {
        let d = self.base * (1u64 << attempts.min(10));
        if d > self.cap {
            self.cap
        } else {
            d
        }
    }
}

/// What to do with a session at a retry check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Deadline not reached; leave it in flight.
    Wait,
    /// Deadline blown: resubmit (this is resubmission number
    /// `attempt`), rotating the submission target.
    Resubmit {
        /// Resubmissions so far, this one included.
        attempt: u32,
    },
    /// `max_attempts` exhausted: drop the request and move on.
    Abandon,
}

/// One in-flight request of a session.
#[derive(Clone, Copy, Debug)]
pub struct Session {
    /// The request id responses are matched against.
    pub id: MsgId,
    /// Submission instant (latency measurement).
    pub started: Time,
    /// Resubmissions so far; selects the retry target and backoff.
    pub attempts: u32,
    /// When the next resubmission is due.
    pub deadline: Time,
}

impl Session {
    /// Opens a session for `id` submitted at `now`.
    pub fn open(id: MsgId, now: Time, policy: &RetryPolicy) -> Session {
        Session { id, started: now, attempts: 0, deadline: now + policy.backoff(0) }
    }

    /// Polls the session at `now`: on a blown deadline, advances the
    /// attempt count and deadline and asks the caller to resubmit —
    /// or to abandon once `policy.max_attempts` is exhausted.
    pub fn poll(&mut self, now: Time, policy: &RetryPolicy) -> RetryDecision {
        if now < self.deadline {
            return RetryDecision::Wait;
        }
        if self.attempts >= policy.max_attempts {
            return RetryDecision::Abandon;
        }
        self.attempts += 1;
        self.deadline = now + policy.backoff(self.attempts);
        RetryDecision::Resubmit { attempt: self.attempts }
    }
}

/// The submission point at rotation `cursor`: the known coordinator
/// first (cursor 0), then round-robin over the ring members — any live
/// one relays the proposal to the coordinator of its current view, so
/// rotating past a dead leader re-looks the new one up. Cursors are
/// *sticky*: advance them on blown deadlines and leave them on success,
/// so post-failover traffic skips the dead leader instead of re-paying
/// a timeout per command.
pub fn rotation_pick(coordinator: NodeId, members: &[NodeId], cursor: usize) -> NodeId {
    if cursor == 0 || members.is_empty() {
        coordinator
    } else {
        members[(cursor - 1) % members.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_matches_the_old_psmr_constants() {
        let p = RetryPolicy::default();
        assert_eq!(p.base, Dur::millis(200));
        assert_eq!(p.cap, Dur::millis(1600));
        assert_eq!(p.tick, Dur::millis(100));
        assert_eq!(p.max_attempts, 10);
    }

    #[test]
    fn backoff_doubles_to_the_cap() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), Dur::millis(200));
        assert_eq!(p.backoff(1), Dur::millis(400));
        assert_eq!(p.backoff(2), Dur::millis(800));
        assert_eq!(p.backoff(3), Dur::millis(1600));
        assert_eq!(p.backoff(9), Dur::millis(1600));
        assert_eq!(p.backoff(40), Dur::millis(1600), "shift clamped, no overflow");
    }

    #[test]
    fn session_waits_then_retries_then_abandons() {
        let policy = RetryPolicy { max_attempts: 2, ..RetryPolicy::default() };
        let t0 = Time::ZERO + Dur::millis(5);
        let mut s = Session::open(MsgId(7), t0, &policy);
        assert_eq!(s.poll(t0 + Dur::millis(100), &policy), RetryDecision::Wait);
        let t1 = t0 + Dur::millis(200);
        assert_eq!(s.poll(t1, &policy), RetryDecision::Resubmit { attempt: 1 });
        assert_eq!(s.deadline, t1 + Dur::millis(400));
        let t2 = s.deadline;
        assert_eq!(s.poll(t2, &policy), RetryDecision::Resubmit { attempt: 2 });
        let t3 = s.deadline;
        assert_eq!(s.poll(t3, &policy), RetryDecision::Abandon);
        assert_eq!(s.started, t0, "latency baseline survives retries");
    }

    #[test]
    fn rotation_starts_at_the_coordinator_and_wraps_members() {
        let coord = NodeId(9);
        let members = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(rotation_pick(coord, &members, 0), coord);
        assert_eq!(rotation_pick(coord, &members, 1), NodeId(1));
        assert_eq!(rotation_pick(coord, &members, 3), NodeId(3));
        assert_eq!(rotation_pick(coord, &members, 4), NodeId(1));
        assert_eq!(rotation_pick(coord, &[], 5), coord, "no members: stay on coordinator");
    }
}
