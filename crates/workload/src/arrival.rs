//! Arrival processes: when the next request enters the system.
//!
//! Open-loop arrivals are what "millions of users" look like to a
//! replicated service: requests arrive on the users' schedule, not the
//! service's. [`Poisson`] models a large population of independent
//! sessions exactly — by the superposition theorem, N independent
//! Poisson streams of rate λ are one Poisson stream of rate Nλ, so the
//! session table draws one aggregate exponential gap per arrival and
//! picks the issuing session uniformly, instead of maintaining a
//! million per-session clocks.

use rand::rngs::SmallRng;
use rand::Rng;
use simnet::time::Dur;

use crate::Pacer;

/// A deterministic Poisson arrival process: exponential inter-arrival
/// gaps by inverse-CDF sampling from the caller's RNG. Feeding it the
/// actor's per-node RNG stream makes the arrival sequence a pure
/// function of the simulation seed — independent of shard partition and
/// executor thread count, which is what the determinism gate pins.
#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    mean_gap: Dur,
}

impl Poisson {
    /// A process with `rate` arrivals per second (aggregate).
    ///
    /// # Panics
    /// Panics unless `rate` is positive and finite.
    pub fn with_rate(rate: f64) -> Poisson {
        assert!(rate > 0.0 && rate.is_finite(), "arrival rate must be positive");
        Poisson { mean_gap: Dur::from_secs_f64(1.0 / rate) }
    }

    /// Mean inter-arrival gap (1/λ).
    pub fn mean_gap(&self) -> Dur {
        self.mean_gap
    }

    /// Draws the gap to the next arrival: `-ln(U)/λ`, `U ∈ (0, 1]`.
    pub fn next_gap(&self, rng: &mut SmallRng) -> Dur {
        // `gen::<f64>()` is uniform on [0, 1); flip to (0, 1] so ln is
        // finite.
        let u = 1.0 - rng.gen::<f64>();
        Dur::from_secs_f64(-u.ln() * self.mean_gap.as_secs_f64())
    }
}

/// How a session table's requests enter the system.
#[derive(Clone, Debug)]
pub enum Arrival {
    /// Open loop, Poisson aggregate arrivals (module docs).
    Poisson(Poisson),
    /// Open loop, the paced burst submitter of the ch. 3/5 throughput
    /// experiments: fixed-interval bursts at a byte rate.
    Paced(Pacer),
    /// Closed loop: every session keeps one request outstanding and
    /// issues the next on completion.
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mean_gap_matches_rate() {
        let p = Poisson::with_rate(1000.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_secs_f64()).sum();
        let mean_ms = total / n as f64 * 1000.0;
        // E[gap] = 1 ms; 20k samples put the sample mean well within 5%.
        assert!((0.95..1.05).contains(&mean_ms), "mean gap {mean_ms:.4} ms");
    }

    #[test]
    fn gaps_are_exponential_not_constant() {
        let p = Poisson::with_rate(1000.0);
        let mut rng = SmallRng::seed_from_u64(8);
        let gaps: Vec<f64> = (0..10_000).map(|_| p.next_gap(&mut rng).as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        // Exponential: std dev == mean (CV = 1).
        let cv = var.sqrt() / mean;
        assert!((0.9..1.1).contains(&cv), "coefficient of variation {cv:.3}");
        // Memoryless draws include both sub-mean and multi-mean gaps.
        assert!(gaps.iter().any(|&g| g < mean / 4.0));
        assert!(gaps.iter().any(|&g| g > mean * 3.0));
    }

    #[test]
    fn sequence_is_a_pure_function_of_the_seed() {
        let p = Poisson::with_rate(500.0);
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..100).map(|_| p.next_gap(&mut rng).as_nanos()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..100).map(|_| p.next_gap(&mut rng).as_nanos()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Poisson::with_rate(0.0);
    }
}
