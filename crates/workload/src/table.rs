//! The session-table actor: one [`Actor`] multiplexing N client
//! sessions, built for million-session runs.
//!
//! One actor per simulated client costs an arena slot, an RNG stream,
//! and a timer chain per session — fine for the paper's 20–200 clients,
//! prohibitive for "millions of users". The table hosts the whole
//! population in one actor:
//!
//! * **In-flight slab** — outstanding requests live in a free-listed
//!   slab; the request id encodes `node | generation | slot`, so a
//!   response (or a stale wheel entry) is validated in O(1) against the
//!   slot's current generation. Idle sessions cost nothing.
//! * **Timer-wheel deadlines** — every request deadline goes on a
//!   [`TimerWheel`] keyed by slot+generation; one periodic sim timer
//!   ([`RetryPolicy::tick`]) drains it. Deadlines moved by a resubmit
//!   are cancelled lazily: the superseded entry fires, fails the
//!   deadline check, and is dropped.
//! * **Aggregate open-loop arrivals** — a single Poisson stream at
//!   N×(per-session rate), with the issuing session picked uniformly
//!   per arrival (superposition makes this exactly equivalent to N
//!   independent per-session streams). Closed-loop and paced modes are
//!   also supported ([`Arrival`]).
//! * **Per-session latency** — completion latencies go to the
//!   [`crate::SESSION_LATENCY`] histogram; report p50/p99/p999 with
//!   `Metrics::percentile`.
//!
//! The table is service-agnostic: a [`SessionDriver`] supplies the
//! service-specific build/send/match logic (see `core`'s tree driver).

use rand::Rng;
use simnet::prelude::*;
use simnet::wheel::TimerWheel;

use crate::arrival::Arrival;
use crate::session::RetryPolicy;
use crate::{
    SESSIONS_ABANDONED, SESSIONS_ARRIVAL_US, SESSIONS_COMPLETED, SESSIONS_RETRIES, SESSIONS_SHED,
    SESSIONS_SUBMITTED, SESSION_ARRIVAL_GAP, SESSION_LATENCY,
};
use abcast::MsgId;

const T_TABLE_TICK: u64 = 50 << 56;
const T_TABLE_ARRIVAL: u64 = 51 << 56;

/// Bits of the request id holding the slab slot.
const SLOT_BITS: u32 = 24;
/// Bits holding the slot generation (stale-response rejection).
const GEN_BITS: u32 = 16;

/// Service-specific half of a session table. Implementations own the
/// command generator and whatever per-request bookkeeping the service
/// needs (command registry entries, expected-reply counts, …).
pub trait SessionDriver: Send {
    /// Builds, registers, and sends one fresh request under `id`. Draw
    /// randomness from `ctx.rng()` so runs stay deterministic.
    fn submit(&mut self, id: MsgId, ctx: &mut Ctx);

    /// Re-sends request `id` after a blown deadline; `attempt` counts
    /// resubmissions (1-based). Drivers with a leader rotate their
    /// submission target here (sticky cursor — see
    /// [`crate::session::rotation_pick`]).
    fn resubmit(&mut self, id: MsgId, attempt: u32, ctx: &mut Ctx);

    /// Inspects a delivery and returns the request id it completes, if
    /// any (drivers counting per-partition replies return `Some` only
    /// on the last one).
    fn on_response(&mut self, env: &Envelope, ctx: &mut Ctx) -> Option<MsgId>;

    /// Drops per-request state for `id` (completed or abandoned).
    fn finish(&mut self, id: MsgId);
}

/// Configuration of a [`SessionTable`].
#[derive(Clone, Debug)]
pub struct SessionTableConfig {
    /// Simulated sessions hosted by this table.
    pub sessions: u64,
    /// How requests enter the system.
    pub arrival: Arrival,
    /// Retry/backoff knobs shared by every session.
    pub policy: RetryPolicy,
    /// In-flight ceiling; arrivals beyond it are shed (and counted
    /// under [`SESSIONS_SHED`]) rather than queued, as an open loop
    /// must. Capped at the id encoding's 2^24 slots.
    pub max_in_flight: u32,
    /// Stop issuing new requests at this instant.
    pub stop_at: Option<Time>,
}

impl Default for SessionTableConfig {
    fn default() -> SessionTableConfig {
        SessionTableConfig {
            sessions: 1,
            arrival: Arrival::Closed,
            policy: RetryPolicy::default(),
            max_in_flight: 1 << 20,
            stop_at: None,
        }
    }
}

/// One in-flight request's slab slot.
#[derive(Clone, Copy, Debug)]
struct Slot {
    /// Bumped on free; stale responses and wheel entries miss it.
    gen: u16,
    busy: bool,
    /// The session this request belongs to.
    session: u32,
    started: Time,
    attempts: u32,
    deadline: Time,
}

/// The session-table actor (module docs).
pub struct SessionTable<D> {
    me: NodeId,
    cfg: SessionTableConfig,
    driver: D,
    slots: Vec<Slot>,
    free: Vec<u32>,
    wheel: TimerWheel,
    /// Due wheel keys, drained on the tick (buffer reused across ticks).
    due: Vec<u64>,
}

impl<D: SessionDriver> SessionTable<D> {
    /// Creates a table at node `me` over `driver`.
    ///
    /// # Panics
    /// Panics if the config names zero sessions or more than `u32::MAX`.
    pub fn new(me: NodeId, mut cfg: SessionTableConfig, driver: D) -> SessionTable<D> {
        assert!(cfg.sessions > 0 && cfg.sessions <= u32::MAX as u64, "1..=u32::MAX sessions");
        cfg.max_in_flight = cfg.max_in_flight.clamp(1, 1 << SLOT_BITS);
        let wheel = TimerWheel::new(cfg.policy.tick, 256);
        SessionTable {
            me,
            cfg,
            driver,
            slots: Vec::new(),
            free: Vec::new(),
            wheel,
            due: Vec::new(),
        }
    }

    /// The driver (final-state inspection in tests/experiments).
    pub fn driver(&self) -> &D {
        &self.driver
    }

    fn encode(&self, slot: u32, gen: u16) -> MsgId {
        debug_assert!(slot < (1 << SLOT_BITS));
        MsgId(
            ((self.me.0 as u64) << (SLOT_BITS + GEN_BITS))
                | ((gen as u64) << SLOT_BITS)
                | slot as u64,
        )
    }

    fn decode(&self, id: MsgId) -> Option<(u32, u16)> {
        if id.0 >> (SLOT_BITS + GEN_BITS) != self.me.0 as u64 {
            return None;
        }
        Some((
            (id.0 & ((1 << SLOT_BITS) - 1)) as u32,
            ((id.0 >> SLOT_BITS) & ((1 << GEN_BITS) - 1)) as u16,
        ))
    }

    fn stopped(&self, now: Time) -> bool {
        self.cfg.stop_at.is_some_and(|t| now >= t)
    }

    /// Opens a slab slot and submits one request for `session`.
    /// Returns false (shedding the arrival) when the slab is full.
    fn start_request(&mut self, session: u32, ctx: &mut Ctx) -> bool {
        let slot_idx = match self.free.pop() {
            Some(i) => i,
            None if (self.slots.len() as u32) < self.cfg.max_in_flight => {
                self.slots.push(Slot {
                    gen: 0,
                    busy: false,
                    session: 0,
                    started: Time::ZERO,
                    attempts: 0,
                    deadline: Time::ZERO,
                });
                self.slots.len() as u32 - 1
            }
            None => {
                ctx.counter_add(SESSIONS_SHED, 1);
                return false;
            }
        };
        let now = ctx.now();
        let deadline = now + self.cfg.policy.backoff(0);
        let gen = {
            let s = &mut self.slots[slot_idx as usize];
            debug_assert!(!s.busy);
            *s = Slot { gen: s.gen, busy: true, session, started: now, attempts: 0, deadline };
            s.gen
        };
        let id = self.encode(slot_idx, gen);
        self.wheel.schedule(deadline, id.0 & ((1 << (SLOT_BITS + GEN_BITS)) - 1));
        self.driver.submit(id, ctx);
        ctx.counter_add(SESSIONS_SUBMITTED, 1);
        ctx.counter_add(SESSIONS_ARRIVAL_US, now.as_nanos() / 1_000);
        true
    }

    fn free_slot(&mut self, slot_idx: u32) {
        let s = &mut self.slots[slot_idx as usize];
        s.busy = false;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot_idx);
    }

    /// One open-loop arrival: a uniformly picked session issues a
    /// request (superposition of per-session Poisson streams).
    fn arrive(&mut self, ctx: &mut Ctx) {
        let session = ctx.rng().gen_range(0..self.cfg.sessions) as u32;
        self.start_request(session, ctx);
    }

    fn arm_arrival(&mut self, ctx: &mut Ctx) {
        if self.stopped(ctx.now()) {
            return;
        }
        match &mut self.cfg.arrival {
            Arrival::Poisson(p) => {
                let gap = p.next_gap(ctx.rng());
                ctx.record_latency(SESSION_ARRIVAL_GAP, gap);
                ctx.set_timer(gap, TimerToken(T_TABLE_ARRIVAL));
            }
            Arrival::Paced(p) => {
                ctx.set_timer(p.interval(), TimerToken(T_TABLE_ARRIVAL));
            }
            Arrival::Closed => {}
        }
    }

    /// Drains the deadline wheel, polling every fired session that is
    /// still on its recorded deadline.
    fn tick(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        self.due.clear();
        let due = &mut self.due;
        self.wheel.advance(now, |key| due.push(key));
        for i in 0..self.due.len() {
            let key = self.due[i];
            let slot_idx = (key & ((1 << SLOT_BITS) - 1)) as u32;
            let gen = ((key >> SLOT_BITS) & ((1 << GEN_BITS) - 1)) as u16;
            let s = self.slots[slot_idx as usize];
            // Lazy cancellation: the slot was freed/reused, or its
            // deadline moved and a newer wheel entry covers it.
            if !s.busy || s.gen != gen || now < s.deadline {
                continue;
            }
            let id = self.encode(slot_idx, gen);
            if s.attempts >= self.cfg.policy.max_attempts {
                ctx.counter_add(SESSIONS_ABANDONED, 1);
                self.driver.finish(id);
                self.free_slot(slot_idx);
                if matches!(self.cfg.arrival, Arrival::Closed) && !self.stopped(now) {
                    self.start_request(s.session, ctx);
                }
                continue;
            }
            let attempt = s.attempts + 1;
            let deadline = now + self.cfg.policy.backoff(attempt);
            {
                let s = &mut self.slots[slot_idx as usize];
                s.attempts = attempt;
                s.deadline = deadline;
            }
            self.wheel.schedule(deadline, key);
            ctx.counter_add(SESSIONS_RETRIES, 1);
            self.driver.resubmit(id, attempt, ctx);
        }
    }
}

impl<D: SessionDriver + 'static> Actor for SessionTable<D> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.cfg.policy.tick, TimerToken(T_TABLE_TICK));
        match self.cfg.arrival {
            Arrival::Closed => {
                // Prime the closed loop: one outstanding request per
                // session (slab permitting).
                for session in 0..self.cfg.sessions as u32 {
                    if !self.start_request(session, ctx) {
                        break;
                    }
                }
            }
            _ => {
                self.arrive(ctx);
                self.arm_arrival(ctx);
            }
        }
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(id) = self.driver.on_response(env, ctx) else { return };
        let Some((slot_idx, gen)) = self.decode(id) else { return };
        let Some(s) = self.slots.get(slot_idx as usize).copied() else { return };
        if !s.busy || s.gen != gen {
            return; // stale response of a freed request
        }
        let (session, started) = (s.session, s.started);
        ctx.record_latency(SESSION_LATENCY, ctx.now().since(started));
        ctx.counter_add(SESSIONS_COMPLETED, 1);
        self.driver.finish(id);
        self.free_slot(slot_idx);
        if matches!(self.cfg.arrival, Arrival::Closed) && !self.stopped(ctx.now()) {
            self.start_request(session, ctx);
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        match token.0 {
            T_TABLE_ARRIVAL => {
                match &mut self.cfg.arrival {
                    Arrival::Poisson(_) => {
                        if !self.stopped(ctx.now()) {
                            self.arrive(ctx);
                        }
                    }
                    Arrival::Paced(p) => {
                        let due = p.due(ctx.now());
                        if !self.stopped(ctx.now()) {
                            for _ in 0..due {
                                self.arrive(ctx);
                            }
                        }
                    }
                    Arrival::Closed => {}
                }
                self.arm_arrival(ctx);
            }
            _ => {
                self.tick(ctx);
                ctx.set_timer(self.cfg.policy.tick, TimerToken(T_TABLE_TICK));
            }
        }
    }
}
