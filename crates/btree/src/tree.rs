//! An in-memory B⁺-tree over `u64` keys and values.
//!
//! The paper's replicated service (§4.4.2) is a B⁺-tree storing
//! `(key, value)` tuples of 8-byte integers with three operations:
//! `insert`, `delete`, and `query(key_min, key_max)`. This implementation
//! keeps all values in the leaves (internal nodes hold separator keys
//! only), splits on overflow, and rebalances by borrowing or merging on
//! underflow, so the tree stays height-balanced under any workload.

/// Maximum entries per leaf / children per internal node.
const ORDER: usize = 32;
/// Underflow threshold.
const MIN: usize = ORDER / 2;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]`.
        keys: Vec<u64>,
        children: Vec<Node>,
    },
    Leaf {
        entries: Vec<(u64, u64)>,
    },
}

impl Node {
    fn size(&self) -> usize {
        match self {
            Node::Internal { children, .. } => children.len(),
            Node::Leaf { entries } => entries.len(),
        }
    }
}

/// The split result bubbling up after an insert: a separator key and the
/// new right sibling.
struct Split {
    sep: u64,
    right: Node,
}

/// An in-memory B⁺-tree mapping `u64` keys to `u64` values.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    root: Node,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// Creates an empty tree.
    pub fn new() -> BPlusTree {
        BPlusTree { root: Node::Leaf { entries: Vec::new() }, len: 0 }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the value stored under `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    node = &children[idx];
                }
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by_key(&key, |&(k, _)| k)
                        .ok()
                        .map(|i| entries[i].1);
                }
            }
        }
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let (old, split) = Self::insert_rec(&mut self.root, key, value);
        if let Some(s) = split {
            let old_root = std::mem::replace(&mut self.root, Node::Leaf { entries: Vec::new() });
            self.root = Node::Internal { keys: vec![s.sep], children: vec![old_root, s.right] };
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(node: &mut Node, key: u64, value: u64) -> (Option<u64>, Option<Split>) {
        match node {
            Node::Leaf { entries } => match entries.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(i) => (Some(std::mem::replace(&mut entries[i].1, value)), None),
                Err(i) => {
                    entries.insert(i, (key, value));
                    if entries.len() > ORDER {
                        let right = entries.split_off(entries.len() / 2);
                        let sep = right[0].0;
                        (None, Some(Split { sep, right: Node::Leaf { entries: right } }))
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                let (old, split) = Self::insert_rec(&mut children[idx], key, value);
                let split = split.and_then(|s| {
                    keys.insert(idx, s.sep);
                    children.insert(idx + 1, s.right);
                    if children.len() > ORDER {
                        let mid = children.len() / 2;
                        // keys[mid-1] moves up as the separator.
                        let sep = keys[mid - 1];
                        let right_keys = keys.split_off(mid);
                        keys.pop(); // drop the promoted separator
                        let right_children = children.split_off(mid);
                        Some(Split {
                            sep,
                            right: Node::Internal { keys: right_keys, children: right_children },
                        })
                    } else {
                        None
                    }
                });
                (old, split)
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let old = Self::remove_rec(&mut self.root, key);
        if old.is_some() {
            self.len -= 1;
        }
        // Collapse a root with a single child.
        if let Node::Internal { children, .. } = &mut self.root {
            if children.len() == 1 {
                self.root = children.pop().expect("one child");
            }
        }
        old
    }

    fn remove_rec(node: &mut Node, key: u64) -> Option<u64> {
        match node {
            Node::Leaf { entries } => match entries.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(i) => Some(entries.remove(i).1),
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                let old = Self::remove_rec(&mut children[idx], key);
                if children[idx].size() < MIN {
                    Self::rebalance(keys, children, idx);
                }
                old
            }
        }
    }

    /// Restores the invariant for `children[idx]` by borrowing from a
    /// sibling or merging with one.
    fn rebalance(keys: &mut Vec<u64>, children: &mut Vec<Node>, idx: usize) {
        // Prefer borrowing from the left sibling, then right; merge when
        // neither can spare an element.
        if idx > 0 && children[idx - 1].size() > MIN {
            let (left, right) = children.split_at_mut(idx);
            let left = &mut left[idx - 1];
            match (left, &mut right[0]) {
                (Node::Leaf { entries: le }, Node::Leaf { entries: re }) => {
                    let moved = le.pop().expect("size > MIN");
                    re.insert(0, moved);
                    keys[idx - 1] = moved.0;
                }
                (
                    Node::Internal { keys: lk, children: lc },
                    Node::Internal { keys: rk, children: rc },
                ) => {
                    let child = lc.pop().expect("size > MIN");
                    let sep = lk.pop().expect("keys track children");
                    rk.insert(0, keys[idx - 1]);
                    rc.insert(0, child);
                    keys[idx - 1] = sep;
                }
                _ => unreachable!("siblings share a level"),
            }
        } else if idx + 1 < children.len() && children[idx + 1].size() > MIN {
            let (left, right) = children.split_at_mut(idx + 1);
            let left = &mut left[idx];
            match (left, &mut right[0]) {
                (Node::Leaf { entries: le }, Node::Leaf { entries: re }) => {
                    let moved = re.remove(0);
                    le.push(moved);
                    keys[idx] = re[0].0;
                }
                (
                    Node::Internal { keys: lk, children: lc },
                    Node::Internal { keys: rk, children: rc },
                ) => {
                    lk.push(keys[idx]);
                    lc.push(rc.remove(0));
                    keys[idx] = rk.remove(0);
                }
                _ => unreachable!("siblings share a level"),
            }
        } else {
            // Merge with a sibling.
            let (li, ri) = if idx > 0 { (idx - 1, idx) } else { (idx, idx + 1) };
            if ri >= children.len() {
                return; // root with a single child: handled by caller
            }
            let right = children.remove(ri);
            let sep = keys.remove(li);
            match (&mut children[li], right) {
                (Node::Leaf { entries: le }, Node::Leaf { entries: mut re }) => {
                    le.append(&mut re);
                }
                (
                    Node::Internal { keys: lk, children: lc },
                    Node::Internal { keys: mut rk, children: mut rc },
                ) => {
                    lk.push(sep);
                    lk.append(&mut rk);
                    lc.append(&mut rc);
                }
                _ => unreachable!("siblings share a level"),
            }
        }
    }

    /// Returns all `(key, value)` tuples with `lo <= key <= hi`, in key
    /// order — the paper's `query(key_min, key_max)`.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, lo, hi, &mut out);
        out
    }

    fn range_rec(node: &Node, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        match node {
            Node::Leaf { entries } => {
                let start = entries.partition_point(|&(k, _)| k < lo);
                for &(k, v) in &entries[start..] {
                    if k > hi {
                        break;
                    }
                    out.push((k, v));
                }
            }
            Node::Internal { keys, children } => {
                let first = keys.partition_point(|&k| k <= lo);
                let last = keys.partition_point(|&k| k <= hi);
                for child in &children[first..=last] {
                    Self::range_rec(child, lo, hi, out);
                }
            }
        }
    }

    /// Tree height (leaves are height 1) — used by tests to check balance.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }

    /// Validates structural invariants (sorted keys, child separation,
    /// balance); used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let h = self.height();
        Self::check_rec(&self.root, None, None, h, 1, true)?;
        Ok(())
    }

    fn check_rec(
        node: &Node,
        lo: Option<u64>,
        hi: Option<u64>,
        height: usize,
        depth: usize,
        is_root: bool,
    ) -> Result<(), String> {
        match node {
            Node::Leaf { entries } => {
                if depth != height {
                    return Err(format!("leaf at depth {depth}, height {height}"));
                }
                if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
                    return Err("leaf keys not strictly sorted".into());
                }
                for &(k, _) in entries {
                    if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k >= h) {
                        return Err(format!("leaf key {k} out of bounds {lo:?}..{hi:?}"));
                    }
                }
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err("child/key count mismatch".into());
                }
                if !is_root && children.len() < MIN {
                    return Err(format!("internal underflow: {}", children.len()));
                }
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err("internal keys not sorted".into());
                }
                for (i, child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    Self::check_rec(child, clo, chi, height, depth + 1, false)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(5, 51), Some(50));
        assert_eq!(t.get(5), Some(51));
        assert_eq!(t.get(6), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_keep_everything_reachable() {
        let mut t = BPlusTree::new();
        for k in 0..10_000u64 {
            t.insert(k * 7 % 10_000, k);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert!(t.get(k).is_some(), "lost key {k}");
        }
        assert!(t.height() >= 3, "tree should have split: height {}", t.height());
    }

    #[test]
    fn remove_rebalances() {
        let mut t = BPlusTree::new();
        for k in 0..5_000u64 {
            t.insert(k, k);
        }
        for k in (0..5_000u64).step_by(2) {
            assert_eq!(t.remove(k), Some(k));
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 2_500);
        assert_eq!(t.remove(1), Some(1));
        assert_eq!(t.remove(0), None, "already removed");
        for k in (3..5_000u64).step_by(2) {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let mut t = BPlusTree::new();
        for k in 0..2_000u64 {
            t.insert(k, k);
        }
        for k in 0..2_000u64 {
            assert_eq!(t.remove(k), Some(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_query_returns_sorted_window() {
        let mut t = BPlusTree::new();
        for k in (0..1_000u64).rev() {
            t.insert(k * 3, k);
        }
        let r = t.range(30, 60);
        let keys: Vec<u64> = r.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![30, 33, 36, 39, 42, 45, 48, 51, 54, 57, 60]);
    }

    #[test]
    fn range_is_inclusive_and_handles_empty_windows() {
        let mut t = BPlusTree::new();
        t.insert(10, 1);
        t.insert(20, 2);
        assert_eq!(t.range(10, 20).len(), 2);
        assert_eq!(t.range(11, 19).len(), 0);
        assert_eq!(t.range(0, 9).len(), 0);
        assert_eq!(t.range(21, u64::MAX).len(), 0);
        assert_eq!(BPlusTree::new().range(0, u64::MAX).len(), 0);
    }

    #[test]
    fn interleaved_workload_keeps_invariants() {
        let mut t = BPlusTree::new();
        let mut x = 12345u64;
        for i in 0..30_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x % 5_000;
            if i % 3 == 0 {
                t.remove(k);
            } else {
                t.insert(k, i);
            }
        }
        t.check_invariants().unwrap();
    }
}
