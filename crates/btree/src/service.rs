//! The replicated B⁺-tree service of thesis §4.4.2: commands, execution
//! with an undo log for speculative rollback, a calibrated virtual-time
//! cost model, and key-range partitioning.

use simnet::time::Dur;

use crate::tree::BPlusTree;

/// Keys per replica in the paper's experiments (12 million).
pub const KEYS_PER_PARTITION: u64 = 12_000_000;
/// Span of the paper's range queries (1000 keys).
pub const QUERY_SPAN: u64 = 1000;

/// One service command (§4.4.2). Updates return small acks; queries
/// return the tuples in the inclusive key window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeCommand {
    /// Insert a tuple (no-op if the key exists with this value; replaces
    /// otherwise).
    Insert {
        /// Key to insert.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Delete a key if present.
    Delete {
        /// Key to delete.
        key: u64,
    },
    /// Range query over `[lo, hi]`.
    Query {
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
}

impl TreeCommand {
    /// Whether the command modifies the tree.
    pub fn is_update(self) -> bool {
        !matches!(self, TreeCommand::Query { .. })
    }

    /// The inclusive key interval the command touches.
    pub fn key_span(self) -> (u64, u64) {
        match self {
            TreeCommand::Insert { key, .. } | TreeCommand::Delete { key } => (key, key),
            TreeCommand::Query { lo, hi } => (lo, hi),
        }
    }
}

/// Result of executing one command.
#[derive(Clone, Debug, PartialEq)]
pub enum TreeOutput {
    /// Ack for an update (carries the prior value, if any).
    Ack(Option<u64>),
    /// Number of tuples a query matched (the tuples themselves are not
    /// materialized into responses — the reply size is modelled).
    Matched(usize),
}

/// The inverse of an applied update, for speculative rollback (§4.2.1:
/// "rolling back … can be done logically, by executing an action that
/// reverses the effects of the out-of-order command").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UndoOp {
    /// Re-insert a key that was deleted/overwritten.
    Restore(u64, u64),
    /// Remove a key that was freshly inserted.
    Uninsert(u64),
    /// Queries need no undo.
    None,
}

/// Virtual execution-time model, calibrated against the paper's
/// single-server plateaus (Fig. 4.3): ~3.5 Kcps for 1000-key range
/// queries and ~55 Kcps for single updates in the client-server setup.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed cost of dispatching one command (parse + lookup path).
    pub dispatch: Dur,
    /// Per-key cost of scanning a range.
    pub per_scanned_key: Dur,
    /// Fixed cost of one update operation (tree write path).
    pub per_update: Dur,
    /// Base cost of starting a range scan (descend to leaf).
    pub scan_base: Dur,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            dispatch: Dur::nanos(2_000),
            per_scanned_key: Dur::nanos(200),
            per_update: Dur::nanos(2_500),
            scan_base: Dur::micros(50),
        }
    }
}

impl CostModel {
    /// Virtual CPU time to execute `cmd`.
    pub fn cost(&self, cmd: TreeCommand) -> Dur {
        match cmd {
            TreeCommand::Insert { .. } | TreeCommand::Delete { .. } => {
                self.dispatch + self.per_update
            }
            TreeCommand::Query { lo, hi } => {
                let span = hi.saturating_sub(lo).saturating_add(1);
                self.dispatch + self.scan_base + self.per_scanned_key * span
            }
        }
    }
}

/// The B⁺-tree service: the tree, its cost model, and an undo log.
#[derive(Debug, Default)]
pub struct TreeService {
    tree: BPlusTree,
    costs: CostModel,
    undo: Vec<UndoOp>,
}

impl TreeService {
    /// Creates an empty service.
    pub fn new() -> TreeService {
        TreeService::default()
    }

    /// Creates a service pre-populated like the paper's experiments:
    /// `count` evenly spaced keys in `[base, base + span)`.
    pub fn populated(base: u64, span: u64, count: u64) -> TreeService {
        let mut s = TreeService::new();
        let step = (span / count).max(1);
        for i in 0..count {
            s.tree.insert(base + i * step, i);
        }
        s.undo.clear();
        s
    }

    /// The underlying tree (for inspection).
    pub fn tree(&self) -> &BPlusTree {
        &self.tree
    }

    /// The cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Executes `cmd` against the real tree, recording an undo entry for
    /// updates. Returns the output and the modelled execution time.
    pub fn apply(&mut self, cmd: TreeCommand) -> (TreeOutput, Dur) {
        let cost = self.costs.cost(cmd);
        let out = match cmd {
            TreeCommand::Insert { key, value } => {
                let old = self.tree.insert(key, value);
                self.undo.push(match old {
                    Some(prev) => UndoOp::Restore(key, prev),
                    None => UndoOp::Uninsert(key),
                });
                TreeOutput::Ack(old)
            }
            TreeCommand::Delete { key } => {
                let old = self.tree.remove(key);
                self.undo.push(match old {
                    Some(prev) => UndoOp::Restore(key, prev),
                    None => UndoOp::None,
                });
                TreeOutput::Ack(old)
            }
            TreeCommand::Query { lo, hi } => TreeOutput::Matched(self.tree.range(lo, hi).len()),
        };
        (out, cost)
    }

    /// Number of undoable operations currently logged.
    pub fn undo_depth(&self) -> usize {
        self.undo.len()
    }

    /// Discards the undo log up to the current point (operations
    /// confirmed in order — they will never be rolled back).
    pub fn commit(&mut self) {
        self.undo.clear();
    }

    /// Rolls back the `n` most recent updates, in reverse order.
    pub fn rollback(&mut self, n: usize) {
        for _ in 0..n {
            let Some(op) = self.undo.pop() else { return };
            match op {
                UndoOp::Restore(k, v) => {
                    self.tree.insert(k, v);
                }
                UndoOp::Uninsert(k) => {
                    self.tree.remove(k);
                }
                UndoOp::None => {}
            }
        }
    }
}

/// Key-range partitioning: partition `p` of `n` owns keys
/// `[p * KEYS_SPAN, (p+1) * KEYS_SPAN)` where the total key space is
/// `n * KEYS_PER_PARTITION` (§4.4.2: "in the experiments with partial
/// replication we have a bigger range of keys: [1, 12M * num_partitions]").
#[derive(Clone, Copy, Debug)]
pub struct Partitioning {
    /// Number of partitions.
    pub n: u32,
    /// Keys per partition.
    pub span: u64,
}

impl Partitioning {
    /// The paper's layout: 12 M keys per partition.
    pub fn new(n: u32) -> Partitioning {
        Partitioning { n, span: KEYS_PER_PARTITION }
    }

    /// The partition owning `key`.
    pub fn partition_of(&self, key: u64) -> u32 {
        ((key / self.span) as u32).min(self.n - 1)
    }

    /// Bitmask of partitions `cmd` touches.
    pub fn mask_of(&self, cmd: TreeCommand) -> u32 {
        let (lo, hi) = cmd.key_span();
        let (p0, p1) = (self.partition_of(lo), self.partition_of(hi));
        let mut mask = 0u32;
        for p in p0..=p1 {
            mask |= 1 << p;
        }
        mask
    }

    /// Splits a command into per-partition sub-commands
    /// `(partition, sub-command)` — queries crossing a boundary are cut
    /// at it; updates always land in one partition (§4.2.2).
    pub fn split(&self, cmd: TreeCommand) -> Vec<(u32, TreeCommand)> {
        match cmd {
            TreeCommand::Insert { .. } | TreeCommand::Delete { .. } => {
                vec![(self.partition_of(cmd.key_span().0), cmd)]
            }
            TreeCommand::Query { lo, hi } => {
                let (p0, p1) = (self.partition_of(lo), self.partition_of(hi));
                (p0..=p1)
                    .map(|p| {
                        let plo = (p as u64) * self.span;
                        let phi = plo + self.span - 1;
                        (p, TreeCommand::Query { lo: lo.max(plo), hi: hi.min(phi) })
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_undo_roundtrip() {
        let mut s = TreeService::new();
        s.apply(TreeCommand::Insert { key: 1, value: 10 });
        s.apply(TreeCommand::Insert { key: 2, value: 20 });
        s.apply(TreeCommand::Insert { key: 1, value: 11 }); // overwrite
        s.apply(TreeCommand::Delete { key: 2 });
        assert_eq!(s.undo_depth(), 4);
        // Roll back delete and overwrite: key 1 -> 10, key 2 -> 20.
        s.rollback(2);
        assert_eq!(s.tree().get(1), Some(10));
        assert_eq!(s.tree().get(2), Some(20));
        // Roll back the two inserts: empty tree.
        s.rollback(2);
        assert!(s.tree().is_empty());
    }

    #[test]
    fn commit_clears_undo() {
        let mut s = TreeService::new();
        s.apply(TreeCommand::Insert { key: 1, value: 1 });
        s.commit();
        assert_eq!(s.undo_depth(), 0);
        s.rollback(5); // no-op
        assert_eq!(s.tree().get(1), Some(1));
    }

    #[test]
    fn query_counts_matches_and_needs_no_undo() {
        let mut s = TreeService::populated(0, 1000, 100);
        let before = s.undo_depth();
        let (out, _) = s.apply(TreeCommand::Query { lo: 0, hi: 999 });
        assert_eq!(out, TreeOutput::Matched(100));
        assert_eq!(s.undo_depth(), before);
    }

    #[test]
    fn cost_model_matches_paper_plateaus() {
        let m = CostModel::default();
        // 1000-key range query ~ 252 us -> ~4 Kcps per core.
        let q = m.cost(TreeCommand::Query { lo: 0, hi: QUERY_SPAN - 1 });
        assert!(q >= Dur::micros(240) && q <= Dur::micros(280), "{q:?}");
        // Single update ~ 4.5 us.
        let u = m.cost(TreeCommand::Insert { key: 0, value: 0 });
        assert!(u >= Dur::micros(4) && u <= Dur::micros(6), "{u:?}");
    }

    #[test]
    fn partitioning_masks_and_splits() {
        let p = Partitioning::new(4);
        let span = p.span;
        assert_eq!(p.partition_of(0), 0);
        assert_eq!(p.partition_of(span - 1), 0);
        assert_eq!(p.partition_of(span), 1);
        assert_eq!(p.partition_of(4 * span + 5), 3, "clamped to last partition");

        let single = TreeCommand::Query { lo: 10, hi: 20 };
        assert_eq!(p.mask_of(single), 0b0001);
        assert_eq!(p.split(single).len(), 1);

        let cross = TreeCommand::Query { lo: span - 10, hi: span + 10 };
        assert_eq!(p.mask_of(cross), 0b0011);
        let parts = p.split(cross);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], (0, TreeCommand::Query { lo: span - 10, hi: span - 1 }));
        assert_eq!(parts[1], (1, TreeCommand::Query { lo: span, hi: span + 10 }));

        let upd = TreeCommand::Insert { key: span + 1, value: 0 };
        assert_eq!(p.mask_of(upd), 0b0010);
    }

    #[test]
    fn populated_matches_paper_density() {
        let s = TreeService::populated(0, 10_000, 1_000);
        // Evenly spaced: a full-window query over 1/10 of the range
        // matches ~100 keys.
        let (out, _) = {
            TreeService::populated(0, 10_000, 1_000).apply(TreeCommand::Query { lo: 0, hi: 999 })
        };
        assert_eq!(out, TreeOutput::Matched(100));
        assert_eq!(s.tree().len(), 1_000);
    }
}
