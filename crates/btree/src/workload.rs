//! The three client workloads of thesis §4.4.2, with deterministic
//! random key selection.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::service::{Partitioning, TreeCommand, QUERY_SPAN};

/// Which workload a client generates (§4.4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// Range queries over intervals of 1000 keys, uniform keys.
    Queries,
    /// One insert-or-delete per command.
    InsDelSingle,
    /// Seven updates per command (the coordinator batches packets).
    InsDelBatch,
}

impl WorkloadKind {
    /// Command size on the wire (256 bytes in the paper).
    pub fn command_bytes(self) -> u32 {
        256
    }

    /// Reply size: 8 KB for range results, 256 B for update acks.
    pub fn reply_bytes(self) -> u32 {
        match self {
            WorkloadKind::Queries => 8192,
            _ => 256,
        }
    }

    /// Tree operations executed per command.
    pub fn ops_per_command(self) -> u32 {
        match self {
            WorkloadKind::Queries => 1,
            WorkloadKind::InsDelSingle => 1,
            WorkloadKind::InsDelBatch => 7,
        }
    }
}

/// Generates commands for one client.
#[derive(Debug)]
pub struct WorkloadGen {
    kind: WorkloadKind,
    key_space: u64,
    /// Fraction (0–100) of queries spanning two partitions (§4.4.5).
    cross_pct: u32,
    partitioning: Option<Partitioning>,
    flip: bool,
}

impl WorkloadGen {
    /// Creates a generator over `key_space` keys.
    pub fn new(kind: WorkloadKind, key_space: u64) -> WorkloadGen {
        WorkloadGen { kind, key_space, cross_pct: 0, partitioning: None, flip: false }
    }

    /// Enables partition-aware generation: `cross_pct`% of queries are
    /// laid across a partition boundary (they touch exactly two
    /// partitions, as in the paper's Figs. 4.8/4.9).
    pub fn with_partitions(mut self, p: Partitioning, cross_pct: u32) -> WorkloadGen {
        self.partitioning = Some(p);
        self.cross_pct = cross_pct.min(100);
        self
    }

    /// The workload kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Draws the operations of the next command. `InsDelBatch` yields 7
    /// updates; the others one operation.
    pub fn next_command(&mut self, rng: &mut SmallRng) -> Vec<TreeCommand> {
        match self.kind {
            WorkloadKind::Queries => vec![self.next_query(rng)],
            WorkloadKind::InsDelSingle => vec![self.next_update(rng)],
            WorkloadKind::InsDelBatch => (0..7).map(|_| self.next_update(rng)).collect(),
        }
    }

    fn next_update(&mut self, rng: &mut SmallRng) -> TreeCommand {
        // Alternate inserts and deletes so the tree size stays constant
        // over time (§4.4.2).
        let key = rng.gen_range(0..self.key_space);
        self.flip = !self.flip;
        if self.flip {
            TreeCommand::Insert { key, value: rng.gen() }
        } else {
            TreeCommand::Delete { key }
        }
    }

    fn next_query(&mut self, rng: &mut SmallRng) -> TreeCommand {
        if let Some(p) = self.partitioning {
            if rng.gen_range(0..100) < self.cross_pct && p.n > 1 {
                // A query straddling a random partition boundary.
                let boundary = p.span * rng.gen_range(1..p.n) as u64;
                let lo = boundary - QUERY_SPAN / 2;
                return TreeCommand::Query { lo, hi: lo + QUERY_SPAN - 1 };
            }
            // Single-partition query: keep the window inside a partition.
            let part = rng.gen_range(0..p.n) as u64;
            let lo = part * p.span + rng.gen_range(0..p.span - QUERY_SPAN);
            return TreeCommand::Query { lo, hi: lo + QUERY_SPAN - 1 };
        }
        let lo = rng.gen_range(0..self.key_space.saturating_sub(QUERY_SPAN).max(1));
        TreeCommand::Query { lo, hi: lo + QUERY_SPAN - 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn batch_workload_yields_seven_updates() {
        let mut g = WorkloadGen::new(WorkloadKind::InsDelBatch, 1000);
        let mut rng = SmallRng::seed_from_u64(1);
        let cmds = g.next_command(&mut rng);
        assert_eq!(cmds.len(), 7);
        assert!(cmds.iter().all(|c| c.is_update()));
    }

    #[test]
    fn updates_alternate_insert_delete() {
        let mut g = WorkloadGen::new(WorkloadKind::InsDelSingle, 1000);
        let mut rng = SmallRng::seed_from_u64(2);
        let a = g.next_command(&mut rng)[0];
        let b = g.next_command(&mut rng)[0];
        assert!(matches!(a, TreeCommand::Insert { .. }));
        assert!(matches!(b, TreeCommand::Delete { .. }));
    }

    #[test]
    fn cross_partition_fraction_is_respected() {
        let p = Partitioning::new(2);
        let mut g = WorkloadGen::new(WorkloadKind::Queries, 2 * p.span).with_partitions(p, 50);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut cross = 0;
        for _ in 0..1000 {
            let c = g.next_command(&mut rng)[0];
            if p.mask_of(c).count_ones() == 2 {
                cross += 1;
            }
        }
        assert!((400..600).contains(&cross), "cross-partition count {cross}");
    }

    #[test]
    fn zero_cross_means_single_partition_queries() {
        let p = Partitioning::new(4);
        let mut g = WorkloadGen::new(WorkloadKind::Queries, 4 * p.span).with_partitions(p, 0);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..500 {
            let c = g.next_command(&mut rng)[0];
            assert_eq!(p.mask_of(c).count_ones(), 1);
        }
    }

    #[test]
    fn queries_span_1000_keys() {
        let mut g = WorkloadGen::new(WorkloadKind::Queries, 1_000_000);
        let mut rng = SmallRng::seed_from_u64(5);
        let TreeCommand::Query { lo, hi } = g.next_command(&mut rng)[0] else { panic!() };
        assert_eq!(hi - lo + 1, QUERY_SPAN);
    }
}
