//! # btree — the replicated B⁺-tree service (thesis §4.4.2)
//!
//! The application used throughout the DSN 2011 evaluation: an in-memory
//! B⁺-tree of `(u64, u64)` tuples with `insert`, `delete`, and 1000-key
//! range `query` operations. This crate provides:
//!
//! * [`tree::BPlusTree`] — a from-scratch B⁺-tree with splits, borrow or
//!   merge rebalancing, and inclusive range scans;
//! * [`service::TreeService`] — command execution with an undo log (for
//!   the paper's speculative rollback) and a virtual-time cost model
//!   calibrated against Fig. 4.3's single-server plateaus;
//! * [`service::Partitioning`] — the key-range partitioning and
//!   command-splitting rules of §4.2.2.
//!
//! The client workload generators that used to live here (`Queries` /
//! `Ins/Del (single)` / `Ins/Del (batch)`) moved to the `workload`
//! crate, the unified client tier shared by every experiment layer.
//!
//! ```
//! use btree::{TreeCommand, TreeOutput, TreeService};
//!
//! let mut svc = TreeService::new();
//! svc.apply(TreeCommand::Insert { key: 7, value: 70 });
//! let (out, _cost) = svc.apply(TreeCommand::Query { lo: 0, hi: 10 });
//! assert_eq!(out, TreeOutput::Matched(1));
//! // Speculative rollback: undo the insert.
//! svc.rollback(2);
//! assert!(svc.tree().is_empty());
//! ```

pub mod service;
pub mod tree;

pub use service::{CostModel, Partitioning, TreeCommand, TreeOutput, TreeService, UndoOp};
pub use tree::BPlusTree;
