//! Property tests: the B+-tree agrees with the standard library's
//! BTreeMap under arbitrary operation sequences, and the undo log is an
//! exact inverse.

use btree::{BPlusTree, TreeCommand, TreeService};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Range(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..500u64, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..500u64).prop_map(Op::Remove),
        (0..500u64, 0..500u64).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tree_agrees_with_model(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut tree = BPlusTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(&k));
                }
                Op::Range(lo, hi) => {
                    let got = tree.range(lo, hi);
                    let want: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            tree.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(tree.len(), model.len());
        }
    }

    #[test]
    fn rollback_is_exact_inverse(
        setup in prop::collection::vec((0..200u64, any::<u64>()), 0..50),
        updates in prop::collection::vec(op_strategy(), 1..100),
    ) {
        let mut svc = TreeService::new();
        for (k, v) in setup {
            svc.apply(TreeCommand::Insert { key: k, value: v });
        }
        svc.commit();
        let snapshot: Vec<(u64, u64)> = svc.tree().range(0, u64::MAX);

        let mut applied = 0;
        for op in updates {
            let cmd = match op {
                Op::Insert(k, v) => TreeCommand::Insert { key: k, value: v },
                Op::Remove(k) => TreeCommand::Delete { key: k },
                Op::Range(lo, hi) => TreeCommand::Query { lo, hi },
            };
            svc.apply(cmd);
            if cmd.is_update() {
                applied += 1;
            }
        }
        svc.rollback(applied);
        prop_assert_eq!(svc.tree().range(0, u64::MAX), snapshot);
    }
}
