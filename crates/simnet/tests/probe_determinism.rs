//! Probe-layer determinism gates (ISSUE 9):
//!
//! * same `(seed, partition)` → byte-identical probe stream at any
//!   thread count, in both executor modes;
//! * enabling probes does not perturb the simulation (events, time,
//!   counter totals identical to a probe-free run);
//! * the shard-pair handoff matrix and the deterministic parts of the
//!   worker telemetry are thread-count invariant in fast mode.

use simnet::prelude::*;

/// Ring workload: every timer tick, one UDP datagram to the next node
/// and one TCP segment to the node after that, then re-arm — timers,
/// datagrams, TCP acks, and disk writes all crossing shard boundaries.
struct RingSender {
    next: NodeId,
    tcp_to: NodeId,
    period: Dur,
    ticks: u32,
}

impl Actor for RingSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.period, TimerToken(1));
    }
    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        if env.wire_bytes > 900 {
            ctx.counter_add("app.tcp_in", 1);
        } else {
            ctx.counter_add("app.udp_in", 1);
            // A protocol-category probe from actor code, with an
            // explicit earlier timestamp sprinkled in so the merged
            // stream exercises the full (time, shard, idx) sort.
            let at = Time::ZERO + ctx.now().saturating_since(Time::ZERO + Dur::micros(5));
            ctx.probe_at(600, env.wire_bytes as u64, at);
        }
    }
    fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
        ctx.udp_send(self.next, self.ticks, 700);
        ctx.tcp_send(self.tcp_to, self.ticks, 1200);
        ctx.disk_write(512, TimerToken(2));
        self.ticks += 1;
        if self.ticks < 40 {
            ctx.set_timer(self.period, TimerToken(1));
        }
    }
}

fn build(shards: usize, threads: usize, fast: bool, probes: Option<ProbeConfig>) -> Sim {
    let mut sim = Sim::with_partition(SimConfig::default(), Partition::modulo(0, shards));
    if let Some(cfg) = probes {
        sim.set_probes(cfg);
    }
    let n = 8;
    for i in 0..n {
        let period = Dur::micros(150 + 17 * i as u64);
        sim.add_node(Box::new(RingSender {
            next: NodeId((i + 1) % n),
            tcp_to: NodeId((i + 2) % n),
            period,
            ticks: 0,
        }));
    }
    if fast {
        sim.set_exec_mode(ExecMode::Fast);
        sim.set_threads(threads);
    }
    sim
}

fn observe(sim: &Sim) -> (Time, u64, Vec<(usize, String, u64)>) {
    let mut counters = Vec::new();
    sim.metrics().for_each_counter(|node, name, v| {
        counters.push((node.0, name.to_string(), v));
    });
    (sim.now(), sim.events_processed(), counters)
}

fn run(shards: usize, threads: usize, fast: bool, probes: Option<ProbeConfig>) -> Sim {
    let mut sim = build(shards, threads, fast, probes);
    sim.run_until(Time::from_millis(30));
    sim
}

#[test]
fn determinism_mode_probe_stream_is_thread_count_invariant() {
    let one = run(4, 1, false, Some(ProbeConfig::all()));
    let two = {
        let mut sim = build(4, 1, false, Some(ProbeConfig::all()));
        sim.set_threads(2); // no-op in determinism mode, by contract
        sim.run_until(Time::from_millis(30));
        sim
    };
    let bytes_one = probe::encode(&one.probe_events());
    let bytes_two = probe::encode(&two.probe_events());
    assert!(!bytes_one.is_empty(), "workload must record probe events");
    assert_eq!(bytes_one, bytes_two);
}

#[test]
fn fast_mode_probe_stream_is_thread_count_invariant() {
    let streams: Vec<Vec<u8>> = [2, 3, 4]
        .iter()
        .map(|&t| probe::encode(&run(4, t, true, Some(ProbeConfig::all())).probe_events()))
        .collect();
    assert!(!streams[0].is_empty(), "workload must record probe events");
    assert_eq!(streams[0], streams[1]);
    assert_eq!(streams[0], streams[2]);
}

#[test]
fn probe_stream_covers_every_category() {
    let sim = run(4, 1, false, Some(ProbeConfig::all()));
    let events = sim.probe_events();
    let has = |code: u16| events.iter().any(|e| e.code == code);
    assert!(has(probe::code::NET_SEND));
    assert!(has(probe::code::NET_RECV));
    assert!(has(probe::code::HOST_TIMER));
    assert!(has(probe::code::HOST_DISK));
    assert!(has(600), "actor-defined protocol probe");
    // The merged stream is time-sorted even with probe_at back-stamps.
    for w in events.windows(2) {
        assert!(w[0].time <= w[1].time);
    }
    assert_eq!(sim.probe_dropped(), 0);
}

#[test]
fn enabling_probes_does_not_perturb_the_run() {
    // Determinism mode: bit-identical (now, events, counters) with
    // probes off, on, and on-with-tiny-rings (drop path exercised).
    let off = observe(&run(4, 1, false, None));
    let on = observe(&run(4, 1, false, Some(ProbeConfig::all())));
    let tiny =
        run(4, 1, false, Some(ProbeConfig { categories: probe::category::ALL, capacity: 8 }));
    assert_eq!(off, on);
    assert_eq!(off, observe(&tiny));
    assert!(tiny.probe_dropped() > 0, "tiny rings must wrap");
    assert!(tiny.probe_events().len() <= 4 * 8);

    // Fast mode too.
    let foff = observe(&run(4, 4, true, None));
    let fon = observe(&run(4, 4, true, Some(ProbeConfig::all())));
    assert_eq!(foff, fon);
}

#[test]
fn handoff_matrix_is_thread_count_invariant() {
    let runs: Vec<Sim> =
        [2, 3, 4].iter().map(|&t| run(4, t, true, Some(ProbeConfig::all()))).collect();
    let base = runs[0].handoff_matrix().to_vec();
    assert_eq!(base.len(), 16);
    assert!(base.iter().sum::<u64>() > 0, "workload must cross shards");
    // Diagonal is never a handoff.
    for sh in 0..4 {
        assert_eq!(base[sh * 4 + sh], 0);
    }
    for r in &runs[1..] {
        assert_eq!(r.handoff_matrix(), &base[..]);
    }
    // The matrix total matches the engine's cross-shard event counter.
    assert_eq!(base.iter().sum::<u64>(), runs[0].cross_shard_events());
}

#[test]
fn worker_telemetry_deterministic_parts_are_invariant() {
    // The per-worker split (and each worker's realized window width)
    // follows the shard→worker map, but the schedule aggregates are a
    // pure function of (seed, partition): total events dispatched, and
    // the barrier-round count — identical for every worker, since all
    // workers advance through the same gmin sequence in lockstep.
    let agg = |sim: &Sim| {
        let t = sim.worker_telemetry();
        (t.iter().map(|w| w.events).sum::<u64>(), t.first().map_or(0, |w| w.rounds))
    };
    let two = run(4, 2, true, Some(ProbeConfig::all()));
    let four = run(4, 4, true, Some(ProbeConfig::all()));
    assert_eq!(two.worker_telemetry().len(), 2);
    assert_eq!(four.worker_telemetry().len(), 4);
    let rounds = two.worker_telemetry()[0].rounds;
    assert!(rounds > 0);
    assert!(two.worker_telemetry().iter().all(|w| w.rounds == rounds));
    assert!(four.worker_telemetry().iter().all(|w| w.rounds == rounds));
    assert_eq!(agg(&two), agg(&four));
    assert_eq!(agg(&two).0, two.events_processed());
    assert!(two.worker_telemetry().iter().any(|w| w.window_ns > 0));
    // Telemetry is off (and free) when the EXEC category is disabled.
    let lifecycle_only = run(4, 4, true, Some(ProbeConfig::lifecycle()));
    assert!(lifecycle_only.worker_telemetry().is_empty());
    assert!(lifecycle_only.handoff_matrix().is_empty());
}

#[test]
fn executor_only_config_keeps_aggregates_without_events() {
    let sim = run(4, 4, true, Some(ProbeConfig::executor_only()));
    assert!(sim.probe_events().is_empty(), "capacity 0 buffers nothing");
    assert!(sim.handoff_matrix().iter().sum::<u64>() > 0);
    assert!(!sim.worker_telemetry().is_empty());
}
