//! Public-API tests of the batched delivery dispatch: same-instant
//! delivery runs reach [`Actor::on_batch`] as one ordered slice, default
//! actors observe per-message semantics unchanged, and runs never merge
//! across destinations or timestamps.

use std::sync::Arc;
use std::sync::Mutex;

use simnet::prelude::*;

#[derive(Debug)]
struct Tag(u32);

/// A configuration where CPU and wire are free: every message sent in
/// one callback lands on its destination at the same virtual instant,
/// producing maximal delivery runs.
fn instant_config() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.link_bandwidth_bps = 0; // infinite: zero serialization delay
    cfg.send_syscall_cost = Dur::ZERO;
    cfg.send_ns_per_kib = 0;
    cfg.recv_frame_cost = Dur::ZERO;
    cfg.recv_ns_per_kib = 0;
    cfg
}

/// Records every `on_batch` slice as `(len, tags-in-order)`, routing
/// singletons through `on_message` like the engine does.
struct BatchRecorder {
    bursts: Arc<Mutex<Vec<Vec<u32>>>>,
}

impl Actor for BatchRecorder {
    fn on_message(&mut self, env: &Envelope, _ctx: &mut Ctx) {
        let t = env.payload.downcast_ref::<Tag>().expect("Tag").0;
        self.bursts.lock().unwrap().push(vec![t]);
    }
    fn on_batch(&mut self, envs: &[Envelope], _ctx: &mut Ctx) {
        let tags = envs.iter().map(|e| e.payload.downcast_ref::<Tag>().expect("Tag").0).collect();
        self.bursts.lock().unwrap().push(tags);
    }
}

/// Default actor: only `on_message`, counting calls.
struct PlainRecorder {
    seen: Arc<Mutex<Vec<u32>>>,
}

impl Actor for PlainRecorder {
    fn on_message(&mut self, env: &Envelope, _ctx: &mut Ctx) {
        self.seen.lock().unwrap().push(env.payload.downcast_ref::<Tag>().expect("Tag").0);
    }
}

struct Quiet;
impl Actor for Quiet {
    fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
}

#[test]
fn same_instant_run_reaches_on_batch_as_one_ordered_slice() {
    let bursts = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Sim::new(instant_config());
    let a = sim.add_node(Box::new(Quiet));
    let b = sim.add_node(Box::new(BatchRecorder { bursts: bursts.clone() }));
    sim.with_ctx(a, |ctx| {
        for i in 0..24 {
            ctx.udp_send(b, Tag(i), 512);
        }
    });
    sim.run_to_idle();
    let got = bursts.lock().unwrap().clone();
    assert_eq!(got, vec![(0..24).collect::<Vec<_>>()], "one slice, in exact send order");
    let (dispatches, msgs) = sim.delivery_dispatch_stats();
    assert_eq!((dispatches, msgs), (1, 24), "engine paid one actor dispatch for the run");
}

#[test]
fn default_actors_see_identical_per_message_semantics() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Sim::new(instant_config());
    let a = sim.add_node(Box::new(Quiet));
    let b = sim.add_node(Box::new(PlainRecorder { seen: seen.clone() }));
    sim.with_ctx(a, |ctx| {
        for i in 0..24 {
            ctx.udp_send(b, Tag(i), 512);
        }
    });
    sim.run_to_idle();
    assert_eq!(
        *seen.lock().unwrap(),
        (0..24).collect::<Vec<_>>(),
        "default on_batch loops on_message"
    );
}

#[test]
fn runs_do_not_merge_across_destinations() {
    let b1 = Arc::new(Mutex::new(Vec::new()));
    let b2 = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Sim::new(instant_config());
    let a = sim.add_node(Box::new(Quiet));
    let r1 = sim.add_node(Box::new(BatchRecorder { bursts: b1.clone() }));
    let r2 = sim.add_node(Box::new(BatchRecorder { bursts: b2.clone() }));
    // Alternating destinations: every same-instant run is length 1, so
    // nothing may coalesce and order must interleave exactly as sent.
    sim.with_ctx(a, |ctx| {
        for i in 0..6 {
            ctx.udp_send(r1, Tag(i), 512);
            ctx.udp_send(r2, Tag(100 + i), 512);
        }
    });
    sim.run_to_idle();
    assert_eq!(*b1.lock().unwrap(), (0..6).map(|i| vec![i]).collect::<Vec<_>>());
    assert_eq!(*b2.lock().unwrap(), (0..6).map(|i| vec![100 + i]).collect::<Vec<_>>());
    let (dispatches, msgs) = sim.delivery_dispatch_stats();
    assert_eq!((dispatches, msgs), (12, 12), "no cross-destination coalescing");
}

#[test]
fn runs_do_not_merge_across_timestamps() {
    let bursts = Arc::new(Mutex::new(Vec::new()));
    // Real (non-zero) costs: consecutive receive completions happen at
    // distinct instants, so every delivery is its own run.
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.add_node(Box::new(Quiet));
    let b = sim.add_node(Box::new(BatchRecorder { bursts: bursts.clone() }));
    sim.with_ctx(a, |ctx| {
        for i in 0..8 {
            ctx.udp_send(b, Tag(i), 4096);
        }
    });
    sim.run_to_idle();
    let got = bursts.lock().unwrap().clone();
    assert_eq!(
        got,
        (0..8).map(|i| vec![i]).collect::<Vec<_>>(),
        "distinct instants stay unbatched"
    );
}

#[test]
fn multicast_fan_in_batches_per_subscriber() {
    // Two senders multicast into the same group at the same instant;
    // each subscriber sees one coalesced run per sender timestamp... but
    // both sends happen at t=0, so the whole fan-in lands as one run.
    let bursts = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Sim::new(instant_config());
    let s1 = sim.add_node(Box::new(Quiet));
    let s2 = sim.add_node(Box::new(Quiet));
    let b = sim.add_node(Box::new(BatchRecorder { bursts: bursts.clone() }));
    let g = sim.add_group();
    sim.subscribe(b, g);
    sim.with_ctx(s1, |ctx| ctx.mcast(g, Tag(1), 256));
    sim.with_ctx(s2, |ctx| ctx.mcast(g, Tag(2), 256));
    sim.run_to_idle();
    assert_eq!(*bursts.lock().unwrap(), vec![vec![1, 2]], "fan-in coalesced into one slice");
}
