//! Dynamically-typed message payloads.
//!
//! Protocol crates each define their own message enums; the simulator moves
//! them around as cheaply-clonable, dynamically-typed [`Payload`] handles.
//! Receivers recover the concrete type with [`Payload::downcast_ref`].
//!
//! The simulation is single-threaded by design (determinism), so payloads
//! use `Rc` internally and multicast fan-out is a reference-count bump.

use std::any::Any;
use std::fmt;
use std::rc::Rc;

/// A reference-counted, dynamically-typed message body.
#[derive(Clone)]
pub struct Payload(Rc<dyn Any>);

impl Payload {
    /// Wraps a concrete message value.
    pub fn new<T: Any>(value: T) -> Payload {
        Payload(Rc::new(value))
    }

    /// Returns a reference to the payload if it is a `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }

    /// Whether the payload is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.0.is::<T>()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Payload(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);

    #[test]
    fn downcast_recovers_value() {
        let p = Payload::new(Ping(7));
        assert!(p.is::<Ping>());
        assert_eq!(p.downcast_ref::<Ping>(), Some(&Ping(7)));
        assert!(p.downcast_ref::<String>().is_none());
    }

    #[test]
    fn clone_is_shallow() {
        let p = Payload::new(Ping(9));
        let q = p.clone();
        assert_eq!(q.downcast_ref::<Ping>().unwrap().0, 9);
    }
}
