//! Dynamically-typed message payloads, allocated from a bump arena.
//!
//! Protocol crates each define their own message enums; the simulator moves
//! them around as cheaply-clonable, dynamically-typed [`Payload`] handles.
//! Receivers recover the concrete type with [`Payload::downcast_ref`].
//!
//! # Arena allocation
//!
//! Every simulated packet wraps its message in a `Payload`, so payload
//! allocation sits squarely on the engine's hot path. The previous
//! `Rc<dyn Any>` representation paid one global-allocator round trip per
//! packet; at millions of events per second that malloc/free pair is a
//! measurable slice of the ~100 ns/event budget. Payload blocks instead
//! come from a thread-local arena:
//!
//! * backing memory is carved from 64 KiB **chunks** obtained from the
//!   global allocator with a bump pointer — one malloc per 64 KiB of
//!   payload traffic, not one per packet;
//! * blocks are rounded up to a small set of **size classes** and, when a
//!   payload's last reference drops, pushed onto the class's free list;
//! * the next allocation of that class is a free-list pop: after warm-up
//!   the arena hits a steady state where packet churn touches the global
//!   allocator not at all.
//!
//! # Reset lifecycle
//!
//! The arena never returns memory to the operating system. Recycling is
//! per-block and immediate (last reference drop → free list), so the
//! arena's footprint is the *high-water mark* of concurrently-live
//! payload bytes — bounded in practice by socket buffers, TCP windows,
//! and protocol flow control, not by the length of the run. Chunks stay
//! allocated for the thread's lifetime: a simulation that ends leaves its
//! free lists warm for the next `Sim` on the same thread (the common
//! pattern in tests and benchmarks), and payloads that outlive the pool
//! during thread teardown never touch freed chunk memory. Oversized
//! payloads (beyond the largest class) bypass the arena and use the
//! global allocator directly.
//!
//! # Thread safety
//!
//! The threaded shard executor (see `shard`/`threaded`) moves payloads
//! between worker threads at cross-shard handoff boundaries, and an
//! in-flight clone (e.g. a TCP retransmit copy) can be observed from two
//! workers at once. Blocks therefore use an atomic reference count, the
//! wrapped value must be `Send + Sync`, and `Payload` is `Send + Sync`,
//! exactly like the `Arc` it now mirrors. Allocation stays thread-local
//! (each worker bumps its own chunks); a block freed on a different
//! thread than it was allocated on simply joins the freeing thread's
//! free list — safe because chunks are never returned to the allocator,
//! so the backing memory outlives every thread that can hold a handle.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::fmt;
use std::mem::{align_of, size_of};
use std::ptr::NonNull;
use std::sync::atomic::{fence, AtomicU32, Ordering};

/// Block size classes (bytes), header included. Chosen to cover the
/// protocol message enums in use: most fit the first two classes.
const CLASS_SIZES: [usize; 4] = [64, 128, 256, 512];
/// `class` value marking a block allocated directly from the global
/// allocator (oversized or over-aligned payloads).
const CLASS_GLOBAL: u8 = u8::MAX;
/// Alignment of every pooled block (classes are multiples of this, so
/// carving a chunk preserves it).
const BLOCK_ALIGN: usize = 16;
/// Bytes per arena chunk.
const CHUNK_SIZE: usize = 64 * 1024;

/// Header at the start of every payload block; the value lives at
/// `offset` bytes from the block start.
struct Header {
    strong: AtomicU32,
    /// Size-class index, or [`CLASS_GLOBAL`].
    class: u8,
    /// Byte offset of the value within the block.
    offset: u32,
    /// Total block layout, for the [`CLASS_GLOBAL`] dealloc path.
    size: u32,
    align: u32,
    type_id: TypeId,
    /// Drops the value in place (monomorphized per payload type).
    drop_value: unsafe fn(*mut Header),
}

fn round_up(n: usize, align: usize) -> usize {
    (n + align - 1) & !(align - 1)
}

fn class_for(total: usize) -> Option<u8> {
    CLASS_SIZES.iter().position(|&s| total <= s).map(|c| c as u8)
}

/// Per-thread block pool: free lists per size class plus the current
/// bump chunk.
#[derive(Default)]
struct Pool {
    free: [Vec<NonNull<u8>>; CLASS_SIZES.len()],
    /// Bump cursor into the current chunk.
    chunk: Option<NonNull<u8>>,
    chunk_used: usize,
    /// Cumulative chunk bytes obtained from the global allocator.
    chunk_bytes: usize,
}

impl Pool {
    fn alloc_block(&mut self, class: u8) -> NonNull<u8> {
        if let Some(p) = self.free[class as usize].pop() {
            return p;
        }
        let size = CLASS_SIZES[class as usize];
        if self.chunk.is_none() || self.chunk_used + size > CHUNK_SIZE {
            // SAFETY: CHUNK_SIZE/BLOCK_ALIGN form a valid non-zero layout.
            let layout = Layout::from_size_align(CHUNK_SIZE, BLOCK_ALIGN).expect("chunk layout");
            let p = unsafe { alloc(layout) };
            let Some(p) = NonNull::new(p) else { handle_alloc_error(layout) };
            // Chunks are intentionally never freed (see module docs):
            // recycled blocks keep referencing them for the thread's
            // lifetime, including during thread-local teardown.
            self.chunk = Some(p);
            self.chunk_used = 0;
            self.chunk_bytes += CHUNK_SIZE;
        }
        let base = self.chunk.expect("chunk present");
        // SAFETY: chunk_used + size <= CHUNK_SIZE, so the block is in
        // bounds; class sizes are multiples of BLOCK_ALIGN, so every
        // carved block stays BLOCK_ALIGN-aligned.
        let block = unsafe { NonNull::new_unchecked(base.as_ptr().add(self.chunk_used)) };
        self.chunk_used += size;
        block
    }

    fn free_block(&mut self, class: u8, block: NonNull<u8>) {
        self.free[class as usize].push(block);
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Snapshot of the thread's payload arena (tests and diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaStats {
    /// Blocks currently on free lists, summed over size classes.
    pub free_blocks: usize,
    /// Total bytes of chunk memory obtained from the global allocator.
    pub chunk_bytes: usize,
}

/// Reads the calling thread's arena state.
pub fn arena_stats() -> ArenaStats {
    POOL.with(|p| {
        let p = p.borrow();
        ArenaStats { free_blocks: p.free.iter().map(Vec::len).sum(), chunk_bytes: p.chunk_bytes }
    })
}

unsafe fn drop_value_of<T>(h: *mut Header) {
    // SAFETY: caller guarantees `h` heads a live block whose value is a
    // `T` at `offset` (both written by `Payload::new::<T>`).
    unsafe {
        let value = (h as *mut u8).add((*h).offset as usize) as *mut T;
        std::ptr::drop_in_place(value);
    }
}

/// A reference-counted, dynamically-typed message body backed by the
/// thread-local payload arena.
pub struct Payload(NonNull<Header>);

// SAFETY: the wrapped value is `Send + Sync` (enforced by `Payload::new`),
// the reference count is atomic, and freed blocks point into chunks that
// are never deallocated, so handles may move between and be shared across
// the executor's worker threads (see module docs, "Thread safety").
unsafe impl Send for Payload {}
unsafe impl Sync for Payload {}

impl Payload {
    /// Wraps a concrete message value.
    pub fn new<T: Any + Send + Sync>(value: T) -> Payload {
        let align = align_of::<T>().max(align_of::<Header>());
        let offset = round_up(size_of::<Header>(), align);
        let total = offset + size_of::<T>();
        let (block, class) = if align <= BLOCK_ALIGN {
            match class_for(total) {
                Some(class) => (POOL.with(|p| p.borrow_mut().alloc_block(class)), class),
                None => (Self::global_block(total, align), CLASS_GLOBAL),
            }
        } else {
            (Self::global_block(total, align), CLASS_GLOBAL)
        };
        let header = block.as_ptr() as *mut Header;
        // SAFETY: the block is at least `total` bytes with alignment
        // `align >= align_of::<Header>()`; header and value regions are
        // disjoint by construction of `offset`.
        unsafe {
            header.write(Header {
                strong: AtomicU32::new(1),
                class,
                offset: offset as u32,
                size: total as u32,
                align: align as u32,
                type_id: TypeId::of::<T>(),
                drop_value: drop_value_of::<T>,
            });
            (block.as_ptr().add(offset) as *mut T).write(value);
            Payload(NonNull::new_unchecked(header))
        }
    }

    fn global_block(total: usize, align: usize) -> NonNull<u8> {
        let layout = Layout::from_size_align(total, align).expect("payload layout");
        // SAFETY: `total >= size_of::<Header>() > 0`.
        let p = unsafe { alloc(layout) };
        match NonNull::new(p) {
            Some(p) => p,
            None => handle_alloc_error(layout),
        }
    }

    #[inline]
    fn header(&self) -> &Header {
        // SAFETY: self.0 points at a live block for as long as any
        // Payload handle (strong > 0) exists.
        unsafe { self.0.as_ref() }
    }

    /// Returns a reference to the payload if it is a `T`.
    #[inline]
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        let h = self.header();
        if h.type_id == TypeId::of::<T>() {
            // SAFETY: type checked; the value is a live `T` at `offset`.
            Some(unsafe { &*((self.0.as_ptr() as *const u8).add(h.offset as usize) as *const T) })
        } else {
            None
        }
    }

    /// Whether the payload is a `T`.
    #[inline]
    pub fn is<T: Any>(&self) -> bool {
        self.header().type_id == TypeId::of::<T>()
    }
}

impl Clone for Payload {
    #[inline]
    fn clone(&self) -> Payload {
        // Relaxed suffices for an increment from a live handle (same
        // argument as `Arc::clone`). Abort well before the count can
        // wrap: a wrapped count would free the block under live handles.
        let n = self.header().strong.fetch_add(1, Ordering::Relaxed);
        if n > u32::MAX / 2 {
            std::process::abort();
        }
        Payload(self.0)
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        // Release on the decrement orders this handle's value accesses
        // before the free; the Acquire fence on the last decrement
        // orders the free after every other handle's accesses (the
        // `Arc::drop` protocol).
        if self.header().strong.fetch_sub(1, Ordering::Release) != 1 {
            return;
        }
        fence(Ordering::Acquire);
        let header = self.0.as_ptr();
        // SAFETY: last reference; the block was produced by `new`, so the
        // stored drop fn matches the stored value.
        unsafe {
            let (class, size, align) = ((*header).class, (*header).size, (*header).align);
            ((*header).drop_value)(header);
            let block = NonNull::new_unchecked(header as *mut u8);
            if class == CLASS_GLOBAL {
                let layout =
                    Layout::from_size_align(size as usize, align as usize).expect("stored layout");
                dealloc(block.as_ptr(), layout);
            } else {
                // During thread teardown the pool may already be gone;
                // the block's chunk is never freed, so skipping the free
                // list (leaking one block) is safe.
                let _ = POOL.try_with(|p| p.borrow_mut().free_block(class, block));
            }
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Payload(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);

    #[test]
    fn downcast_recovers_value() {
        let p = Payload::new(Ping(7));
        assert!(p.is::<Ping>());
        assert_eq!(p.downcast_ref::<Ping>(), Some(&Ping(7)));
        assert!(p.downcast_ref::<String>().is_none());
    }

    #[test]
    fn clone_is_shallow() {
        let p = Payload::new(Ping(9));
        let q = p.clone();
        assert_eq!(q.downcast_ref::<Ping>().unwrap().0, 9);
    }

    #[test]
    fn value_drops_exactly_once_on_last_handle() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let alive = Arc::new(AtomicBool::new(true));
        struct Guard(Arc<AtomicBool>);
        impl Drop for Guard {
            fn drop(&mut self) {
                assert!(self.0.swap(false, Ordering::SeqCst), "double drop");
            }
        }
        let p = Payload::new(Guard(alive.clone()));
        let q = p.clone();
        drop(p);
        assert!(alive.load(Ordering::SeqCst), "dropped while a clone was live");
        drop(q);
        assert!(!alive.load(Ordering::SeqCst), "value not dropped with last handle");
    }

    #[test]
    fn blocks_recycle_through_the_free_list() {
        // Warm up: the drop below must feed the free list the next
        // allocation pops from.
        drop(Payload::new(Ping(0)));
        let before = arena_stats();
        let p = Payload::new(Ping(1));
        let during = arena_stats();
        assert_eq!(during.free_blocks, before.free_blocks - 1, "allocation should pop a block");
        drop(p);
        let after = arena_stats();
        assert_eq!(after.free_blocks, before.free_blocks, "drop should push the block back");
        assert_eq!(after.chunk_bytes, before.chunk_bytes, "steady state mallocs no chunks");
    }

    #[test]
    fn oversized_payloads_use_the_global_allocator() {
        let before = arena_stats();
        let big = Payload::new([0u8; 4096]);
        assert!(big.is::<[u8; 4096]>());
        assert_eq!(big.downcast_ref::<[u8; 4096]>().unwrap()[4095], 0);
        drop(big);
        let after = arena_stats();
        assert_eq!(after.free_blocks, before.free_blocks, "oversized must bypass the arena");
    }

    #[test]
    fn zero_sized_payloads_work() {
        #[derive(Debug, PartialEq)]
        struct Marker;
        let p = Payload::new(Marker);
        assert_eq!(p.downcast_ref::<Marker>(), Some(&Marker));
    }

    #[test]
    fn distinct_sizes_use_distinct_classes() {
        let small = Payload::new(1u8);
        let mid = Payload::new([0u64; 12]); // 96 B value -> larger class
        assert!(small.is::<u8>());
        assert!(mid.is::<[u64; 12]>());
        assert!(small.header().class < mid.header().class);
    }
}
