//! A hashed timer wheel for actors that multiplex huge numbers of
//! deadlines onto a single simulator timer.
//!
//! [`crate::host`] charges one event-queue entry per [`Ctx::set_timer`]
//! call, which is the right cost model for protocol actors with a
//! handful of timers — and the wrong one for a session table hosting a
//! million client sessions, each with its own retry deadline. The wheel
//! inverts the arrangement: the actor keeps *one* periodic sim timer
//! and stores every fine-grained deadline here, draining the due ones
//! on each tick with [`TimerWheel::advance`].
//!
//! Cancellation is lazy, as in kernel timer wheels: callers never
//! remove an entry, they let it fire and discard it if the state it
//! points at has moved on (the session table checks the fired key's
//! generation and current deadline). That keeps `schedule` O(1) with
//! no lookup structure, at the cost of stale entries occupying slots
//! until their time passes.
//!
//! The wheel is a plain data structure with no interior time source, so
//! it stays out of the engine's event path entirely — golden traces are
//! unaffected by its existence, and determinism reduces to "same
//! schedule calls, same firing order", which holds because entries fire
//! in slot order and, within a slot, insertion order.
//!
//! [`Ctx::set_timer`]: crate::sim::Ctx::set_timer

use crate::time::{Dur, Time};

/// A hashed timer wheel (module docs). Keys are opaque `u64`s chosen by
/// the caller.
#[derive(Debug)]
pub struct TimerWheel {
    tick_ns: u64,
    slots: Vec<Vec<(u64, u64)>>,
    /// Next wheel tick to drain; monotone.
    next_tick: u64,
    len: usize,
}

impl TimerWheel {
    /// Creates a wheel of `n_slots` buckets at `tick` resolution.
    /// Deadlines hash to `(deadline / tick) % n_slots`; entries more
    /// than `n_slots` ticks out share buckets with nearer ones and are
    /// skipped (not fired) until their own time comes.
    ///
    /// # Panics
    /// Panics if `tick` is zero or `n_slots` is zero.
    pub fn new(tick: Dur, n_slots: usize) -> TimerWheel {
        assert!(tick > Dur::ZERO && n_slots > 0, "wheel needs a positive tick and slots");
        TimerWheel {
            tick_ns: tick.as_nanos(),
            slots: vec![Vec::new(); n_slots],
            next_tick: 0,
            len: 0,
        }
    }

    /// Schedules `key` to fire at the first `advance` whose `now >= at`.
    /// A deadline already in the past lands in the next tick drained.
    ///
    /// The tick index rounds *up*: a mid-tick deadline belongs to the
    /// first tick boundary at or after it, so its slot is visited only
    /// once the deadline can actually be due. Rounding down would let
    /// the cursor pass the slot early (entry retained, not yet due) and
    /// not return until a full rotation later.
    pub fn schedule(&mut self, at: Time, key: u64) {
        let tick = at.as_nanos().div_ceil(self.tick_ns).max(self.next_tick);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push((at.as_nanos(), key));
        self.len += 1;
    }

    /// Fires (and removes) every entry with `at <= now`, in slot order
    /// then insertion order, advancing the wheel's cursor to `now`.
    pub fn advance(&mut self, now: Time, mut fire: impl FnMut(u64)) {
        let now_ns = now.as_nanos();
        let now_tick = now_ns / self.tick_ns;
        if now_tick < self.next_tick {
            return;
        }
        let n = self.slots.len() as u64;
        let (first, last) = if now_tick - self.next_tick + 1 >= n {
            // A full rotation (or more) elapsed: every slot is due a
            // visit exactly once.
            (0, n - 1)
        } else {
            (self.next_tick, now_tick)
        };
        for t in first..=last {
            let slot = (t % n) as usize;
            let len = &mut self.len;
            self.slots[slot].retain(|&(at, key)| {
                if at <= now_ns {
                    fire(key);
                    *len -= 1;
                    false
                } else {
                    true
                }
            });
        }
        self.next_tick = now_tick + 1;
    }

    /// Entries currently stored (due and not-yet-due).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel, now: Time) -> Vec<u64> {
        let mut fired = Vec::new();
        w.advance(now, |k| fired.push(k));
        fired
    }

    #[test]
    fn fires_due_entries_in_order() {
        let mut w = TimerWheel::new(Dur::millis(1), 8);
        w.schedule(Time::from_millis(3), 30);
        w.schedule(Time::from_millis(1), 10);
        w.schedule(Time::from_millis(1), 11);
        assert_eq!(drain(&mut w, Time::from_millis(2)), vec![10, 11]);
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, Time::from_millis(3)), vec![30]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_entries_survive_a_shared_slot() {
        let mut w = TimerWheel::new(Dur::millis(1), 4);
        // 1 ms and 5 ms hash to the same slot of a 4-slot wheel.
        w.schedule(Time::from_millis(1), 1);
        w.schedule(Time::from_millis(5), 5);
        assert_eq!(drain(&mut w, Time::from_millis(1)), vec![1]);
        assert_eq!(drain(&mut w, Time::from_millis(4)), Vec::<u64>::new());
        assert_eq!(drain(&mut w, Time::from_millis(5)), vec![5]);
    }

    #[test]
    fn past_deadline_fires_on_next_advance() {
        let mut w = TimerWheel::new(Dur::millis(1), 8);
        let _ = drain(&mut w, Time::from_millis(10));
        // Scheduled "in the past" relative to the cursor.
        w.schedule(Time::from_millis(2), 2);
        assert_eq!(drain(&mut w, Time::from_millis(11)), vec![2]);
    }

    #[test]
    fn mid_tick_deadline_fires_on_the_next_pass_not_a_rotation_later() {
        let mut w = TimerWheel::new(Dur::millis(100), 256);
        // 723 ms is mid-tick; it must belong to the 800 ms tick, not the
        // 700 ms one (which the cursor passes while the entry is not yet
        // due and would only revisit 25.6 s later).
        w.schedule(Time::from_millis(723), 7);
        assert_eq!(drain(&mut w, Time::from_millis(700)), Vec::<u64>::new());
        assert_eq!(drain(&mut w, Time::from_millis(800)), vec![7]);
    }

    #[test]
    fn long_gap_costs_one_rotation() {
        let mut w = TimerWheel::new(Dur::millis(1), 4);
        w.schedule(Time::from_millis(2), 2);
        w.schedule(Time::from_millis(1000), 1000);
        // A gap of thousands of ticks visits each slot once.
        assert_eq!(drain(&mut w, Time::from_secs(2)), vec![1000, 2]);
    }
}
