//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns a cluster of nodes connected by a non-blocking gigabit
//! switch. Each node hosts one [`Actor`] (a process), a multi-core CPU, a
//! NIC with full-duplex links, finite socket buffers, and a local disk.
//!
//! # Resource model
//!
//! Every shared resource is modelled with a *busy-until* clock: starting a
//! unit of work on a resource at time `t` completes at
//! `max(t, free_at) + cost` and advances `free_at` to the completion time.
//! A datagram sent from `a` to `b` passes through, in order:
//!
//! 1. `a`'s CPU (send system call + copy cost),
//! 2. `a`'s uplink (serialization at link bandwidth),
//! 3. the switch egress port feeding `b` (`b`'s downlink). Datagrams that
//!    would overflow the finite port buffer are tail-dropped,
//! 4. `b`'s socket buffer — dropped if the buffer is full (slow receiver),
//! 5. `b`'s CPU (per-frame receive cost), after which the actor runs.
//!
//! IP-multicast serializes once on the sender's uplink and is replicated by
//! the switch onto every subscriber's downlink, reproducing the two
//! properties the paper exploits (§3.3.1): one system call regardless of
//! the number of receivers, and no division of the sender's bandwidth.
//!
//! TCP channels are reliable, ordered, and flow-controlled by a window;
//! they never drop but instead queue at the sender.
//!
//! # Crash and recovery model
//!
//! Three failure-injection primitives with distinct semantics:
//!
//! * [`Sim::set_node_up`]`(n, false)` — crash: the node drops all
//!   traffic and runs no timers; its actor state is frozen in place.
//!   Crashing also resets every TCP channel touching the node: queued
//!   and in-flight segments are written off at their sender
//!   (`net.tcp_reset_bytes`) and the channel epoch is bumped so acks
//!   that were in flight across the crash are discarded as stale
//!   (`net.tcp_stale_ack`) — without this, a filled window would wedge
//!   the channel forever. While a node is down, new TCP sends to it are
//!   dropped at the sender (connection-reset semantics), not queued.
//! * [`Sim::restart_node`] — pause/resume (SIGSTOP/SIGCONT): the node
//!   comes back with its actor state intact and `on_start` re-runs so
//!   it can re-arm timers. Timers armed before the pause still fire, so
//!   **actors must tolerate duplicate timer chains** after a restart.
//! * [`Sim::replace_actor`] — process restart: a fresh actor is
//!   installed and all in-memory state of the old one is gone. State
//!   that must survive lives outside the actor — see the `recovery`
//!   crate's stable stores, which model the node's disk contents and
//!   are shared between successive incarnations, with write *timing*
//!   still paid through [`Ctx::disk_write`] / `DiskDone` completions.
//!
//! # Hot-path design
//!
//! Every simulated packet passes through the engine twice (host arrival,
//! delivery), so the per-event structures are all dense and index-based:
//! the future event set is a calendar queue of compact keys over an
//! [`EventKind`] slab (see [`EventQueue`] for the bucket-width
//! heuristic), TCP channels live in a per-node-pair slot table
//! ([`SimInner::tcp_send_from`]), metrics are pre-interned counters in a
//! per-node matrix ([`crate::stats`]), and multicast fan-out reuses one
//! scratch buffer. Determinism is unaffected: events pop in exact
//! `(time, seq)` order, so any run is bit-for-bit reproducible from its
//! seed (the golden-trace tests in `ringpaxos` pin this down).
//!
//! ## Envelope slab
//!
//! [`Envelope`] bodies are interned in a recycling slab on [`SimInner`]
//! for their whole queued life: `downlink` files the envelope once and
//! the `HostArrive` → `Deliver` hand-off moves a 4-byte index between
//! queue entries instead of the ~40-byte struct (and never touches the
//! payload refcount). The body is taken back out of the slab exactly
//! once, on delivery (or on a pre-delivery drop), which immediately
//! recycles the slot for the next send. Unicast sends move the caller's
//! payload handle straight into the slab — the clone-per-destination
//! loop only runs for true multicast fan-out — so a datagram's payload
//! refcount is touched exactly twice: once at creation, once at drop.
//!
//! ## Batched delivery dispatch
//!
//! Same-instant delivery runs are the common case under batching: a
//! multicast fan-in, a ring neighbour's paced burst, or an
//! infinite-bandwidth configuration can land dozens of packets on one
//! node at one virtual timestamp. The run loop coalesces each maximal
//! run of consecutive `Deliver` events with the same destination and
//! timestamp into one reusable inbox and hands the whole slice to
//! [`Actor::on_batch`], so the box-take/box-put and `Ctx` construction
//! around the actor callback are paid once per run instead of once per
//! packet. Per-packet engine work (socket accounting, receive metrics,
//! TCP ack generation) still happens per envelope, in exact pop order,
//! before the actor sees the slice: delivery order, message-handling
//! order, and counter values match unbatched dispatch exactly. The one
//! engine-internal difference is sequence numbering at a coalesced
//! instant — later envelopes' acks are filed before the first actor
//! callback runs instead of interleaved after it — which is observable
//! only when an actor's reply lands at the *same* virtual instant as
//! those acks (requires a zero-cost/zero-latency configuration; the
//! paper-calibrated configs keep ack and reply instants distinct, and
//! the golden-trace tests pin that their traces are bit-identical).

use std::collections::BinaryHeap;
use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::ids::{GroupId, NodeId, TimerToken};
use crate::payload::Payload;
use crate::stats::{mid, MetricId, Metrics};
use crate::time::{Dur, Time};

/// How a message travelled, as seen by the receiving actor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transport {
    /// Unreliable unicast datagram.
    Udp,
    /// Datagram delivered via an ip-multicast group.
    Multicast(GroupId),
    /// Reliable, ordered, flow-controlled channel.
    Tcp,
}

/// A message as delivered to an actor.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Application payload.
    pub payload: Payload,
    /// Size charged on the wire, in bytes.
    pub wire_bytes: u32,
    /// Transport the message used.
    pub transport: Transport,
    /// For TCP segments, the channel incarnation that transmitted this
    /// segment. A segment whose epoch no longer matches its channel was
    /// in flight across a crash-reset: its bytes were already written
    /// off at the sender, so delivery must not generate an ack
    /// (`net.tcp_orphan_seg` counts these instead).
    tcp_epoch: u32,
}

/// A process deployed on a node. All interaction with the outside world
/// happens through the [`Ctx`] passed to each callback.
pub trait Actor {
    /// Called once when the simulation starts (or the actor is installed).
    fn on_start(&mut self, _ctx: &mut Ctx) {}
    /// Called when a message is delivered to this node.
    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx);
    /// Called when a run of two or more messages lands on this node at
    /// the same virtual instant (a multicast fan-in or a same-tick
    /// burst). The default loops [`Actor::on_message`] over the slice in
    /// delivery order; single deliveries go straight to `on_message`.
    /// Overrides must process every envelope and preserve per-message
    /// semantics — the engine guarantees the slice order is the exact
    /// unbatched delivery order, and protocols may amortize per-burst
    /// work (borrow setup, post-ingest pumps) across it.
    fn on_batch(&mut self, envs: &[Envelope], ctx: &mut Ctx) {
        for env in envs {
            self.on_message(env, ctx);
        }
    }
    /// Called when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Ctx) {}
}

/// Index of a queued [`Envelope`] in the engine's envelope slab. Only
/// this 4-byte handle moves between the `HostArrive` and `Deliver`
/// queue entries.
type EnvId = u32;

#[derive(Debug)]
enum EventKind {
    /// Datagram reached the destination host NIC (after its downlink).
    HostArrive(EnvId),
    /// Datagram finished receive processing; hand to the actor.
    Deliver(EnvId),
    /// Actor timer.
    Timer { node: NodeId, token: TimerToken },
    /// TCP acknowledgement returned to the sender; frees window space.
    /// `seq` is the channel's delivery sequence number, so duplicate or
    /// late acks are detected instead of silently skewing `in_flight`;
    /// `epoch` is the channel incarnation that sent the segment, so acks
    /// from before a crash-reset cannot corrupt the reset channel.
    TcpAck { src: NodeId, dst: NodeId, bytes: u32, seq: u64, epoch: u32 },
    /// A disk write issued by `node` completed.
    DiskDone { node: NodeId, token: TimerToken },
}

/// Per-size datagram costs, computed once per distinct wire size and
/// reused from [`CostCache`]. The cached values come from the exact
/// [`SimConfig`] formulas, so virtual-time results are bit-identical to
/// recomputing them per packet.
#[derive(Clone, Copy, Default)]
struct SizeCosts {
    /// CPU cost of the send system call ([`SimConfig::send_cost`]).
    send: Dur,
    /// Link serialization time ([`SimConfig::tx_time`]).
    tx: Dur,
    /// CPU cost of receive processing ([`SimConfig::recv_cost`]).
    recv: Dur,
    /// Bytes occupying the wire ([`SimConfig::wire_bytes`]).
    wire: u64,
}

const COST_CACHE_WAYS: usize = 64;

/// Direct-mapped cache of [`SizeCosts`] keyed by payload size. Protocol
/// traffic reuses a handful of sizes (control messages, paced batches),
/// while the cost formulas each pay a 64-bit division (`frames_for`,
/// `tx_time`) — three real divides per datagram without the cache. The
/// config is frozen once the [`Sim`] is built, so entries never go
/// stale.
struct CostCache {
    /// `bytes.wrapping_add(1)` of the resident entry (0 = empty).
    tags: [u32; COST_CACHE_WAYS],
    costs: [SizeCosts; COST_CACHE_WAYS],
}

impl Default for CostCache {
    fn default() -> CostCache {
        CostCache { tags: [0; COST_CACHE_WAYS], costs: [SizeCosts::default(); COST_CACHE_WAYS] }
    }
}

/// Recycling slab with a free list: the storage pattern behind both the
/// event queue's [`EventKind`] payloads and the engine's [`Envelope`]
/// bodies (module docs, "Envelope slab"). Slot indices are dense `u32`s
/// and freed slots are reused immediately.
struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

// Manual impl: `derive` would needlessly require `T: Default`.
impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab { slots: Vec::new(), free: Vec::new() }
    }
}

impl<T> Slab<T> {
    #[inline]
    fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(value);
                id
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Borrows a filed value (peeks).
    #[inline]
    fn get(&self, id: u32) -> &T {
        self.slots[id as usize].as_ref().expect("filed slab entry present")
    }

    /// Removes a filed value, recycling its slot.
    #[inline]
    fn take(&mut self, id: u32) -> T {
        let value = self.slots[id as usize].take().expect("filed slab entry present");
        self.free.push(id);
        value
    }
}

/// Compact ordering key for one queued event. The payload lives in the
/// queue's slab; only these 24 bytes move between buckets.
#[derive(Clone, Copy)]
struct EventKey {
    time: Time,
    seq: u64,
    slot: u32,
}

impl EventKey {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &EventKey) -> bool {
        self.key() == other.key()
    }
}

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &EventKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &EventKey) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// `bucket_pos` marker: the minimum lives on the back of the sorted
/// stack, not in a calendar bucket.
const IN_SORTED: usize = usize::MAX;

/// Position of the minimum queued event, as located by
/// [`EventQueue::find_min`]. Valid until the next `push` or `take_at`.
#[derive(Clone, Copy)]
struct MinPos {
    time: Time,
    /// Slab slot of the event's [`EventKind`] (for peeking).
    slot: u32,
    /// Index within the current scan slot's bucket, or [`IN_SORTED`].
    bucket_pos: usize,
}

/// Virtual-time width of one calendar bucket, as a power of two:
/// `1 << BUCKET_SHIFT` nanoseconds (4.096 µs).
const BUCKET_SHIFT: u32 = 12;
/// Number of calendar buckets (a power of two). One "year" —
/// `BUCKET_COUNT << BUCKET_SHIFT` — spans ~33.6 ms of virtual time.
const BUCKET_COUNT: usize = 1 << 13;
const BUCKET_MASK: u64 = BUCKET_COUNT as u64 - 1;

/// The simulation's future event set: a calendar queue of [`EventKey`]s
/// over a slab of [`EventKind`]s, with a binary-heap overflow for
/// far-future timers.
///
/// # Why a calendar
///
/// The previous 4-ary min-heap paid an O(log n) sift (a handful of
/// random-access key compares and moves) on *every* push and pop, and
/// every simulated packet passes through this queue twice. A calendar
/// queue [Brown 1988] files each event in the bucket covering its
/// timestamp — `buckets[(time >> BUCKET_SHIFT) & BUCKET_MASK]` — making
/// push an append and pop a scan of one short bucket: O(1) amortized at
/// simulation event densities.
///
/// # Bucket-width heuristic
///
/// The width must sit between two failure modes: too wide and every event
/// lands in one bucket (pop degenerates to a linear scan of the queue);
/// too narrow and pops spin over empty buckets. The engine's event
/// horizon is dominated by the datagram pipeline — CPU costs (1–30 µs),
/// link serialization (~12 µs/KB at 1 Gbps), and the 50 µs one-way
/// latency — so pending packet events live 10–200 µs ahead of `now`.
/// A 4.096 µs bucket spreads that horizon over ~10–50 buckets, keeping
/// per-bucket occupancy at a few events even with tens of thousands of
/// packets in flight, while ms-scale protocol timers (batch timeouts,
/// retransmission checks, flow control) still fall inside the ~33.6 ms
/// year. Only rare long timers (suspicion, GC, heartbeats) overflow to
/// the heap, whose O(log n) cost is then paid per *timer*, not per
/// packet.
///
/// # Determinism
///
/// Keys are unique (`seq` increments per push), and [`EventQueue::pop_due`]
/// always returns the minimum `(time, seq)` key: events with the current
/// scan slot's timestamp can only live in that slot's bucket, earlier
/// slots have been drained, and the overflow heap is migrated into the
/// calendar before it can hold anything within the active year. Bucket
/// layout is therefore unobservable, exactly as the heap layout was, and
/// any run is bit-for-bit reproducible from its seed.
struct EventQueue {
    /// Calendar buckets; `buckets[vslot & BUCKET_MASK]` holds events
    /// whose `time >> BUCKET_SHIFT == vslot` for vslots within roughly
    /// one year of the scan position (older years first, by scan order).
    buckets: Vec<Vec<EventKey>>,
    /// Current scan slot: no bucketed event's vslot is below it.
    cur_vslot: u64,
    /// Events currently filed in the calendar (`buckets` plus `sorted`).
    in_buckets: usize,
    /// Hot-bucket fast path: when one slot holds many events (e.g. a
    /// same-timestamp burst under an infinite-bandwidth config), its
    /// entries are extracted once, sorted descending by key, and popped
    /// from the back — O(k log k) for k co-located events instead of the
    /// O(k²) of per-pop bucket rescans.
    sorted: Vec<EventKey>,
    /// Slot `sorted` belongs to (meaningful while `sorted` is non-empty).
    sorted_vslot: u64,
    /// Far-future events (≥ one year ahead at push time), ordered by
    /// `(time, seq)`; migrated into the calendar as the scan approaches.
    overflow: BinaryHeap<std::cmp::Reverse<EventKey>>,
    /// Memoized result of the last [`EventQueue::find_min`], so the run
    /// loop's peek-then-maybe-pop pattern (delivery-run coalescing)
    /// never scans a bucket twice. Invalidated by any push or take.
    memo: Option<MinPos>,
    /// The queued events' payloads; [`EventKey`]s carry slot indices.
    slab: Slab<EventKind>,
}

/// Bucket occupancy beyond which the scan switches to the sorted-stack
/// fast path for that slot.
const SORT_THRESHOLD: usize = 32;

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue {
            buckets: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            cur_vslot: 0,
            in_buckets: 0,
            sorted: Vec::new(),
            sorted_vslot: 0,
            overflow: BinaryHeap::new(),
            memo: None,
            slab: Slab::default(),
        }
    }
}

impl EventQueue {
    #[inline]
    fn vslot(time: Time) -> u64 {
        time.as_nanos() >> BUCKET_SHIFT
    }

    #[inline]
    fn push(&mut self, time: Time, seq: u64, kind: EventKind) {
        self.memo = None;
        let slot = self.slab.insert(kind);
        let entry = EventKey { time, seq, slot };
        let vslot = Self::vslot(time);
        if vslot >= self.cur_vslot + BUCKET_COUNT as u64 {
            self.overflow.push(std::cmp::Reverse(entry));
            return;
        }
        // An event behind the scan position (possible when a driver
        // injects work after `run_until` parked the scan on a far-future
        // timer): rewind so the scan cannot miss it. Buckets may then
        // transiently hold more than one year's vslots, which the
        // scan-time vslot check in `find_min` handles.
        if vslot < self.cur_vslot {
            // The hot-bucket stack belongs to the slot the scan was
            // parked on; flush it back into that slot's bucket so the
            // rewound scan serves everything from the calendar again
            // (a stranded stack would pop ahead of nearer events and
            // be invisible to the sparse-scan jump).
            if !self.sorted.is_empty() {
                let idx = (self.sorted_vslot & BUCKET_MASK) as usize;
                self.buckets[idx].append(&mut self.sorted);
            }
            // Re-home the (now empty) stack to the rewound slot. Leaving
            // `sorted_vslot` pointing at the old park slot invites the
            // hot-bucket extraction to merge a stack that does not
            // belong to the slot being extracted (events would then pop
            // at the wrong virtual time); `find_min` additionally guards
            // that merge with the same invariant.
            self.sorted_vslot = vslot;
            self.cur_vslot = vslot;
        }
        self.buckets[(vslot & BUCKET_MASK) as usize].push(entry);
        self.in_buckets += 1;
    }

    /// Migrates overflow events that now fall within one year of the scan
    /// position into the calendar.
    fn drain_overflow(&mut self) {
        let horizon = self.cur_vslot + BUCKET_COUNT as u64;
        while let Some(std::cmp::Reverse(top)) = self.overflow.peek() {
            if Self::vslot(top.time) >= horizon {
                return;
            }
            let std::cmp::Reverse(e) = self.overflow.pop().expect("peeked");
            self.buckets[(Self::vslot(e.time) & BUCKET_MASK) as usize].push(e);
            self.in_buckets += 1;
        }
    }

    /// Pops the earliest event if its time is at or before `deadline`;
    /// returns `None` (leaving the event queued) otherwise.
    #[cfg(test)]
    fn pop_due(&mut self, deadline: Time) -> Option<(Time, EventKind)> {
        let pos = self.find_min()?;
        if pos.time > deadline {
            return None; // stays queued
        }
        Some(self.take_at(pos))
    }

    /// Locates the minimum `(time, seq)` queued event without removing
    /// it, advancing the scan position (and migrating newly-near
    /// overflow events) as a side effect. The returned position is valid
    /// until the next `push` or `take_at`; the engine's run loop peeks
    /// through it ([`EventQueue::kind_at`]) to coalesce same-instant
    /// delivery runs before committing to the pop.
    fn find_min(&mut self) -> Option<MinPos> {
        if let Some(pos) = self.memo {
            return Some(pos);
        }
        if self.in_buckets == 0 {
            // Calendar empty: jump the scan straight to the earliest
            // far-future event instead of sweeping empty years.
            let std::cmp::Reverse(top) = self.overflow.peek()?;
            self.cur_vslot = Self::vslot(top.time);
        }
        self.drain_overflow();
        debug_assert!(self.in_buckets > 0);
        let mut scanned = 0usize;
        loop {
            let cur = self.cur_vslot;
            let idx = (cur & BUCKET_MASK) as usize;
            // One pass over the bucket: find the minimum current-slot
            // entry and count matches on the way. Events with
            // vslot == cur can only be in this bucket or the sorted
            // stack, and every queued event's vslot is >= cur, so the
            // smaller of the two minima is the global minimum. (Bucket
            // entries of later years are skipped.)
            let bucket = &self.buckets[idx];
            let mut best: Option<usize> = None;
            let mut matching = 0usize;
            for (i, e) in bucket.iter().enumerate() {
                if Self::vslot(e.time) == cur {
                    matching += 1;
                    if best.is_none_or(|b| e.key() < bucket[b].key()) {
                        best = Some(i);
                    }
                }
            }
            if matching > SORT_THRESHOLD {
                // Hot bucket (e.g. a same-timestamp burst under an
                // infinite-bandwidth config): extract every current-slot
                // entry once, sort, and serve subsequent pops from the
                // back of the sorted stack instead of O(k) rescans.
                let bucket = &mut self.buckets[idx];
                let mut batch: Vec<EventKey> = Vec::with_capacity(matching + self.sorted.len());
                let mut i = 0;
                while i < bucket.len() {
                    if Self::vslot(bucket[i].time) == cur {
                        batch.push(bucket.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                // Merge any previously sorted remainder of this slot
                // (re-extraction after a burst of same-slot pushes) —
                // but only if the stack really belongs to `cur`. The
                // rewind path in `push` flushes and re-homes the stack,
                // so a stack filed under any other slot means an entry
                // point skipped that protocol; merging it anyway would
                // pop its events at the wrong virtual time, so it is
                // put back into its own bucket instead.
                if self.sorted_vslot == cur {
                    batch.append(&mut self.sorted);
                } else if !self.sorted.is_empty() {
                    let sidx = (self.sorted_vslot & BUCKET_MASK) as usize;
                    self.buckets[sidx].append(&mut self.sorted);
                }
                batch.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                self.sorted = batch;
                self.sorted_vslot = cur;
                best = None; // extracted; serve from the sorted stack
            }
            let bucket = &self.buckets[idx];
            let sorted_top = match self.sorted.last() {
                Some(t) if self.sorted_vslot == cur => Some(*t),
                _ => None,
            };
            let pick_bucket = match (best, sorted_top) {
                (Some(i), Some(top)) => bucket[i].key() < top.key(),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => {
                    debug_assert!(self.sorted.is_empty() || self.sorted_vslot != cur);
                    self.advance_slot(&mut scanned);
                    continue;
                }
            };
            let pos = if pick_bucket {
                let i = best.expect("picked");
                MinPos { time: bucket[i].time, slot: bucket[i].slot, bucket_pos: i }
            } else {
                let top = sorted_top.expect("picked");
                MinPos { time: top.time, slot: top.slot, bucket_pos: IN_SORTED }
            };
            self.memo = Some(pos);
            return Some(pos);
        }
    }

    /// The kind of the event `find_min` located (peek; no removal).
    #[inline]
    fn kind_at(&self, pos: MinPos) -> &EventKind {
        self.slab.get(pos.slot)
    }

    /// Locates the minimum-seq event queued at exactly `time`, given
    /// that the global minimum at `time` was just popped. Equal times
    /// share one calendar slot, so only the current bucket and the
    /// sorted stack can hold a match — this is the delivery-run
    /// coalescing probe, and unlike `find_min` it never advances the
    /// scan or migrates overflow when there is nothing to coalesce.
    /// Sound because every remaining event's time is ≥ `time`: an exact
    /// match (minimal seq) *is* the global minimum.
    fn find_same_time(&mut self, time: Time) -> Option<MinPos> {
        if Self::vslot(time) != self.cur_vslot {
            return None; // a push rewound the scan below `time`
        }
        let idx = (self.cur_vslot & BUCKET_MASK) as usize;
        let bucket = &self.buckets[idx];
        let mut best: Option<usize> = None;
        for (i, e) in bucket.iter().enumerate() {
            if e.time == time && best.is_none_or(|b| e.seq < bucket[b].seq) {
                best = Some(i);
            }
        }
        // The stack is sorted descending, so its back is its minimum:
        // if even that is a later time, it holds no match.
        let sorted_top = match self.sorted.last() {
            Some(t) if self.sorted_vslot == self.cur_vslot && t.time == time => Some(*t),
            _ => None,
        };
        match (best, sorted_top) {
            (Some(i), Some(top)) if bucket[i].key() < top.key() => {
                Some(MinPos { time, slot: bucket[i].slot, bucket_pos: i })
            }
            (_, Some(top)) => Some(MinPos { time, slot: top.slot, bucket_pos: IN_SORTED }),
            (Some(i), None) => Some(MinPos { time, slot: bucket[i].slot, bucket_pos: i }),
            (None, None) => None,
        }
    }

    /// Removes the event `find_min` located, recycling its slab slot.
    #[inline]
    fn take_at(&mut self, pos: MinPos) -> (Time, EventKind) {
        self.memo = None;
        let e = if pos.bucket_pos == IN_SORTED {
            self.sorted.pop().expect("sorted top present")
        } else {
            let idx = (self.cur_vslot & BUCKET_MASK) as usize;
            self.buckets[idx].swap_remove(pos.bucket_pos)
        };
        debug_assert_eq!((e.time, e.slot), (pos.time, pos.slot));
        self.in_buckets -= 1;
        (e.time, self.slab.take(e.slot))
    }

    /// Advances the scan one slot, migrating newly-near overflow events
    /// and taking the sparse-queue jump when a whole year scanned empty.
    fn advance_slot(&mut self, scanned: &mut usize) {
        self.cur_vslot += 1;
        self.drain_overflow();
        *scanned += 1;
        if *scanned > BUCKET_COUNT {
            // Sparse queue: a whole year of empty slots. Jump to the
            // earliest event — bucketed *or* still parked in the
            // overflow heap (jumping past the overflow minimum would
            // pop a later bucketed event first and run time backwards).
            let min_bucketed = self
                .buckets
                .iter()
                .flatten()
                .map(|e| Self::vslot(e.time))
                .min()
                .expect("in_buckets > 0");
            let min_overflow = self.overflow.peek().map(|std::cmp::Reverse(e)| Self::vslot(e.time));
            self.cur_vslot = min_overflow.map_or(min_bucketed, |o| min_bucketed.min(o));
            self.drain_overflow();
            *scanned = 0;
        }
    }
}

struct Core {
    free_at: Time,
    busy: Dur,
}

struct TcpChannel {
    in_flight: u32,
    queue: VecDeque<(Payload, u32)>,
    queued_bytes: u64,
    /// Segments delivered to the receiver so far; stamps each ack.
    delivered_segs: u64,
    /// Next ack sequence the sender expects. Acks are generated in
    /// delivery order, so anything else is a duplicate/late ack and is
    /// dropped instead of being subtracted from `in_flight` again.
    acked_segs: u64,
    /// Channel incarnation, bumped when either endpoint crashes. Acks in
    /// flight across a crash carry the old epoch and are discarded — the
    /// bytes they acknowledge were already written off by the reset, so
    /// subtracting them again would drive `in_flight` negative.
    epoch: u32,
}

impl TcpChannel {
    fn new() -> TcpChannel {
        TcpChannel {
            in_flight: 0,
            queue: VecDeque::new(),
            queued_bytes: 0,
            delivered_segs: 0,
            acked_segs: 0,
            epoch: 0,
        }
    }
}

struct Node {
    up: bool,
    uplink_free: Time,
    downlink_free: Time,
    socket_used: u64,
    cores: Vec<Core>,
    disk_free: Time,
    /// Per-node overrides of cluster-wide defaults (0 = use SimConfig).
    udp_socket_buffer: u32,
}

/// Everything in the simulation except the actors themselves. Split out so
/// actor callbacks can borrow it mutably through [`Ctx`].
pub struct SimInner {
    config: SimConfig,
    now: Time,
    seq: u64,
    /// Events dispatched so far (the denominator of wall-clock events/sec).
    events: u64,
    queue: EventQueue,
    /// Bodies of queued `HostArrive`/`Deliver` envelopes (module docs,
    /// "Envelope slab").
    envs: Slab<Envelope>,
    /// Actor dispatch calls made for deliveries (a same-instant run of
    /// coalesced deliveries counts once) and the deliveries they carried
    /// — `delivered / dispatches` is the mean batch size the engine
    /// amortizes the actor indirection over. Not part of [`Metrics`]: a
    /// pure engine statistic, invisible to golden-trace checksums.
    dispatches: u64,
    dispatched_msgs: u64,
    /// Per-size datagram cost cache (see [`CostCache`]).
    cost_cache: CostCache,
    nodes: Vec<Node>,
    groups: Vec<Vec<NodeId>>,
    /// Reusable destination buffer for multicast fan-out (avoids one
    /// allocation per multicast on the hot path).
    mcast_scratch: Vec<NodeId>,
    /// Dense TCP channel table: `tcp_index[src * n + dst]` holds
    /// `slot + 1` into `tcp_chans` (0 = no channel yet), so the
    /// per-segment and per-ack paths are two array indexes instead of a
    /// tuple hash. Rebuilt lazily when nodes are added.
    tcp_index: Vec<u32>,
    tcp_chans: Vec<TcpChannel>,
    /// Node count `tcp_index` was laid out for.
    tcp_nodes: usize,
    rng: SmallRng,
    /// Public metrics registry; actors record through [`Ctx`].
    pub metrics: Metrics,
}

impl SimInner {
    #[inline]
    fn push(&mut self, time: Time, kind: EventKind) {
        self.seq += 1;
        self.queue.push(time, self.seq, kind);
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn node(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Charges `cost` of CPU on `core` of `node` starting no earlier than
    /// `start`, returning the completion time.
    #[inline]
    fn charge_core(&mut self, node: NodeId, core: usize, start: Time, cost: Dur) -> Time {
        let c = &mut self.nodes[node.0].cores[core];
        let begin = c.free_at.max(start);
        c.free_at = begin + cost;
        c.busy += cost;
        c.free_at
    }

    /// Sends a datagram: charges the sender CPU and uplink, then fans out
    /// to each destination's downlink. `tcp_epoch` stamps TCP segments
    /// with their channel incarnation (0 for datagram transports).
    fn datagram(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        payload: Payload,
        bytes: u32,
        transport: Transport,
        tcp_epoch: u32,
    ) {
        if !self.nodes[src.0].up {
            return;
        }
        let costs = self.costs_for(bytes);
        let cpu_done = self.charge_core(src, 0, self.now, costs.send);
        let tx = costs.tx;
        let up = &mut self.nodes[src.0];
        let up_done = up.uplink_free.max(cpu_done) + tx;
        up.uplink_free = up_done;
        self.metrics.add_id(src, mid::NET_SENT_BYTES, bytes as u64);
        self.metrics.add_id(src, mid::NET_SENT_PKTS, 1);
        // The last destination takes ownership of the caller's payload
        // handle: the clone-per-destination refcount bump only runs for
        // true multicast fan-out, never on the unicast fast path.
        let Some((&last, rest)) = dsts.split_last() else { return };
        for &dst in rest {
            self.downlink(src, dst, payload.clone(), bytes, transport, up_done, costs, tcp_epoch);
        }
        self.downlink(src, last, payload, bytes, transport, up_done, costs, tcp_epoch);
    }

    /// Exact per-size costs of a datagram, served from the cost cache
    /// (the config is frozen for the life of the simulation).
    #[inline]
    fn costs_for(&mut self, bytes: u32) -> SizeCosts {
        let tag = bytes.wrapping_add(1);
        let i = (bytes.wrapping_mul(0x9E37_79B9) >> 26) as usize % COST_CACHE_WAYS;
        if self.cost_cache.tags[i] == tag {
            return self.cost_cache.costs[i];
        }
        let c = SizeCosts {
            send: self.config.send_cost(bytes),
            tx: self.config.tx_time(bytes),
            recv: self.config.recv_cost(bytes),
            wire: self.config.wire_bytes(bytes),
        };
        self.cost_cache.tags[i] = tag;
        self.cost_cache.costs[i] = c;
        c
    }

    fn downlink(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: Payload,
        bytes: u32,
        transport: Transport,
        arrive_at_switch: Time,
        costs: SizeCosts,
        tcp_epoch: u32,
    ) {
        if !self.nodes[dst.0].up {
            self.metrics.add_id(dst, mid::NET_DOWN_DROP, bytes as u64);
            return;
        }
        if transport != Transport::Tcp {
            // Random loss injection.
            if self.config.random_loss > 0.0 && self.rng.gen::<f64>() < self.config.random_loss {
                self.metrics.add_id(dst, mid::NET_RAND_DROP, 1);
                return;
            }
            // Switch egress port buffer (tail drop).
            let backlog = self.nodes[dst.0].downlink_free.saturating_since(arrive_at_switch);
            let queued = self.config.backlog_bytes(backlog);
            if queued + costs.wire > self.config.switch_port_buffer as u64 {
                self.metrics.add_id(dst, mid::NET_SWITCH_DROP, 1);
                self.metrics.add_id(dst, mid::NET_SWITCH_DROP_BYTES, bytes as u64);
                return;
            }
        }
        let down = &mut self.nodes[dst.0];
        let done = down.downlink_free.max(arrive_at_switch) + costs.tx;
        down.downlink_free = done;
        let at_host = done + self.config.one_way_latency;
        // The envelope is filed in the slab once, here; only its EnvId
        // moves through the HostArrive → Deliver pipeline.
        let env = Envelope { src, dst, payload, wire_bytes: bytes, transport, tcp_epoch };
        let id = self.envs.insert(env);
        self.push(at_host, EventKind::HostArrive(id));
    }

    /// Datagram reached the destination host NIC: socket-buffer check,
    /// receive-cost charge, and the push of the `Deliver` completion.
    /// The envelope body never moves — only its slab index travels into
    /// the `Deliver` event. Kept `#[inline]` (with `deliver_prework`)
    /// so the UDP datagram sequence compiles to one straight-line path
    /// through the run loop, per the `simcore` criterion group.
    #[inline]
    fn host_arrive(&mut self, id: EnvId) {
        let env = self.envs.get(id);
        let (dst, wire_bytes, transport) = (env.dst, env.wire_bytes, env.transport);
        if !self.nodes[dst.0].up {
            drop(self.envs.take(id));
            return;
        }
        if transport != Transport::Tcp {
            let n = &self.nodes[dst.0];
            let cap = if n.udp_socket_buffer > 0 {
                n.udp_socket_buffer
            } else {
                self.config.udp_socket_buffer
            };
            if n.socket_used + wire_bytes as u64 > cap as u64 {
                self.metrics.add_id(dst, mid::NET_SOCKET_DROP, 1);
                self.metrics.add_id(dst, mid::NET_SOCKET_DROP_BYTES, wire_bytes as u64);
                drop(self.envs.take(id));
                return;
            }
            self.nodes[dst.0].socket_used += wire_bytes as u64;
        }
        let cost = self.costs_for(wire_bytes).recv;
        let done = self.charge_core(dst, 0, self.now, cost);
        self.push(done, EventKind::Deliver(id));
    }

    /// Per-envelope engine work of a delivery — socket drain, receive
    /// metrics, TCP ack generation — run in exact pop order *before* the
    /// actor sees the envelope (or its batch slice). Returns whether the
    /// envelope should reach the actor (`false`: the node is down).
    #[inline]
    fn deliver_prework(&mut self, env: &Envelope) -> bool {
        let dst = env.dst;
        if env.transport != Transport::Tcp {
            let n = &mut self.nodes[dst.0];
            n.socket_used = n.socket_used.saturating_sub(env.wire_bytes as u64);
        }
        if !self.nodes[dst.0].up {
            return false;
        }
        self.metrics.add_id(dst, mid::NET_RECV_BYTES, env.wire_bytes as u64);
        self.metrics.add_id(dst, mid::NET_RECV_PKTS, 1);
        if env.transport == Transport::Tcp {
            match self.tcp_slot(env.src, dst) {
                Some(slot) => {
                    let ch = &mut self.tcp_chans[slot];
                    if env.tcp_epoch == ch.epoch {
                        let seq = ch.delivered_segs;
                        ch.delivered_segs += 1;
                        let epoch = ch.epoch;
                        let ack_at = self.now + self.config.one_way_latency;
                        let (src, bytes) = (env.src, env.wire_bytes);
                        self.push(ack_at, EventKind::TcpAck { src, dst, bytes, seq, epoch });
                    } else {
                        // Orphan segment: it was in flight across a
                        // crash-reset of its channel, so its bytes were
                        // already written off at the sender. Fabricating
                        // an ack here (the old code sent one stamped
                        // `(0, 0)` or with the *new* epoch) corrupts the
                        // reset channel's seq stream and costs an event;
                        // the data still reaches the actor, like a
                        // segment that raced a RST.
                        self.metrics.add_id(dst, mid::NET_TCP_ORPHAN_SEG, 1);
                    }
                }
                None => {
                    // No channel was ever created for this pair — only
                    // reachable through engine misuse today, but the
                    // same orphan accounting keeps it visible instead of
                    // acking a channel that does not exist.
                    self.metrics.add_id(dst, mid::NET_TCP_ORPHAN_SEG, 1);
                }
            }
        }
        true
    }

    /// Slot of the `src -> dst` channel, if one exists.
    #[inline]
    fn tcp_slot(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        let n = self.tcp_nodes;
        if src.0 < n && dst.0 < n {
            match self.tcp_index[src.0 * n + dst.0] {
                0 => None,
                i => Some(i as usize - 1),
            }
        } else {
            None
        }
    }

    /// Slot of the `src -> dst` channel, creating it (and re-laying the
    /// index out if nodes were added since) as needed.
    fn tcp_slot_or_create(&mut self, src: NodeId, dst: NodeId) -> usize {
        let n_now = self.nodes.len();
        if n_now != self.tcp_nodes {
            let old_n = self.tcp_nodes;
            let mut index = vec![0u32; n_now * n_now];
            for s in 0..old_n {
                for d in 0..old_n {
                    index[s * n_now + d] = self.tcp_index[s * old_n + d];
                }
            }
            self.tcp_index = index;
            self.tcp_nodes = n_now;
        }
        let cell = &mut self.tcp_index[src.0 * self.tcp_nodes + dst.0];
        if *cell == 0 {
            self.tcp_chans.push(TcpChannel::new());
            *cell = self.tcp_chans.len() as u32;
        }
        *cell as usize - 1
    }

    fn tcp_pump(&mut self, src: NodeId, dst: NodeId) {
        // A crashed sender transmits nothing: popping the queue here would
        // charge `in_flight` for segments `datagram` silently discards,
        // wedging the window forever (the segment is never delivered, so
        // no ack ever returns). The queue is cleared by the crash reset.
        if !self.nodes[src.0].up {
            return;
        }
        let Some(slot) = self.tcp_slot(src, dst) else { return };
        let window = self.config.tcp_window_bytes;
        loop {
            let peer_down = !self.nodes[dst.0].up;
            let ch = &mut self.tcp_chans[slot];
            let Some(&(_, bytes)) = ch.queue.front() else { return };
            if peer_down {
                // Segments to a down peer are written off at the sender
                // (connection-reset semantics) instead of charged to
                // `in_flight` — they would be dropped at the downlink
                // and their acks would never return.
                let (_, bytes) = ch.queue.pop_front().expect("checked front");
                ch.queued_bytes -= bytes as u64;
                self.metrics.add_id(src, mid::NET_TCP_RESET_BYTES, bytes as u64);
                continue;
            }
            if ch.in_flight.saturating_add(bytes) > window && ch.in_flight > 0 {
                return;
            }
            let (payload, bytes) = ch.queue.pop_front().expect("checked front");
            ch.queued_bytes -= bytes as u64;
            ch.in_flight += bytes;
            let epoch = ch.epoch;
            self.datagram(src, &[dst], payload, bytes, Transport::Tcp, epoch);
        }
    }

    /// Sends `payload` over the reliable channel from `src` to `dst`.
    pub fn tcp_send_from(&mut self, src: NodeId, dst: NodeId, payload: Payload, bytes: u32) {
        let slot = self.tcp_slot_or_create(src, dst);
        let ch = &mut self.tcp_chans[slot];
        ch.queue.push_back((payload, bytes));
        ch.queued_bytes += bytes as u64;
        self.tcp_pump(src, dst);
    }

    /// Resets every TCP channel touching `node` (crash semantics): queued
    /// and in-flight segments are written off under `net.tcp_reset_bytes`
    /// on the sending node, the window reopens, and the channel epoch is
    /// bumped so acks from before the crash are discarded as stale.
    /// Without this, segments dropped at a down node's downlink never ack
    /// and the channel's window stays full forever.
    fn reset_tcp_of(&mut self, node: NodeId) {
        let n = self.tcp_nodes;
        for src in 0..n {
            for dst in 0..n {
                if src != node.0 && dst != node.0 {
                    continue;
                }
                let cell = self.tcp_index[src * n + dst];
                if cell == 0 {
                    continue;
                }
                let ch = &mut self.tcp_chans[cell as usize - 1];
                let lost = ch.in_flight as u64 + ch.queued_bytes;
                ch.queue.clear();
                ch.queued_bytes = 0;
                ch.in_flight = 0;
                ch.acked_segs = ch.delivered_segs;
                ch.epoch = ch.epoch.wrapping_add(1);
                if lost > 0 {
                    self.metrics.add_id(NodeId(src), mid::NET_TCP_RESET_BYTES, lost);
                }
            }
        }
    }

    /// Bytes queued (not yet transmitted) on the TCP channel `src -> dst`.
    /// Protocols use this for application-level back-pressure.
    pub fn tcp_backlog(&self, src: NodeId, dst: NodeId) -> u64 {
        self.tcp_slot(src, dst)
            .map(|slot| {
                let ch = &self.tcp_chans[slot];
                ch.queued_bytes + ch.in_flight as u64
            })
            .unwrap_or(0)
    }

    /// Sends a UDP datagram from `src` to `dst`.
    pub fn udp_send_from(&mut self, src: NodeId, dst: NodeId, payload: Payload, bytes: u32) {
        self.datagram(src, &[dst], payload, bytes, Transport::Udp, 0);
    }

    /// Multicasts a datagram from `src` to every subscriber of `group`.
    /// The sender pays for one transmission regardless of group size.
    /// Senders need not subscribe to the group; subscribers that are also
    /// the sender do not receive their own copy (the caller can loop back
    /// locally if the protocol requires it).
    pub fn mcast_from(&mut self, src: NodeId, group: GroupId, payload: Payload, bytes: u32) {
        let mut dsts = std::mem::take(&mut self.mcast_scratch);
        dsts.clear();
        if let Some(g) = self.groups.get(group.0) {
            dsts.extend(g.iter().copied().filter(|&n| n != src));
        }
        self.datagram(src, &dsts, payload, bytes, Transport::Multicast(group), 0);
        self.mcast_scratch = dsts;
    }

    /// Schedules `token` to fire on `node` after `delay`.
    pub fn set_timer_on(&mut self, node: NodeId, delay: Dur, token: TimerToken) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { node, token });
    }

    /// Issues a disk write of `bytes` on `node`; `token` fires on the
    /// node's actor when the write is durable.
    pub fn disk_write_on(&mut self, node: NodeId, bytes: u32, token: TimerToken) {
        let t = self.config.disk_write_time(bytes);
        self.disk_push(node, bytes, t, token);
    }

    /// Issues a disk write of `bytes` that the writer coalesces into
    /// `unit`-sized device operations (amortized op latency).
    pub fn disk_write_coalesced_on(
        &mut self,
        node: NodeId,
        bytes: u32,
        unit: u32,
        token: TimerToken,
    ) {
        let t = self.config.disk_write_time_coalesced(bytes, unit);
        self.disk_push(node, bytes, t, token);
    }

    fn disk_push(&mut self, node: NodeId, bytes: u32, t: Dur, token: TimerToken) {
        let now = self.now;
        let n = self.node(node);
        let done = n.disk_free.max(now) + t;
        n.disk_free = done;
        self.metrics.add_id(node, mid::DISK_WRITTEN_BYTES, bytes as u64);
        self.push(done, EventKind::DiskDone { node, token });
    }

    /// Outstanding work queued on `node`'s disk.
    pub fn disk_backlog_of(&self, node: NodeId) -> Dur {
        self.nodes[node.0].disk_free.saturating_since(self.now)
    }

    /// Charges CPU on a specific core of `node`, returning completion time.
    pub fn charge_cpu_on(&mut self, node: NodeId, core: usize, cost: Dur) -> Time {
        self.charge_core(node, core, self.now, cost)
    }

    /// Schedules `token` to fire once `core` of `node` has executed `cost`
    /// of work (models handing a task to a pinned thread).
    pub fn run_on_core(&mut self, node: NodeId, core: usize, cost: Dur, token: TimerToken) {
        let done = self.charge_core(node, core, self.now, cost);
        self.push(done, EventKind::Timer { node, token });
    }

    /// Earliest time `core` of `node` becomes idle.
    pub fn core_free_at(&self, node: NodeId, core: usize) -> Time {
        self.nodes[node.0].cores[core].free_at
    }

    /// Cumulative busy time of `core` of `node`.
    pub fn cpu_busy(&self, node: NodeId, core: usize) -> Dur {
        self.nodes[node.0].cores[core].busy
    }

    /// The deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// The handle through which an actor interacts with the simulated world.
pub struct Ctx<'a> {
    node: NodeId,
    inner: &'a mut SimInner,
}

impl Ctx<'_> {
    /// The node this actor runs on.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.inner.now()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SimConfig {
        self.inner.config()
    }

    /// Sends an unreliable unicast datagram.
    pub fn udp_send<T: 'static>(&mut self, dst: NodeId, msg: T, bytes: u32) {
        self.inner.udp_send_from(self.node, dst, Payload::new(msg), bytes);
    }

    /// Sends a pre-wrapped payload as a unicast datagram (avoids re-boxing
    /// when relaying).
    pub fn udp_forward(&mut self, dst: NodeId, payload: Payload, bytes: u32) {
        self.inner.udp_send_from(self.node, dst, payload, bytes);
    }

    /// Multicasts to every subscriber of `group`.
    pub fn mcast<T: 'static>(&mut self, group: GroupId, msg: T, bytes: u32) {
        self.inner.mcast_from(self.node, group, Payload::new(msg), bytes);
    }

    /// Multicasts a pre-wrapped payload.
    pub fn mcast_forward(&mut self, group: GroupId, payload: Payload, bytes: u32) {
        self.inner.mcast_from(self.node, group, payload, bytes);
    }

    /// Sends over the reliable ordered channel to `dst`.
    pub fn tcp_send<T: 'static>(&mut self, dst: NodeId, msg: T, bytes: u32) {
        self.inner.tcp_send_from(self.node, dst, Payload::new(msg), bytes);
    }

    /// Sends a pre-wrapped payload over the reliable channel.
    pub fn tcp_forward(&mut self, dst: NodeId, payload: Payload, bytes: u32) {
        self.inner.tcp_send_from(self.node, dst, payload, bytes);
    }

    /// Bytes buffered on this node's TCP channel to `dst`.
    pub fn tcp_backlog(&self, dst: NodeId) -> u64 {
        self.inner.tcp_backlog(self.node, dst)
    }

    /// Fires `token` on this actor after `delay`.
    pub fn set_timer(&mut self, delay: Dur, token: TimerToken) {
        self.inner.set_timer_on(self.node, delay, token);
    }

    /// Writes `bytes` to the local disk; `token` fires when durable.
    pub fn disk_write(&mut self, bytes: u32, token: TimerToken) {
        self.inner.disk_write_on(self.node, bytes, token);
    }

    /// Writes `bytes` coalesced into `unit`-sized device operations;
    /// `token` fires when durable. Models append-style vote logs.
    pub fn disk_write_coalesced(&mut self, bytes: u32, unit: u32, token: TimerToken) {
        self.inner.disk_write_coalesced_on(self.node, bytes, unit, token);
    }

    /// Outstanding work queued on the local disk.
    pub fn disk_backlog(&self) -> Dur {
        self.inner.disk_backlog_of(self.node)
    }

    /// Charges `cost` of CPU on `core` of this node.
    pub fn charge_cpu(&mut self, core: usize, cost: Dur) {
        self.inner.charge_cpu_on(self.node, core, cost);
    }

    /// Fires `token` once `core` has executed `cost` of work.
    pub fn run_on_core(&mut self, core: usize, cost: Dur, token: TimerToken) {
        self.inner.run_on_core(self.node, core, cost, token);
    }

    /// Earliest time `core` of this node becomes idle. `core_free_at -
    /// now` is the core's current backlog.
    pub fn core_free_at(&self, core: usize) -> Time {
        self.inner.core_free_at(self.node, core)
    }

    /// The deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.inner.rng()
    }

    /// Adds to a per-node counter by name (interned on first use).
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        self.inner.metrics.add(self.node, name, v);
    }

    /// Adds to a per-node counter by pre-interned id — the hot path for
    /// counters bumped per delivered value (see [`crate::stats::mid`]).
    pub fn counter_add_id(&mut self, id: MetricId, v: u64) {
        self.inner.metrics.add_id(self.node, id, v);
    }

    /// Interns a counter name for later [`Ctx::counter_add_id`] calls.
    pub fn intern_metric(&mut self, name: &'static str) -> MetricId {
        self.inner.metrics.intern(name)
    }

    /// Records a latency sample.
    pub fn record_latency(&mut self, name: &'static str, sample: Dur) {
        self.inner.metrics.record_latency(name, sample);
    }
}

/// A simulated cluster: nodes, network, and the actors deployed on them.
pub struct Sim {
    inner: SimInner,
    actors: Vec<Option<Box<dyn Actor>>>,
    started: Vec<bool>,
    /// Reusable buffer the current delivery run is collected into before
    /// the actor callback (module docs, "Batched delivery dispatch").
    inbox: Vec<Envelope>,
}

impl Sim {
    /// Creates an empty cluster with the given configuration.
    pub fn new(config: SimConfig) -> Sim {
        let rng = SmallRng::seed_from_u64(config.seed);
        Sim {
            inner: SimInner {
                config,
                now: Time::ZERO,
                seq: 0,
                events: 0,
                queue: EventQueue::default(),
                envs: Slab::default(),
                dispatches: 0,
                dispatched_msgs: 0,
                cost_cache: CostCache::default(),
                nodes: Vec::new(),
                groups: Vec::new(),
                mcast_scratch: Vec::new(),
                tcp_index: Vec::new(),
                tcp_chans: Vec::new(),
                tcp_nodes: 0,
                rng,
                metrics: Metrics::new(),
            },
            actors: Vec::new(),
            started: Vec::new(),
            inbox: Vec::new(),
        }
    }

    /// Adds a node running `actor`, returning its id.
    pub fn add_node(&mut self, actor: Box<dyn Actor>) -> NodeId {
        let id = NodeId(self.inner.nodes.len());
        let cores = (0..self.inner.config.cores_per_node)
            .map(|_| Core { free_at: Time::ZERO, busy: Dur::ZERO })
            .collect();
        self.inner.nodes.push(Node {
            up: true,
            uplink_free: Time::ZERO,
            downlink_free: Time::ZERO,
            socket_used: 0,
            cores,
            disk_free: Time::ZERO,
            udp_socket_buffer: 0,
        });
        self.actors.push(Some(actor));
        self.started.push(false);
        id
    }

    /// Creates a new multicast group, returning its id.
    pub fn add_group(&mut self) -> GroupId {
        let id = GroupId(self.inner.groups.len());
        self.inner.groups.push(Vec::new());
        id
    }

    /// Subscribes `node` to `group`.
    pub fn subscribe(&mut self, node: NodeId, group: GroupId) {
        let g = &mut self.inner.groups[group.0];
        if !g.contains(&node) {
            g.push(node);
        }
    }

    /// Removes `node` from `group`.
    pub fn unsubscribe(&mut self, node: NodeId, group: GroupId) {
        self.inner.groups[group.0].retain(|&n| n != node);
    }

    /// Overrides the UDP socket buffer size of one node.
    pub fn set_udp_socket_buffer(&mut self, node: NodeId, bytes: u32) {
        self.inner.nodes[node.0].udp_socket_buffer = bytes;
    }

    /// Marks a node as crashed (`false`) or recovered (`true`). A crashed
    /// node drops all traffic and does not run timers. Its actor state is
    /// preserved; use [`Sim::replace_actor`] to model a fresh restart.
    /// Crashing also resets every TCP channel touching the node (lost
    /// segments are counted under `net.tcp_reset_bytes` at their sender),
    /// mirroring the connection teardown a real peer would observe.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        let was_up = self.inner.nodes[node.0].up;
        self.inner.nodes[node.0].up = up;
        if was_up && !up {
            self.inner.reset_tcp_of(node);
        }
        if up {
            // A node that was down may have stale resource clocks.
            let now = self.inner.now;
            let n = &mut self.inner.nodes[node.0];
            n.uplink_free = n.uplink_free.max(now);
            n.downlink_free = n.downlink_free.max(now);
            n.socket_used = 0;
        }
    }

    /// Whether `node` is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.inner.nodes[node.0].up
    }

    /// Resumes a paused node, re-running the existing actor's `on_start`
    /// so it can re-arm timers that were dropped while it was down
    /// (models SIGSTOP/SIGCONT-style process pause and resume — state is
    /// preserved, in-flight traffic was lost). Timers that were scheduled
    /// before the pause and fall due after the resume still fire, so
    /// actors must tolerate duplicate timer chains.
    pub fn restart_node(&mut self, node: NodeId) {
        self.set_node_up(node, true);
        self.started[node.0] = false;
        self.start_actor(node);
    }

    /// Replaces the actor on `node` (models a process restart). The new
    /// actor's `on_start` runs at the current time if the node is up.
    pub fn replace_actor(&mut self, node: NodeId, actor: Box<dyn Actor>) {
        self.actors[node.0] = Some(actor);
        self.started[node.0] = false;
        if self.inner.nodes[node.0].up {
            self.start_actor(node);
        }
    }

    /// Direct access to metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Mutable access to metrics (for draining windowed samples).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.inner.metrics
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.inner.now
    }

    /// Total events dispatched since the simulation started. Together
    /// with a wall clock this yields the engine's events/sec.
    pub fn events_processed(&self) -> u64 {
        self.inner.events
    }

    /// `(dispatches, messages)` of the batched delivery path: actor
    /// callbacks made for deliveries and the messages they carried.
    /// `messages / dispatches` is the mean burst length the engine
    /// amortized the per-delivery actor indirection over. A pure engine
    /// statistic (not a [`Metrics`] counter), so golden-trace counter
    /// checksums are unaffected.
    pub fn delivery_dispatch_stats(&self) -> (u64, u64) {
        (self.inner.dispatches, self.inner.dispatched_msgs)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SimConfig {
        &self.inner.config
    }

    /// Cumulative CPU busy time of a core.
    pub fn cpu_busy(&self, node: NodeId, core: usize) -> Dur {
        self.inner.cpu_busy(node, core)
    }

    /// Cumulative CPU busy time across all cores of `node`.
    pub fn cpu_busy_total(&self, node: NodeId) -> Dur {
        (0..self.inner.config.cores_per_node)
            .map(|c| self.inner.cpu_busy(node, c))
            .fold(Dur::ZERO, |a, b| a + b)
    }

    /// Invokes a closure with a [`Ctx`] for `node` at the current time —
    /// used by experiment drivers to inject work (e.g., client requests)
    /// without a full actor.
    pub fn with_ctx<R>(&mut self, node: NodeId, f: impl FnOnce(&mut Ctx) -> R) -> R {
        let mut ctx = Ctx { node, inner: &mut self.inner };
        f(&mut ctx)
    }

    fn start_actor(&mut self, node: NodeId) {
        if self.started[node.0] {
            return;
        }
        self.started[node.0] = true;
        if let Some(mut actor) = self.actors[node.0].take() {
            let mut ctx = Ctx { node, inner: &mut self.inner };
            actor.on_start(&mut ctx);
            self.actors[node.0] = Some(actor);
        }
    }

    fn ensure_started(&mut self) {
        for i in 0..self.actors.len() {
            if self.inner.nodes[i].up {
                self.start_actor(NodeId(i));
            }
        }
    }

    /// Runs the simulation until `deadline` (inclusive). Events scheduled
    /// after the deadline remain queued; virtual time advances to the
    /// deadline even if the queue drains first.
    pub fn run_until(&mut self, deadline: Time) {
        self.ensure_started();
        while self.step(deadline) {}
        self.inner.now = self.inner.now.max(deadline);
    }

    /// Runs until the event queue is empty (useful for tests).
    pub fn run_to_idle(&mut self) {
        self.ensure_started();
        while self.step(Time::MAX) {}
    }

    /// Pops and dispatches the next due event (plus, for deliveries, the
    /// rest of its same-instant run). Returns `false` once nothing at or
    /// before `deadline` remains.
    #[inline]
    fn step(&mut self, deadline: Time) -> bool {
        let Some(pos) = self.inner.queue.find_min() else { return false };
        if pos.time > deadline {
            return false;
        }
        let (time, kind) = self.inner.queue.take_at(pos);
        self.inner.now = time;
        self.inner.events += 1;
        self.dispatch(time, kind);
        true
    }

    /// Collects the maximal run of consecutive same-instant `Deliver`
    /// events for one destination into the reusable inbox and hands it
    /// to the actor in a single callback. Engine prework runs per
    /// envelope in exact pop order first; see the module docs ("Batched
    /// delivery dispatch") for the precise equivalence to unbatched
    /// dispatch.
    fn deliver_run(&mut self, time: Time, first: EnvId) {
        let mut inbox = std::mem::take(&mut self.inbox);
        debug_assert!(inbox.is_empty());
        let env = self.inner.envs.take(first);
        let dst = env.dst;
        if self.inner.deliver_prework(&env) {
            inbox.push(env);
        }
        while let Some(pos) = self.inner.queue.find_same_time(time) {
            let EventKind::Deliver(id) = *self.inner.queue.kind_at(pos) else { break };
            if self.inner.envs.get(id).dst != dst {
                break;
            }
            let _ = self.inner.queue.take_at(pos);
            self.inner.events += 1;
            let env = self.inner.envs.take(id);
            if self.inner.deliver_prework(&env) {
                inbox.push(env);
            }
        }
        if !inbox.is_empty() {
            self.inner.dispatches += 1;
            self.inner.dispatched_msgs += inbox.len() as u64;
            if let Some(mut actor) = self.actors[dst.0].take() {
                let mut ctx = Ctx { node: dst, inner: &mut self.inner };
                if let [only] = inbox.as_slice() {
                    actor.on_message(only, &mut ctx);
                } else {
                    actor.on_batch(&inbox, &mut ctx);
                }
                self.actors[dst.0] = Some(actor);
            }
        }
        inbox.clear();
        self.inbox = inbox;
    }

    fn dispatch(&mut self, time: Time, kind: EventKind) {
        match kind {
            EventKind::HostArrive(id) => self.inner.host_arrive(id),
            EventKind::Deliver(id) => self.deliver_run(time, id),
            EventKind::Timer { node, token } => {
                if !self.inner.nodes[node.0].up {
                    return;
                }
                if let Some(mut actor) = self.actors[node.0].take() {
                    let mut ctx = Ctx { node, inner: &mut self.inner };
                    actor.on_timer(token, &mut ctx);
                    self.actors[node.0] = Some(actor);
                }
            }
            EventKind::TcpAck { src, dst, bytes, seq, epoch } => {
                if let Some(slot) = self.inner.tcp_slot(src, dst) {
                    let ch = &mut self.inner.tcp_chans[slot];
                    if epoch != ch.epoch {
                        // Ack from before a crash-reset: the bytes it
                        // acknowledges were already written off.
                        self.inner.metrics.add_id(src, mid::NET_TCP_STALE_ACK, 1);
                        return;
                    }
                    if seq != ch.acked_segs {
                        // Duplicate or late ack: ignoring it keeps
                        // `in_flight` exact (subtracting again would
                        // drive it negative / stall the window).
                        self.inner.metrics.add_id(src, mid::NET_TCP_DUP_ACK, 1);
                        return;
                    }
                    ch.acked_segs += 1;
                    if ch.in_flight >= bytes {
                        ch.in_flight -= bytes;
                    } else {
                        // The segment crossed a crash-reset (it was in the
                        // receive pipeline when the node bounced): its
                        // bytes were already written off by the reset.
                        ch.in_flight = 0;
                        self.inner.metrics.add_id(src, mid::NET_TCP_STALE_ACK, 1);
                    }
                }
                self.inner.tcp_pump(src, dst);
            }
            EventKind::DiskDone { node, token } => {
                if !self.inner.nodes[node.0].up {
                    return;
                }
                if let Some(mut actor) = self.actors[node.0].take() {
                    let mut ctx = Ctx { node, inner: &mut self.inner };
                    actor.on_timer(token, &mut ctx);
                    self.actors[node.0] = Some(actor);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug)]
    struct Note(&'static str, u32);

    /// Records every delivery it sees into a shared log.
    struct Recorder {
        log: Rc<RefCell<Vec<(Time, &'static str, u32)>>>,
    }

    impl Actor for Recorder {
        fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
            let n = env.payload.downcast_ref::<Note>().expect("Note");
            self.log.borrow_mut().push((ctx.now(), n.0, n.1));
        }
    }

    struct Quiet;
    impl Actor for Quiet {
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }

    fn two_nodes() -> (Sim, NodeId, NodeId, Rc<RefCell<Vec<(Time, &'static str, u32)>>>) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        (sim, a, b, log)
    }

    #[test]
    fn udp_delivery_has_network_latency() {
        let (mut sim, a, b, log) = two_nodes();
        sim.with_ctx(a, |ctx| ctx.udp_send(b, Note("hi", 1), 1000));
        sim.run_to_idle();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        // tx twice (up+down) + 50us prop + cpu costs: strictly more than 50us.
        assert!(log[0].0 > Time::ZERO + Dur::micros(60));
        assert!(log[0].0 < Time::ZERO + Dur::micros(200));
    }

    #[test]
    fn udp_is_fifo_per_sender() {
        let (mut sim, a, b, log) = two_nodes();
        sim.with_ctx(a, |ctx| {
            for i in 0..10 {
                ctx.udp_send(b, Note("m", i), 8000);
            }
        });
        sim.run_to_idle();
        let seen: Vec<u32> = log.borrow().iter().map(|e| e.2).collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn multicast_reaches_all_subscribers_except_sender() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        let c = sim.add_node(Box::new(Recorder { log: log.clone() }));
        let g = sim.add_group();
        sim.subscribe(a, g);
        sim.subscribe(b, g);
        sim.subscribe(c, g);
        sim.with_ctx(a, |ctx| ctx.mcast(g, Note("mc", 0), 512));
        sim.run_to_idle();
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn sender_bandwidth_is_divided_for_unicast_not_multicast() {
        // 100 packets of 8 KB to 4 receivers: unicast serializes 400 packets
        // on the uplink; multicast only 100.
        let mk = || {
            let mut sim = Sim::new(SimConfig::default());
            let s = sim.add_node(Box::new(Quiet));
            let rs: Vec<NodeId> = (0..4).map(|_| sim.add_node(Box::new(Quiet))).collect();
            (sim, s, rs)
        };
        let (mut uni, s, rs) = mk();
        uni.with_ctx(s, |ctx| {
            for _ in 0..100 {
                for &r in &rs {
                    ctx.udp_send(r, Note("u", 0), 8192);
                }
            }
        });
        uni.run_to_idle();
        let uni_done = uni.now();

        let (mut mc, s, rs) = mk();
        let g = mc.add_group();
        for &r in &rs {
            mc.subscribe(r, g);
        }
        mc.with_ctx(s, |ctx| {
            for _ in 0..100 {
                ctx.mcast(g, Note("m", 0), 8192);
            }
        });
        mc.run_to_idle();
        let mc_done = mc.now();
        assert!(
            uni_done.as_nanos() > 3 * mc_done.as_nanos(),
            "unicast {uni_done:?} vs multicast {mc_done:?}"
        );
    }

    #[test]
    fn socket_buffer_overflow_drops() {
        // A receiver whose application burns CPU on every message drains
        // its socket buffer slower than the wire fills it.
        struct Slow;
        impl Actor for Slow {
            fn on_message(&mut self, _env: &Envelope, ctx: &mut Ctx) {
                ctx.charge_cpu(0, Dur::micros(500));
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Slow));
        sim.set_udp_socket_buffer(b, 64 * 1024);
        sim.with_ctx(a, |ctx| {
            for i in 0..100 {
                ctx.udp_send(b, Note("x", i), 8192);
            }
        });
        sim.run_to_idle();
        assert!(sim.metrics().counter(b, "net.socket_drop") > 0);
        assert!(sim.metrics().counter(b, "net.recv_pkts") > 0);
    }

    #[test]
    fn switch_port_buffer_drops_on_contention() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut cfg = SimConfig::default();
        cfg.switch_port_buffer = 64 * 1024;
        let mut sim = Sim::new(cfg);
        let senders: Vec<NodeId> = (0..4).map(|_| sim.add_node(Box::new(Quiet))).collect();
        let dst = sim.add_node(Box::new(Recorder { log: log.clone() }));
        // Four senders each blast 2 MB simultaneously at wire speed into one
        // downlink: instantaneous demand 4x the drain rate.
        for &s in &senders {
            sim.with_ctx(s, |ctx| {
                for i in 0..256 {
                    ctx.udp_send(dst, Note("burst", i), 8192);
                }
            });
        }
        sim.run_to_idle();
        assert!(sim.metrics().counter(dst, "net.switch_drop") > 0);
    }

    #[test]
    fn tcp_never_drops_and_stays_ordered() {
        let mut cfg = SimConfig::default();
        cfg.tcp_window_bytes = 64 * 1024; // small window forces queueing
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..200 {
                ctx.tcp_send(b, Note("t", i), 32 * 1024);
            }
        });
        sim.run_to_idle();
        let seen: Vec<u32> = log.borrow().iter().map(|e| e.2).collect();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn tcp_window_limits_throughput() {
        // Throughput with a tiny window must be far below wire speed.
        let run = |window: u32| -> f64 {
            let mut cfg = SimConfig::default();
            cfg.tcp_window_bytes = window;
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new(cfg);
            let a = sim.add_node(Box::new(Quiet));
            let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
            sim.with_ctx(a, |ctx| {
                for i in 0..500 {
                    ctx.tcp_send(b, Note("t", i), 32 * 1024);
                }
            });
            sim.run_to_idle();
            let bytes = sim.metrics().counter(b, "net.recv_bytes");
            crate::stats::mbps(bytes, sim.now() - Time::ZERO)
        };
        let slow = run(32 * 1024);
        let fast = run(8 * 1024 * 1024);
        assert!(fast > 2.0 * slow, "fast {fast} vs slow {slow}");
    }

    /// Regression (pre-fix: permanent stall): `tcp_pump` charged
    /// `in_flight` for segments the downlink then dropped at a crashed
    /// destination. No ack ever returned, so once the window filled the
    /// channel was wedged forever — traffic sent after the destination
    /// recovered was never delivered.
    #[test]
    fn tcp_channel_reset_on_crash_unsticks_window() {
        let mut cfg = SimConfig::default();
        cfg.tcp_window_bytes = 64 * 1024; // fills fast once acks stop
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..20 {
                ctx.tcp_send(b, Note("pre", i), 32 * 1024);
            }
        });
        // Crash b mid-stream: several segments are in flight, more queued.
        sim.run_until(Time::from_millis(2));
        sim.set_node_up(b, false);
        sim.run_until(Time::from_millis(10));
        sim.set_node_up(b, true);
        let before_restart = log.borrow().len();
        sim.with_ctx(a, |ctx| {
            for i in 0..5 {
                ctx.tcp_send(b, Note("post", i), 32 * 1024);
            }
        });
        sim.run_to_idle();
        let post: Vec<u32> =
            log.borrow()[before_restart..].iter().filter(|e| e.1 == "post").map(|e| e.2).collect();
        assert_eq!(post, (0..5).collect::<Vec<_>>(), "post-recovery traffic must flow");
        assert!(
            sim.metrics().counter(a, "net.tcp_reset_bytes") > 0,
            "lost segments are accounted at the sender"
        );
    }

    /// Acks that were in flight when the destination crashed carry the
    /// old channel epoch and must be discarded, not subtracted from the
    /// reset channel's window accounting.
    #[test]
    fn tcp_stale_acks_across_crash_are_dropped() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..8 {
                ctx.tcp_send(b, Note("s", i), 8 * 1024);
            }
        });
        // Step until the first delivery lands; its ack trails one-way
        // latency behind, so crashing now leaves it in flight.
        let mut t = Dur::micros(10);
        while log.borrow().is_empty() {
            sim.run_until(Time::ZERO + t);
            t += Dur::micros(10);
            assert!(t < Dur::millis(10), "first delivery never happened");
        }
        sim.set_node_up(b, false);
        sim.run_to_idle();
        assert!(
            sim.metrics().counter(a, "net.tcp_stale_ack") > 0,
            "in-flight acks from before the reset are counted as stale"
        );
    }

    #[test]
    fn timers_fire_in_order() {
        struct T {
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Actor for T {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(Dur::millis(3), TimerToken(3));
                ctx.set_timer(Dur::millis(1), TimerToken(1));
                ctx.set_timer(Dur::millis(2), TimerToken(2));
            }
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, token: TimerToken, _ctx: &mut Ctx) {
                self.log.borrow_mut().push(token.0);
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(Box::new(T { log: log.clone() }));
        sim.run_to_idle();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn crashed_node_receives_nothing_until_recovery() {
        let (mut sim, a, b, log) = two_nodes();
        sim.set_node_up(b, false);
        sim.with_ctx(a, |ctx| ctx.udp_send(b, Note("lost", 0), 100));
        sim.run_until(Time::from_millis(10));
        assert!(log.borrow().is_empty());
        sim.set_node_up(b, true);
        sim.with_ctx(a, |ctx| ctx.udp_send(b, Note("ok", 1), 100));
        sim.run_to_idle();
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(log.borrow()[0].1, "ok");
    }

    #[test]
    fn disk_writes_serialize_and_complete() {
        struct D {
            done: Rc<RefCell<Vec<Time>>>,
        }
        impl Actor for D {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.disk_write(32 * 1024, TimerToken(0));
                ctx.disk_write(32 * 1024, TimerToken(1));
            }
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
                self.done.borrow_mut().push(ctx.now());
            }
        }
        let done = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(Box::new(D { done: done.clone() }));
        sim.run_to_idle();
        let d = done.borrow();
        assert_eq!(d.len(), 2);
        let per = SimConfig::default().disk_write_time(32 * 1024);
        assert_eq!(d[0], Time::ZERO + per);
        assert_eq!(d[1], Time::ZERO + per + per);
    }

    #[test]
    fn cpu_accounting_accumulates() {
        let (mut sim, a, _b, _log) = two_nodes();
        sim.with_ctx(a, |ctx| ctx.charge_cpu(1, Dur::millis(5)));
        assert_eq!(sim.cpu_busy(a, 1), Dur::millis(5));
        assert_eq!(sim.cpu_busy(a, 0), Dur::ZERO);
        assert_eq!(sim.cpu_busy_total(a), Dur::millis(5));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let (mut sim, a, b, log) = two_nodes();
            sim.with_ctx(a, |ctx| {
                for i in 0..50 {
                    ctx.udp_send(b, Note("d", i), 4000 + i * 13);
                }
            });
            sim.run_to_idle();
            let v: Vec<(u64, u32)> = log.borrow().iter().map(|e| (e.0.as_nanos(), e.2)).collect();
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_loss_drops_some() {
        let mut cfg = SimConfig::default();
        cfg.random_loss = 0.5;
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..200 {
                ctx.udp_send(b, Note("r", i), 100);
            }
        });
        sim.run_to_idle();
        let got = log.borrow().len();
        assert!(got > 50 && got < 150, "got {got}");
        assert!(sim.metrics().counter(b, "net.rand_drop") > 0);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(Box::new(Quiet));
        sim.run_until(Time::from_secs(3));
        assert_eq!(sim.now(), Time::from_secs(3));
    }

    /// Regression: after `run_until` parks the scan on a far-future
    /// timer, injecting a near timer (rewinding the scan) plus a timer
    /// that lands in the overflow heap must not let the sparse-scan jump
    /// skip the overflow event — that popped the far timer first and ran
    /// virtual time backwards.
    #[test]
    fn overflow_event_not_skipped_after_scan_rewind() {
        struct T {
            log: Rc<RefCell<Vec<(u64, Time)>>>,
        }
        impl Actor for T {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
                self.log.borrow_mut().push((token.0, ctx.now()));
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(T { log: log.clone() }));
        sim.with_ctx(n, |ctx| ctx.set_timer(Dur::millis(4100), TimerToken(1)));
        // Park the scan position at the far timer's slot.
        sim.run_until(Time::from_millis(10));
        // Rewind with a near timer; the 400 ms timer is > one calendar
        // year past the rewound position, so it parks in overflow.
        sim.with_ctx(n, |ctx| {
            ctx.set_timer(Dur::millis(1), TimerToken(2));
            ctx.set_timer(Dur::millis(400), TimerToken(3));
        });
        sim.run_to_idle();
        let got = log.borrow().clone();
        assert_eq!(got.len(), 3);
        assert_eq!(got.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![2, 3, 1]);
        // Virtual time must be non-decreasing across pops.
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "time ran backwards: {got:?}");
    }

    /// Regression: rewinding the scan (driver-injected near work) while
    /// the hot-bucket stack holds a far slot's events must flush that
    /// stack back into the calendar — a stranded stack popped its far
    /// events ahead of nearer ones and ran virtual time backwards.
    #[test]
    fn hot_bucket_stack_survives_scan_rewind() {
        struct T {
            log: Rc<RefCell<Vec<(u64, Time)>>>,
        }
        impl Actor for T {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
                self.log.borrow_mut().push((token.0, ctx.now()));
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(T { log: log.clone() }));
        // A co-located burst at 30 ms, large enough for the sorted path.
        sim.with_ctx(n, |ctx| {
            for i in 0..40u64 {
                ctx.set_timer(Dur::millis(30), TimerToken(1000 + i));
            }
        });
        // Park the scan on the burst's slot (extracting it into the
        // sorted stack), then rewind with a nearer burst plus a single
        // timer between the two.
        sim.run_until(Time::from_millis(1));
        sim.with_ctx(n, |ctx| {
            for i in 0..33u64 {
                ctx.set_timer(Dur::millis(1), TimerToken(i)); // fires at 2 ms
            }
            ctx.set_timer(Dur::millis(9), TimerToken(500)); // fires at 10 ms
        });
        sim.run_to_idle();
        let got = log.borrow().clone();
        assert_eq!(got.len(), 74);
        assert!(
            got.windows(2).all(|w| w[0].1 <= w[1].1),
            "time ran backwards: {:?}",
            got.iter().map(|&(t, at)| (t, at)).collect::<Vec<_>>()
        );
        // The 10 ms timer must fire before every 30 ms burst timer.
        let pos_500 = got.iter().position(|&(t, _)| t == 500).expect("10ms timer fired");
        let first_burst = got.iter().position(|&(t, _)| t >= 1000).expect("burst fired");
        assert!(pos_500 < first_burst, "far burst popped before nearer timer");
    }

    /// Regression: a rewind of more than one calendar year below a
    /// sorted far burst made the sparse-scan jump panic — it computed
    /// its minimum over bucketed events only, while every remaining
    /// event sat in the sorted stack.
    #[test]
    fn sparse_jump_survives_sorted_far_burst() {
        struct T;
        impl Actor for T {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
        }
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(T));
        sim.with_ctx(n, |ctx| {
            for i in 0..40u64 {
                ctx.set_timer(Dur::millis(40), TimerToken(i));
            }
        });
        sim.run_until(Time::from_millis(1));
        // Rewind > one year (33.6 ms) below the sorted burst.
        sim.with_ctx(n, |ctx| ctx.set_timer(Dur::millis(1), TimerToken(99)));
        sim.run_to_idle();
        assert_eq!(sim.now(), Time::from_millis(40));
    }

    /// The hot-bucket sorted path and the plain scan must both pop in
    /// exact `(time, seq)` order, including pushes interleaved with pops
    /// into the slot being drained.
    #[test]
    fn event_queue_pops_co_located_bursts_in_seq_order() {
        let mut q = EventQueue::default();
        let t = Time::ZERO + Dur::micros(1); // all in one bucket
        let mut seq = 0u64;
        for _ in 0..1000 {
            seq += 1;
            q.push(t, seq, EventKind::Timer { node: NodeId(0), token: TimerToken(seq) });
        }
        let mut popped = Vec::new();
        for round in 0..500 {
            let (time, kind) = q.pop_due(Time::MAX).expect("queued");
            assert_eq!(time, t);
            let EventKind::Timer { token, .. } = kind else { panic!("timer expected") };
            popped.push(token.0);
            // Interleave same-slot pushes while the sorted stack drains.
            if round % 7 == 0 {
                seq += 1;
                q.push(t, seq, EventKind::Timer { node: NodeId(0), token: TimerToken(seq) });
            }
        }
        while let Some((_, kind)) = q.pop_due(Time::MAX) {
            let EventKind::Timer { token, .. } = kind else { panic!("timer expected") };
            popped.push(token.0);
        }
        let mut want = popped.clone();
        want.sort_unstable();
        assert_eq!(popped, want, "pops must follow seq order");
        assert_eq!(popped.len(), 1000 + 500usize.div_ceil(7));
    }

    /// Regression (PR 5, fails pre-fix): a hot-bucket stack filed under
    /// a slot other than the scan position must never be merged into
    /// another slot's extraction. The rewind path in `push` upholds the
    /// invariant by flushing *and re-homing* the stack; this test
    /// fabricates the stranded state directly (a rewind that skipped
    /// the flush protocol — the hazard a stale `sorted_vslot` invites)
    /// and checks the extraction-site guard refuses the merge. Pre-fix,
    /// the unconditional `batch.append(&mut self.sorted)` pulled the
    /// 2 ms stack into the 1 µs slot's extraction and popped it ahead
    /// of the 1 ms timer — virtual time ran backwards.
    #[test]
    fn stale_hot_bucket_stack_is_refiled_not_merged() {
        let timer = |seq: u64| EventKind::Timer { node: NodeId(0), token: TimerToken(seq) };
        let mut q = EventQueue::default();
        // Hot burst at 2 ms; parking the scan on its slot extracts the
        // whole burst into the sorted stack.
        let t_far = Time::ZERO + Dur::millis(2);
        for seq in 1..=40u64 {
            q.push(t_far, seq, timer(seq));
        }
        assert!(q.pop_due(Time::ZERO).is_none());
        assert_eq!(q.sorted.len(), 40, "burst extracted into the stack");
        assert_eq!(q.sorted_vslot, EventQueue::vslot(t_far));
        // Fabricate the hazard: rewind the scan without the
        // flush-and-re-home protocol.
        let t_near = Time::ZERO + Dur::micros(1);
        q.cur_vslot = EventQueue::vslot(t_near);
        // A hot burst in the rewound slot triggers an extraction there;
        // an in-between timer at 1 ms must pop before anything from the
        // stranded 2 ms stack.
        for seq in 100..140u64 {
            q.push(t_near, seq, timer(seq));
        }
        q.push(Time::ZERO + Dur::millis(1), 200, timer(200));
        let mut popped = Vec::new();
        while let Some((time, _)) = q.pop_due(Time::MAX) {
            popped.push(time);
        }
        assert_eq!(popped.len(), 81, "no event lost or duplicated");
        assert!(
            popped.windows(2).all(|w| w[0] <= w[1]),
            "stranded stack popped out of order: {popped:?}"
        );
    }

    /// The interleaving named by the PR-5 issue, end to end through the
    /// public API: a parked scan holding an extracted hot-bucket stack,
    /// a past-time push (rewind — the flush re-homes the stack and
    /// resets `sorted_vslot`), then a *second* hot burst whose
    /// extraction runs with the re-homed state. Every event must fire,
    /// in non-decreasing virtual time.
    #[test]
    fn rewind_then_second_hot_burst_extracts_cleanly() {
        struct T {
            log: Rc<RefCell<Vec<(u64, Time)>>>,
        }
        impl Actor for T {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
                self.log.borrow_mut().push((token.0, ctx.now()));
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(T { log: log.clone() }));
        // Hot burst at 30 ms; the scan parks on its slot and extracts it.
        sim.with_ctx(n, |ctx| {
            for i in 0..40u64 {
                ctx.set_timer(Dur::millis(30), TimerToken(2000 + i));
            }
        });
        sim.run_until(Time::from_millis(1));
        // Past-time pushes: a second hot burst at 2 ms (rewind, then a
        // fresh extraction in the rewound region) plus one lone timer
        // between the two bursts.
        sim.with_ctx(n, |ctx| {
            for i in 0..36u64 {
                ctx.set_timer(Dur::millis(1), TimerToken(i)); // fires at 2 ms
            }
            ctx.set_timer(Dur::millis(14), TimerToken(999)); // fires at 15 ms
        });
        sim.run_to_idle();
        let got = log.borrow().clone();
        assert_eq!(got.len(), 77);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "time ran backwards: {got:?}");
        let pos_999 = got.iter().position(|&(t, _)| t == 999).expect("15 ms timer fired");
        let first_far = got.iter().position(|&(t, _)| t >= 2000).expect("30 ms burst fired");
        assert!(pos_999 < first_far, "30 ms stack replayed ahead of the 15 ms timer");
    }

    /// Regression (PR 5, fails pre-fix): TCP segments that were in
    /// flight across their channel's crash-reset are *orphans* — their
    /// bytes were already written off at the sender — and must not
    /// fabricate acks on delivery. Pre-fix, each such delivery pushed an
    /// ack stamped with the *new* channel epoch; the reset sender
    /// accepted it (counting `net.tcp_stale_ack` as the window math
    /// misfired) and the orphan skewed the channel's delivery-seq
    /// stream. Post-fix the segments are counted under
    /// `net.tcp_orphan_seg` on the receiver and no ack event exists.
    #[test]
    fn orphan_tcp_segments_after_sender_crash_get_no_ack() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..8 {
                ctx.tcp_send(b, Note("s", i), 8 * 1024);
            }
        });
        // The whole burst fits the window, so every segment is in
        // flight immediately; the first delivery needs >100 us of
        // uplink serialization + latency + receive processing.
        sim.run_until(Time::ZERO + Dur::micros(40));
        assert!(log.borrow().is_empty(), "no segment delivered before the crash");
        sim.set_node_up(a, false); // resets a->b: bytes written off, epoch bumped
        sim.run_to_idle();
        let delivered = log.borrow().len() as u64;
        assert_eq!(delivered, 8, "in-flight segments still reach the live receiver");
        assert_eq!(
            sim.metrics().counter(b, "net.tcp_orphan_seg"),
            delivered,
            "every cross-reset segment is accounted as an orphan"
        );
        assert_eq!(
            sim.metrics().counter(a, "net.tcp_stale_ack"),
            0,
            "no fabricated ack reaches the reset channel"
        );
        assert!(
            sim.metrics().counter(a, "net.tcp_reset_bytes") > 0,
            "the crash reset wrote the in-flight bytes off"
        );
    }

    /// Virtual-time width of one calendar "year".
    const YEAR: Dur = Dur::nanos((BUCKET_COUNT as u64) << BUCKET_SHIFT);

    proptest::proptest! {
        /// Model-based check of the calendar queue against a
        /// `BinaryHeap` reference under arbitrary interleavings of
        /// near-future pushes, same-timestamp bursts (hot-bucket
        /// extraction), far-overflow timers (multiple calendar years
        /// out), deadline-limited pops, and scan parks followed by
        /// behind-the-scan pushes (rewind + stack flush). Both
        /// structures must agree on the exact `(time, seq)` pop order.
        #[test]
        fn event_queue_matches_reference_heap(
            ops in proptest::collection::vec((0u8..6u8, proptest::any::<u32>()), 0..120)
        ) {
            let timer = |seq: u64| EventKind::Timer { node: NodeId(0), token: TimerToken(seq) };
            let mut q = EventQueue::default();
            let mut model: BinaryHeap<std::cmp::Reverse<(Time, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            // Lower bound for new pushes: the engine never schedules
            // below `now`, but a parked scan may sit far above it.
            let mut cursor = Time::ZERO;
            let push = |q: &mut EventQueue,
                            model: &mut BinaryHeap<std::cmp::Reverse<(Time, u64)>>,
                            seq: &mut u64,
                            at: Time| {
                *seq += 1;
                q.push(at, *seq, timer(*seq));
                model.push(std::cmp::Reverse((at, *seq)));
            };
            let pop_and_check = |q: &mut EventQueue,
                                     model: &mut BinaryHeap<std::cmp::Reverse<(Time, u64)>>,
                                     deadline: Time|
             -> Result<Option<Time>, proptest::test_runner::TestCaseError> {
                let got = q.pop_due(deadline);
                let want = match model.peek() {
                    Some(&std::cmp::Reverse((t, _))) if t <= deadline => {
                        let std::cmp::Reverse((t, s)) = model.pop().expect("peeked");
                        Some((t, s))
                    }
                    _ => None,
                };
                match (got, want) {
                    (None, None) => Ok(None),
                    (Some((t, EventKind::Timer { token, .. })), Some((wt, ws))) => {
                        prop_assert_eq!((t, token.0), (wt, ws), "pop order diverged");
                        Ok(Some(t))
                    }
                    (got, want) => {
                        let got = got.map(|(t, _)| t);
                        let want = want.map(|(t, _)| t);
                        prop_assert_eq!(got, want, "one side popped, the other did not");
                        Ok(None)
                    }
                }
            };
            for &(op, arg) in &ops {
                let jitter = Dur::nanos((arg % 500_000) as u64);
                match op {
                    // Near-future push (within the scan's first years).
                    0 => push(&mut q, &mut model, &mut seq, cursor + jitter),
                    // Same-timestamp burst, over the hot-bucket threshold.
                    1 => {
                        let t = cursor + Dur::nanos((arg % 100_000) as u64);
                        for _ in 0..(SORT_THRESHOLD + 4) {
                            push(&mut q, &mut model, &mut seq, t);
                        }
                    }
                    // Far-overflow push, one to three calendar years out.
                    2 => {
                        let years = 1 + (arg % 3) as u64;
                        push(&mut q, &mut model, &mut seq, cursor + YEAR * years + jitter);
                    }
                    // Park the scan on the earliest event's slot without
                    // popping it (deadline below every queued event),
                    // then push behind the parked position: the rewind +
                    // stack-flush path.
                    3 => {
                        let _ = pop_and_check(&mut q, &mut model, cursor)?;
                        push(&mut q, &mut model, &mut seq, cursor + Dur::nanos((arg % 4_000) as u64));
                    }
                    // Bounded-deadline pops.
                    4 => {
                        let deadline = cursor + jitter;
                        for _ in 0..8 {
                            if let Some(t) = pop_and_check(&mut q, &mut model, deadline)? {
                                cursor = cursor.max(t);
                            } else {
                                break;
                            }
                        }
                    }
                    // Unbounded pops (a few).
                    _ => {
                        for _ in 0..4 {
                            if let Some(t) = pop_and_check(&mut q, &mut model, Time::MAX)? {
                                cursor = cursor.max(t);
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
            // Drain both completely; the full residual order must match.
            loop {
                let t = pop_and_check(&mut q, &mut model, Time::MAX)?;
                match t {
                    Some(t) => cursor = cursor.max(t),
                    None => break,
                }
            }
            prop_assert!(model.is_empty());
            prop_assert_eq!(q.in_buckets, 0);
        }
    }
}
