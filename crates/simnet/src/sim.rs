//! The discrete-event simulation engine: core types and the control
//! plane.
//!
//! A [`Sim`] owns a cluster of nodes connected by a non-blocking gigabit
//! switch. Each node hosts one [`Actor`] (a process), a multi-core CPU, a
//! NIC with full-duplex links, finite socket buffers, and a local disk.
//!
//! # Layering
//!
//! The engine is split into modules with strict downward dependencies;
//! this module holds the shared vocabulary ([`Envelope`], [`Actor`],
//! [`Ctx`], [`Sim`]/[`SimInner`]) and the cluster control plane
//! (construction, crash injection, group membership):
//!
//! * [`crate::event_queue`] — the future event set (calendar queue with
//!   sorted buckets + overflow heap). Knows nothing of the simulation.
//! * [`crate::host`] — per-node machine: CPU cores, link clocks, disk,
//!   timers. Never crosses a node boundary.
//! * [`crate::net`] — the datagram pipeline, multicast fan-out, cost
//!   cache, and TCP channels. Spans exactly two nodes per operation.
//! * [`crate::shard`] — the partition map, per-shard state arenas, the
//!   cross-shard handoff inboxes, and the lookahead scaffold for the
//!   future threaded executor.
//! * [`crate::dispatch`] — the event vocabulary, the round-robin shard
//!   executor, and the actor run loop (batched delivery coalescing).
//!
//! # Resource model
//!
//! Every shared resource is modelled with a *busy-until* clock: starting a
//! unit of work on a resource at time `t` completes at
//! `max(t, free_at) + cost` and advances `free_at` to the completion time.
//! A datagram sent from `a` to `b` passes through, in order:
//!
//! 1. `a`'s CPU (send system call + copy cost),
//! 2. `a`'s uplink (serialization at link bandwidth),
//! 3. the switch egress port feeding `b` (`b`'s downlink). Datagrams that
//!    would overflow the finite port buffer are tail-dropped,
//! 4. `b`'s socket buffer — dropped if the buffer is full (slow receiver),
//! 5. `b`'s CPU (per-frame receive cost), after which the actor runs.
//!
//! IP-multicast serializes once on the sender's uplink and is replicated by
//! the switch onto every subscriber's downlink, reproducing the two
//! properties the paper exploits (§3.3.1): one system call regardless of
//! the number of receivers, and no division of the sender's bandwidth.
//!
//! TCP channels are reliable, ordered, and flow-controlled by a window;
//! they never drop but instead queue at the sender.
//!
//! # Crash and recovery model
//!
//! Three failure-injection primitives with distinct semantics:
//!
//! * [`Sim::set_node_up`]`(n, false)` — crash: the node drops all
//!   traffic and runs no timers; its actor state is frozen in place.
//!   Crashing also resets every TCP channel touching the node: queued
//!   and in-flight segments are written off at their sender
//!   (`net.tcp_reset_bytes`) and the channel epoch is bumped so acks
//!   that were in flight across the crash are discarded as stale
//!   (`net.tcp_stale_ack`) — without this, a filled window would wedge
//!   the channel forever. While a node is down, new TCP sends to it are
//!   dropped at the sender (connection-reset semantics), not queued.
//! * [`Sim::restart_node`] — pause/resume (SIGSTOP/SIGCONT): the node
//!   comes back with its actor state intact and `on_start` re-runs so
//!   it can re-arm timers. Timers armed before the pause still fire, so
//!   **actors must tolerate duplicate timer chains** after a restart.
//! * [`Sim::replace_actor`] — process restart: a fresh actor is
//!   installed and all in-memory state of the old one is gone. State
//!   that must survive lives outside the actor — see the `recovery`
//!   crate's stable stores, which model the node's disk contents and
//!   are shared between successive incarnations, with write *timing*
//!   still paid through [`Ctx::disk_write`] / `DiskDone` completions.
//!
//! # Hot-path design
//!
//! Every simulated packet passes through the engine twice (host arrival,
//! delivery), so the per-event structures are all dense and index-based:
//! the future event set is a calendar queue of compact keys over an
//! event-kind slab (see [`crate::event_queue`] for the bucket-width
//! heuristic and the O(1) sorted-bucket pop), TCP channels live in
//! per-node-pair slot tables, metrics are pre-interned counters in
//! per-shard row banks ([`crate::stats`]), and multicast fan-out reuses
//! one scratch buffer. Determinism is unaffected by any of it — events
//! dispatch in exact `(time, seq)` order under every partition, so any
//! run is bit-for-bit reproducible from its seed (the golden-trace tests
//! in `ringpaxos` pin this down, under both one- and two-shard
//! partitions).
//!
//! ## Envelope slab
//!
//! [`Envelope`] bodies are interned in a recycling slab on the
//! destination's shard for their whole queued life: the downlink files
//! the envelope once and the `HostArrive` → `Deliver` hand-off moves a
//! 4-byte index between queue entries instead of the ~40-byte struct
//! (and never touches the payload refcount). The body is taken back out
//! of the slab exactly once, on delivery (or on a pre-delivery drop),
//! which immediately recycles the slot for the next send. Unicast sends
//! move the caller's payload handle straight into the slab — the
//! clone-per-destination loop only runs for true multicast fan-out — so
//! a datagram's payload refcount is touched exactly twice: once at
//! creation, once at drop.
//!
//! ## Batched delivery dispatch
//!
//! Same-instant delivery runs are the common case under batching: a
//! multicast fan-in, a ring neighbour's paced burst, or an
//! infinite-bandwidth configuration can land dozens of packets on one
//! node at one virtual timestamp. The run loop coalesces each maximal
//! run of consecutive `Deliver` events with the same destination and
//! timestamp into one reusable inbox and hands the whole slice to
//! [`Actor::on_batch`], so the box-take/box-put and `Ctx` construction
//! around the actor callback are paid once per run instead of once per
//! packet. Per-packet engine work (socket accounting, receive metrics,
//! TCP ack generation) still happens per envelope, in exact pop order,
//! before the actor sees the slice: delivery order, message-handling
//! order, and counter values match unbatched dispatch exactly. The one
//! engine-internal difference is sequence numbering at a coalesced
//! instant — later envelopes' acks are filed before the first actor
//! callback runs instead of interleaved after it — which is observable
//! only when an actor's reply lands at the *same* virtual instant as
//! those acks (requires a zero-cost/zero-latency configuration; the
//! paper-calibrated configs keep ack and reply instants distinct, and
//! the golden-trace tests pin that their traces are bit-identical).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::config::SimConfig;
use crate::host::Node;
use crate::ids::{GroupId, NodeId, TimerToken};
use crate::payload::Payload;
use crate::shard::{Partition, ShardState};
use crate::stats::{MetricId, Metrics};
use crate::threaded::ExecMode;
use crate::time::{Dur, Time};

/// How a message travelled, as seen by the receiving actor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transport {
    /// Unreliable unicast datagram.
    Udp,
    /// Datagram delivered via an ip-multicast group.
    Multicast(GroupId),
    /// Reliable, ordered, flow-controlled channel.
    Tcp,
}

/// A message as delivered to an actor.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Application payload.
    pub payload: Payload,
    /// Size charged on the wire, in bytes.
    pub wire_bytes: u32,
    /// Transport the message used.
    pub transport: Transport,
    /// For TCP segments, the channel incarnation that transmitted this
    /// segment. A segment whose epoch no longer matches its channel was
    /// in flight across a crash-reset: its bytes were already written
    /// off at the sender, so delivery must not generate an ack
    /// (`net.tcp_orphan_seg` counts these instead).
    pub(crate) tcp_epoch: u32,
}

/// A process deployed on a node. All interaction with the outside world
/// happens through the [`Ctx`] passed to each callback.
///
/// Actors are `Send`: the threaded shard executor moves each node's actor
/// to the worker that owns the node's shard for the duration of a run.
/// Only one worker touches an actor at a time (`&mut` discipline is
/// preserved), so `Sync` is not required.
pub trait Actor: Send {
    /// Called once when the simulation starts (or the actor is installed).
    fn on_start(&mut self, _ctx: &mut Ctx) {}
    /// Called when a message is delivered to this node.
    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx);
    /// Called when a run of two or more messages lands on this node at
    /// the same virtual instant (a multicast fan-in or a same-tick
    /// burst). The default loops [`Actor::on_message`] over the slice in
    /// delivery order; single deliveries go straight to `on_message`.
    /// Overrides must process every envelope and preserve per-message
    /// semantics — the engine guarantees the slice order is the exact
    /// unbatched delivery order, and protocols may amortize per-burst
    /// work (borrow setup, post-ingest pumps) across it.
    fn on_batch(&mut self, envs: &[Envelope], ctx: &mut Ctx) {
        for env in envs {
            self.on_message(env, ctx);
        }
    }
    /// Called when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Ctx) {}
}

/// Everything in the simulation except the actors themselves. Split out so
/// actor callbacks can borrow it mutably through [`Ctx`]. Per-node engine
/// state lives in the [`ShardState`] arenas (node resource clocks in the
/// flat `nodes` arena); see [`crate::shard`] for the sharded-vs-global
/// split.
pub struct SimInner {
    pub(crate) config: SimConfig,
    pub(crate) now: Time,
    /// Global event sequence counter, shared by every shard (the
    /// keystone of partition-independent dispatch order).
    pub(crate) seq: u64,
    /// Events dispatched so far (the denominator of wall-clock events/sec).
    pub(crate) events: u64,
    /// Actor dispatch calls made for deliveries (a same-instant run of
    /// coalesced deliveries counts once) and the deliveries they carried
    /// — `delivered / dispatches` is the mean batch size the engine
    /// amortizes the actor indirection over. Not part of [`Metrics`]: a
    /// pure engine statistic, invisible to golden-trace checksums.
    pub(crate) dispatches: u64,
    pub(crate) dispatched_msgs: u64,
    /// The per-shard state arenas (queues, slabs, TCP halves, inboxes).
    pub(crate) shards: Vec<ShardState>,
    /// Node resource clocks, indexed directly by node id. Kept flat —
    /// outside the shard arenas — because this is the hottest load in
    /// the engine; each node's clocks are still touched only by its own
    /// shard's events ([`crate::shard`] module docs, "What is sharded").
    pub(crate) nodes: Vec<Node>,
    /// The active node → shard map.
    pub(crate) partition: Partition,
    /// Per-shard-pair lookahead matrix, `lookahead[a * k + b]`
    /// (see [`Sim::safe_window`]).
    pub(crate) lookahead: Vec<Dur>,
    /// Events that crossed a shard boundary through a handoff inbox.
    /// Engine statistic, not a [`Metrics`] counter.
    pub(crate) cross_shard_events: u64,
    pub(crate) groups: Vec<Vec<NodeId>>,
    /// Reusable destination buffer for multicast fan-out (avoids one
    /// allocation per multicast on the hot path).
    pub(crate) mcast_scratch: Vec<NodeId>,
    /// Dense TCP channel tables: `tcp_tx_index[src * n + dst]` holds
    /// `slot + 1` into the source shard's `tcp_tx` (0 = no channel yet);
    /// `tcp_rx_index` likewise into the destination shard's `tcp_rx`.
    /// Two maps because the halves live in (potentially) different
    /// shards' arenas. Rebuilt lazily when nodes are added.
    pub(crate) tcp_tx_index: Vec<u32>,
    pub(crate) tcp_rx_index: Vec<u32>,
    /// Node count the TCP index tables were laid out for.
    pub(crate) tcp_nodes: usize,
    /// Symmetrically cut links (fault injection): unordered node pairs
    /// stored as `(lo, hi)`. Traffic on a cut link — every transport,
    /// TCP included — is dropped at the switch (`net.part_drop`).
    /// Control-plane state, written only between events
    /// ([`Sim::set_link_cut`]).
    pub(crate) cut_links: std::collections::HashSet<(u32, u32)>,
    /// Whether this inner is executing inside a fast-mode worker. Flips
    /// the `net`/`dispatch` layers onto the destination-side egress path
    /// ([`crate::dispatch::EventKind::SwitchArrive`]) and relaxes the
    /// cross-shard coalescing guard. Always `false` on the control-plane
    /// inner; set only on the worker copies the threaded executor splits
    /// off ([`crate::threaded`]).
    pub(crate) exec_fast: bool,
    /// Debug description of the first event ever scheduled, captured so
    /// [`Sim::set_partition`]'s ordering panic can name the offender.
    pub(crate) first_event: Option<String>,
    /// Enabled probe category bits ([`crate::probe::category`]); `0` —
    /// the default — disables the probe layer entirely, leaving only
    /// single predictable branches at the hook sites.
    pub(crate) probe_mask: u8,
    /// Per-shard tracer ring capacity in events (0 = aggregates only).
    pub(crate) probe_capacity: usize,
    /// Shard-pair cross-handoff matrix, `probe_handoffs[from * k + to]`,
    /// maintained when the EXEC probe category is on. Merged across
    /// fast-mode workers by element-wise summation (commutative, so
    /// thread-count invariant).
    pub(crate) probe_handoffs: Vec<u64>,
    /// Public metrics registry; actors record through [`Ctx`].
    pub metrics: Metrics,
}

impl SimInner {
    /// Captures the descriptor of the first-scheduled event (cold: runs
    /// at most once per simulation).
    #[cold]
    #[inline(never)]
    pub(crate) fn record_first_event(&mut self, at: Time, kind: &crate::dispatch::EventKind) {
        self.first_event = Some(format!("{kind:?} at {at}"));
    }

    /// Hook on every event-origination path: remembers what was
    /// scheduled first. One predictable null-check on the hot path.
    #[inline]
    pub(crate) fn note_first_event(&mut self, at: Time, kind: &crate::dispatch::EventKind) {
        if self.first_event.is_none() {
            self.record_first_event(at, kind);
        }
    }

    /// Whether any probe category in `mask` is enabled. The sole test on
    /// every probe hook site — one `u8` AND plus a predictable branch,
    /// so the hot loops are untouched when probes are off (the default).
    #[inline]
    pub(crate) fn probe_on(&self, mask: u8) -> bool {
        self.probe_mask & mask != 0
    }

    /// Records a probe event at the current virtual time into the
    /// recorded node's own shard tracer. Cold: only reached behind a
    /// passing [`SimInner::probe_on`] check.
    #[cold]
    #[inline(never)]
    pub(crate) fn probe_record(&mut self, node: NodeId, code: u16, arg: u64) {
        let at = self.now;
        self.probe_record_at(node, code, arg, at);
    }

    /// Records a probe event with an explicit (possibly earlier)
    /// timestamp — e.g. [`crate::probe::code::PROPOSE`] stamps the
    /// earliest client submission of a batch. Because of such events a
    /// shard's stream is not guaranteed time-sorted; the merge in
    /// [`Sim::probe_events`] performs a full sort.
    #[cold]
    #[inline(never)]
    pub(crate) fn probe_record_at(&mut self, node: NodeId, code: u16, arg: u64, at: Time) {
        let sh = self.shard_idx(node);
        self.shards[sh].tracer.record(crate::probe::ProbeEvent {
            time: at,
            node: node.0 as u32,
            code,
            arg,
        });
    }

    /// Records one cross-shard handoff: bumps the shard-pair matrix and
    /// (when event buffering is on) logs an
    /// [`crate::probe::code::EXEC_HANDOFF`] event into the *source*
    /// shard's tracer — the generation site, which is always
    /// worker-owned in fast mode. Cold: behind an EXEC
    /// [`SimInner::probe_on`] check.
    #[cold]
    #[inline(never)]
    pub(crate) fn probe_handoff(&mut self, from_shard: usize, to_shard: usize, node: NodeId) {
        let k = self.partition.shards();
        if self.probe_handoffs.len() == k * k {
            self.probe_handoffs[from_shard * k + to_shard] += 1;
        }
        let arg = ((from_shard as u64) << 32) | to_shard as u64;
        let at = self.now;
        self.shards[from_shard].tracer.record(crate::probe::ProbeEvent {
            time: at,
            node: node.0 as u32,
            code: crate::probe::code::EXEC_HANDOFF,
            arg,
        });
    }
}

/// Derives the RNG seed for one node's stream from the cluster seed: a
/// splitmix64-style finalizer, so streams are decorrelated and any shard
/// can re-derive any node's stream from scratch (pure function).
#[inline]
pub(crate) fn stream_seed(seed: u64, node: usize) -> u64 {
    let mut z = seed ^ (node as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Canonical unordered key for a node pair (link cuts are symmetric).
#[inline]
pub(crate) fn link_key(a: NodeId, b: NodeId) -> (u32, u32) {
    let (x, y) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    (x as u32, y as u32)
}

impl SimInner {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The deterministic RNG stream of `node`, materialized lazily in
    /// the owning shard's arena. Draw order is a function of the node's
    /// own activity, so it is identical under every partition
    /// ([`crate::shard`] module docs, "Randomness is sharded too").
    pub(crate) fn rng_for(&mut self, node: NodeId) -> &mut SmallRng {
        let sh = self.shard_idx(node);
        let rngs = &mut self.shards[sh].rngs;
        if rngs.len() <= node.0 {
            let seed = self.config.seed;
            let start = rngs.len();
            rngs.extend((start..=node.0).map(|i| SmallRng::seed_from_u64(stream_seed(seed, i))));
        }
        &mut rngs[node.0]
    }

    /// Whether the link between `a` and `b` is currently cut.
    #[inline]
    pub(crate) fn link_is_cut(&self, a: NodeId, b: NodeId) -> bool {
        !self.cut_links.is_empty() && self.cut_links.contains(&link_key(a, b))
    }
}

/// The handle through which an actor interacts with the simulated world.
pub struct Ctx<'a> {
    node: NodeId,
    inner: &'a mut SimInner,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(node: NodeId, inner: &'a mut SimInner) -> Ctx<'a> {
        Ctx { node, inner }
    }
}

impl Ctx<'_> {
    /// The node this actor runs on.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.inner.now()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SimConfig {
        self.inner.config()
    }

    /// Sends an unreliable unicast datagram.
    pub fn udp_send<T: Send + Sync + 'static>(&mut self, dst: NodeId, msg: T, bytes: u32) {
        self.inner.udp_send_from(self.node, dst, Payload::new(msg), bytes);
    }

    /// Sends a pre-wrapped payload as a unicast datagram (avoids re-boxing
    /// when relaying).
    pub fn udp_forward(&mut self, dst: NodeId, payload: Payload, bytes: u32) {
        self.inner.udp_send_from(self.node, dst, payload, bytes);
    }

    /// Multicasts to every subscriber of `group`.
    pub fn mcast<T: Send + Sync + 'static>(&mut self, group: GroupId, msg: T, bytes: u32) {
        self.inner.mcast_from(self.node, group, Payload::new(msg), bytes);
    }

    /// Multicasts a pre-wrapped payload.
    pub fn mcast_forward(&mut self, group: GroupId, payload: Payload, bytes: u32) {
        self.inner.mcast_from(self.node, group, payload, bytes);
    }

    /// Sends over the reliable ordered channel to `dst`.
    pub fn tcp_send<T: Send + Sync + 'static>(&mut self, dst: NodeId, msg: T, bytes: u32) {
        self.inner.tcp_send_from(self.node, dst, Payload::new(msg), bytes);
    }

    /// Sends a pre-wrapped payload over the reliable channel.
    pub fn tcp_forward(&mut self, dst: NodeId, payload: Payload, bytes: u32) {
        self.inner.tcp_send_from(self.node, dst, payload, bytes);
    }

    /// Bytes buffered on this node's TCP channel to `dst`.
    pub fn tcp_backlog(&self, dst: NodeId) -> u64 {
        self.inner.tcp_backlog(self.node, dst)
    }

    /// Fires `token` on this actor after `delay`.
    pub fn set_timer(&mut self, delay: Dur, token: TimerToken) {
        self.inner.set_timer_on(self.node, delay, token);
    }

    /// Writes `bytes` to the local disk; `token` fires when durable.
    pub fn disk_write(&mut self, bytes: u32, token: TimerToken) {
        self.inner.disk_write_on(self.node, bytes, token);
    }

    /// Writes `bytes` coalesced into `unit`-sized device operations;
    /// `token` fires when durable. Models append-style vote logs.
    pub fn disk_write_coalesced(&mut self, bytes: u32, unit: u32, token: TimerToken) {
        self.inner.disk_write_coalesced_on(self.node, bytes, unit, token);
    }

    /// Outstanding work queued on the local disk.
    pub fn disk_backlog(&self) -> Dur {
        self.inner.disk_backlog_of(self.node)
    }

    /// Charges `cost` of CPU on `core` of this node.
    pub fn charge_cpu(&mut self, core: usize, cost: Dur) {
        self.inner.charge_cpu_on(self.node, core, cost);
    }

    /// Fires `token` once `core` has executed `cost` of work.
    pub fn run_on_core(&mut self, core: usize, cost: Dur, token: TimerToken) {
        self.inner.run_on_core(self.node, core, cost, token);
    }

    /// Earliest time `core` of this node becomes idle. `core_free_at -
    /// now` is the core's current backlog.
    pub fn core_free_at(&self, core: usize) -> Time {
        self.inner.core_free_at(self.node, core)
    }

    /// This node's deterministic random number generator stream (seeded
    /// from the cluster seed and the node id; partition-independent).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.inner.rng_for(self.node)
    }

    /// Adds to a per-node counter by name (interned on first use).
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        self.inner.metrics.add(self.node, name, v);
    }

    /// Adds to a per-node counter by pre-interned id — the hot path for
    /// counters bumped per delivered value (see [`crate::stats::mid`]).
    pub fn counter_add_id(&mut self, id: MetricId, v: u64) {
        self.inner.metrics.add_id(self.node, id, v);
    }

    /// Interns a counter name for later [`Ctx::counter_add_id`] calls.
    pub fn intern_metric(&mut self, name: &'static str) -> MetricId {
        self.inner.metrics.intern(name)
    }

    /// Records a latency sample.
    pub fn record_latency(&mut self, name: &'static str, sample: Dur) {
        self.inner.metrics.record_latency(name, sample);
    }

    /// Whether protocol-category probes are enabled. Actors with a
    /// nontrivial argument to compute (e.g. a span key) should guard on
    /// this so disabled runs pay only the one branch.
    #[inline]
    pub fn probes_enabled(&self) -> bool {
        self.inner.probe_on(crate::probe::category::PROTOCOL)
    }

    /// Records a protocol probe event ([`crate::probe::code`]) at the
    /// current virtual time. A no-op unless the protocol category is
    /// enabled ([`Sim::set_probes`]). Recording is pure observation: no
    /// RNG draw, no metrics counter, no scheduled event — enabling
    /// probes cannot perturb the simulation.
    #[inline]
    pub fn probe(&mut self, code: u16, arg: u64) {
        if self.inner.probe_on(crate::probe::category::PROTOCOL) {
            self.inner.probe_record(self.node, code, arg);
        }
    }

    /// Records a protocol probe event with an explicit timestamp at or
    /// before the current time — e.g. a PROPOSE stamped with the
    /// earliest client submission its batch covers.
    #[inline]
    pub fn probe_at(&mut self, code: u16, arg: u64, at: Time) {
        if self.inner.probe_on(crate::probe::category::PROTOCOL) {
            self.inner.probe_record_at(self.node, code, arg, at);
        }
    }
}

/// A simulated cluster: nodes, network, and the actors deployed on them.
pub struct Sim {
    pub(crate) inner: SimInner,
    pub(crate) actors: Vec<Option<Box<dyn Actor>>>,
    pub(crate) started: Vec<bool>,
    /// Reusable buffer the current delivery run is collected into before
    /// the actor callback (module docs, "Batched delivery dispatch").
    pub(crate) inbox: Vec<Envelope>,
    /// Executor selection (see [`crate::shard`] module docs, "Executor
    /// modes"). Determinism mode ignores `threads`.
    pub(crate) mode: ExecMode,
    /// Worker-thread cap for fast mode; the effective worker count is
    /// `min(threads, shards)`.
    pub(crate) threads: usize,
    /// Per-worker executor telemetry accumulated by fast-mode runs when
    /// the EXEC probe category is on, indexed by worker. Control-plane
    /// state (the workers report at merge time); cleared by
    /// [`Sim::set_probes`].
    pub(crate) exec_telemetry: Vec<crate::probe::WorkerTelemetry>,
}

impl Sim {
    /// Creates an empty cluster with the given configuration (identity
    /// partition: one shard).
    pub fn new(config: SimConfig) -> Sim {
        let lookahead = SimInner::lookahead_matrix(1, config.one_way_latency);
        Sim {
            inner: SimInner {
                config,
                now: Time::ZERO,
                seq: 0,
                events: 0,
                dispatches: 0,
                dispatched_msgs: 0,
                shards: vec![ShardState::default()],
                nodes: Vec::new(),
                partition: Partition::identity(0),
                lookahead,
                cross_shard_events: 0,
                groups: Vec::new(),
                mcast_scratch: Vec::new(),
                tcp_tx_index: Vec::new(),
                tcp_rx_index: Vec::new(),
                tcp_nodes: 0,
                cut_links: std::collections::HashSet::new(),
                exec_fast: false,
                first_event: None,
                probe_mask: 0,
                probe_capacity: 0,
                probe_handoffs: Vec::new(),
                metrics: Metrics::new(),
            },
            actors: Vec::new(),
            started: Vec::new(),
            inbox: Vec::new(),
            mode: ExecMode::Determinism,
            threads: 1,
            exec_telemetry: Vec::new(),
        }
    }

    /// Selects the executor (see [`crate::shard`] module docs, "Executor
    /// modes"). [`ExecMode::Determinism`] — the default — is the serial
    /// global-min merge with bit-identical traces under any partition;
    /// [`ExecMode::Fast`] runs shards wall-parallel inside conservative
    /// lookahead windows once [`Sim::set_threads`] grants more than one
    /// worker. Control-plane: call between runs, not from actors.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The active executor mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Caps the fast-mode worker count (effective workers =
    /// `min(threads, shards)`). Determinism mode ignores this: its
    /// schedule is definitionally single-threaded. Values below 1 clamp
    /// to 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Adds a node running `actor`, returning its id. The node is homed
    /// on a shard per the active partition (shard 0 until
    /// [`Sim::set_partition`] says otherwise) and its metrics row is
    /// banked there.
    pub fn add_node(&mut self, actor: Box<dyn Actor>) -> NodeId {
        let id = NodeId(self.inner.nodes.len());
        let sh = self.inner.partition.push_node() as usize;
        self.inner.nodes.push(Node::new(self.inner.config.cores_per_node));
        self.inner.metrics.assign_node(id, sh);
        self.actors.push(Some(actor));
        self.started.push(false);
        id
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.len()
    }

    /// Creates a new multicast group, returning its id.
    pub fn add_group(&mut self) -> GroupId {
        let id = GroupId(self.inner.groups.len());
        self.inner.groups.push(Vec::new());
        id
    }

    /// Subscribes `node` to `group`.
    pub fn subscribe(&mut self, node: NodeId, group: GroupId) {
        let g = &mut self.inner.groups[group.0];
        if !g.contains(&node) {
            g.push(node);
        }
    }

    /// Removes `node` from `group`.
    pub fn unsubscribe(&mut self, node: NodeId, group: GroupId) {
        self.inner.groups[group.0].retain(|&n| n != node);
    }

    /// Overrides the UDP socket buffer size of one node.
    pub fn set_udp_socket_buffer(&mut self, node: NodeId, bytes: u32) {
        self.inner.node_mut(node).udp_socket_buffer = bytes;
    }

    /// Changes the datagram loss probability at runtime (fault
    /// injection; timed bursts via [`crate::fault::FaultPlan`]).
    pub fn set_random_loss(&mut self, p: f64) {
        self.inner.config.random_loss = p;
    }

    /// Changes the datagram reorder probability at runtime.
    pub fn set_random_reorder(&mut self, p: f64) {
        self.inner.config.random_reorder = p;
    }

    /// Changes the datagram duplication probability at runtime.
    pub fn set_random_duplication(&mut self, p: f64) {
        self.inner.config.random_duplication = p;
    }

    /// Cuts (`true`) or heals (`false`) the link between `a` and `b`.
    /// A cut is symmetric and drops *every* transport crossing it, TCP
    /// segments and acks included (`net.part_drop`). Healing also resets
    /// the TCP channels between the pair: segments lost in the cut were
    /// written off nowhere, so without a reset a filled window would
    /// wedge the channel forever — the reset writes them off at the
    /// sender (`net.tcp_reset_bytes`) exactly like a crash-reset, and
    /// actors recover through their normal retransmission paths.
    pub fn set_link_cut(&mut self, a: NodeId, b: NodeId, cut: bool) {
        let key = crate::sim::link_key(a, b);
        if cut {
            self.inner.cut_links.insert(key);
        } else if self.inner.cut_links.remove(&key) {
            self.inner.reset_tcp_pair(a, b);
        }
    }

    /// Sets a CPU straggler factor on `node`: every CPU cost is
    /// multiplied by `factor` (1.0 = healthy; the 1.0 fast path keeps
    /// the exact integer arithmetic, so traces without stragglers are
    /// bit-identical to pre-injection builds).
    pub fn set_cpu_slowdown(&mut self, node: NodeId, factor: f64) {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.inner.node_mut(node).cpu_slowdown = factor;
    }

    /// Sets a disk straggler factor on `node` (write times multiplied by
    /// `factor`; 1.0 = healthy).
    pub fn set_disk_slowdown(&mut self, node: NodeId, factor: f64) {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.inner.node_mut(node).disk_slowdown = factor;
    }

    /// Marks a node as crashed (`false`) or recovered (`true`). A crashed
    /// node drops all traffic and does not run timers. Its actor state is
    /// preserved; use [`Sim::replace_actor`] to model a fresh restart.
    /// Crashing also resets every TCP channel touching the node (lost
    /// segments are counted under `net.tcp_reset_bytes` at their sender),
    /// mirroring the connection teardown a real peer would observe.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        let was_up = self.inner.node(node).up;
        self.inner.node_mut(node).up = up;
        if was_up && !up {
            self.inner.reset_tcp_of(node);
        }
        if up {
            // A node that was down may have stale resource clocks.
            let now = self.inner.now;
            let n = self.inner.node_mut(node);
            n.uplink_free = n.uplink_free.max(now);
            n.downlink_free = n.downlink_free.max(now);
            n.socket_used = 0;
        }
    }

    /// Whether `node` is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.inner.node(node).up
    }

    /// Resumes a paused node, re-running the existing actor's `on_start`
    /// so it can re-arm timers that were dropped while it was down
    /// (models SIGSTOP/SIGCONT-style process pause and resume — state is
    /// preserved, in-flight traffic was lost). Timers that were scheduled
    /// before the pause and fall due after the resume still fire, so
    /// actors must tolerate duplicate timer chains.
    pub fn restart_node(&mut self, node: NodeId) {
        self.set_node_up(node, true);
        self.started[node.0] = false;
        self.start_actor(node);
    }

    /// Replaces the actor on `node` (models a process restart). The new
    /// actor's `on_start` runs at the current time if the node is up.
    pub fn replace_actor(&mut self, node: NodeId, actor: Box<dyn Actor>) {
        self.actors[node.0] = Some(actor);
        self.started[node.0] = false;
        if self.inner.node(node).up {
            self.start_actor(node);
        }
    }

    /// Direct access to metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Mutable access to metrics (for draining windowed samples).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.inner.metrics
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.inner.now
    }

    /// Total events dispatched since the simulation started. Together
    /// with a wall clock this yields the engine's events/sec.
    pub fn events_processed(&self) -> u64 {
        self.inner.events
    }

    /// `(dispatches, messages)` of the batched delivery path: actor
    /// callbacks made for deliveries and the messages they carried.
    /// `messages / dispatches` is the mean burst length the engine
    /// amortized the per-delivery actor indirection over. A pure engine
    /// statistic (not a [`Metrics`] counter), so golden-trace counter
    /// checksums are unaffected.
    pub fn delivery_dispatch_stats(&self) -> (u64, u64) {
        (self.inner.dispatches, self.inner.dispatched_msgs)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SimConfig {
        &self.inner.config
    }

    /// Cumulative CPU busy time of a core.
    pub fn cpu_busy(&self, node: NodeId, core: usize) -> Dur {
        self.inner.cpu_busy(node, core)
    }

    /// Cumulative CPU busy time across all cores of `node`.
    pub fn cpu_busy_total(&self, node: NodeId) -> Dur {
        (0..self.inner.config.cores_per_node)
            .map(|c| self.inner.cpu_busy(node, c))
            .fold(Dur::ZERO, |a, b| a + b)
    }

    /// Invokes a closure with a [`Ctx`] for `node` at the current time —
    /// used by experiment drivers to inject work (e.g., client requests)
    /// without a full actor.
    pub fn with_ctx<R>(&mut self, node: NodeId, f: impl FnOnce(&mut Ctx) -> R) -> R {
        let mut ctx = Ctx::new(node, &mut self.inner);
        f(&mut ctx)
    }

    /// Arms (or disarms) the probe layer ([`crate::probe`]). Resets the
    /// per-shard tracers, the handoff matrix, and accumulated executor
    /// telemetry. Control-plane: call between runs, not from actors.
    /// Probes default to [`crate::probe::ProbeConfig::disabled`].
    pub fn set_probes(&mut self, cfg: crate::probe::ProbeConfig) {
        self.inner.probe_mask = cfg.categories;
        self.inner.probe_capacity = if cfg.enabled() { cfg.capacity } else { 0 };
        let k = self.inner.partition.shards();
        self.inner.probe_handoffs = if cfg.categories & crate::probe::category::EXEC != 0 {
            vec![0; k * k]
        } else {
            Vec::new()
        };
        let capacity = self.inner.probe_capacity;
        for sh in &mut self.inner.shards {
            sh.tracer.reset(capacity);
        }
        self.exec_telemetry.clear();
    }

    /// The merged probe stream: every shard tracer's events, sorted by
    /// `(time, shard, per-shard record index)`. All three keys are
    /// thread-count invariant within an executor mode, so the merged
    /// stream is too ([`crate::probe`] module docs, "Determinism").
    pub fn probe_events(&self) -> Vec<crate::probe::ProbeEvent> {
        let mut keyed: Vec<(Time, usize, u64, crate::probe::ProbeEvent)> = Vec::new();
        for (sh, state) in self.inner.shards.iter().enumerate() {
            keyed.extend(state.tracer.chronological().map(|(idx, ev)| (ev.time, sh, idx, ev)));
        }
        // Unstable sort is safe: (time, shard, idx) keys are unique.
        keyed.sort_unstable_by_key(|&(t, sh, idx, _)| (t, sh, idx));
        keyed.into_iter().map(|(_, _, _, ev)| ev).collect()
    }

    /// Events overwritten after a shard's tracer ring filled (0 when
    /// every recorded event is still buffered).
    pub fn probe_dropped(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.tracer.dropped()).sum()
    }

    /// The shard-pair cross-handoff matrix, `matrix[from * k + to]`
    /// (empty unless the EXEC probe category is enabled). The input the
    /// ROADMAP's topology-aware-partition item needs: which shard pairs
    /// actually exchange events.
    pub fn handoff_matrix(&self) -> &[u64] {
        &self.inner.probe_handoffs
    }

    /// Per-worker executor telemetry accumulated by fast-mode runs since
    /// the last [`Sim::set_probes`] (empty unless the EXEC probe
    /// category is on). Wall-clock fields measure the host; the
    /// schedule fields (rounds, events, windows) are deterministic.
    pub fn worker_telemetry(&self) -> &[crate::probe::WorkerTelemetry] {
        &self.exec_telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::Mutex;

    #[derive(Debug)]
    struct Note(&'static str, u32);

    /// Records every delivery it sees into a shared log.
    struct Recorder {
        log: Arc<Mutex<Vec<(Time, &'static str, u32)>>>,
    }

    impl Actor for Recorder {
        fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
            let n = env.payload.downcast_ref::<Note>().expect("Note");
            self.log.lock().unwrap().push((ctx.now(), n.0, n.1));
        }
    }

    struct Quiet;
    impl Actor for Quiet {
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }

    fn two_nodes() -> (Sim, NodeId, NodeId, Arc<Mutex<Vec<(Time, &'static str, u32)>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        (sim, a, b, log)
    }

    #[test]
    fn udp_delivery_has_network_latency() {
        let (mut sim, a, b, log) = two_nodes();
        sim.with_ctx(a, |ctx| ctx.udp_send(b, Note("hi", 1), 1000));
        sim.run_to_idle();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 1);
        // tx twice (up+down) + 50us prop + cpu costs: strictly more than 50us.
        assert!(log[0].0 > Time::ZERO + Dur::micros(60));
        assert!(log[0].0 < Time::ZERO + Dur::micros(200));
    }

    #[test]
    fn udp_is_fifo_per_sender() {
        let (mut sim, a, b, log) = two_nodes();
        sim.with_ctx(a, |ctx| {
            for i in 0..10 {
                ctx.udp_send(b, Note("m", i), 8000);
            }
        });
        sim.run_to_idle();
        let seen: Vec<u32> = log.lock().unwrap().iter().map(|e| e.2).collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn multicast_reaches_all_subscribers_except_sender() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        let c = sim.add_node(Box::new(Recorder { log: log.clone() }));
        let g = sim.add_group();
        sim.subscribe(a, g);
        sim.subscribe(b, g);
        sim.subscribe(c, g);
        sim.with_ctx(a, |ctx| ctx.mcast(g, Note("mc", 0), 512));
        sim.run_to_idle();
        assert_eq!(log.lock().unwrap().len(), 2);
    }

    #[test]
    fn sender_bandwidth_is_divided_for_unicast_not_multicast() {
        // 100 packets of 8 KB to 4 receivers: unicast serializes 400 packets
        // on the uplink; multicast only 100.
        let mk = || {
            let mut sim = Sim::new(SimConfig::default());
            let s = sim.add_node(Box::new(Quiet));
            let rs: Vec<NodeId> = (0..4).map(|_| sim.add_node(Box::new(Quiet))).collect();
            (sim, s, rs)
        };
        let (mut uni, s, rs) = mk();
        uni.with_ctx(s, |ctx| {
            for _ in 0..100 {
                for &r in &rs {
                    ctx.udp_send(r, Note("u", 0), 8192);
                }
            }
        });
        uni.run_to_idle();
        let uni_done = uni.now();

        let (mut mc, s, rs) = mk();
        let g = mc.add_group();
        for &r in &rs {
            mc.subscribe(r, g);
        }
        mc.with_ctx(s, |ctx| {
            for _ in 0..100 {
                ctx.mcast(g, Note("m", 0), 8192);
            }
        });
        mc.run_to_idle();
        let mc_done = mc.now();
        assert!(
            uni_done.as_nanos() > 3 * mc_done.as_nanos(),
            "unicast {uni_done:?} vs multicast {mc_done:?}"
        );
    }

    #[test]
    fn socket_buffer_overflow_drops() {
        // A receiver whose application burns CPU on every message drains
        // its socket buffer slower than the wire fills it.
        struct Slow;
        impl Actor for Slow {
            fn on_message(&mut self, _env: &Envelope, ctx: &mut Ctx) {
                ctx.charge_cpu(0, Dur::micros(500));
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Slow));
        sim.set_udp_socket_buffer(b, 64 * 1024);
        sim.with_ctx(a, |ctx| {
            for i in 0..100 {
                ctx.udp_send(b, Note("x", i), 8192);
            }
        });
        sim.run_to_idle();
        assert!(sim.metrics().counter(b, "net.socket_drop") > 0);
        assert!(sim.metrics().counter(b, "net.recv_pkts") > 0);
    }

    #[test]
    fn switch_port_buffer_drops_on_contention() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut cfg = SimConfig::default();
        cfg.switch_port_buffer = 64 * 1024;
        let mut sim = Sim::new(cfg);
        let senders: Vec<NodeId> = (0..4).map(|_| sim.add_node(Box::new(Quiet))).collect();
        let dst = sim.add_node(Box::new(Recorder { log: log.clone() }));
        // Four senders each blast 2 MB simultaneously at wire speed into one
        // downlink: instantaneous demand 4x the drain rate.
        for &s in &senders {
            sim.with_ctx(s, |ctx| {
                for i in 0..256 {
                    ctx.udp_send(dst, Note("burst", i), 8192);
                }
            });
        }
        sim.run_to_idle();
        assert!(sim.metrics().counter(dst, "net.switch_drop") > 0);
    }

    #[test]
    fn tcp_never_drops_and_stays_ordered() {
        let mut cfg = SimConfig::default();
        cfg.tcp_window_bytes = 64 * 1024; // small window forces queueing
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..200 {
                ctx.tcp_send(b, Note("t", i), 32 * 1024);
            }
        });
        sim.run_to_idle();
        let seen: Vec<u32> = log.lock().unwrap().iter().map(|e| e.2).collect();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn tcp_window_limits_throughput() {
        // Throughput with a tiny window must be far below wire speed.
        let run = |window: u32| -> f64 {
            let mut cfg = SimConfig::default();
            cfg.tcp_window_bytes = window;
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Sim::new(cfg);
            let a = sim.add_node(Box::new(Quiet));
            let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
            sim.with_ctx(a, |ctx| {
                for i in 0..500 {
                    ctx.tcp_send(b, Note("t", i), 32 * 1024);
                }
            });
            sim.run_to_idle();
            let bytes = sim.metrics().counter(b, "net.recv_bytes");
            crate::stats::mbps(bytes, sim.now() - Time::ZERO)
        };
        let slow = run(32 * 1024);
        let fast = run(8 * 1024 * 1024);
        assert!(fast > 2.0 * slow, "fast {fast} vs slow {slow}");
    }

    /// Regression (pre-fix: permanent stall): `tcp_pump` charged
    /// `in_flight` for segments the downlink then dropped at a crashed
    /// destination. No ack ever returned, so once the window filled the
    /// channel was wedged forever — traffic sent after the destination
    /// recovered was never delivered.
    #[test]
    fn tcp_channel_reset_on_crash_unsticks_window() {
        let mut cfg = SimConfig::default();
        cfg.tcp_window_bytes = 64 * 1024; // fills fast once acks stop
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..20 {
                ctx.tcp_send(b, Note("pre", i), 32 * 1024);
            }
        });
        // Crash b mid-stream: several segments are in flight, more queued.
        sim.run_until(Time::from_millis(2));
        sim.set_node_up(b, false);
        sim.run_until(Time::from_millis(10));
        sim.set_node_up(b, true);
        let before_restart = log.lock().unwrap().len();
        sim.with_ctx(a, |ctx| {
            for i in 0..5 {
                ctx.tcp_send(b, Note("post", i), 32 * 1024);
            }
        });
        sim.run_to_idle();
        let post: Vec<u32> = log.lock().unwrap()[before_restart..]
            .iter()
            .filter(|e| e.1 == "post")
            .map(|e| e.2)
            .collect();
        assert_eq!(post, (0..5).collect::<Vec<_>>(), "post-recovery traffic must flow");
        assert!(
            sim.metrics().counter(a, "net.tcp_reset_bytes") > 0,
            "lost segments are accounted at the sender"
        );
    }

    /// Acks that were in flight when the destination crashed carry the
    /// old channel epoch and must be discarded, not subtracted from the
    /// reset channel's window accounting.
    #[test]
    fn tcp_stale_acks_across_crash_are_dropped() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..8 {
                ctx.tcp_send(b, Note("s", i), 8 * 1024);
            }
        });
        // Step until the first delivery lands; its ack trails one-way
        // latency behind, so crashing now leaves it in flight.
        let mut t = Dur::micros(10);
        while log.lock().unwrap().is_empty() {
            sim.run_until(Time::ZERO + t);
            t += Dur::micros(10);
            assert!(t < Dur::millis(10), "first delivery never happened");
        }
        sim.set_node_up(b, false);
        sim.run_to_idle();
        assert!(
            sim.metrics().counter(a, "net.tcp_stale_ack") > 0,
            "in-flight acks from before the reset are counted as stale"
        );
    }

    #[test]
    fn timers_fire_in_order() {
        struct T {
            log: Arc<Mutex<Vec<u64>>>,
        }
        impl Actor for T {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(Dur::millis(3), TimerToken(3));
                ctx.set_timer(Dur::millis(1), TimerToken(1));
                ctx.set_timer(Dur::millis(2), TimerToken(2));
            }
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, token: TimerToken, _ctx: &mut Ctx) {
                self.log.lock().unwrap().push(token.0);
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(Box::new(T { log: log.clone() }));
        sim.run_to_idle();
        assert_eq!(*log.lock().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn crashed_node_receives_nothing_until_recovery() {
        let (mut sim, a, b, log) = two_nodes();
        sim.set_node_up(b, false);
        sim.with_ctx(a, |ctx| ctx.udp_send(b, Note("lost", 0), 100));
        sim.run_until(Time::from_millis(10));
        assert!(log.lock().unwrap().is_empty());
        sim.set_node_up(b, true);
        sim.with_ctx(a, |ctx| ctx.udp_send(b, Note("ok", 1), 100));
        sim.run_to_idle();
        assert_eq!(log.lock().unwrap().len(), 1);
        assert_eq!(log.lock().unwrap()[0].1, "ok");
    }

    #[test]
    fn disk_writes_serialize_and_complete() {
        struct D {
            done: Arc<Mutex<Vec<Time>>>,
        }
        impl Actor for D {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.disk_write(32 * 1024, TimerToken(0));
                ctx.disk_write(32 * 1024, TimerToken(1));
            }
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
                self.done.lock().unwrap().push(ctx.now());
            }
        }
        let done = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(Box::new(D { done: done.clone() }));
        sim.run_to_idle();
        let d = done.lock().unwrap();
        assert_eq!(d.len(), 2);
        let per = SimConfig::default().disk_write_time(32 * 1024);
        assert_eq!(d[0], Time::ZERO + per);
        assert_eq!(d[1], Time::ZERO + per + per);
    }

    #[test]
    fn cpu_accounting_accumulates() {
        let (mut sim, a, _b, _log) = two_nodes();
        sim.with_ctx(a, |ctx| ctx.charge_cpu(1, Dur::millis(5)));
        assert_eq!(sim.cpu_busy(a, 1), Dur::millis(5));
        assert_eq!(sim.cpu_busy(a, 0), Dur::ZERO);
        assert_eq!(sim.cpu_busy_total(a), Dur::millis(5));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let (mut sim, a, b, log) = two_nodes();
            sim.with_ctx(a, |ctx| {
                for i in 0..50 {
                    ctx.udp_send(b, Note("d", i), 4000 + i * 13);
                }
            });
            sim.run_to_idle();
            let v: Vec<(u64, u32)> =
                log.lock().unwrap().iter().map(|e| (e.0.as_nanos(), e.2)).collect();
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_loss_drops_some() {
        let mut cfg = SimConfig::default();
        cfg.random_loss = 0.5;
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..200 {
                ctx.udp_send(b, Note("r", i), 100);
            }
        });
        sim.run_to_idle();
        let got = log.lock().unwrap().len();
        assert!(got > 50 && got < 150, "got {got}");
        assert!(sim.metrics().counter(b, "net.rand_drop") > 0);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(Box::new(Quiet));
        sim.run_until(Time::from_secs(3));
        assert_eq!(sim.now(), Time::from_secs(3));
    }

    /// Regression: after `run_until` parks the scan on a far-future
    /// timer, injecting a near timer (rewinding the scan) plus a timer
    /// that lands in the overflow heap must not let the sparse-scan jump
    /// skip the overflow event — that popped the far timer first and ran
    /// virtual time backwards.
    #[test]
    fn overflow_event_not_skipped_after_scan_rewind() {
        struct T {
            log: Arc<Mutex<Vec<(u64, Time)>>>,
        }
        impl Actor for T {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
                self.log.lock().unwrap().push((token.0, ctx.now()));
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(T { log: log.clone() }));
        sim.with_ctx(n, |ctx| ctx.set_timer(Dur::millis(4100), TimerToken(1)));
        // Park the scan position at the far timer's slot.
        sim.run_until(Time::from_millis(10));
        // Rewind with a near timer; the 400 ms timer is > one calendar
        // year past the rewound position, so it parks in overflow.
        sim.with_ctx(n, |ctx| {
            ctx.set_timer(Dur::millis(1), TimerToken(2));
            ctx.set_timer(Dur::millis(400), TimerToken(3));
        });
        sim.run_to_idle();
        let got = log.lock().unwrap().clone();
        assert_eq!(got.len(), 3);
        assert_eq!(got.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![2, 3, 1]);
        // Virtual time must be non-decreasing across pops.
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "time ran backwards: {got:?}");
    }

    /// Regression (behavioral, survives the sorted-bucket queue rewrite):
    /// rewinding the scan with driver-injected near work while a dense
    /// same-timestamp burst waits at a far slot must pop everything in
    /// non-decreasing virtual time.
    #[test]
    fn co_located_burst_survives_scan_rewind() {
        struct T {
            log: Arc<Mutex<Vec<(u64, Time)>>>,
        }
        impl Actor for T {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
                self.log.lock().unwrap().push((token.0, ctx.now()));
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(T { log: log.clone() }));
        // A co-located burst at 30 ms.
        sim.with_ctx(n, |ctx| {
            for i in 0..40u64 {
                ctx.set_timer(Dur::millis(30), TimerToken(1000 + i));
            }
        });
        // Park the scan on the burst's slot, then rewind with a nearer
        // burst plus a single timer between the two.
        sim.run_until(Time::from_millis(1));
        sim.with_ctx(n, |ctx| {
            for i in 0..33u64 {
                ctx.set_timer(Dur::millis(1), TimerToken(i)); // fires at 2 ms
            }
            ctx.set_timer(Dur::millis(9), TimerToken(500)); // fires at 10 ms
        });
        sim.run_to_idle();
        let got = log.lock().unwrap().clone();
        assert_eq!(got.len(), 74);
        assert!(
            got.windows(2).all(|w| w[0].1 <= w[1].1),
            "time ran backwards: {:?}",
            got.iter().map(|&(t, at)| (t, at)).collect::<Vec<_>>()
        );
        // The 10 ms timer must fire before every 30 ms burst timer.
        let pos_500 = got.iter().position(|&(t, _)| t == 500).expect("10ms timer fired");
        let first_burst = got.iter().position(|&(t, _)| t >= 1000).expect("burst fired");
        assert!(pos_500 < first_burst, "far burst popped before nearer timer");
    }

    /// Regression: a rewind of more than one calendar year below a
    /// dense far burst must leave the sparse-scan jump able to find
    /// every remaining event.
    #[test]
    fn sparse_jump_survives_far_burst() {
        struct T;
        impl Actor for T {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
        }
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(T));
        sim.with_ctx(n, |ctx| {
            for i in 0..40u64 {
                ctx.set_timer(Dur::millis(40), TimerToken(i));
            }
        });
        sim.run_until(Time::from_millis(1));
        // Rewind > one year (33.6 ms) below the burst.
        sim.with_ctx(n, |ctx| ctx.set_timer(Dur::millis(1), TimerToken(99)));
        sim.run_to_idle();
        assert_eq!(sim.now(), Time::from_millis(40));
    }

    /// The interleaving named by the PR-5 issue, end to end through the
    /// public API: a parked scan at a dense far burst, a past-time push
    /// (rewind), then a *second* dense burst in the rewound region.
    /// Every event must fire, in non-decreasing virtual time.
    #[test]
    fn rewind_then_second_burst_pops_cleanly() {
        struct T {
            log: Arc<Mutex<Vec<(u64, Time)>>>,
        }
        impl Actor for T {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
            fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
                self.log.lock().unwrap().push((token.0, ctx.now()));
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(T { log: log.clone() }));
        // Dense burst at 30 ms; the scan parks on its slot.
        sim.with_ctx(n, |ctx| {
            for i in 0..40u64 {
                ctx.set_timer(Dur::millis(30), TimerToken(2000 + i));
            }
        });
        sim.run_until(Time::from_millis(1));
        // Past-time pushes: a second dense burst at 2 ms (rewind) plus
        // one lone timer between the two bursts.
        sim.with_ctx(n, |ctx| {
            for i in 0..36u64 {
                ctx.set_timer(Dur::millis(1), TimerToken(i)); // fires at 2 ms
            }
            ctx.set_timer(Dur::millis(14), TimerToken(999)); // fires at 15 ms
        });
        sim.run_to_idle();
        let got = log.lock().unwrap().clone();
        assert_eq!(got.len(), 77);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "time ran backwards: {got:?}");
        let pos_999 = got.iter().position(|&(t, _)| t == 999).expect("15 ms timer fired");
        let first_far = got.iter().position(|&(t, _)| t >= 2000).expect("30 ms burst fired");
        assert!(pos_999 < first_far, "30 ms burst replayed ahead of the 15 ms timer");
    }

    /// Regression (PR 5, fails pre-fix): TCP segments that were in
    /// flight across their channel's crash-reset are *orphans* — their
    /// bytes were already written off at the sender — and must not
    /// fabricate acks on delivery. Pre-fix, each such delivery pushed an
    /// ack stamped with the *new* channel epoch; the reset sender
    /// accepted it (counting `net.tcp_stale_ack` as the window math
    /// misfired) and the orphan skewed the channel's delivery-seq
    /// stream. Post-fix the segments are counted under
    /// `net.tcp_orphan_seg` on the receiver and no ack event exists.
    #[test]
    fn orphan_tcp_segments_after_sender_crash_get_no_ack() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.with_ctx(a, |ctx| {
            for i in 0..8 {
                ctx.tcp_send(b, Note("s", i), 8 * 1024);
            }
        });
        // The whole burst fits the window, so every segment is in
        // flight immediately; the first delivery needs >100 us of
        // uplink serialization + latency + receive processing.
        sim.run_until(Time::ZERO + Dur::micros(40));
        assert!(log.lock().unwrap().is_empty(), "no segment delivered before the crash");
        sim.set_node_up(a, false); // resets a->b: bytes written off, epoch bumped
        sim.run_to_idle();
        let delivered = log.lock().unwrap().len() as u64;
        assert_eq!(delivered, 8, "in-flight segments still reach the live receiver");
        assert_eq!(
            sim.metrics().counter(b, "net.tcp_orphan_seg"),
            delivered,
            "every cross-reset segment is accounted as an orphan"
        );
        assert_eq!(
            sim.metrics().counter(a, "net.tcp_stale_ack"),
            0,
            "no fabricated ack reaches the reset channel"
        );
        assert!(
            sim.metrics().counter(a, "net.tcp_reset_bytes") > 0,
            "the crash reset wrote the in-flight bytes off"
        );
    }

    // ---- shard layer ----

    /// Full observable state of a finished run, for partition-
    /// equivalence checks: delivery log, event count, and every non-zero
    /// counter in deterministic order.
    type Observed = (Vec<(u64, &'static str, u32)>, u64, Vec<(usize, String, u64)>);

    /// A mixed workload (UDP bursts, multicast fan-in, TCP streams,
    /// timers, a crash) on 4 nodes, run under `partition`.
    fn mixed_workload(partition: Option<Partition>) -> Observed {
        struct Echo {
            log: Arc<Mutex<Vec<(Time, &'static str, u32)>>>,
        }
        impl Actor for Echo {
            fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
                let n = env.payload.downcast_ref::<Note>().expect("Note");
                self.log.lock().unwrap().push((ctx.now(), n.0, n.1));
                // Reply to some traffic so cross-shard paths run both ways.
                if n.1.is_multiple_of(3) && n.0 == "u" {
                    ctx.udp_send(env.src, Note("r", n.1), 256);
                }
            }
            fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
                self.log.lock().unwrap().push((ctx.now(), "t", token.0 as u32));
                if token.0 < 3 {
                    ctx.set_timer(Dur::millis(1), TimerToken(token.0 + 1));
                }
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut cfg = SimConfig::default();
        cfg.random_loss = 0.01; // exercise the shared rng path
        let mut sim = Sim::new(cfg);
        let nodes: Vec<NodeId> =
            (0..4).map(|_| sim.add_node(Box::new(Echo { log: log.clone() }))).collect();
        let g = sim.add_group();
        for &n in &nodes {
            sim.subscribe(n, g);
        }
        if let Some(p) = partition {
            sim.set_partition(p);
        }
        sim.with_ctx(nodes[0], |ctx| {
            for i in 0..40 {
                ctx.udp_send(nodes[(i as usize % 3) + 1], Note("u", i), 1000 + i * 7);
            }
            ctx.mcast(g, Note("m", 0), 4096);
            ctx.set_timer(Dur::micros(100), TimerToken(0));
        });
        sim.with_ctx(nodes[1], |ctx| {
            for i in 0..30 {
                ctx.tcp_send(nodes[2], Note("c", i), 8 * 1024);
            }
        });
        sim.run_until(Time::from_millis(2));
        sim.set_node_up(nodes[2], false);
        sim.run_until(Time::from_millis(4));
        sim.set_node_up(nodes[2], true);
        sim.with_ctx(nodes[1], |ctx| {
            for i in 100..110 {
                ctx.tcp_send(nodes[2], Note("c", i), 8 * 1024);
            }
        });
        sim.run_to_idle();
        let deliveries =
            log.lock().unwrap().iter().map(|e| (e.0.as_nanos(), e.1, e.2)).collect::<Vec<_>>();
        let mut counters = Vec::new();
        sim.metrics().for_each_counter(|n, name, v| counters.push((n.0, name.to_string(), v)));
        (deliveries, sim.events_processed(), counters)
    }

    /// The tentpole's semantics-preservation claim: any partition yields
    /// the byte-identical trace of the identity partition — same
    /// delivery log, same event count, same counters.
    #[test]
    fn partitions_reproduce_identity_trace() {
        let identity = mixed_workload(None);
        for k in [1usize, 2, 3, 4] {
            let sharded = mixed_workload(Some(Partition::modulo(4, k)));
            assert_eq!(sharded.0, identity.0, "delivery trace diverged under k={k}");
            assert_eq!(sharded.1, identity.1, "event count diverged under k={k}");
            assert_eq!(sharded.2, identity.2, "counters diverged under k={k}");
        }
    }

    #[test]
    fn cross_shard_traffic_uses_handoff_inboxes() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder { log: log.clone() }));
        sim.set_partition(Partition::modulo(2, 2));
        sim.with_ctx(a, |ctx| {
            for i in 0..10 {
                ctx.udp_send(b, Note("x", i), 1000);
            }
            ctx.tcp_send(b, Note("t", 99), 2000);
        });
        sim.run_to_idle();
        assert_eq!(log.lock().unwrap().len(), 11);
        // Every datagram crossed a → b, and the TCP ack crossed back.
        assert!(sim.cross_shard_events() >= 12, "got {}", sim.cross_shard_events());
    }

    #[test]
    fn safe_window_reflects_partition() {
        let mut sim = Sim::new(SimConfig::default());
        let _ = sim.add_node(Box::new(Quiet));
        let _ = sim.add_node(Box::new(Quiet));
        // One shard: nothing to synchronize with.
        assert_eq!(sim.safe_window(), Dur::MAX);
        sim.set_partition(Partition::modulo(2, 2));
        // Two shards: bounded by the minimum link latency.
        assert_eq!(sim.safe_window(), sim.config().one_way_latency);
        assert_eq!(sim.lookahead(0, 1), sim.config().one_way_latency);
        assert_eq!(sim.lookahead(0, 0), Dur::MAX);
        assert_eq!(sim.partition().shards(), 2);
    }

    #[test]
    #[should_panic(expected = "before any event")]
    fn set_partition_after_events_panics() {
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(Quiet));
        sim.with_ctx(n, |ctx| ctx.set_timer(Dur::millis(1), TimerToken(0)));
        sim.set_partition(Partition::modulo(1, 1));
    }

    /// The footgun panic must *name* the first-scheduled event so the
    /// user can see which deploy line beat their `set_partition` call.
    #[test]
    #[should_panic(expected = "Timer")]
    fn set_partition_panic_names_first_event() {
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(Quiet));
        sim.with_ctx(n, |ctx| ctx.set_timer(Dur::millis(1), TimerToken(7)));
        sim.set_partition(Partition::modulo(1, 1));
    }

    /// Same, for the datagram path: the descriptor shows src -> dst.
    #[test]
    #[should_panic(expected = "HostArrive { n0 -> n1 }")]
    fn set_partition_panic_names_first_arrival() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Quiet));
        sim.with_ctx(a, |ctx| ctx.udp_send(b, "x".to_string(), 64));
        sim.set_partition(Partition::modulo(2, 2));
    }

    /// The panic-free way in: `with_partition` installs the partition
    /// before any actor can schedule.
    #[test]
    fn with_partition_installs_before_deploy() {
        let mut sim = Sim::with_partition(SimConfig::default(), Partition::modulo(0, 3));
        let n = sim.add_node(Box::new(Quiet));
        sim.with_ctx(n, |ctx| ctx.set_timer(Dur::millis(1), TimerToken(0)));
        sim.run_until(Time::from_millis(2));
        assert_eq!(sim.partition().shards(), 3);
        assert!(sim.events_processed() >= 1);
    }
}
