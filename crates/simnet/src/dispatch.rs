//! Dispatch layer: the event vocabulary, the round-robin shard executor,
//! and the actor run loop (including batched delivery coalescing).
//!
//! # Layer boundary
//!
//! This module owns [`EventKind`], the per-event handlers that bridge
//! engine state to actor callbacks (`host_arrive`, `deliver_prework`),
//! and the [`Sim`] run loop (`run_until` / `step` / `deliver_run`). It
//! is the only layer that touches actors.
//!
//! # Shard-safety invariants
//!
//! Every `step` drains the cross-shard inboxes, then merges the
//! per-shard queue minima in fixed shard order and dispatches the
//! globally smallest `(time, seq)` key — reproducing the single-queue
//! pop sequence exactly for any partition (see [`crate::shard`]).
//! [`EnvId`]s are *shard-local* slab indices: handlers receive the
//! owning shard index from the merge and must not resolve an `EnvId`
//! against any other shard. Delivery-run coalescing peeks only the
//! destination's shard, guarded by
//! [`SimInner::earlier_event_elsewhere`] so a run never swallows an
//! event another shard should have dispatched first. Cross-shard events
//! buffered in inboxes during a run are provably never coalescing
//! candidates: they carry sequence numbers allocated *after* the run's
//! candidate, so even at an identical timestamp the single-queue engine
//! would order them behind it.

use crate::ids::{NodeId, TimerToken};
use crate::sim::{Ctx, Envelope, Sim, SimInner, Transport};
use crate::stats::mid;
use crate::time::Time;

/// Index of a queued [`Envelope`] in its shard's envelope slab. Only
/// this 4-byte handle moves between the `HostArrive` and `Deliver`
/// queue entries. Shard-local: meaningful only together with the shard
/// index the executor's merge supplies.
pub(crate) type EnvId = u32;

#[derive(Debug)]
pub(crate) enum EventKind {
    /// Datagram reached the destination host NIC (after its downlink).
    HostArrive(EnvId),
    /// Datagram finished receive processing; hand to the actor.
    Deliver(EnvId),
    /// Actor timer.
    Timer { node: NodeId, token: TimerToken },
    /// TCP acknowledgement returned to the sender; frees window space.
    /// `seq` is the channel's delivery sequence number, so duplicate or
    /// late acks are detected instead of silently skewing `in_flight`;
    /// `epoch` is the channel incarnation that sent the segment, so acks
    /// from before a crash-reset cannot corrupt the reset channel.
    TcpAck { src: NodeId, dst: NodeId, bytes: u32, seq: u64, epoch: u32 },
    /// A disk write issued by `node` completed.
    DiskDone { node: NodeId, token: TimerToken },
    /// Fast mode only: switch egress toward `id`'s destination,
    /// relocated from the sender's shard to the destination's so the
    /// downlink port clock has a single writer. Scheduled at
    /// `arrive + one_way_latency` (the earliest instant that respects
    /// the lookahead bound); the handler reconstructs the true
    /// switch-arrival instant from `arrive`, applies the backlog check
    /// and port-clock advance there, and files `HostArrive` (plus a
    /// duplicate copy when `dup`). `hold` is the reorder hold drawn at
    /// the sender. Never created in determinism mode.
    SwitchArrive { id: EnvId, arrive: Time, hold: crate::time::Dur, dup: bool },
}

impl SimInner {
    /// Datagram reached the destination host NIC: socket-buffer check,
    /// receive-cost charge, and the push of the `Deliver` completion.
    /// `sh` is the destination's shard (where the envelope is interned);
    /// everything this handler touches lives there. The envelope body
    /// never moves — only its slab index travels into the `Deliver`
    /// event. Kept `#[inline]` (with `deliver_prework`) so the UDP
    /// datagram sequence compiles to one straight-line path through the
    /// run loop, per the `simcore` criterion group.
    #[inline]
    pub(crate) fn host_arrive(&mut self, sh: usize, id: EnvId) {
        let env = self.shards[sh].envs.get(id);
        let (dst, wire_bytes, transport) = (env.dst, env.wire_bytes, env.transport);
        if !self.node(dst).up {
            drop(self.shards[sh].envs.take(id));
            return;
        }
        if transport != Transport::Tcp {
            let n = self.node(dst);
            let cap = if n.udp_socket_buffer > 0 {
                n.udp_socket_buffer
            } else {
                self.config.udp_socket_buffer
            };
            if n.socket_used + wire_bytes as u64 > cap as u64 {
                self.metrics.add_id(dst, mid::NET_SOCKET_DROP, 1);
                self.metrics.add_id(dst, mid::NET_SOCKET_DROP_BYTES, wire_bytes as u64);
                drop(self.shards[sh].envs.take(id));
                return;
            }
            self.node_mut(dst).socket_used += wire_bytes as u64;
        }
        let cost = self.costs_for(sh, wire_bytes).recv;
        let now = self.now;
        let done = self.charge_core(dst, 0, now, cost);
        let seq = self.next_seq();
        self.shards[sh].queue.push(done, seq, EventKind::Deliver(id));
    }

    /// Per-envelope engine work of a delivery — socket drain, receive
    /// metrics, TCP ack generation — run in exact pop order *before* the
    /// actor sees the envelope (or its batch slice). `sh` is the
    /// destination's shard; the ack (if any) targets the *sender's*
    /// shard and is routed through the handoff inbox when that differs.
    /// Returns whether the envelope should reach the actor (`false`:
    /// the node is down).
    #[inline]
    pub(crate) fn deliver_prework(&mut self, sh: usize, env: &Envelope) -> bool {
        let dst = env.dst;
        if env.transport != Transport::Tcp {
            let n = self.node_mut(dst);
            n.socket_used = n.socket_used.saturating_sub(env.wire_bytes as u64);
        }
        if !self.node(dst).up {
            return false;
        }
        self.metrics.add_id(dst, mid::NET_RECV_BYTES, env.wire_bytes as u64);
        self.metrics.add_id(dst, mid::NET_RECV_PKTS, 1);
        if self.probe_on(crate::probe::category::NET) {
            let arg = ((env.src.0 as u64) << 32) | env.wire_bytes as u64;
            self.probe_record(dst, crate::probe::code::NET_RECV, arg);
        }
        if env.transport == Transport::Tcp {
            let slot = match self.tcp_rx_slot(env.src, dst) {
                Some(slot) => Some(slot),
                // Fast mode creates tx halves sender-side only (the rx
                // arena belongs to another worker); the rx half
                // materializes here, at first delivery on the
                // destination's own shard, paired to the epoch that
                // transmitted the segment.
                None if self.exec_fast => Some(self.tcp_rx_create(env.src, dst, env.tcp_epoch)),
                None => None,
            };
            match slot {
                Some(slot) => {
                    let ch = &mut self.shards[sh].tcp_rx[slot];
                    if env.tcp_epoch == ch.epoch {
                        let seg = ch.delivered_segs;
                        ch.delivered_segs += 1;
                        let epoch = ch.epoch;
                        let ack_at = self.now + self.config.one_way_latency;
                        let (src, bytes) = (env.src, env.wire_bytes);
                        let ack = EventKind::TcpAck { src, dst, bytes, seq: seg, epoch };
                        self.push_routed(sh, src, ack_at, ack);
                    } else {
                        // Orphan segment: it was in flight across a
                        // crash-reset of its channel, so its bytes were
                        // already written off at the sender. Fabricating
                        // an ack here corrupts the reset channel's seq
                        // stream and costs an event; the data still
                        // reaches the actor, like a segment that raced a
                        // RST.
                        self.metrics.add_id(dst, mid::NET_TCP_ORPHAN_SEG, 1);
                    }
                }
                None => {
                    // No channel was ever created for this pair — only
                    // reachable through engine misuse today, but the
                    // same orphan accounting keeps it visible instead of
                    // acking a channel that does not exist.
                    self.metrics.add_id(dst, mid::NET_TCP_ORPHAN_SEG, 1);
                }
            }
        }
        true
    }
}

impl Sim {
    /// Runs the simulation until `deadline` (inclusive). Events scheduled
    /// after the deadline remain queued; virtual time advances to the
    /// deadline even if the queue drains first.
    pub fn run_until(&mut self, deadline: Time) {
        self.ensure_started();
        if self.threaded_eligible() {
            self.run_threaded(deadline);
        } else {
            while self.step(deadline) {}
        }
        self.inner.now = self.inner.now.max(deadline);
    }

    /// Runs until the event queue is empty (useful for tests).
    pub fn run_to_idle(&mut self) {
        self.ensure_started();
        while self.step(Time::MAX) {}
    }

    /// Pops and dispatches the next due event (plus, for deliveries, the
    /// rest of its same-instant run). Returns `false` once nothing at or
    /// before `deadline` remains. The inbox drain precedes the merge, so
    /// handed-off events are never invisible to the deadline check.
    #[inline]
    fn step(&mut self, deadline: Time) -> bool {
        self.inner.drain_inboxes();
        let Some((sh, pos)) = self.inner.merge_min() else { return false };
        if pos.time > deadline {
            return false;
        }
        let (time, kind) = self.inner.shards[sh].queue.take_at(pos);
        self.inner.now = time;
        self.inner.events += 1;
        self.dispatch(sh, time, kind);
        true
    }

    /// Collects the maximal run of consecutive same-instant `Deliver`
    /// events for one destination into the reusable inbox and hands it
    /// to the actor in a single callback. Engine prework runs per
    /// envelope in exact pop order first; see the `sim` module docs
    /// ("Batched delivery dispatch") for the precise equivalence to
    /// unbatched dispatch. `sh` is the destination's shard: every
    /// `Deliver` for `dst` lives there, so probing that queue plus the
    /// `earlier_event_elsewhere` guard reproduces the single-queue
    /// run-break decisions exactly.
    fn deliver_run(&mut self, sh: usize, time: Time, first: EnvId) {
        let mut inbox = std::mem::take(&mut self.inbox);
        debug_assert!(inbox.is_empty());
        let env = self.inner.shards[sh].envs.take(first);
        let dst = env.dst;
        if self.inner.deliver_prework(sh, &env) {
            inbox.push(env);
        }
        while let Some(pos) = self.inner.shards[sh].queue.find_same_time(time) {
            let EventKind::Deliver(id) = *self.inner.shards[sh].queue.kind_at(pos) else { break };
            if self.inner.shards[sh].envs.get(id).dst != dst {
                break;
            }
            if self.inner.earlier_event_elsewhere(sh, time, pos.seq) {
                break;
            }
            let _ = self.inner.shards[sh].queue.take_at(pos);
            self.inner.events += 1;
            let env = self.inner.shards[sh].envs.take(id);
            if self.inner.deliver_prework(sh, &env) {
                inbox.push(env);
            }
        }
        if !inbox.is_empty() {
            self.inner.dispatches += 1;
            self.inner.dispatched_msgs += inbox.len() as u64;
            if let Some(mut actor) = self.actors[dst.0].take() {
                let mut ctx = Ctx::new(dst, &mut self.inner);
                if let [only] = inbox.as_slice() {
                    actor.on_message(only, &mut ctx);
                } else {
                    actor.on_batch(&inbox, &mut ctx);
                }
                self.actors[dst.0] = Some(actor);
            }
        }
        inbox.clear();
        self.inbox = inbox;
    }

    pub(crate) fn dispatch(&mut self, sh: usize, time: Time, kind: EventKind) {
        match kind {
            EventKind::HostArrive(id) => self.inner.host_arrive(sh, id),
            EventKind::Deliver(id) => self.deliver_run(sh, time, id),
            EventKind::Timer { node, token } => {
                if !self.inner.node(node).up {
                    return;
                }
                if self.inner.probe_on(crate::probe::category::HOST) {
                    self.inner.probe_record(node, crate::probe::code::HOST_TIMER, token.0);
                }
                if let Some(mut actor) = self.actors[node.0].take() {
                    let mut ctx = Ctx::new(node, &mut self.inner);
                    actor.on_timer(token, &mut ctx);
                    self.actors[node.0] = Some(actor);
                }
            }
            EventKind::TcpAck { src, dst, bytes, seq, epoch } => {
                // Executes on the sender's shard (`sh`), where the tx
                // half lives.
                debug_assert_eq!(sh, self.inner.shard_idx(src));
                if let Some(slot) = self.inner.tcp_tx_slot(src, dst) {
                    let ch = &mut self.inner.shards[sh].tcp_tx[slot];
                    if epoch != ch.epoch {
                        // Ack from before a crash-reset: the bytes it
                        // acknowledges were already written off.
                        self.inner.metrics.add_id(src, mid::NET_TCP_STALE_ACK, 1);
                        return;
                    }
                    if seq != ch.acked_segs {
                        // Duplicate or late ack: ignoring it keeps
                        // `in_flight` exact (subtracting again would
                        // drive it negative / stall the window).
                        self.inner.metrics.add_id(src, mid::NET_TCP_DUP_ACK, 1);
                        return;
                    }
                    ch.acked_segs += 1;
                    if ch.in_flight >= bytes {
                        ch.in_flight -= bytes;
                    } else {
                        // The segment crossed a crash-reset (it was in the
                        // receive pipeline when the node bounced): its
                        // bytes were already written off by the reset.
                        ch.in_flight = 0;
                        self.inner.metrics.add_id(src, mid::NET_TCP_STALE_ACK, 1);
                    }
                }
                self.inner.tcp_pump(src, dst);
            }
            EventKind::DiskDone { node, token } => {
                if !self.inner.node(node).up {
                    return;
                }
                if self.inner.probe_on(crate::probe::category::HOST) {
                    self.inner.probe_record(node, crate::probe::code::HOST_DISK, token.0);
                }
                if let Some(mut actor) = self.actors[node.0].take() {
                    let mut ctx = Ctx::new(node, &mut self.inner);
                    actor.on_timer(token, &mut ctx);
                    self.actors[node.0] = Some(actor);
                }
            }
            EventKind::SwitchArrive { id, arrive, hold, dup } => {
                self.inner.switch_arrive(sh, id, arrive, hold, dup);
            }
        }
    }

    pub(crate) fn start_actor(&mut self, node: NodeId) {
        if self.started[node.0] {
            return;
        }
        self.started[node.0] = true;
        if let Some(mut actor) = self.actors[node.0].take() {
            let mut ctx = Ctx::new(node, &mut self.inner);
            actor.on_start(&mut ctx);
            self.actors[node.0] = Some(actor);
        }
    }

    pub(crate) fn ensure_started(&mut self) {
        for i in 0..self.actors.len() {
            if self.inner.node(NodeId(i)).up {
                self.start_actor(NodeId(i));
            }
        }
    }
}
