//! Virtual time for the discrete-event simulation.
//!
//! The simulator measures time in integer nanoseconds since the start of the
//! run. Two newtypes keep instants and durations statically distinct:
//! [`Time`] (a point on the virtual clock) and [`Dur`] (a span).
//!
//! ```
//! use simnet::time::{Time, Dur};
//! let t = Time::ZERO + Dur::millis(2);
//! assert_eq!(t - Time::ZERO, Dur::micros(2_000));
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// A time later than any reachable simulation instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time `secs` seconds after simulation start.
    pub fn from_secs(secs: u64) -> Time {
        Time(secs * 1_000_000_000)
    }

    /// Creates a time `ms` milliseconds after simulation start.
    pub fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Whole nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    ///
    /// Use this only where `earlier > self` is a *legitimate* state —
    /// backlog math against a busy-until clock that may sit in the
    /// future (switch-port buffers, disk queues, timer deadlines that
    /// already passed). Where "earlier really is earlier" is an engine
    /// invariant — delivery latency, catch-up duration, any
    /// latency-recording site — use [`Time::since`], which refuses to
    /// mask a clock inversion as a zero-length sample.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Duration elapsed since `earlier`, debug-asserting that `earlier`
    /// is not in the future. A violation means virtual time ran
    /// backwards between two causally ordered points — an engine
    /// ordering bug that `saturating_since` would silently clamp to a
    /// zero-length latency sample. Release builds saturate.
    #[track_caller]
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(
            self >= earlier,
            "clock inversion: now {self:?} is before `earlier` {earlier:?}"
        );
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);
    /// A span longer than any reachable simulation interval — the
    /// "unbounded" value for lookahead windows ([`crate::sim::Sim::safe_window`]).
    pub const MAX: Dur = Dur(u64::MAX);

    /// A span of `n` nanoseconds.
    pub const fn nanos(n: u64) -> Dur {
        Dur(n)
    }

    /// A span of `n` microseconds.
    pub const fn micros(n: u64) -> Dur {
        Dur(n * 1_000)
    }

    /// A span of `n` milliseconds.
    pub const fn millis(n: u64) -> Dur {
        Dur(n * 1_000_000)
    }

    /// A span of `n` seconds.
    pub const fn secs(n: u64) -> Dur {
        Dur(n * 1_000_000_000)
    }

    /// A span from fractional seconds (rounds to whole nanoseconds).
    pub fn from_secs_f64(secs: f64) -> Dur {
        Dur((secs * 1e9).round() as u64)
    }

    /// Whole nanoseconds in this span.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds in this span.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds in this span.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0 as f64 / 1e3)
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_secs(1) + Dur::millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - Time::from_secs(1), Dur::millis(500));
    }

    #[test]
    fn dur_constructors_agree() {
        assert_eq!(Dur::secs(1), Dur::millis(1000));
        assert_eq!(Dur::millis(1), Dur::micros(1000));
        assert_eq!(Dur::micros(1), Dur::nanos(1000));
    }

    #[test]
    fn dur_scaling() {
        assert_eq!(Dur::micros(3) * 4, Dur::micros(12));
        assert_eq!(Dur::micros(12) / 4, Dur::micros(3));
    }

    #[test]
    fn max_and_saturation() {
        assert_eq!(Time::from_secs(2).max(Time::from_secs(3)), Time::from_secs(3));
        assert_eq!(Time::from_secs(1).saturating_since(Time::from_secs(2)), Dur::ZERO);
        assert_eq!(Dur::micros(1).saturating_sub(Dur::micros(2)), Dur::ZERO);
    }

    #[test]
    fn since_measures_ordered_spans() {
        let t0 = Time::from_millis(3);
        let t1 = Time::from_millis(5);
        assert_eq!(t1.since(t0), Dur::millis(2));
        assert_eq!(t1.since(t1), Dur::ZERO);
    }

    /// Regression (PR 5): latency-recording sites used to clamp clock
    /// inversions to zero via `saturating_since`, hiding engine
    /// ordering bugs inside plausible-looking histograms. `since` must
    /// refuse the inversion loudly in debug builds.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "clock inversion")]
    fn since_panics_on_clock_inversion_in_debug() {
        let _ = Time::from_secs(1).since(Time::from_secs(2));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Dur::from_secs_f64(0.000001), Dur::micros(1));
        assert_eq!(Dur::from_secs_f64(1.5), Dur::millis(1500));
    }
}
