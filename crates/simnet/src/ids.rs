//! Identifier newtypes shared across the simulator.

use std::fmt;

/// Identifies a node (machine hosting one process) in the simulated cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

/// Identifies an ip-multicast group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub usize);

/// Opaque token passed back to an actor when one of its timers fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct TimerToken(pub u64);

impl NodeId {
    /// The index of this node within the cluster.
    pub fn index(self) -> usize {
        self.0
    }
}

impl GroupId {
    /// The index of this group.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{}", GroupId(1)), "g1");
    }
}
