//! Shard layer: partitioned engine state and the conservative-PDES
//! scaffold (partition map, cross-shard handoff, per-shard-pair
//! lookahead).
//!
//! # Layer boundary
//!
//! This module owns [`Partition`] (the node → shard map), [`ShardState`]
//! (the arena of every per-node engine structure), the
//! [`CrossShardEvent`] handoff inboxes, and the deterministic merge the
//! run loop uses to pick the next event across shards. The `net`,
//! `host`, and `dispatch` layers operate *on* shard state; only this
//! module decides where state lives.
//!
//! # What is sharded and what is not
//!
//! Each shard owns, for exactly the nodes assigned to it: the event
//! queue, the envelope slab, the TCP channel halves
//! ([`crate::net::TcpTx`] at the sender, [`crate::net::TcpRx`] at the
//! receiver), a replica of the pure [`crate::net::CostCache`], and —
//! via [`crate::stats::Metrics`] row banks — its nodes' counter rows.
//! Payload arena allocation ([`crate::payload`]) is already
//! `thread_local`, so a one-thread-per-shard executor needs no change
//! there.
//!
//! The [`crate::host::Node`] resource clocks stay in one flat arena
//! indexed directly by node id (`SimInner::nodes`): they are the
//! hottest loads in the engine, and a `node → (shard, idx)` indirection
//! there costs measurable throughput. Ownership is still exclusive —
//! every event that touches a node's clocks runs on the node's own
//! shard (the host layer's shard-safety invariant) — so a threaded
//! executor can hand each worker disjoint slices of the flat arena
//! without the structs physically moving.
//!
//! Randomness is sharded too: each node has its own RNG stream, seeded
//! deterministically from `(config.seed, node id)` and stored in the
//! owning shard's arena ([`ShardState::rngs`]). Fault-injection draws
//! (loss/reorder/duplication) always come from the *source* node's
//! stream — the draw executes in the sender's context, so a worker
//! thread never touches a foreign shard's RNG — and draw sequences are
//! a function of each node's own send order, independent of the
//! partition. Streams are derived lazily by a pure splitmix hash, so a
//! re-partition just clears the arenas and the same streams re-derive
//! on first use.
//!
//! Deliberately engine-global (documented for the threaded follow-up):
//! the group membership tables (read-only after deploy), the
//! multicast scratch buffer, the dense TCP slot indexes (read-mostly),
//! the link-cut set (control-plane writes only), and the
//! `now`/`seq`/`events` counters.
//!
//! # Determinism under any partition
//!
//! `seq` is a single monotone counter across all shards, and every event
//! is keyed `(time, seq)`. The executor's merge
//! ([`SimInner::merge_min`]) always dispatches the globally smallest
//! key, scanning shards in fixed index order — so the dispatch sequence
//! is *identical to the single-queue engine's pop sequence for every
//! partition*, and golden traces are bit-identical under k = 1, 2, or
//! any other split. Cross-shard events are buffered in the destination
//! shard's [`ShardState::inbox`] and folded into its queue at the top of
//! the next step; they cannot be missed (the merge runs after the
//! drain) and cannot reorder (their `(time, seq)` keys are unchanged by
//! the detour).
//!
//! # Lookahead
//!
//! Every cross-shard event models a network traversal and therefore
//! carries a timestamp at least `one_way_latency` after the instant it
//! was generated (`HostArrive` adds downlink serialization on top; the
//! TCP ack path is exactly `now + one_way_latency`). The per-shard-pair
//! lookahead matrix is computed from that bound at deploy time, and
//! [`Sim::safe_window`] exposes its minimum: the threaded executor runs
//! each shard independently for up to `safe_window()` of virtual time
//! between synchronization barriers without risking a causality
//! violation. Handoff drains assert the bound in debug builds
//! ([`SimInner::assert_lookahead`]), so a safe-window violation fails at
//! the source instead of surfacing as trace divergence.
//!
//! # Executor modes
//!
//! Two executors share this scaffold, selected by
//! [`crate::ExecMode`](crate::threaded::ExecMode) via
//! [`Sim::set_exec_mode`](crate::sim::Sim) + `Sim::set_threads`:
//!
//! **Determinism** (the default) is the serial global-min merge above.
//! Every event dispatches in global `(time, seq)` order on one thread,
//! so golden traces, per-node RNG draw sequences, and counter checksums
//! are bit-identical under *any* partition and any configured thread
//! count (the thread count is simply ignored). This is the mode CI
//! gates on. It is also the only mode whose trace is comparable across
//! partitions: actors that share state across nodes (test recorders,
//! checkers with an `Arc<Mutex<..>>` log) observe the full global
//! interleaving, which no parallel schedule can reproduce exactly.
//!
//! **Fast** ([`crate::threaded::ThreadedExecutor`]) runs one worker per
//! group of shards, each advancing its shards' queues up to the current
//! conservative window `[gmin, gmin + safe_window())` between two-phase
//! barriers. It guarantees: (a) full engine accuracy — every per-node
//! resource clock, RNG stream, TCP window, and metric total evolves by
//! the same rules as determinism mode; (b) reproducibility — the
//! schedule is a pure function of `(seed, partition)`, independent of
//! the thread count and of wall-clock timing (handoffs are sorted by
//! `(time, origin shard, origin seq)` at each barrier and re-sequenced
//! on the receiver); (c) monotone per-shard virtual time. It does *not*
//! guarantee the global cross-shard interleaving of determinism mode:
//! same-window events on different shards dispatch in wall-parallel,
//! and cross-shard egress contention at a destination's downlink is
//! resolved in switch-arrival order rather than global send order (see
//! `net.rs`, fast-path notes). Counter checksums therefore match
//! determinism mode only for workloads without cross-shard port
//! contention or random drops; traces are compared *within* fast mode
//! across thread counts instead.

use crate::dispatch::EventKind;
use crate::event_queue::{EventQueue, MinPos, Slab};
use crate::ids::NodeId;
use crate::net::{CostCache, TcpRx, TcpTx};
use crate::sim::{Envelope, Sim, SimInner};
use crate::time::{Dur, Time};

/// Node → shard assignment. The identity partition (every node on shard
/// 0) reproduces the unsharded engine; any other assignment yields the
/// same dispatch sequence (module docs, "Determinism").
#[derive(Clone, Debug)]
pub struct Partition {
    /// `assignment[node] = shard`.
    assignment: Vec<u32>,
    shards: u32,
}

impl Partition {
    /// Everything on one shard — today's default behavior.
    pub fn identity(nodes: usize) -> Partition {
        Partition { assignment: vec![0; nodes], shards: 1 }
    }

    /// Round-robin assignment of `nodes` nodes over `shards` shards.
    pub fn modulo(nodes: usize, shards: usize) -> Partition {
        assert!(shards >= 1, "at least one shard");
        let shards = shards as u32;
        Partition { assignment: (0..nodes as u32).map(|n| n % shards).collect(), shards }
    }

    /// An explicit node → shard map. The shard count is
    /// `max(assignment) + 1`; every shard index below it is valid even
    /// if unused (empty shards are harmless).
    pub fn from_assignment(assignment: Vec<u32>) -> Partition {
        let shards = assignment.iter().max().map_or(0, |&m| m + 1).max(1);
        Partition { assignment, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Number of nodes covered by the map.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Shard owning `node`.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment[node.0] as usize
    }

    /// The raw node → shard map.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Extends the map for a newly added node (round-robin over the
    /// current shard count, which keeps the identity partition identity).
    pub(crate) fn push_node(&mut self) -> u32 {
        let s = self.assignment.len() as u32 % self.shards;
        self.assignment.push(s);
        s
    }
}

/// An event generated on one shard for a node owned by another. Buffered
/// in the destination's [`ShardState::inbox`] and folded into its event
/// queue at the top of the next executor step — the only channel through
/// which anything crosses a shard boundary on the event path.
pub(crate) enum CrossShardEvent {
    /// A datagram that finished the sender-side pipeline; the envelope
    /// body travels with the handoff and is interned in the destination
    /// shard's slab on drain.
    Arrive { time: Time, seq: u64, env: Envelope },
    /// Fast mode only: a datagram handed off *before* switch egress, so
    /// the destination shard serializes its own downlink port
    /// ([`crate::dispatch::EventKind::SwitchArrive`]). `time` is the
    /// switch-arrival instant plus one link latency (the processing
    /// instant that satisfies the lookahead bound); `arrive` is the true
    /// switch-arrival instant the egress math uses.
    Switch { time: Time, seq: u64, env: Envelope, arrive: Time, hold: Dur, dup: bool },
    /// Any other cross-boundary completion (today: the TCP ack returning
    /// to a sender on another shard).
    Event { time: Time, seq: u64, kind: EventKind },
}

impl CrossShardEvent {
    /// The instant the receiving shard processes this handoff.
    #[inline]
    pub(crate) fn time(&self) -> Time {
        match *self {
            CrossShardEvent::Arrive { time, .. }
            | CrossShardEvent::Switch { time, .. }
            | CrossShardEvent::Event { time, .. } => time,
        }
    }

    /// The origin shard's sequence number at generation time (a
    /// barrier-sort tiebreaker in fast mode, the global key in
    /// determinism mode).
    #[inline]
    pub(crate) fn seq(&self) -> u64 {
        match *self {
            CrossShardEvent::Arrive { seq, .. }
            | CrossShardEvent::Switch { seq, .. }
            | CrossShardEvent::Event { seq, .. } => seq,
        }
    }
}

/// The per-shard arena: the per-node engine structures a worker thread
/// would take exclusively, owned by exactly one shard so the handoff
/// needs no synchronization. (The flat [`crate::host::Node`] clock
/// arena stays in `SimInner` — module docs, "What is sharded".)
#[derive(Default)]
pub(crate) struct ShardState {
    /// This shard's future event set.
    pub(crate) queue: EventQueue<EventKind>,
    /// Bodies of queued `HostArrive`/`Deliver` envelopes for nodes on
    /// this shard (see the `sim` module docs, "Envelope slab").
    pub(crate) envs: Slab<Envelope>,
    /// Sender halves of TCP channels whose source node lives here.
    pub(crate) tcp_tx: Vec<TcpTx>,
    /// Receiver halves of TCP channels whose destination node lives here.
    pub(crate) tcp_rx: Vec<TcpRx>,
    /// Per-shard replica of the pure per-size cost memo.
    pub(crate) cost_cache: CostCache,
    /// Per-node RNG streams, indexed by node id. Entries are derived
    /// lazily ([`SimInner::rng_for`]) from a pure hash of
    /// `(config.seed, node)`, so every shard can materialize any node's
    /// canonical stream — but a node's stream only ever *advances* in
    /// its owning shard (draws happen in the sender's context).
    pub(crate) rngs: Vec<rand::rngs::SmallRng>,
    /// Cross-shard handoff buffer, tagged with the origin shard, drained
    /// into `queue` at the top of each executor step (determinism mode)
    /// or at each barrier (fast mode). In a fast-mode worker the entries
    /// of *foreign* shards double as outboxes, exchanged at the barrier.
    pub(crate) inbox: Vec<(u32, CrossShardEvent)>,
    /// This shard's probe ring buffer ([`crate::probe`]). Living in the
    /// arena, it travels with the shard through the threaded executor's
    /// split/merge, keeping the probe layer `Send`-clean: a shard's
    /// stream is written only by whichever worker owns the shard.
    /// Dormant (capacity 0) until [`crate::sim::Sim::set_probes`].
    pub(crate) tracer: crate::probe::ShardTracer,
}

impl SimInner {
    /// Shard owning `node`.
    #[inline]
    pub(crate) fn shard_idx(&self, node: NodeId) -> usize {
        self.partition.shard_of(node)
    }

    /// Allocates the next global event sequence number. One counter
    /// across all shards — the keystone of partition-independent
    /// dispatch order (module docs, "Determinism").
    #[inline]
    pub(crate) fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Files an event for `node` directly into its shard's queue. For
    /// control-plane and host-local completions (timers, disk), which
    /// never cross a shard boundary; event-path code that may cross uses
    /// [`SimInner::push_routed`].
    #[inline]
    pub(crate) fn push_to_node(&mut self, node: NodeId, at: Time, kind: EventKind) {
        self.note_first_event(at, &kind);
        let seq = self.next_seq();
        let sh = self.shard_idx(node);
        self.shards[sh].queue.push(at, seq, kind);
    }

    /// Files an event for `node` from code executing on shard
    /// `from_shard`: direct push when the target lives there, inbox
    /// handoff otherwise.
    #[inline]
    pub(crate) fn push_routed(
        &mut self,
        from_shard: usize,
        node: NodeId,
        at: Time,
        kind: EventKind,
    ) {
        self.note_first_event(at, &kind);
        let seq = self.next_seq();
        let sh = self.shard_idx(node);
        if sh == from_shard {
            self.shards[sh].queue.push(at, seq, kind);
        } else {
            self.cross_shard_events += 1;
            if self.probe_on(crate::probe::category::EXEC) {
                self.probe_handoff(from_shard, sh, node);
            }
            self.shards[sh]
                .inbox
                .push((from_shard as u32, CrossShardEvent::Event { time: at, seq, kind }));
        }
    }

    /// Debug check of the conservative-lookahead invariant at the drain:
    /// a handoff from `origin` may never land below the receiving
    /// shard's local clock minus the matrix entry `lookahead[sh][origin]`.
    /// Violations here are safe-window bugs at the source; catching them
    /// at the drain beats diagnosing them later as trace divergence.
    #[inline]
    pub(crate) fn assert_lookahead(&self, sh: usize, origin: u32, time: Time, local_clock: Time) {
        #[cfg(debug_assertions)]
        {
            let k = self.partition.shards();
            let la = self.lookahead[sh * k + origin as usize];
            if la != Dur::MAX {
                debug_assert!(
                    time + la >= local_clock,
                    "cross-shard handoff lands in shard {sh}'s past: event at {time} from \
                     shard {origin}, local clock {local_clock}, lookahead {la}"
                );
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (sh, origin, time, local_clock);
        }
    }

    /// Folds every shard's inbox into its event queue. Runs at the top
    /// of each executor step, before the merge, so a handed-off event is
    /// visible no later than the step after it was generated — and its
    /// `(time, seq)` key slots it into exactly the position the
    /// single-queue engine would have popped it from.
    pub(crate) fn drain_inboxes(&mut self) {
        for sh in 0..self.shards.len() {
            if self.shards[sh].inbox.is_empty() {
                continue;
            }
            // Take the buffer out to appease the borrow checker, put it
            // back drained so its capacity is reused.
            let mut inbox = std::mem::take(&mut self.shards[sh].inbox);
            for (origin, ev) in inbox.drain(..) {
                self.assert_lookahead(sh, origin, ev.time(), self.now);
                match ev {
                    CrossShardEvent::Arrive { time, seq, env } => {
                        let id = self.shards[sh].envs.insert(env);
                        self.shards[sh].queue.push(time, seq, EventKind::HostArrive(id));
                    }
                    CrossShardEvent::Switch { time, seq, env, arrive, hold, dup } => {
                        let id = self.shards[sh].envs.insert(env);
                        self.shards[sh].queue.push(
                            time,
                            seq,
                            EventKind::SwitchArrive { id, arrive, hold, dup },
                        );
                    }
                    CrossShardEvent::Event { time, seq, kind } => {
                        self.shards[sh].queue.push(time, seq, kind);
                    }
                }
            }
            self.shards[sh].inbox = inbox;
        }
    }

    /// The shard holding the globally minimum `(time, seq)` event, and
    /// that event's position. Shards are scanned in fixed index order;
    /// keys are globally unique, so the result is independent of the
    /// partition. `find_min` is memoized per queue, so the common case
    /// (k = 1, or repeated probes between pushes) does no rescanning.
    #[inline]
    pub(crate) fn merge_min(&mut self) -> Option<(usize, MinPos)> {
        let mut best: Option<(usize, MinPos)> = None;
        for sh in 0..self.shards.len() {
            if let Some(pos) = self.shards[sh].queue.find_min() {
                if best.is_none_or(|(_, b)| (pos.time, pos.seq) < (b.time, b.seq)) {
                    best = Some((sh, pos));
                }
            }
        }
        best
    }

    /// Whether any shard other than `sh` holds an event ordered before
    /// `(time, seq)`. The delivery-run coalescing guard: shard `sh`'s
    /// `find_same_time` candidate is only the *global* next event if no
    /// other shard sits on a smaller key (in the single-queue engine
    /// that smaller key would have ended the run — it cannot be a
    /// `Deliver` for the run's destination, since those all live in the
    /// destination's shard).
    #[inline]
    pub(crate) fn earlier_event_elsewhere(&mut self, sh: usize, time: Time, seq: u64) -> bool {
        // Fast mode: a shard's coalescing decision must depend only on
        // its own queue — a worker that happens to own a neighboring
        // shard must not break runs that a worker owning just this shard
        // would have coalesced, or the schedule would depend on the
        // thread count. Handoffs can never be same-instant candidates
        // (they land at least one lookahead in the future), so ignoring
        // other shards is safe, not just invariant.
        if self.exec_fast {
            return false;
        }
        for other in 0..self.shards.len() {
            if other == sh {
                continue;
            }
            if let Some(m) = self.shards[other].queue.find_min() {
                if (m.time, m.seq) < (time, seq) {
                    return true;
                }
            }
        }
        false
    }

    /// Rebuilds the shard arenas for a new partition. Only legal before
    /// any event exists (asserted by [`Sim::set_partition`]), so the
    /// queues, slabs, inboxes, and TCP tables are all empty and only the
    /// metric rows need re-homing (node clocks live in the flat arena
    /// and never move).
    pub(crate) fn install_partition(&mut self, p: Partition) {
        debug_assert!(self
            .shards
            .iter()
            .all(|s| s.queue.is_empty() && s.envs.is_empty() && s.inbox.is_empty()));
        debug_assert!(self.tcp_tx_index.iter().all(|&c| c == 0));
        let k = p.shards();
        self.shards = (0..k).map(|_| ShardState::default()).collect();
        if self.probe_capacity != 0 {
            for sh in &mut self.shards {
                sh.tracer.reset(self.probe_capacity);
            }
        }
        if !self.probe_handoffs.is_empty() || self.probe_on(crate::probe::category::EXEC) {
            self.probe_handoffs = vec![0; k * k];
        }
        self.metrics.repartition(p.assignment(), k);
        self.lookahead = Self::lookahead_matrix(k, self.config.one_way_latency);
        self.partition = p;
    }

    /// Per-shard-pair lookahead, computed at deploy time from the
    /// minimum link latency (the cluster's links are uniform, so every
    /// off-diagonal pair gets `one_way_latency`). `lookahead[a * k + b]`
    /// bounds how far shard `a` may run ahead of shard `b` without an
    /// event from `b` landing in `a`'s past. The diagonal is `Dur::MAX`:
    /// a shard never constrains itself.
    pub(crate) fn lookahead_matrix(k: usize, one_way: Dur) -> Vec<Dur> {
        let mut m = vec![one_way; k * k];
        for d in 0..k {
            m[d * k + d] = Dur::MAX;
        }
        m
    }
}

impl Sim {
    /// Replaces the node → shard partition. Must be called before any
    /// event is scheduled. Two idioms work: build the cluster with no
    /// traffic and re-partition it explicitly, or — since deploy helpers
    /// may seed timers and client traffic — call this right after
    /// [`Sim::new`] with an empty map (`Partition::modulo(0, k)`) so
    /// nodes home round-robin over `k` shards as they are added. The
    /// identity partition is the default; any partition yields the
    /// identical simulation (module docs of [`crate::shard`]).
    ///
    /// # Panics
    ///
    /// If the map's node count differs from the cluster's, or if any
    /// event has already been scheduled or dispatched — the panic names
    /// the first-scheduled event so the offending deploy step is obvious.
    pub fn set_partition(&mut self, p: Partition) {
        assert_eq!(p.len(), self.inner.nodes.len(), "partition must cover every node");
        assert!(
            self.inner.seq == 0 && self.inner.events == 0,
            "set_partition must run before any event is scheduled, but one already was: \
             {} (use Sim::with_partition, or partition before deploying actors)",
            self.inner.first_event.as_deref().unwrap_or("<unknown event>")
        );
        self.inner.install_partition(p);
    }

    /// Builds a simulation already partitioned over `k` shards, closing
    /// the [`Sim::set_partition`] ordering footgun: deploy helpers that
    /// seed timers or client traffic while adding nodes simply work,
    /// because the partition is in place before the first node exists.
    /// `p` must be an empty map (e.g. `Partition::modulo(0, k)`); nodes
    /// home round-robin over its shards as they are added.
    pub fn with_partition(config: crate::config::SimConfig, p: Partition) -> Sim {
        assert!(
            p.is_empty(),
            "with_partition takes an empty map (e.g. Partition::modulo(0, k)); \
             nodes home round-robin as they are added"
        );
        let mut sim = Sim::new(config);
        sim.inner.install_partition(p);
        sim
    }

    /// The active node → shard partition.
    pub fn partition(&self) -> &Partition {
        &self.inner.partition
    }

    /// Lookahead from shard `from` to shard `to`: no event generated by
    /// `to` can land on `from` less than this far in `to`'s future.
    pub fn lookahead(&self, from: usize, to: usize) -> Dur {
        let k = self.inner.partition.shards();
        self.inner.lookahead[from * k + to]
    }

    /// The minimum cross-shard lookahead: a threaded executor may run
    /// every shard independently for a window of this length between
    /// barriers. `Dur::MAX` under a single shard (nothing to wait for).
    pub fn safe_window(&self) -> Dur {
        self.inner.lookahead.iter().copied().min().unwrap_or(Dur::MAX)
    }

    /// Events that crossed a shard boundary (handed off through an
    /// inbox) so far. An engine statistic, not a [`crate::stats::Metrics`]
    /// counter — partition choice must not perturb counter checksums.
    pub fn cross_shard_events(&self) -> u64 {
        self.inner.cross_shard_events
    }
}
