//! # simnet — deterministic discrete-event cluster simulator
//!
//! `simnet` models the local-area testbed used throughout *High-Performance
//! State-Machine Replication* (Marandi, DSN 2011 / USI dissertation): a rack
//! of commodity nodes behind one gigabit switch, with ip-multicast, lossy
//! UDP, flow-controlled TCP, multi-core CPUs, and SSDs.
//!
//! Protocols are written as [`sim::Actor`]s — event-driven processes that
//! exchange [`payload::Payload`] messages and set timers. All resources
//! (links, switch port buffers, socket buffers, CPU cores, disks) are
//! simulated, so throughput/latency/CPU results emerge from the same
//! bottlenecks the paper analyses, and every run is bit-for-bit
//! deterministic for a given seed.
//!
//! ```
//! use simnet::prelude::*;
//!
//! struct Echo;
//! impl Actor for Echo {
//!     fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
//!         // Bounce every datagram straight back.
//!         ctx.udp_forward(env.src, env.payload.clone(), env.wire_bytes);
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let a = sim.add_node(Box::new(Echo));
//! let b = sim.add_node(Box::new(Echo));
//! sim.with_ctx(a, |ctx| ctx.udp_send(b, "ping".to_string(), 64));
//! sim.run_until(Time::from_millis(1));
//! assert!(sim.metrics().counter(a, "net.recv_pkts") >= 1);
//! ```

pub mod config;
mod dispatch;
mod event_queue;
pub mod fault;
mod host;
pub mod ids;
mod net;
pub mod payload;
pub mod probe;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod threaded;
pub mod time;
pub mod wheel;

pub use crate::shard::Partition;
pub use crate::threaded::ExecMode;

/// Convenient glob import for protocol crates and experiments.
pub mod prelude {
    pub use crate::config::SimConfig;
    pub use crate::fault::{FaultAction, FaultPlan};
    pub use crate::ids::{GroupId, NodeId, TimerToken};
    pub use crate::payload::Payload;
    pub use crate::probe::{self, ProbeConfig, ProbeEvent, WorkerTelemetry};
    pub use crate::shard::Partition;
    pub use crate::sim::{Actor, Ctx, Envelope, Sim, Transport};
    pub use crate::stats::{mbps, mid, per_sec, LatencyStats, MetricId, Metrics};
    pub use crate::threaded::ExecMode;
    pub use crate::time::{Dur, Time};
    pub use crate::wheel::TimerWheel;
}
