//! Measurement infrastructure: interned counters, histogram latency
//! recorders, and helpers for converting raw counts into the units the
//! paper reports (Mbps, Kcps, ms).
//!
//! # Design
//!
//! The simulator records several counters on *every* datagram, so this
//! module is on the engine's hottest path. Two data structures keep the
//! per-event cost at array-indexing levels:
//!
//! * **Interned counters.** Every counter name is interned once into a
//!   [`MetricId`]; values live in dense per-node rows grouped into
//!   per-shard *banks* (`banks[bank][row][id]`, with a node → `(bank,
//!   row)` location table), so a shard's counter writes touch only its
//!   own bank — no cross-shard cache-line sharing when the executor goes
//!   threaded. The names the engine and the ordering protocols bump per
//!   packet are pre-interned at fixed indices (see [`mid`]), so the hot
//!   paths never hash a string — they do three indexed loads. The
//!   string-keyed API ([`Metrics::add`], [`Metrics::counter`],
//!   [`Metrics::sum`]) remains for experiment runners and tests; it pays
//!   one `HashMap` lookup to resolve the name and is not on the per-event
//!   path. Reporting ([`Metrics::for_each_counter`]) walks the location
//!   table in node-index order, so output order — and every golden-trace
//!   checksum built on it — is independent of how rows are banked.
//!
//! * **Histogram latencies.** Latency samples go into log-scaled buckets
//!   (64 sub-buckets per power of two, ≤ 1.6 % relative error; values
//!   below 64 ns are exact) instead of an ever-growing `Vec<u64>`.
//!   Count, sum (hence mean), and max are tracked exactly; percentiles,
//!   trimmed means, and CDFs are read from bucket midpoints, so querying
//!   mid-experiment no longer clones and sorts the whole sample set, and
//!   memory stays O(1) per name regardless of run length.

use std::collections::HashMap;

use crate::ids::NodeId;
use crate::time::Dur;

/// Interned handle for a counter name: an index into the registry's
/// dense per-node counter matrix. Obtain one from [`Metrics::intern`] or
/// use the pre-interned well-known ids in [`mid`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MetricId(u16);

impl MetricId {
    /// Position of this metric in the dense counter matrix.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Names of the pre-interned well-known metrics, index-aligned with
/// [`mid`]. The engine's own names come first; the `abcast.*`/`rp.*`
/// names are owned by the protocol layer but pre-interned here because
/// protocols bump them for every delivered value — the `abcast` crate
/// re-exports them so the strings are defined once.
const BUILTIN_NAMES: &[&str] = &[
    "net.sent_bytes",
    "net.sent_pkts",
    "net.recv_bytes",
    "net.recv_pkts",
    "net.rand_drop",
    "net.down_drop",
    "net.switch_drop",
    "net.switch_drop_bytes",
    "net.socket_drop",
    "net.socket_drop_bytes",
    "disk.written_bytes",
    "abcast.delivered_bytes",
    "abcast.delivered_msgs",
    "abcast.instances",
    "abcast.buffered",
    "rp.proposed",
    "net.tcp_dup_ack",
    "net.tcp_reset_bytes",
    "net.tcp_stale_ack",
    "net.tcp_orphan_seg",
    "net.reordered",
    "net.duplicated",
    "net.part_drop",
];

/// Pre-interned [`MetricId`]s for the counters bumped on the per-event
/// hot paths. Guaranteed to be valid in every [`Metrics`] registry.
pub mod mid {
    use super::MetricId;

    pub const NET_SENT_BYTES: MetricId = MetricId(0);
    pub const NET_SENT_PKTS: MetricId = MetricId(1);
    pub const NET_RECV_BYTES: MetricId = MetricId(2);
    pub const NET_RECV_PKTS: MetricId = MetricId(3);
    pub const NET_RAND_DROP: MetricId = MetricId(4);
    pub const NET_DOWN_DROP: MetricId = MetricId(5);
    pub const NET_SWITCH_DROP: MetricId = MetricId(6);
    pub const NET_SWITCH_DROP_BYTES: MetricId = MetricId(7);
    pub const NET_SOCKET_DROP: MetricId = MetricId(8);
    pub const NET_SOCKET_DROP_BYTES: MetricId = MetricId(9);
    pub const DISK_WRITTEN_BYTES: MetricId = MetricId(10);
    pub const DELIVERED_BYTES: MetricId = MetricId(11);
    pub const DELIVERED_MSGS: MetricId = MetricId(12);
    pub const INSTANCES: MetricId = MetricId(13);
    pub const BUFFERED: MetricId = MetricId(14);
    pub const PROPOSED: MetricId = MetricId(15);
    pub const NET_TCP_DUP_ACK: MetricId = MetricId(16);
    pub const NET_TCP_RESET_BYTES: MetricId = MetricId(17);
    pub const NET_TCP_STALE_ACK: MetricId = MetricId(18);
    /// TCP segments delivered for a channel incarnation that no longer
    /// exists (in flight across a crash-reset, or no channel at all):
    /// no ack is generated for them.
    pub const NET_TCP_ORPHAN_SEG: MetricId = MetricId(19);
    /// Datagrams the fault-injection layer held back in the switch so
    /// they arrive behind later-sent traffic.
    pub const NET_REORDERED: MetricId = MetricId(20);
    /// Extra datagram copies the fault-injection layer delivered.
    pub const NET_DUPLICATED: MetricId = MetricId(21);
    /// Datagrams (and TCP segments) dropped on a cut link — see
    /// [`crate::sim::Sim::set_link_cut`].
    pub const NET_PART_DROP: MetricId = MetricId(22);
}

/// The canonical name string of a pre-interned metric (usable in `const`
/// contexts, so downstream crates define their name constants from it).
pub const fn builtin_name(id: MetricId) -> &'static str {
    BUILTIN_NAMES[id.0 as usize]
}

/// Location of a node's counter row: which bank holds it and at which
/// index. `row == NO_ROW` means the row has not been materialized yet
/// (the node never wrote a counter).
#[derive(Clone, Copy, Debug)]
struct RowLoc {
    bank: u32,
    row: u32,
}

const NO_ROW: u32 = u32::MAX;

/// Central metrics registry owned by the simulation.
#[derive(Debug)]
pub struct Metrics {
    /// Id → name.
    names: Vec<&'static str>,
    /// Name → id, for the string-keyed compatibility API.
    index: HashMap<&'static str, MetricId>,
    /// Counter rows grouped into per-shard banks, `banks[bank][row][id]`.
    /// Rows are created on a node's first write (in the node's assigned
    /// bank; bank 0 for a standalone registry) and sized to the current
    /// intern table.
    banks: Vec<Vec<Vec<u64>>>,
    /// Node index → row location. Grown on demand; fresh entries default
    /// to bank 0 with no row.
    loc: Vec<RowLoc>,
    latencies: HashMap<&'static str, Histogram>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        let names: Vec<&'static str> = BUILTIN_NAMES.to_vec();
        let index = names.iter().enumerate().map(|(i, &n)| (n, MetricId(i as u16))).collect();
        Metrics {
            names,
            index,
            banks: vec![Vec::new()],
            loc: Vec::new(),
            latencies: HashMap::new(),
        }
    }
}

impl Metrics {
    /// Creates an empty registry (well-known ids pre-interned).
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Interns `name`, returning its dense id. Idempotent; the returned
    /// id is stable for the lifetime of this registry.
    pub fn intern(&mut self, name: &'static str) -> MetricId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = MetricId(u16::try_from(self.names.len()).expect("too many distinct metrics"));
        self.names.push(name);
        self.index.insert(name, id);
        id
    }

    /// Declares which bank `node`'s counter row belongs to. Called by the
    /// engine when a node is added or the partition changes; standalone
    /// registries (tests, tools) never call it and everything lands in
    /// bank 0. Must precede the node's first counter write.
    pub(crate) fn assign_node(&mut self, node: NodeId, bank: usize) {
        if node.0 >= self.loc.len() {
            self.loc.resize(node.0 + 1, RowLoc { bank: 0, row: NO_ROW });
        }
        debug_assert_eq!(self.loc[node.0].row, NO_ROW, "bank assigned after first write");
        self.loc[node.0].bank = bank as u32;
        if bank >= self.banks.len() {
            self.banks.resize_with(bank + 1, Vec::new);
        }
    }

    /// Moves every existing row into the bank `assignment` names for its
    /// node (node index → bank), resizing to `num_banks` banks. Values
    /// are moved, not copied; totals and reporting order are unchanged.
    pub(crate) fn repartition(&mut self, assignment: &[u32], num_banks: usize) {
        let mut old: Vec<Vec<Option<Vec<u64>>>> = std::mem::take(&mut self.banks)
            .into_iter()
            .map(|bank| bank.into_iter().map(Some).collect())
            .collect();
        self.banks = std::iter::repeat_with(Vec::new).take(num_banks.max(1)).collect();
        for (n, l) in self.loc.iter_mut().enumerate() {
            let bank = assignment.get(n).copied().unwrap_or(0) as usize;
            if l.row != NO_ROW {
                let row = old[l.bank as usize][l.row as usize]
                    .take()
                    .expect("two nodes shared a counter row");
                l.row = self.banks[bank].len() as u32;
                self.banks[bank].push(row);
            }
            l.bank = bank as u32;
        }
    }

    /// Materializes `node`'s row (in its assigned bank) at the current
    /// intern-table width and returns it.
    fn row(&mut self, node: NodeId) -> &mut Vec<u64> {
        if node.0 >= self.loc.len() {
            self.loc.resize(node.0 + 1, RowLoc { bank: 0, row: NO_ROW });
        }
        let l = &mut self.loc[node.0];
        let bank = l.bank as usize;
        if l.row == NO_ROW {
            l.row = self.banks[bank].len() as u32;
            self.banks[bank].push(Vec::new());
        }
        let width = self.names.len();
        let row = &mut self.banks[bank][l.row as usize];
        if row.len() < width {
            row.resize(width, 0);
        }
        row
    }

    /// Adds `v` to the counter `id` of `node` — the hot path: three
    /// indexed loads once the row exists.
    #[inline]
    pub fn add_id(&mut self, node: NodeId, id: MetricId, v: u64) {
        if let Some(l) = self.loc.get(node.0) {
            if l.row != NO_ROW {
                let row = &mut self.banks[l.bank as usize][l.row as usize];
                if let Some(c) = row.get_mut(id.index()) {
                    *c += v;
                    return;
                }
            }
        }
        self.row(node)[id.index()] += v;
    }

    /// Current value of the counter `id` of `node`.
    #[inline]
    pub fn counter_id(&self, node: NodeId, id: MetricId) -> u64 {
        let Some(l) = self.loc.get(node.0) else { return 0 };
        if l.row == NO_ROW {
            return 0;
        }
        self.banks[l.bank as usize][l.row as usize].get(id.index()).copied().unwrap_or(0)
    }

    /// Sum of the counter `id` over all nodes.
    pub fn sum_id(&self, id: MetricId) -> u64 {
        self.banks.iter().flatten().filter_map(|row| row.get(id.index())).sum()
    }

    /// Adds `v` to the counter `name` of `node` (string-keyed
    /// compatibility API — one hash lookup to resolve the name).
    pub fn add(&mut self, node: NodeId, name: &'static str, v: u64) {
        let id = self.intern(name);
        self.add_id(node, id, v);
    }

    /// Current value of the counter `name` of `node`.
    pub fn counter(&self, node: NodeId, name: &'static str) -> u64 {
        match self.index.get(name) {
            Some(&id) => self.counter_id(node, id),
            None => 0,
        }
    }

    /// Sum of the counter `name` over all nodes.
    pub fn sum(&self, name: &'static str) -> u64 {
        match self.index.get(name) {
            Some(&id) => self.sum_id(id),
            None => 0,
        }
    }

    /// Visits every non-zero counter in deterministic `(node, name)`
    /// order — the basis for golden-trace checksums.
    pub fn for_each_counter(&self, mut f: impl FnMut(NodeId, &str, u64)) {
        // Ids are interned in call order, not name order; sort once per
        // call (this is a reporting path, not a hot path).
        let mut by_name: Vec<MetricId> = (0..self.names.len() as u16).map(MetricId).collect();
        by_name.sort_by_key(|id| self.names[id.index()]);
        for (n, l) in self.loc.iter().enumerate() {
            if l.row == NO_ROW {
                continue;
            }
            let row = &self.banks[l.bank as usize][l.row as usize];
            for &id in &by_name {
                if let Some(&v) = row.get(id.index()) {
                    if v != 0 {
                        f(NodeId(n), self.names[id.index()], v);
                    }
                }
            }
        }
    }

    /// Clones this registry's shape — intern table, bank layout, row
    /// assignments — with every counter zeroed and no latency samples.
    /// Workers of the threaded executor each write into a fork and the
    /// deltas are folded back with [`Metrics::merge_from`]; because
    /// counter addition and histogram merging are commutative, per-node
    /// totals come out identical to serial execution regardless of which
    /// worker charged them.
    pub(crate) fn fork_zeroed(&self) -> Metrics {
        Metrics {
            names: self.names.clone(),
            index: self.index.clone(),
            banks: self
                .banks
                .iter()
                .map(|bank| bank.iter().map(|row| vec![0; row.len()]).collect())
                .collect(),
            loc: self.loc.clone(),
            latencies: HashMap::new(),
        }
    }

    /// Adds every counter and latency sample of `other` into this
    /// registry. `other` is typically a [`Metrics::fork_zeroed`] fork
    /// holding one worker's deltas, but any registry with `'static`
    /// names folds in correctly (names are re-interned by string).
    pub(crate) fn merge_from(&mut self, other: &Metrics) {
        for (n, l) in other.loc.iter().enumerate() {
            if l.row == NO_ROW {
                continue;
            }
            let row = &other.banks[l.bank as usize][l.row as usize];
            for (i, &v) in row.iter().enumerate() {
                if v != 0 {
                    self.add(NodeId(n), other.names[i], v);
                }
            }
        }
        for (name, h) in &other.latencies {
            self.latencies.entry(name).or_default().merge_from(h);
        }
    }

    /// Records one latency sample under `name`.
    pub fn record_latency(&mut self, name: &'static str, sample: Dur) {
        self.latencies.entry(name).or_default().record(sample.as_nanos());
    }

    /// Summary statistics of the samples recorded under `name`.
    pub fn latency(&self, name: &'static str) -> LatencyStats {
        self.latencies.get(name).map_or_else(LatencyStats::default, Histogram::stats)
    }

    /// Drains the samples recorded under `name`, returning their summary.
    /// Useful for windowed measurements in time-series experiments.
    pub fn take_latency(&mut self, name: &'static str) -> LatencyStats {
        self.latencies.remove(name).map_or_else(LatencyStats::default, |h| h.stats())
    }

    /// The `frac` quantile of the samples recorded under `name`, or
    /// `None` when nothing has been recorded — an empty recorder has no
    /// percentile, and the old bucket-midpoint `0` was indistinguishable
    /// from a genuine sub-nanosecond sample.
    pub fn percentile(&self, name: &'static str, frac: f64) -> Option<Dur> {
        let h = self.latencies.get(name)?;
        if h.count == 0 {
            return None;
        }
        Some(Dur::nanos(h.quantile(frac)))
    }

    /// Empirical CDF of samples under `name` at the given number of points.
    /// Returns `(latency, fraction <= latency)` pairs.
    pub fn latency_cdf(&self, name: &'static str, points: usize) -> Vec<(Dur, f64)> {
        let Some(h) = self.latencies.get(name) else { return Vec::new() };
        if h.count == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                (Dur::nanos(h.quantile(frac)), frac)
            })
            .collect()
    }
}

/// Sub-bucket resolution of the latency histograms: 2^6 = 64 buckets per
/// power of two, bounding relative quantile error at 1/64 ≈ 1.6 %.
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

/// A log-scaled histogram of nanosecond samples. Count, sum, and max are
/// exact; quantiles are read from bucket midpoints.
#[derive(Default, Debug, Clone)]
struct Histogram {
    count: u64,
    sum: u128,
    max: u64,
    /// Bucket occupancy, grown lazily to the highest bucket touched.
    buckets: Vec<u64>,
}

/// Bucket index for a nanosecond value. Values below `SUB` map to their
/// own bucket (exact); above, each power of two splits into `SUB`
/// equal-width sub-buckets.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64;
        let shift = msb - SUB_BITS as u64;
        let mantissa = v >> shift; // in [SUB, 2*SUB)
        ((shift + 1) * SUB + (mantissa - SUB)) as usize
    }
}

/// Midpoint of a bucket (exact value for the linear and first log region).
fn bucket_value(idx: usize) -> u64 {
    let group = idx as u64 >> SUB_BITS;
    let offset = idx as u64 & (SUB - 1);
    if group == 0 {
        offset
    } else {
        let shift = group - 1;
        let base = (SUB + offset) << shift;
        if shift == 0 {
            base
        } else {
            base + (1 << (shift - 1))
        }
    }
}

impl Histogram {
    /// Folds `other`'s samples into this histogram. Bucket counts, the
    /// running count/sum, and the max all combine exactly, so merging
    /// per-worker histograms is order-independent.
    fn merge_from(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
    }

    #[inline]
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
        let idx = bucket_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Smallest recorded value `x` such that at least `frac * count`
    /// samples are ≤ `x` (bucket-midpoint resolution; the top quantile
    /// reports the exact max).
    fn quantile(&self, frac: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64 * frac).ceil() as u64).clamp(1, self.count);
        if target == self.count {
            // The true top quantile is the exact max (keeps the CDF's
            // final point consistent with `LatencyStats::max`).
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Midpoint resolution, never above the observed max.
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    fn stats(&self) -> LatencyStats {
        if self.count == 0 {
            return LatencyStats::default();
        }
        // Trimmed mean: accumulate bucket midpoints over the lowest 95 %
        // of samples (partial buckets pro-rated).
        let keep = (((self.count as f64) * 0.95).ceil() as u64).clamp(1, self.count);
        let mut remaining = keep;
        let mut tsum = 0u128;
        for (i, &c) in self.buckets.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            let take = c.min(remaining);
            tsum += bucket_value(i) as u128 * take as u128;
            remaining -= take;
        }
        LatencyStats {
            count: self.count as usize,
            mean: Dur::nanos((self.sum / self.count as u128) as u64),
            p50: Dur::nanos(self.quantile(0.50)),
            p95: Dur::nanos(self.quantile(0.95)),
            p99: Dur::nanos(self.quantile(0.99)),
            max: Dur::nanos(self.max),
            trimmed_mean_95: Dur::nanos((tsum / keep as u128) as u64),
        }
    }
}

/// Summary of a set of latency samples. `count`, `mean`, and `max` are
/// exact; the percentiles and trimmed mean carry the histogram's ≤ 1.6 %
/// bucket resolution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (exact).
    pub mean: Dur,
    /// 50th percentile.
    pub p50: Dur,
    /// 95th percentile.
    pub p95: Dur,
    /// 99th percentile.
    pub p99: Dur,
    /// Largest sample (exact).
    pub max: Dur,
    /// Mean after discarding the highest 5% of samples — the thesis reports
    /// this for the experiments with disk writes (§5.4.2).
    pub trimmed_mean_95: Dur,
}

/// Converts a byte count over a window into megabits per second.
pub fn mbps(bytes: u64, window: Dur) -> f64 {
    if window == Dur::ZERO {
        return 0.0;
    }
    bytes as f64 * 8.0 / window.as_secs_f64() / 1e6
}

/// Converts an event count over a window into events per second.
pub fn per_sec(count: u64, window: Dur) -> f64 {
    if window == Dur::ZERO {
        return 0.0;
    }
    count as f64 / window.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `got` within `pct` percent of `want`.
    fn close(got: Dur, want: Dur, pct: f64) {
        let (g, w) = (got.as_nanos() as f64, want.as_nanos() as f64);
        assert!((g - w).abs() <= w * pct / 100.0, "{got:?} not within {pct}% of {want:?}");
    }

    #[test]
    fn counters_accumulate_per_node() {
        let mut m = Metrics::new();
        m.add(NodeId(0), "x", 3);
        m.add(NodeId(0), "x", 4);
        m.add(NodeId(1), "x", 10);
        assert_eq!(m.counter(NodeId(0), "x"), 7);
        assert_eq!(m.sum("x"), 17);
        assert_eq!(m.counter(NodeId(2), "x"), 0);
        assert_eq!(m.counter(NodeId(0), "never-recorded"), 0);
        assert_eq!(m.sum("never-recorded"), 0);
    }

    #[test]
    fn interned_and_string_apis_share_counters() {
        let mut m = Metrics::new();
        m.add_id(NodeId(3), mid::NET_SENT_PKTS, 5);
        m.add(NodeId(3), "net.sent_pkts", 2);
        assert_eq!(m.counter(NodeId(3), "net.sent_pkts"), 7);
        assert_eq!(m.counter_id(NodeId(3), mid::NET_SENT_PKTS), 7);
        assert_eq!(m.sum_id(mid::NET_SENT_PKTS), 7);
        let id = m.intern("custom.metric");
        assert_eq!(id, m.intern("custom.metric"));
        m.add_id(NodeId(0), id, 9);
        assert_eq!(m.counter(NodeId(0), "custom.metric"), 9);
    }

    #[test]
    fn builtin_names_align_with_ids() {
        let mut m = Metrics::new();
        for (i, &name) in super::BUILTIN_NAMES.iter().enumerate() {
            let id = m.intern(name);
            assert_eq!(id.index(), i, "{name} interned at the wrong index");
        }
        assert_eq!(builtin_name(mid::DELIVERED_MSGS), "abcast.delivered_msgs");
    }

    #[test]
    fn for_each_counter_sorted_and_nonzero() {
        let mut m = Metrics::new();
        m.add(NodeId(1), "b", 2);
        m.add(NodeId(1), "a", 1);
        m.add(NodeId(0), "z", 3);
        m.add(NodeId(2), "zero", 0);
        let mut seen = Vec::new();
        m.for_each_counter(|n, name, v| seen.push((n.0, name.to_string(), v)));
        assert_eq!(
            seen,
            vec![(0, "z".to_string(), 3), (1, "a".to_string(), 1), (1, "b".to_string(), 2),]
        );
    }

    #[test]
    fn rows_follow_bank_reassignment() {
        let mut m = Metrics::new();
        m.add(NodeId(0), "x", 1);
        m.add(NodeId(2), "x", 5);
        // Re-home node 0 and 2 into bank 1, node 1 into bank 0.
        m.repartition(&[1, 0, 1], 2);
        assert_eq!(m.counter(NodeId(0), "x"), 1);
        assert_eq!(m.counter(NodeId(2), "x"), 5);
        assert_eq!(m.sum("x"), 6);
        // A first write after repartitioning lands in the new bank.
        m.add(NodeId(1), "x", 2);
        assert_eq!(m.sum("x"), 8);
        // Reporting order stays node-index order regardless of banking.
        let mut seen = Vec::new();
        m.for_each_counter(|n, name, v| seen.push((n.0, name.to_string(), v)));
        assert_eq!(
            seen,
            vec![(0, "x".to_string(), 1), (1, "x".to_string(), 2), (2, "x".to_string(), 5)]
        );
    }

    #[test]
    fn assigned_banks_receive_first_writes() {
        let mut m = Metrics::new();
        m.assign_node(NodeId(0), 1);
        m.assign_node(NodeId(1), 0);
        m.add(NodeId(0), "x", 7);
        m.add(NodeId(1), "x", 3);
        assert_eq!(m.counter(NodeId(0), "x"), 7);
        assert_eq!(m.counter(NodeId(1), "x"), 3);
        assert_eq!(m.sum("x"), 10);
    }

    #[test]
    fn latency_percentiles() {
        let mut m = Metrics::new();
        for i in 1..=100u64 {
            m.record_latency("l", Dur::micros(i));
        }
        let s = m.latency("l");
        assert_eq!(s.count, 100);
        close(s.p50, Dur::micros(50), 2.0);
        close(s.p95, Dur::micros(95), 2.0);
        close(s.p99, Dur::micros(99), 2.0);
        assert_eq!(s.max, Dur::micros(100)); // exact
        assert_eq!(s.mean, Dur::nanos(50_500)); // exact
                                                // trimmed mean discards samples 96..=100 (exact answer 48 us).
        close(s.trimmed_mean_95, Dur::micros(48), 2.0);
    }

    #[test]
    fn tiny_samples_are_exact() {
        let mut m = Metrics::new();
        for v in [1u64, 2, 3, 60] {
            m.record_latency("t", Dur::nanos(v));
        }
        let s = m.latency("t");
        assert_eq!(s.p50, Dur::nanos(2));
        assert_eq!(s.max, Dur::nanos(60));
    }

    #[test]
    fn empty_latency_is_zeroed() {
        let m = Metrics::new();
        assert_eq!(m.latency("none").count, 0);
        assert_eq!(m.latency("none").mean, Dur::ZERO);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut m = Metrics::new();
        for i in [5u64, 1, 9, 3, 7] {
            m.record_latency("c", Dur::micros(i));
        }
        let cdf = m.latency_cdf("c", 5);
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        close(cdf.last().unwrap().0, Dur::micros(9), 2.0);
    }

    #[test]
    fn histogram_memory_stays_bounded() {
        let mut m = Metrics::new();
        for i in 0..1_000_000u64 {
            m.record_latency("big", Dur::nanos(i * 37 % 10_000_000));
        }
        let h = m.latencies.get("big").expect("recorded");
        assert_eq!(h.count, 1_000_000);
        // ~23 octaves * 64 sub-buckets, far below one u64 per sample.
        assert!(h.buckets.len() < 4096, "bucket count {}", h.buckets.len());
        // Values below 7e6 occur 4×, the rest 3×: the true median is at
        // 4x/37 = 500_000 → x = 4.625e6 ns.
        let s = m.latency("big");
        close(s.p50, Dur::nanos(4_625_000), 3.0);
    }

    #[test]
    fn bucket_roundtrip_error_bounded() {
        for v in [1u64, 63, 64, 100, 1000, 12_345, 1_000_000, 987_654_321, u64::MAX / 2] {
            let repr = super::bucket_value(super::bucket_of(v));
            let err = (repr as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 64.0, "v={v} repr={repr} err={err}");
        }
    }

    #[test]
    fn unit_conversions() {
        assert!((mbps(125_000_000, Dur::secs(1)) - 1000.0).abs() < 1e-9);
        assert!((per_sec(500, Dur::millis(500)) - 1000.0).abs() < 1e-9);
        assert_eq!(mbps(1, Dur::ZERO), 0.0);
    }

    #[test]
    fn take_latency_drains() {
        let mut m = Metrics::new();
        m.record_latency("w", Dur::micros(10));
        let s = m.take_latency("w");
        assert_eq!(s.count, 1);
        assert_eq!(m.latency("w").count, 0);
    }

    #[test]
    fn percentile_of_empty_recorder_is_none() {
        let mut m = Metrics::new();
        assert_eq!(m.percentile("never", 0.5), None);
        // A counter under the same name still has no latency samples.
        m.add(NodeId(0), "never", 1);
        assert_eq!(m.percentile("never", 0.5), None);
        m.record_latency("some", Dur::micros(10));
        let p = m.percentile("some", 0.5).expect("one sample recorded");
        close(p, Dur::micros(10), 2.0);
    }

    #[test]
    fn fork_merge_is_commutative_for_counters_and_latencies() {
        // Two zeroed forks of the same registry, each with its own
        // counters and latency samples, folded in both orders.
        let mk_base = || {
            let mut m = Metrics::new();
            m.add(NodeId(0), "x", 1);
            m.record_latency("l", Dur::micros(1));
            m
        };
        let base = mk_base();
        let mut fa = base.fork_zeroed();
        let mut fb = base.fork_zeroed();
        assert_eq!(fa.latency("l").count, 0, "fork must not inherit samples");
        fa.add(NodeId(0), "x", 10);
        fa.add(NodeId(1), "y", 3);
        for i in 1..=50u64 {
            fa.record_latency("l", Dur::micros(i));
        }
        fb.add(NodeId(0), "x", 20);
        fb.add(NodeId(2), "z", 7);
        for i in 51..=100u64 {
            fb.record_latency("l", Dur::micros(i));
        }

        let mut ab = mk_base();
        ab.merge_from(&fa);
        ab.merge_from(&fb);
        let mut ba = mk_base();
        ba.merge_from(&fb);
        ba.merge_from(&fa);

        let snapshot = |m: &Metrics| {
            let mut counters = Vec::new();
            m.for_each_counter(|n, name, v| counters.push((n.0, name.to_string(), v)));
            let l = m.latency("l");
            (counters, l.count, l.mean, l.p50, l.p95, l.max)
        };
        assert_eq!(snapshot(&ab), snapshot(&ba));
        assert_eq!(ab.counter(NodeId(0), "x"), 31);
        assert_eq!(ab.latency("l").count, 101);
        assert_eq!(ab.latency("l").max, Dur::micros(100));
    }
}
