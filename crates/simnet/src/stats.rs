//! Measurement infrastructure: counters, latency recorders, and helpers for
//! converting raw counts into the units the paper reports (Mbps, Kcps, ms).

use std::collections::HashMap;

use crate::ids::NodeId;
use crate::time::Dur;

/// Central metrics registry owned by the simulation.
#[derive(Default, Debug)]
pub struct Metrics {
    counters: HashMap<(NodeId, &'static str), u64>,
    latencies: HashMap<&'static str, Vec<u64>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `v` to the counter `name` of `node`.
    pub fn add(&mut self, node: NodeId, name: &'static str, v: u64) {
        *self.counters.entry((node, name)).or_insert(0) += v;
    }

    /// Current value of the counter `name` of `node`.
    pub fn counter(&self, node: NodeId, name: &'static str) -> u64 {
        self.counters.get(&(node, name)).copied().unwrap_or(0)
    }

    /// Sum of the counter `name` over all nodes.
    pub fn sum(&self, name: &'static str) -> u64 {
        self.counters
            .iter()
            .filter(|((_, n), _)| *n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Records one latency sample under `name`.
    pub fn record_latency(&mut self, name: &'static str, sample: Dur) {
        self.latencies.entry(name).or_default().push(sample.as_nanos());
    }

    /// Summary statistics of the samples recorded under `name`.
    pub fn latency(&self, name: &'static str) -> LatencyStats {
        LatencyStats::from_nanos(self.latencies.get(name).map_or(&[][..], |v| &v[..]))
    }

    /// Drains the samples recorded under `name`, returning their summary.
    /// Useful for windowed measurements in time-series experiments.
    pub fn take_latency(&mut self, name: &'static str) -> LatencyStats {
        let samples = self.latencies.remove(name).unwrap_or_default();
        LatencyStats::from_nanos(&samples)
    }

    /// Empirical CDF of samples under `name` at the given number of points.
    /// Returns `(latency, fraction <= latency)` pairs.
    pub fn latency_cdf(&self, name: &'static str, points: usize) -> Vec<(Dur, f64)> {
        let mut v: Vec<u64> = self.latencies.get(name).cloned().unwrap_or_default();
        if v.is_empty() {
            return Vec::new();
        }
        v.sort_unstable();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((v.len() as f64 * frac).ceil() as usize).clamp(1, v.len()) - 1;
                (Dur::nanos(v[idx]), frac)
            })
            .collect()
    }
}

/// Summary of a set of latency samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Dur,
    /// 50th percentile.
    pub p50: Dur,
    /// 95th percentile.
    pub p95: Dur,
    /// 99th percentile.
    pub p99: Dur,
    /// Largest sample.
    pub max: Dur,
    /// Mean after discarding the highest 5% of samples — the thesis reports
    /// this for the experiments with disk writes (§5.4.2).
    pub trimmed_mean_95: Dur,
}

impl LatencyStats {
    fn from_nanos(samples: &[u64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut v = samples.to_vec();
        v.sort_unstable();
        let count = v.len();
        let sum: u128 = v.iter().map(|&x| x as u128).sum();
        let pct = |p: f64| -> Dur {
            let idx = ((count as f64 * p).ceil() as usize).clamp(1, count) - 1;
            Dur::nanos(v[idx])
        };
        let keep = ((count as f64) * 0.95).ceil() as usize;
        let keep = keep.clamp(1, count);
        let tsum: u128 = v[..keep].iter().map(|&x| x as u128).sum();
        LatencyStats {
            count,
            mean: Dur::nanos((sum / count as u128) as u64),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: Dur::nanos(v[count - 1]),
            trimmed_mean_95: Dur::nanos((tsum / keep as u128) as u64),
        }
    }
}

/// Converts a byte count over a window into megabits per second.
pub fn mbps(bytes: u64, window: Dur) -> f64 {
    if window == Dur::ZERO {
        return 0.0;
    }
    bytes as f64 * 8.0 / window.as_secs_f64() / 1e6
}

/// Converts an event count over a window into events per second.
pub fn per_sec(count: u64, window: Dur) -> f64 {
    if window == Dur::ZERO {
        return 0.0;
    }
    count as f64 / window.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_node() {
        let mut m = Metrics::new();
        m.add(NodeId(0), "x", 3);
        m.add(NodeId(0), "x", 4);
        m.add(NodeId(1), "x", 10);
        assert_eq!(m.counter(NodeId(0), "x"), 7);
        assert_eq!(m.sum("x"), 17);
        assert_eq!(m.counter(NodeId(2), "x"), 0);
    }

    #[test]
    fn latency_percentiles() {
        let mut m = Metrics::new();
        for i in 1..=100u64 {
            m.record_latency("l", Dur::micros(i));
        }
        let s = m.latency("l");
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Dur::micros(50));
        assert_eq!(s.p95, Dur::micros(95));
        assert_eq!(s.p99, Dur::micros(99));
        assert_eq!(s.max, Dur::micros(100));
        assert_eq!(s.mean, Dur::nanos(50_500));
        // trimmed mean discards samples 96..=100.
        assert_eq!(s.trimmed_mean_95, Dur::micros(48));
    }

    #[test]
    fn empty_latency_is_zeroed() {
        let m = Metrics::new();
        assert_eq!(m.latency("none").count, 0);
        assert_eq!(m.latency("none").mean, Dur::ZERO);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut m = Metrics::new();
        for i in [5u64, 1, 9, 3, 7] {
            m.record_latency("c", Dur::micros(i));
        }
        let cdf = m.latency_cdf("c", 5);
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last().unwrap().0, Dur::micros(9));
    }

    #[test]
    fn unit_conversions() {
        assert!((mbps(125_000_000, Dur::secs(1)) - 1000.0).abs() < 1e-9);
        assert!((per_sec(500, Dur::millis(500)) - 1000.0).abs() < 1e-9);
        assert_eq!(mbps(1, Dur::ZERO), 0.0);
    }

    #[test]
    fn take_latency_drains() {
        let mut m = Metrics::new();
        m.record_latency("w", Dur::micros(10));
        let s = m.take_latency("w");
        assert_eq!(s.count, 1);
        assert_eq!(m.latency("w").count, 0);
    }
}
