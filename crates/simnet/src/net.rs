//! Network layer: the datagram pipeline (send CPU → uplink → switch
//! egress → socket buffer), IP-multicast fan-out, the per-size cost
//! cache, and TCP channels.
//!
//! # Layer boundary
//!
//! This module owns everything between two nodes' sockets: link
//! serialization clocks, switch-port tail drops, loss injection, and the
//! reliable-channel state machine. It consumes the `host` layer's
//! resource clocks and produces `HostArrive`/`TcpAck` events for the
//! `dispatch` layer; it never touches actors.
//!
//! # Shard-safety invariants
//!
//! A datagram's cost is charged on resources owned by two shards: the
//! *sender's* shard (CPU, uplink) while the send executes, and the
//! *receiver's* shard (downlink clock, then the `HostArrive` event).
//! When the two differ, the event is not pushed into the destination
//! queue directly — it is filed in the destination shard's
//! [`crate::shard::CrossShardEvent`] inbox and merged at the next
//! executor step, so a future threaded executor can make the inbox the
//! only cross-thread channel. Two writes still reach across the
//! boundary in this single-threaded scaffold and are the remaining work
//! for the threaded PR (both are flagged here rather than hidden):
//!
//! * `downlink` advances the destination node's `downlink_free` clock
//!   (the switch egress port really is shared between all senders; the
//!   threaded design will either own ports by destination shard or
//!   fold the advance into the handoff).
//! * `tcp_pump`/`datagram` read the *peer's* `up` flag (connection-reset
//!   semantics). A threaded executor will replicate liveness epochs.
//!
//! TCP channel state is split so each half is owned by the shard that
//! mutates it on the hot path: [`TcpTx`] (send queue, window accounting)
//! lives in the sender's shard and is touched by sends, pumps, and ack
//! dispatch — all of which execute there; [`TcpRx`] (delivery sequence)
//! lives in the receiver's shard and is touched at delivery. The two
//! halves share an epoch that only the control plane (`reset_tcp_of`,
//! driver-invoked) bumps, keeping `tx.epoch == rx.epoch` an invariant.
//!
//! The per-size [`CostCache`] is replicated per shard: it memoizes pure
//! functions of the frozen config, so replicas can only disagree on
//! which sizes are resident, never on values.

use std::collections::VecDeque;

use rand::Rng;

use crate::dispatch::{EnvId, EventKind};
use crate::ids::{GroupId, NodeId};
use crate::payload::Payload;
use crate::shard::CrossShardEvent;
use crate::sim::{Envelope, SimInner, Transport};
use crate::stats::mid;
use crate::time::{Dur, Time};

/// Per-size datagram costs, computed once per distinct wire size and
/// reused from [`CostCache`]. The cached values come from the exact
/// [`crate::config::SimConfig`] formulas, so virtual-time results are
/// bit-identical to recomputing them per packet.
#[derive(Clone, Copy, Default)]
pub(crate) struct SizeCosts {
    /// CPU cost of the send system call.
    pub(crate) send: Dur,
    /// Link serialization time.
    pub(crate) tx: Dur,
    /// CPU cost of receive processing.
    pub(crate) recv: Dur,
    /// Bytes occupying the wire.
    pub(crate) wire: u64,
}

pub(crate) const COST_CACHE_WAYS: usize = 64;

/// Direct-mapped cache of [`SizeCosts`] keyed by payload size. Protocol
/// traffic reuses a handful of sizes (control messages, paced batches),
/// while the cost formulas each pay a 64-bit division (`frames_for`,
/// `tx_time`) — three real divides per datagram without the cache. The
/// config is frozen once the [`crate::sim::Sim`] is built, so entries
/// never go stale.
pub(crate) struct CostCache {
    /// `bytes.wrapping_add(1)` of the resident entry (0 = empty).
    tags: [u32; COST_CACHE_WAYS],
    costs: [SizeCosts; COST_CACHE_WAYS],
}

impl Default for CostCache {
    fn default() -> CostCache {
        CostCache { tags: [0; COST_CACHE_WAYS], costs: [SizeCosts::default(); COST_CACHE_WAYS] }
    }
}

/// Sender-owned half of a TCP channel: the unsent queue and the window
/// accounting. Lives in the sending node's shard.
pub(crate) struct TcpTx {
    pub(crate) in_flight: u32,
    pub(crate) queue: VecDeque<(Payload, u32)>,
    pub(crate) queued_bytes: u64,
    /// Next ack sequence the sender expects. Acks are generated in
    /// delivery order, so anything else is a duplicate/late ack and is
    /// dropped instead of being subtracted from `in_flight` again.
    pub(crate) acked_segs: u64,
    /// Channel incarnation, bumped (with the rx half's) when either
    /// endpoint crashes. Acks in flight across a crash carry the old
    /// epoch and are discarded — the bytes they acknowledge were already
    /// written off by the reset, so subtracting them again would drive
    /// `in_flight` negative.
    pub(crate) epoch: u32,
}

impl TcpTx {
    fn new() -> TcpTx {
        TcpTx { in_flight: 0, queue: VecDeque::new(), queued_bytes: 0, acked_segs: 0, epoch: 0 }
    }
}

/// Receiver-owned half of a TCP channel: the delivery sequence that
/// stamps each ack. Lives in the receiving node's shard; its `epoch`
/// mirrors the tx half's (both bumped only by `reset_tcp_of`).
pub(crate) struct TcpRx {
    /// Segments delivered to the receiver so far; stamps each ack.
    pub(crate) delivered_segs: u64,
    pub(crate) epoch: u32,
}

impl TcpRx {
    fn new() -> TcpRx {
        TcpRx { delivered_segs: 0, epoch: 0 }
    }
}

impl SimInner {
    /// Exact per-size costs of a datagram, served from `shard`'s cost
    /// cache (the config is frozen for the life of the simulation, so
    /// the per-shard replicas can never disagree on values).
    #[inline]
    pub(crate) fn costs_for(&mut self, shard: usize, bytes: u32) -> SizeCosts {
        let tag = bytes.wrapping_add(1);
        let i = (bytes.wrapping_mul(0x9E37_79B9) >> 26) as usize % COST_CACHE_WAYS;
        let cache = &mut self.shards[shard].cost_cache;
        if cache.tags[i] == tag {
            return cache.costs[i];
        }
        let c = SizeCosts {
            send: self.config.send_cost(bytes),
            tx: self.config.tx_time(bytes),
            recv: self.config.recv_cost(bytes),
            wire: self.config.wire_bytes(bytes),
        };
        let cache = &mut self.shards[shard].cost_cache;
        cache.tags[i] = tag;
        cache.costs[i] = c;
        c
    }

    /// Sends a datagram: charges the sender CPU and uplink, then fans out
    /// to each destination's downlink. `tcp_epoch` stamps TCP segments
    /// with their channel incarnation (0 for datagram transports).
    pub(crate) fn datagram(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        payload: Payload,
        bytes: u32,
        transport: Transport,
        tcp_epoch: u32,
    ) {
        if !self.node(src).up {
            return;
        }
        let ss = self.shard_idx(src);
        let costs = self.costs_for(ss, bytes);
        let now = self.now;
        let cpu_done = self.charge_core(src, 0, now, costs.send);
        let up = self.node_mut(src);
        let up_done = up.uplink_free.max(cpu_done) + costs.tx;
        up.uplink_free = up_done;
        self.metrics.add_id(src, mid::NET_SENT_BYTES, bytes as u64);
        self.metrics.add_id(src, mid::NET_SENT_PKTS, 1);
        if self.probe_on(crate::probe::category::NET) {
            let arg = ((dsts.len() as u64) << 32) | bytes as u64;
            self.probe_record(src, crate::probe::code::NET_SEND, arg);
        }
        // The last destination takes ownership of the caller's payload
        // handle: the clone-per-destination refcount bump only runs for
        // true multicast fan-out, never on the unicast fast path.
        let Some((&last, rest)) = dsts.split_last() else { return };
        for &dst in rest {
            self.downlink(src, dst, payload.clone(), bytes, transport, up_done, costs, tcp_epoch);
        }
        self.downlink(src, last, payload, bytes, transport, up_done, costs, tcp_epoch);
    }

    #[allow(clippy::too_many_arguments)]
    fn downlink(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: Payload,
        bytes: u32,
        transport: Transport,
        arrive_at_switch: Time,
        costs: SizeCosts,
        tcp_epoch: u32,
    ) {
        if !self.node(dst).up {
            self.metrics.add_id(dst, mid::NET_DOWN_DROP, bytes as u64);
            return;
        }
        // A cut link (fault injection) drops every transport crossing
        // it, TCP segments and acks included — partitions must starve
        // reliable channels too ([`crate::sim::Sim::set_link_cut`]).
        if self.link_is_cut(src, dst) {
            self.metrics.add_id(dst, mid::NET_PART_DROP, 1);
            return;
        }
        let mut reorder_hold = Dur::ZERO;
        let mut duplicate = false;
        if transport != Transport::Tcp {
            // Fault-injection draws come from the *source* node's RNG
            // stream: the draw executes in the sender's context, so no
            // stream is ever touched from a foreign shard and draw
            // order is partition-independent (`shard` module docs).
            let p_loss = self.config.random_loss;
            if p_loss > 0.0 && self.rng_for(src).gen::<f64>() < p_loss {
                self.metrics.add_id(dst, mid::NET_RAND_DROP, 1);
                return;
            }
            // Switch egress port buffer (tail drop). In fast mode the
            // destination's port clock has a single writer — its own
            // shard — so the check runs in `switch_arrive` instead (the
            // reorder/duplication draws below still run here: they come
            // from the *source* stream, so each node's draw sequence
            // stays a function of its own send order).
            if !self.exec_fast {
                let backlog = self.node(dst).downlink_free.saturating_since(arrive_at_switch);
                let queued = self.config.backlog_bytes(backlog);
                if queued + costs.wire > self.config.switch_port_buffer as u64 {
                    self.metrics.add_id(dst, mid::NET_SWITCH_DROP, 1);
                    self.metrics.add_id(dst, mid::NET_SWITCH_DROP_BYTES, bytes as u64);
                    return;
                }
            }
            let p_re = self.config.random_reorder;
            if p_re > 0.0 && self.rng_for(src).gen::<f64>() < p_re {
                // Hold this copy back a few extra latencies so traffic
                // sent after it arrives first.
                let hold = self.rng_for(src).gen_range(1..5u32);
                reorder_hold = self.config.one_way_latency * hold as u64;
                self.metrics.add_id(dst, mid::NET_REORDERED, 1);
            }
            let p_dup = self.config.random_duplication;
            duplicate = p_dup > 0.0 && self.rng_for(src).gen::<f64>() < p_dup;
        }
        let latency = self.config.one_way_latency;
        if self.exec_fast {
            // Fast mode: stop at the switch ingress. The egress-port
            // math (backlog check, port-clock advance) relocates to the
            // destination's shard via a `SwitchArrive` event, giving the
            // port clock a single writer. Port contention therefore
            // resolves in switch-arrival order — deterministic and
            // thread-count invariant, though not necessarily the global
            // send order determinism mode uses (shard module docs,
            // "Executor modes").
            if duplicate {
                self.metrics.add_id(dst, mid::NET_DUPLICATED, 1);
            }
            let env = Envelope { src, dst, payload, wire_bytes: bytes, transport, tcp_epoch };
            self.file_switch(arrive_at_switch, reorder_hold, duplicate, env);
            return;
        }
        // Cross-shard write when src and dst live on different shards:
        // the egress port is physically shared (see module docs).
        let down = self.node_mut(dst);
        let done = down.downlink_free.max(arrive_at_switch) + costs.tx;
        down.downlink_free = done;
        let at_host = done + latency + reorder_hold;
        let dup_payload = if duplicate {
            self.metrics.add_id(dst, mid::NET_DUPLICATED, 1);
            Some(payload.clone())
        } else {
            None
        };
        let env = Envelope { src, dst, payload, wire_bytes: bytes, transport, tcp_epoch };
        self.file_arrival(at_host, env);
        if let Some(p) = dup_payload {
            // The duplicate copy trails the original by one latency.
            let env = Envelope { src, dst, payload: p, wire_bytes: bytes, transport, tcp_epoch };
            self.file_arrival(at_host + latency, env);
        }
    }

    /// Files a finished datagram at its destination: slab + queue when
    /// the destination shard is the source's, inbox handoff otherwise.
    /// The envelope is interned in the destination shard's slab; only
    /// its EnvId moves through the HostArrive → Deliver pipeline.
    fn file_arrival(&mut self, at_host: Time, env: Envelope) {
        if self.first_event.is_none() {
            self.first_event =
                Some(format!("HostArrive {{ {:?} -> {:?} }} at {at_host}", env.src, env.dst));
        }
        let seq = self.next_seq();
        let ss = self.shard_idx(env.src);
        let ds = self.shard_idx(env.dst);
        if ds == ss {
            let id = self.shards[ds].envs.insert(env);
            self.shards[ds].queue.push(at_host, seq, EventKind::HostArrive(id));
        } else {
            // Boundary crossing: hand off through the inbox. `at_host`
            // is ≥ now + one_way_latency, which is what makes the
            // deploy-time lookahead matrix sound (see `shard`).
            self.cross_shard_events += 1;
            if self.probe_on(crate::probe::category::EXEC) {
                self.probe_handoff(ss, ds, env.dst);
            }
            self.shards[ds]
                .inbox
                .push((ss as u32, CrossShardEvent::Arrive { time: at_host, seq, env }));
        }
    }

    /// Fast mode: files a datagram's switch egress at the destination —
    /// local push when src and dst share a shard, handoff otherwise.
    /// Both paths schedule processing at `arrive + one_way_latency`, so
    /// every packet racing for the destination's egress port joins a
    /// single arrival-ordered stream, and the handoff lands exactly one
    /// lookahead in the future (the bound `drain` asserts).
    fn file_switch(&mut self, arrive: Time, hold: Dur, dup: bool, env: Envelope) {
        let at = arrive + self.config.one_way_latency;
        let seq = self.next_seq();
        let ss = self.shard_idx(env.src);
        let ds = self.shard_idx(env.dst);
        if ds == ss {
            let id = self.shards[ds].envs.insert(env);
            self.shards[ds].queue.push(at, seq, EventKind::SwitchArrive { id, arrive, hold, dup });
        } else {
            self.cross_shard_events += 1;
            if self.probe_on(crate::probe::category::EXEC) {
                self.probe_handoff(ss, ds, env.dst);
            }
            self.shards[ds].inbox.push((
                ss as u32,
                CrossShardEvent::Switch { time: at, seq, env, arrive, hold, dup },
            ));
        }
    }

    /// Fast mode: destination-side switch egress, dispatched one link
    /// latency after the true switch-arrival instant `arrive`. Applies
    /// the serial engine's exact port math — backlog tail-drop (never
    /// for TCP), port-clock advance, host arrival at
    /// `done + latency + hold` — plus the trailing duplicate copy when
    /// the sender's duplication draw fired.
    pub(crate) fn switch_arrive(
        &mut self,
        sh: usize,
        id: EnvId,
        arrive: Time,
        hold: Dur,
        dup: bool,
    ) {
        let env = self.shards[sh].envs.get(id);
        let (dst, bytes, transport) = (env.dst, env.wire_bytes, env.transport);
        let costs = self.costs_for(sh, bytes);
        if transport != Transport::Tcp {
            let backlog = self.node(dst).downlink_free.saturating_since(arrive);
            let queued = self.config.backlog_bytes(backlog);
            if queued + costs.wire > self.config.switch_port_buffer as u64 {
                self.metrics.add_id(dst, mid::NET_SWITCH_DROP, 1);
                self.metrics.add_id(dst, mid::NET_SWITCH_DROP_BYTES, bytes as u64);
                drop(self.shards[sh].envs.take(id));
                return;
            }
        }
        let latency = self.config.one_way_latency;
        let down = self.node_mut(dst);
        let done = down.downlink_free.max(arrive) + costs.tx;
        down.downlink_free = done;
        let at_host = done + latency + hold;
        let seq = self.next_seq();
        self.shards[sh].queue.push(at_host, seq, EventKind::HostArrive(id));
        if dup {
            let env = self.shards[sh].envs.get(id);
            let copy = Envelope {
                src: env.src,
                dst: env.dst,
                payload: env.payload.clone(),
                wire_bytes: env.wire_bytes,
                transport: env.transport,
                tcp_epoch: env.tcp_epoch,
            };
            let id2 = self.shards[sh].envs.insert(copy);
            let seq2 = self.next_seq();
            // The duplicate copy trails the original by one latency.
            self.shards[sh].queue.push(at_host + latency, seq2, EventKind::HostArrive(id2));
        }
    }

    /// Tx-half slot of the `src -> dst` channel (in `src`'s shard), if
    /// one exists.
    #[inline]
    pub(crate) fn tcp_tx_slot(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        let n = self.tcp_nodes;
        if src.0 < n && dst.0 < n {
            match self.tcp_tx_index[src.0 * n + dst.0] {
                0 => None,
                i => Some(i as usize - 1),
            }
        } else {
            None
        }
    }

    /// Rx-half slot of the `src -> dst` channel (in `dst`'s shard), if
    /// one exists.
    #[inline]
    pub(crate) fn tcp_rx_slot(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        let n = self.tcp_nodes;
        if src.0 < n && dst.0 < n {
            match self.tcp_rx_index[src.0 * n + dst.0] {
                0 => None,
                i => Some(i as usize - 1),
            }
        } else {
            None
        }
    }

    /// Tx-half slot of the `src -> dst` channel, creating both halves
    /// (and re-laying the dense index out if nodes were added since) as
    /// needed.
    fn tcp_slot_or_create(&mut self, src: NodeId, dst: NodeId) -> usize {
        self.ensure_tcp_layout();
        let n = self.tcp_nodes;
        let cell = self.tcp_tx_index[src.0 * n + dst.0];
        if cell != 0 {
            return cell as usize - 1;
        }
        let ss = self.shard_idx(src);
        let ds = self.shard_idx(dst);
        let tx_slot = self.shards[ss].tcp_tx.len();
        self.shards[ss].tcp_tx.push(TcpTx::new());
        self.tcp_tx_index[src.0 * n + dst.0] = tx_slot as u32 + 1;
        // Fast mode: a cross-shard rx arena belongs to another worker.
        // The rx half materializes on the destination's shard at first
        // delivery (`deliver_prework`) or is reconciled at worker merge;
        // same-shard pairs keep the eager path.
        if !self.exec_fast || ds == ss {
            let rx_slot = self.shards[ds].tcp_rx.len();
            self.shards[ds].tcp_rx.push(TcpRx::new());
            self.tcp_rx_index[src.0 * n + dst.0] = rx_slot as u32 + 1;
        }
        tx_slot
    }

    /// Re-lays the dense TCP index tables out for the current node count
    /// without creating any channel. The threaded executor calls this
    /// before splitting workers so no worker ever resizes its private
    /// index copy (merges stay cell-aligned).
    pub(crate) fn ensure_tcp_layout(&mut self) {
        let n_now = self.nodes.len();
        if n_now != self.tcp_nodes {
            let old_n = self.tcp_nodes;
            let mut tx = vec![0u32; n_now * n_now];
            let mut rx = vec![0u32; n_now * n_now];
            for s in 0..old_n {
                for d in 0..old_n {
                    tx[s * n_now + d] = self.tcp_tx_index[s * old_n + d];
                    rx[s * n_now + d] = self.tcp_rx_index[s * old_n + d];
                }
            }
            self.tcp_tx_index = tx;
            self.tcp_rx_index = rx;
            self.tcp_nodes = n_now;
        }
    }

    /// Creates the rx half of `src -> dst` in `dst`'s shard with the
    /// given starting epoch. Fast-mode paths only: lazy creation at
    /// first delivery, and the post-run merge reconcile for channels
    /// whose segments were all still in flight.
    pub(crate) fn tcp_rx_create(&mut self, src: NodeId, dst: NodeId, epoch: u32) -> usize {
        let n = self.tcp_nodes;
        debug_assert!(src.0 < n && dst.0 < n, "tcp layout predates this node");
        debug_assert_eq!(self.tcp_rx_index[src.0 * n + dst.0], 0, "rx half already exists");
        let ds = self.shard_idx(dst);
        let slot = self.shards[ds].tcp_rx.len();
        let mut rx = TcpRx::new();
        rx.epoch = epoch;
        self.shards[ds].tcp_rx.push(rx);
        self.tcp_rx_index[src.0 * n + dst.0] = slot as u32 + 1;
        slot
    }

    pub(crate) fn tcp_pump(&mut self, src: NodeId, dst: NodeId) {
        // A crashed sender transmits nothing: popping the queue here would
        // charge `in_flight` for segments `datagram` silently discards,
        // wedging the window forever (the segment is never delivered, so
        // no ack ever returns). The queue is cleared by the crash reset.
        if !self.node(src).up {
            return;
        }
        let Some(slot) = self.tcp_tx_slot(src, dst) else { return };
        let ss = self.shard_idx(src);
        let window = self.config.tcp_window_bytes;
        loop {
            // Peer-liveness read; possibly cross-shard (module docs).
            let peer_down = !self.node(dst).up;
            let ch = &mut self.shards[ss].tcp_tx[slot];
            let Some(&(_, bytes)) = ch.queue.front() else { return };
            if peer_down {
                // Segments to a down peer are written off at the sender
                // (connection-reset semantics) instead of charged to
                // `in_flight` — they would be dropped at the downlink
                // and their acks would never return.
                let (_, bytes) = ch.queue.pop_front().expect("checked front");
                ch.queued_bytes -= bytes as u64;
                self.metrics.add_id(src, mid::NET_TCP_RESET_BYTES, bytes as u64);
                continue;
            }
            if ch.in_flight.saturating_add(bytes) > window && ch.in_flight > 0 {
                return;
            }
            let (payload, bytes) = ch.queue.pop_front().expect("checked front");
            ch.queued_bytes -= bytes as u64;
            ch.in_flight += bytes;
            let epoch = ch.epoch;
            self.datagram(src, &[dst], payload, bytes, Transport::Tcp, epoch);
        }
    }

    /// Sends `payload` over the reliable channel from `src` to `dst`.
    pub fn tcp_send_from(&mut self, src: NodeId, dst: NodeId, payload: Payload, bytes: u32) {
        let slot = self.tcp_slot_or_create(src, dst);
        let ss = self.shard_idx(src);
        let ch = &mut self.shards[ss].tcp_tx[slot];
        ch.queue.push_back((payload, bytes));
        ch.queued_bytes += bytes as u64;
        self.tcp_pump(src, dst);
    }

    /// Resets every TCP channel touching `node` (crash semantics): queued
    /// and in-flight segments are written off under `net.tcp_reset_bytes`
    /// on the sending node, the window reopens, and both halves' epochs
    /// are bumped so acks from before the crash are discarded as stale.
    /// Without this, segments dropped at a down node's downlink never ack
    /// and the channel's window stays full forever. Control plane only
    /// (driver-invoked between events), so the cross-shard writes here
    /// need no handoff protocol.
    pub(crate) fn reset_tcp_of(&mut self, node: NodeId) {
        let n = self.tcp_nodes;
        for src in 0..n {
            for dst in 0..n {
                if src != node.0 && dst != node.0 {
                    continue;
                }
                self.reset_tcp_channel(NodeId(src), NodeId(dst));
            }
        }
    }

    /// Resets the TCP channels in both directions between `a` and `b` —
    /// the heal-time counterpart of [`SimInner::reset_tcp_of`], used when
    /// a cut link is restored ([`crate::sim::Sim::set_link_cut`]):
    /// segments lost inside the cut filled the window without ever
    /// acking, so the channel must be torn down and re-opened just as
    /// after a crash.
    pub(crate) fn reset_tcp_pair(&mut self, a: NodeId, b: NodeId) {
        self.reset_tcp_channel(a, b);
        self.reset_tcp_channel(b, a);
    }

    /// Resets one directed channel `src -> dst` (no-op if none exists):
    /// writes queued and in-flight bytes off at the sender, reopens the
    /// window, resynchronizes the ack expectation to the receiver's
    /// delivery sequence, and bumps both halves' epochs.
    fn reset_tcp_channel(&mut self, src: NodeId, dst: NodeId) {
        let Some(tx_slot) = self.tcp_tx_slot(src, dst) else { return };
        let rx_slot = self.tcp_rx_slot(src, dst).expect("halves paired");
        // Read the rx half first: the tx half's ack expectation
        // resynchronizes to the receiver's delivery sequence.
        let rxs = self.shard_idx(dst);
        let rx = &mut self.shards[rxs].tcp_rx[rx_slot];
        let delivered = rx.delivered_segs;
        rx.epoch = rx.epoch.wrapping_add(1);
        let txs = self.shard_idx(src);
        let tx = &mut self.shards[txs].tcp_tx[tx_slot];
        let lost = tx.in_flight as u64 + tx.queued_bytes;
        tx.queue.clear();
        tx.queued_bytes = 0;
        tx.in_flight = 0;
        tx.acked_segs = delivered;
        tx.epoch = tx.epoch.wrapping_add(1);
        if lost > 0 {
            self.metrics.add_id(src, mid::NET_TCP_RESET_BYTES, lost);
        }
    }

    /// Bytes queued (not yet transmitted) on the TCP channel `src -> dst`.
    /// Protocols use this for application-level back-pressure.
    pub fn tcp_backlog(&self, src: NodeId, dst: NodeId) -> u64 {
        self.tcp_tx_slot(src, dst)
            .map(|slot| {
                let ch = &self.shards[self.shard_idx(src)].tcp_tx[slot];
                ch.queued_bytes + ch.in_flight as u64
            })
            .unwrap_or(0)
    }

    /// Sends a UDP datagram from `src` to `dst`.
    pub fn udp_send_from(&mut self, src: NodeId, dst: NodeId, payload: Payload, bytes: u32) {
        self.datagram(src, &[dst], payload, bytes, Transport::Udp, 0);
    }

    /// Multicasts a datagram from `src` to every subscriber of `group`.
    /// The sender pays for one transmission regardless of group size.
    /// Senders need not subscribe to the group; subscribers that are also
    /// the sender do not receive their own copy (the caller can loop back
    /// locally if the protocol requires it).
    pub fn mcast_from(&mut self, src: NodeId, group: GroupId, payload: Payload, bytes: u32) {
        let mut dsts = std::mem::take(&mut self.mcast_scratch);
        dsts.clear();
        if let Some(g) = self.groups.get(group.0) {
            dsts.extend(g.iter().copied().filter(|&n| n != src));
        }
        self.datagram(src, &dsts, payload, bytes, Transport::Multicast(group), 0);
        self.mcast_scratch = dsts;
    }
}
