//! Deterministic structured tracing: per-shard ring-buffer tracers,
//! instance lifecycle spans, executor telemetry, and trace exporters.
//!
//! # Design
//!
//! The probe layer is always compiled and zero-overhead when disabled
//! (the default): every hook site is a single predictable branch on
//! [`SimInner::probe_on`] — one `u8` mask test — and the record path
//! behind it is `#[cold]`/`#[inline(never)]`, so the engine's hot loops
//! are untouched when probes are off. Recording is *pure observation*:
//! it allocates no event sequence numbers, draws no randomness, and
//! bumps no [`crate::stats::Metrics`] counter, so enabling probes leaves
//! golden traces bit-identical (the `ringpaxos` golden-trace tests pin
//! both the disabled and the enabled case).
//!
//! # Event model
//!
//! A [`ProbeEvent`] is a compact fixed-width record: virtual timestamp,
//! originating node, a [`code`] describing what happened, and one
//! code-specific argument word. Events fall into four [`category`]
//! groups, individually enabled through [`ProbeConfig::categories`]:
//!
//! * **protocol** — consensus lifecycle points recorded by actors
//!   through [`crate::sim::Ctx::probe`]: propose, 2A, 2B, decide,
//!   deliver (see [`code`]).
//! * **net** — datagram send/receive as seen by the engine.
//! * **host** — timer and disk completions.
//! * **executor** — cross-shard handoffs (which also feed the
//!   shard-pair handoff matrix) and, in fast mode, per-worker wall-clock
//!   telemetry ([`WorkerTelemetry`]).
//!
//! # Determinism and thread-count invariance
//!
//! Each shard owns a private ring-buffer tracer (inside
//! [`crate::shard::ShardState`], so tracers travel with their shards
//! through the threaded executor's split/merge and the layer stays
//! `Send`-clean). Every record site executes on the recorded node's own
//! shard — or, for handoffs, the *source* shard — so a shard's stream is
//! a pure function of its own dispatch order. Events deliberately carry
//! **no engine sequence number**: fast mode re-sequences cross-shard
//! handoffs with worker-local seqs, so raw seqs differ across thread
//! counts. Instead the merge key is `(time, shard, per-shard record
//! index)`, all three of which are thread-count invariant within an
//! executor mode. [`crate::sim::Sim::probe_events`] returns that merged
//! stream, and [`encode`] serializes it to bytes for the bit-identity
//! tests. (The two executor *modes* produce different streams — fast
//! mode's handoff set differs by design — so identity is gated within
//! each mode, matching the engine's own guarantees.)
//!
//! Wall-clock worker telemetry (busy vs barrier-wait durations) is kept
//! *outside* the deterministic stream: it is measurement of the host
//! machine, not of the simulation. The deterministic parts of
//! [`WorkerTelemetry`] (rounds, events, realized window widths) and the
//! handoff matrix are thread-count invariant in aggregate.
//!
//! # Reading a trace
//!
//! Post-run, [`lifecycle_spans`] folds the merged stream into
//! per-instance propose→2A→2B→decide→deliver spans and [`decompose`]
//! aggregates them into the latency-decomposition report the ch3/ch5
//! figures consume. [`perfetto_json`] writes the whole stream as a
//! Chrome/Perfetto `trace_event` JSON file (one track per node, one per
//! worker) — load it at `ui.perfetto.dev`. [`CounterSampler`] snapshots
//! a [`crate::stats::Metrics`] counter into time-series rows, the
//! shared engine under the bench harness's throughput traces.

use crate::ids::NodeId;
use crate::sim::Sim;
use crate::time::{Dur, Time};

/// Probe category bits for [`ProbeConfig::categories`].
pub mod category {
    /// Consensus lifecycle events recorded by actors
    /// ([`crate::sim::Ctx::probe`]).
    pub const PROTOCOL: u8 = 1 << 0;
    /// Engine datagram send/receive events.
    pub const NET: u8 = 1 << 1;
    /// Timer and disk completion events.
    pub const HOST: u8 = 1 << 2;
    /// Cross-shard handoffs + executor telemetry.
    pub const EXEC: u8 = 1 << 3;
    /// Every category.
    pub const ALL: u8 = PROTOCOL | NET | HOST | EXEC;
}

/// Well-known probe event codes. The protocol block (1–15) is recorded
/// by consensus actors; the rest by the engine itself.
pub mod code {
    /// A value (batch) entered the proposal pipeline. `arg` is the
    /// instance key ([`super::span_key`]); the event's timestamp is the
    /// earliest client submission in the batch.
    pub const PROPOSE: u16 = 1;
    /// The coordinator emitted Phase 2A for an instance.
    pub const PHASE2A: u16 = 2;
    /// An acceptor cast/forwarded its Phase 2B vote.
    pub const PHASE2B: u16 = 3;
    /// Quorum complete: the decision point for an instance.
    pub const DECIDE: u16 = 4;
    /// A learner delivered the instance to the application.
    pub const DELIVER: u16 = 5;
    /// A Multi-Ring learner's deterministic merge released a delivery.
    pub const MERGE_DELIVER: u16 = 6;
    /// Datagram handed to the NIC. `arg` = `fanout << 32 | bytes`.
    pub const NET_SEND: u16 = 16;
    /// Datagram delivered to the destination actor.
    /// `arg` = `src_node << 32 | bytes`.
    pub const NET_RECV: u16 = 17;
    /// An actor timer fired. `arg` is the timer token.
    pub const HOST_TIMER: u16 = 32;
    /// A disk write completed. `arg` is the completion token.
    pub const HOST_DISK: u16 = 33;
    /// An event crossed a shard boundary. `arg` =
    /// `from_shard << 32 | to_shard`; recorded on the *source* shard.
    pub const EXEC_HANDOFF: u16 = 48;

    /// Human-readable name of a code (unknown codes render as `app`,
    /// the namespace left to actor-defined codes ≥ 256).
    pub fn name(c: u16) -> &'static str {
        match c {
            PROPOSE => "propose",
            PHASE2A => "phase2a",
            PHASE2B => "phase2b",
            DECIDE => "decide",
            DELIVER => "deliver",
            MERGE_DELIVER => "merge_deliver",
            NET_SEND => "net_send",
            NET_RECV => "net_recv",
            HOST_TIMER => "timer",
            HOST_DISK => "disk",
            EXEC_HANDOFF => "handoff",
            _ => "app",
        }
    }

    /// The [`super::category`] bit a code belongs to.
    pub fn category_of(c: u16) -> u8 {
        match c {
            NET_SEND | NET_RECV => super::category::NET,
            HOST_TIMER | HOST_DISK => super::category::HOST,
            EXEC_HANDOFF => super::category::EXEC,
            _ => super::category::PROTOCOL,
        }
    }
}

/// Default per-shard tracer capacity (events). A cap, not a
/// preallocation: buffers grow on demand and wrap once full.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Control-plane probe configuration ([`Sim::set_probes`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProbeConfig {
    /// Which [`category`] bits to record. `0` disables everything (the
    /// default): hook sites reduce to one false branch.
    pub categories: u8,
    /// Per-shard ring-buffer capacity in events. Once full, the oldest
    /// events are overwritten (counted by [`Sim::probe_dropped`]).
    /// Capacity `0` keeps event buffering off while still maintaining
    /// the cheap aggregates of the enabled categories (the handoff
    /// matrix, worker telemetry).
    pub capacity: usize,
}

impl Default for ProbeConfig {
    fn default() -> ProbeConfig {
        ProbeConfig::disabled()
    }
}

impl ProbeConfig {
    /// Probes off — the default; the hot path is untouched.
    pub fn disabled() -> ProbeConfig {
        ProbeConfig { categories: 0, capacity: 0 }
    }

    /// Every category at the default capacity.
    pub fn all() -> ProbeConfig {
        ProbeConfig { categories: category::ALL, capacity: DEFAULT_CAPACITY }
    }

    /// Protocol lifecycle events only (instance spans).
    pub fn lifecycle() -> ProbeConfig {
        ProbeConfig { categories: category::PROTOCOL, capacity: DEFAULT_CAPACITY }
    }

    /// Executor aggregates only (handoff matrix + worker telemetry),
    /// with no event buffering — the cheapest useful configuration.
    pub fn executor_only() -> ProbeConfig {
        ProbeConfig { categories: category::EXEC, capacity: 0 }
    }

    /// Whether any category is enabled.
    pub fn enabled(&self) -> bool {
        self.categories != 0
    }
}

/// One recorded probe event. Compact and fixed-width so streams can be
/// compared byte-for-byte ([`encode`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProbeEvent {
    /// Virtual time the event was recorded (or, for [`code::PROPOSE`],
    /// the earliest submission it covers — see
    /// [`crate::sim::Ctx::probe_at`]).
    pub time: Time,
    /// Node the event belongs to.
    pub node: u32,
    /// What happened ([`code`]).
    pub code: u16,
    /// Code-specific argument word.
    pub arg: u64,
}

/// Bytes per event in [`encode`]'s serialization.
pub const ENCODED_EVENT_BYTES: usize = 22;

/// Serializes a probe stream to little-endian bytes (22 per event:
/// time u64, node u32, code u16, arg u64) — the byte-identity format
/// the trace-determinism tests compare.
pub fn encode(events: &[ProbeEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * ENCODED_EVENT_BYTES);
    for e in events {
        out.extend_from_slice(&e.time.as_nanos().to_le_bytes());
        out.extend_from_slice(&e.node.to_le_bytes());
        out.extend_from_slice(&e.code.to_le_bytes());
        out.extend_from_slice(&e.arg.to_le_bytes());
    }
    out
}

/// Per-shard ring-buffer tracer. Private to the engine; read back
/// merged through [`Sim::probe_events`].
#[derive(Default, Debug)]
pub(crate) struct ShardTracer {
    /// Event storage; grows to `capacity` then wraps.
    buf: Vec<ProbeEvent>,
    /// Next overwrite position once the buffer has wrapped.
    head: usize,
    /// Capacity cap (0 = event recording off).
    capacity: usize,
    /// Events overwritten after the buffer filled.
    dropped: u64,
}

impl ShardTracer {
    /// Re-arms the tracer with a new capacity, clearing prior events.
    pub(crate) fn reset(&mut self, capacity: usize) {
        self.buf.clear();
        self.head = 0;
        self.capacity = capacity;
        self.dropped = 0;
    }

    /// Appends one event (ring semantics: overwrites the oldest once
    /// `capacity` is reached).
    pub(crate) fn record(&mut self, ev: ProbeEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events overwritten after the ring filled.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events in record order (oldest first), with each event's
    /// per-shard record index — `dropped + position`, so indexes are
    /// stable even after the ring wraps.
    pub(crate) fn chronological(&self) -> impl Iterator<Item = (u64, ProbeEvent)> + '_ {
        let (wrapped, first) = self.buf.split_at(self.head);
        first
            .iter()
            .chain(wrapped.iter())
            .copied()
            .enumerate()
            .map(|(i, ev)| (self.dropped + i as u64, ev))
    }
}

/// Packs a `(ring, instance)` pair into a probe argument word: ring in
/// the top 16 bits, instance in the low 48. Protocol actors use this as
/// the `arg` of every lifecycle event so spans from co-deployed rings
/// (Multi-Ring Paxos) never collide.
pub fn span_key(ring: u32, instance: u64) -> u64 {
    ((ring as u64) << 48) | (instance & 0x0000_FFFF_FFFF_FFFF)
}

/// Per-instance lifecycle timestamps, folded from a merged probe stream
/// by [`lifecycle_spans`]. Each stage holds the *earliest* matching
/// event (e.g. the first learner to deliver).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstanceSpan {
    /// The instance key ([`span_key`]).
    pub key: u64,
    /// Earliest client submission covered by the instance's batch.
    pub propose: Option<Time>,
    /// Phase 2A emission at the coordinator.
    pub phase2a: Option<Time>,
    /// First acceptor 2B vote.
    pub phase2b: Option<Time>,
    /// Quorum completion (the decision point).
    pub decide: Option<Time>,
    /// First learner delivery.
    pub deliver: Option<Time>,
}

impl InstanceSpan {
    /// Ring index of the span's key.
    pub fn ring(&self) -> u32 {
        (self.key >> 48) as u32
    }

    /// Instance number of the span's key.
    pub fn instance(&self) -> u64 {
        self.key & 0x0000_FFFF_FFFF_FFFF
    }
}

/// Folds a merged probe stream into per-instance lifecycle spans,
/// sorted by key. Only protocol-category lifecycle codes participate;
/// each stage keeps its earliest timestamp.
pub fn lifecycle_spans(events: &[ProbeEvent]) -> Vec<InstanceSpan> {
    use std::collections::BTreeMap;
    let mut spans: BTreeMap<u64, InstanceSpan> = BTreeMap::new();
    for e in events {
        let slot = match e.code {
            code::PROPOSE | code::PHASE2A | code::PHASE2B | code::DECIDE | code::DELIVER => spans
                .entry(e.arg)
                .or_insert_with(|| InstanceSpan { key: e.arg, ..Default::default() }),
            _ => continue,
        };
        let stage = match e.code {
            code::PROPOSE => &mut slot.propose,
            code::PHASE2A => &mut slot.phase2a,
            code::PHASE2B => &mut slot.phase2b,
            code::DECIDE => &mut slot.decide,
            _ => &mut slot.deliver,
        };
        match stage {
            Some(t) if *t <= e.time => {}
            _ => *stage = Some(e.time),
        }
    }
    spans.into_values().collect()
}

/// Summary of one lifecycle stage across instances. Exact (computed
/// from the full sample set, not histogram buckets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Instances that exhibited both endpoints of the stage.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Dur,
    /// Median.
    pub p50: Dur,
    /// 95th percentile.
    pub p95: Dur,
    /// Largest sample.
    pub max: Dur,
}

fn stage_stats(mut samples: Vec<u64>) -> StageStats {
    if samples.is_empty() {
        return StageStats::default();
    }
    samples.sort_unstable();
    let n = samples.len();
    let sum: u128 = samples.iter().map(|&v| v as u128).sum();
    let at = |frac: f64| samples[(((n as f64) * frac).ceil() as usize).clamp(1, n) - 1];
    StageStats {
        count: n as u64,
        mean: Dur::nanos((sum / n as u128) as u64),
        p50: Dur::nanos(at(0.50)),
        p95: Dur::nanos(at(0.95)),
        max: Dur::nanos(samples[n - 1]),
    }
}

/// The latency-decomposition report: where a consensus instance spends
/// its time between propose, 2A, 2B, decide, and deliver. Produced by
/// [`decompose`]; feeds the ch3/ch5 latency figures.
#[derive(Clone, Copy, Debug, Default)]
pub struct LifecycleReport {
    /// Instances observed (any stage present).
    pub instances: u64,
    /// propose → 2A: batch-formation / queueing delay at the proposer
    /// and coordinator.
    pub propose_to_2a: StageStats,
    /// 2A → first 2B: vote-pipeline start.
    pub a2_to_2b: StageStats,
    /// First 2B → decide: quorum completion along the ring.
    pub b2_to_decide: StageStats,
    /// decide → first delivery: decision propagation + in-order release.
    pub decide_to_deliver: StageStats,
    /// propose → first delivery, end to end.
    pub total: StageStats,
}

/// Aggregates lifecycle spans into a [`LifecycleReport`]. Stages with a
/// missing endpoint (e.g. an undelivered tail instance at the deadline)
/// are skipped per stage, not per instance.
pub fn decompose(spans: &[InstanceSpan]) -> LifecycleReport {
    let mut s01 = Vec::new();
    let mut s12 = Vec::new();
    let mut s23 = Vec::new();
    let mut s34 = Vec::new();
    let mut tot = Vec::new();
    for sp in spans {
        if let (Some(a), Some(b)) = (sp.propose, sp.phase2a) {
            s01.push(b.saturating_since(a).as_nanos());
        }
        if let (Some(a), Some(b)) = (sp.phase2a, sp.phase2b) {
            s12.push(b.saturating_since(a).as_nanos());
        }
        if let (Some(a), Some(b)) = (sp.phase2b, sp.decide) {
            s23.push(b.saturating_since(a).as_nanos());
        }
        if let (Some(a), Some(b)) = (sp.decide, sp.deliver) {
            s34.push(b.saturating_since(a).as_nanos());
        }
        if let (Some(a), Some(b)) = (sp.propose, sp.deliver) {
            tot.push(b.saturating_since(a).as_nanos());
        }
    }
    LifecycleReport {
        instances: spans.len() as u64,
        propose_to_2a: stage_stats(s01),
        a2_to_2b: stage_stats(s12),
        b2_to_decide: stage_stats(s23),
        decide_to_deliver: stage_stats(s34),
        total: stage_stats(tot),
    }
}

impl LifecycleReport {
    /// The report as one JSON object (stage stats in milliseconds).
    pub fn to_json(&self) -> String {
        fn stage(s: &StageStats) -> String {
            format!(
                "{{\"count\":{},\"mean_ms\":{:.4},\"p50_ms\":{:.4},\"p95_ms\":{:.4},\"max_ms\":{:.4}}}",
                s.count,
                s.mean.as_nanos() as f64 / 1e6,
                s.p50.as_nanos() as f64 / 1e6,
                s.p95.as_nanos() as f64 / 1e6,
                s.max.as_nanos() as f64 / 1e6,
            )
        }
        format!(
            "{{\"instances\":{},\"propose_to_2a\":{},\"2a_to_2b\":{},\"2b_to_decide\":{},\"decide_to_deliver\":{},\"total\":{}}}",
            self.instances,
            stage(&self.propose_to_2a),
            stage(&self.a2_to_2b),
            stage(&self.b2_to_decide),
            stage(&self.decide_to_deliver),
            stage(&self.total),
        )
    }
}

/// Wall-clock and schedule telemetry of one fast-mode worker, collected
/// when the [`category::EXEC`] probe category is enabled. `rounds`,
/// `events`, and `window_ns` describe the deterministic schedule; `busy`
/// and `barrier_wait` are host wall-clock measurements (not part of any
/// determinism guarantee). The round count (identical for every worker
/// — all advance through the same gmin sequence in lockstep), the
/// events total across workers, and the handoff matrix are thread-count
/// invariant; the per-worker event split and the realized window widths
/// describe the worker's owned-shard subset, so they follow the
/// shard → worker assignment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// Worker index (`shard % workers == worker`).
    pub worker: usize,
    /// Barrier rounds this worker participated in.
    pub rounds: u64,
    /// Events this worker dispatched.
    pub events: u64,
    /// Sum of realized window widths: virtual time actually spanned by
    /// this worker's dispatches per round (≤ the nominal safe window).
    pub window_ns: u128,
    /// Wall-clock time outside barrier waits.
    pub busy: std::time::Duration,
    /// Wall-clock time blocked on the two round barriers.
    pub barrier_wait: std::time::Duration,
}

impl WorkerTelemetry {
    /// Mean realized window width per round.
    pub fn mean_window(&self) -> Dur {
        if self.rounds == 0 {
            Dur::ZERO
        } else {
            Dur::nanos((self.window_ns / self.rounds as u128) as u64)
        }
    }

    /// Fraction of wall time spent blocked on barriers.
    pub fn barrier_frac(&self) -> f64 {
        let total = self.busy + self.barrier_wait;
        if total.is_zero() {
            0.0
        } else {
            self.barrier_wait.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Writes a probe stream (plus optional worker telemetry) as
/// Chrome/Perfetto `trace_event` JSON: one track per node (pid 1), one
/// async span per instance (pid 2), one track per worker (pid 3).
/// Timestamps are virtual microseconds; worker spans use wall-clock
/// microseconds on their own process row. Load at `ui.perfetto.dev` or
/// `chrome://tracing`.
pub fn perfetto_json(events: &[ProbeEvent], workers: &[WorkerTelemetry]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&ev);
    };
    push(
        &mut out,
        &mut first,
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"args\":{\"name\":\"cluster\"}}".into(),
    );
    push(
        &mut out,
        &mut first,
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"args\":{\"name\":\"instances\"}}"
            .into(),
    );
    let mut named_nodes = std::collections::BTreeSet::new();
    for e in events {
        if named_nodes.insert(e.node) {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"node {}\"}}}}",
                    e.node, e.node
                ),
            );
        }
    }
    for e in events {
        let ts = e.time.as_nanos() as f64 / 1000.0;
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{},\"args\":{{\"arg\":{}}}}}",
                code::name(e.code),
                match code::category_of(e.code) {
                    category::NET => "net",
                    category::HOST => "host",
                    category::EXEC => "exec",
                    _ => "protocol",
                },
                e.node,
                e.arg
            ),
        );
    }
    // Async begin/end pair per instance span (propose → deliver).
    for sp in lifecycle_spans(events) {
        let (Some(start), Some(end)) = (sp.propose.or(sp.phase2a), sp.deliver) else { continue };
        let (b, e) = (start.as_nanos() as f64 / 1000.0, end.as_nanos() as f64 / 1000.0);
        let (ring, inst) = (sp.ring(), sp.instance());
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"instance {inst}\",\"cat\":\"lifecycle\",\"ph\":\"b\",\"id\":{},\"ts\":{b:.3},\"pid\":2,\"tid\":{ring},\"args\":{{\"ring\":{ring}}}}}",
                sp.key
            ),
        );
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"instance {inst}\",\"cat\":\"lifecycle\",\"ph\":\"e\",\"id\":{},\"ts\":{e:.3},\"pid\":2,\"tid\":{ring}}}",
                sp.key
            ),
        );
    }
    if !workers.is_empty() {
        push(
            &mut out,
            &mut first,
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":3,\"args\":{\"name\":\"executor\"}}"
                .into(),
        );
        for w in workers {
            let busy_us = w.busy.as_secs_f64() * 1e6;
            let wait_us = w.barrier_wait.as_secs_f64() * 1e6;
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"busy\",\"cat\":\"executor\",\"ph\":\"X\",\"ts\":0,\"dur\":{busy_us:.1},\"pid\":3,\"tid\":{},\"args\":{{\"rounds\":{},\"events\":{},\"barrier_wait_us\":{wait_us:.1},\"mean_window_us\":{:.3}}}}}",
                    w.worker,
                    w.rounds,
                    w.events,
                    w.mean_window().as_nanos() as f64 / 1000.0
                ),
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One time-series row of a [`CounterSampler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Virtual time of the snapshot.
    pub t: Time,
    /// Counter value at the snapshot.
    pub total: u64,
    /// Increase since the previous snapshot.
    pub delta: u64,
}

/// Periodically snapshots one [`crate::stats::Metrics`] counter into
/// time-series rows — the engine under the bench harness's throughput
/// traces (the former ad-hoc 250 ms bucket loops). Scope is either one
/// node's counter or the cluster-wide sum.
#[derive(Debug)]
pub struct CounterSampler {
    name: &'static str,
    node: Option<NodeId>,
    last: u64,
    samples: Vec<CounterSample>,
}

impl CounterSampler {
    /// A sampler over `name`, scoped to `node` (or the cluster sum when
    /// `None`). The baseline is zero; call [`CounterSampler::rebase`]
    /// after warmup to measure steady-state deltas only.
    pub fn new(name: &'static str, node: Option<NodeId>) -> CounterSampler {
        CounterSampler { name, node, last: 0, samples: Vec::new() }
    }

    fn read(&self, sim: &Sim) -> u64 {
        match self.node {
            Some(n) => sim.metrics().counter(n, self.name),
            None => sim.metrics().sum(self.name),
        }
    }

    /// Resets the delta baseline to the counter's current value without
    /// emitting a row.
    pub fn rebase(&mut self, sim: &Sim) {
        self.last = self.read(sim);
    }

    /// Takes one snapshot at the current virtual time, returning the
    /// delta since the previous snapshot (or rebase).
    pub fn sample(&mut self, sim: &Sim) -> u64 {
        let total = self.read(sim);
        let delta = total - self.last;
        self.last = total;
        self.samples.push(CounterSample { t: sim.now(), total, delta });
        delta
    }

    /// All rows sampled so far.
    pub fn samples(&self) -> &[CounterSample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, node: u32, code: u16, arg: u64) -> ProbeEvent {
        ProbeEvent { time: Time::ZERO + Dur::nanos(t), node, code, arg }
    }

    #[test]
    fn tracer_wraps_and_keeps_newest() {
        let mut tr = ShardTracer::default();
        tr.reset(3);
        for i in 0..5u64 {
            tr.record(ev(i, 0, code::PROPOSE, i));
        }
        assert_eq!(tr.dropped(), 2);
        let got: Vec<(u64, u64)> = tr.chronological().map(|(idx, e)| (idx, e.arg)).collect();
        // Oldest two (args 0, 1) were overwritten; indexes stay global.
        assert_eq!(got, vec![(2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn tracer_capacity_zero_records_nothing() {
        let mut tr = ShardTracer::default();
        tr.record(ev(1, 0, code::PROPOSE, 1));
        assert_eq!(tr.chronological().count(), 0);
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn encode_is_fixed_width_and_order_sensitive() {
        let a = encode(&[ev(1, 2, code::PHASE2A, 3), ev(4, 5, code::DECIDE, 6)]);
        let b = encode(&[ev(4, 5, code::DECIDE, 6), ev(1, 2, code::PHASE2A, 3)]);
        assert_eq!(a.len(), 2 * ENCODED_EVENT_BYTES);
        assert_ne!(a, b);
    }

    #[test]
    fn span_key_roundtrips() {
        let k = span_key(7, 123_456);
        let sp = InstanceSpan { key: k, ..Default::default() };
        assert_eq!(sp.ring(), 7);
        assert_eq!(sp.instance(), 123_456);
    }

    #[test]
    fn lifecycle_spans_take_earliest_per_stage() {
        let k = span_key(0, 9);
        let events = [
            ev(100, 0, code::PROPOSE, k),
            ev(200, 0, code::PHASE2A, k),
            ev(300, 1, code::PHASE2B, k),
            ev(350, 2, code::PHASE2B, k), // later vote: ignored
            ev(400, 2, code::DECIDE, k),
            ev(500, 3, code::DELIVER, k),
            ev(450, 1, code::DELIVER, k), // earlier learner wins
        ];
        let spans = lifecycle_spans(&events);
        assert_eq!(spans.len(), 1);
        let sp = spans[0];
        assert_eq!(sp.phase2b, Some(Time::ZERO + Dur::nanos(300)));
        assert_eq!(sp.deliver, Some(Time::ZERO + Dur::nanos(450)));
        let report = decompose(&spans);
        assert_eq!(report.instances, 1);
        assert_eq!(report.propose_to_2a.mean, Dur::nanos(100));
        assert_eq!(report.a2_to_2b.mean, Dur::nanos(100));
        assert_eq!(report.b2_to_decide.mean, Dur::nanos(100));
        assert_eq!(report.decide_to_deliver.mean, Dur::nanos(50));
        assert_eq!(report.total.mean, Dur::nanos(350));
    }

    #[test]
    fn stage_stats_percentiles_exact() {
        let s = stage_stats((1..=100u64).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Dur::nanos(50));
        assert_eq!(s.p95, Dur::nanos(95));
        assert_eq!(s.max, Dur::nanos(100));
        assert_eq!(s.mean, Dur::nanos(50)); // 5050/100 truncated
        assert_eq!(stage_stats(Vec::new()), StageStats::default());
    }

    #[test]
    fn perfetto_json_is_balanced_and_tracked() {
        let k = span_key(0, 1);
        let events = [
            ev(1_000, 0, code::PROPOSE, k),
            ev(2_000, 0, code::PHASE2A, k),
            ev(9_000, 1, code::DELIVER, k),
        ];
        let workers = [WorkerTelemetry { worker: 0, rounds: 4, events: 10, ..Default::default() }];
        let json = perfetto_json(&events, &workers);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"node 0\""));
        assert!(json.contains("\"name\":\"instance 1\""));
        assert!(json.contains("\"name\":\"busy\""));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn lifecycle_report_json_shape() {
        let json = LifecycleReport::default().to_json();
        assert!(json.contains("\"propose_to_2a\""));
        assert!(json.contains("\"decide_to_deliver\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
