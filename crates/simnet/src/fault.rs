//! Fault-injection schedules: [`FaultPlan`], a timed list of
//! [`FaultAction`]s driven over a running [`Sim`].
//!
//! `FaultPlan` generalizes the recovery crate's `CrashPlan` (which now
//! delegates here): beyond crash/recover/restart/respawn of single
//! nodes it injects
//!
//! * **link partitions** — symmetric cuts between node sets that drop
//!   every transport, TCP included (`net.part_drop`); healing resets
//!   the TCP channels across the former cut so wedged windows reopen,
//! * **loss / reorder / duplication bursts** — timed changes to the
//!   network's `random_loss` / `random_reorder` / `random_duplication`
//!   knobs (counters `net.rand_drop`, `net.reordered`,
//!   `net.duplicated`),
//! * **stragglers** — per-node CPU or disk slowdown factors
//!   ([`Sim::set_cpu_slowdown`] / [`Sim::set_disk_slowdown`]),
//! * **repeated crash/respawn cycles**, via the same respawn closure
//!   protocol as `CrashPlan`: the closure installs a fresh actor over
//!   the node's stable store.
//!
//! Every action is applied from the control plane between events
//! (`sim.run_until(at)` first), so schedules compose with the engine's
//! determinism: the same plan over the same seed yields the same trace
//! under every shard partition. Tests, proptests, and the `bench`
//! failover figures all drive failures through this one layer.

use crate::ids::NodeId;
use crate::sim::Sim;
use crate::time::Time;

/// One timed fault-injection action.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// `set_node_up(node, false)`: the node drops all traffic.
    Crash(NodeId),
    /// `set_node_up(node, true)`: back up, actor state preserved,
    /// timers it missed while down are gone.
    Recover(NodeId),
    /// `restart_node(node)`: back up and the existing actor's
    /// `on_start` re-runs (SIGSTOP/SIGCONT semantics — actors must
    /// tolerate the resulting duplicate timer chains).
    Restart(NodeId),
    /// Bring the node up and hand it to the respawn closure, which
    /// installs a fresh actor over the node's stable store
    /// (process-restart-with-recovery semantics).
    Respawn(NodeId),
    /// Cut every link between a node of the first set and a node of
    /// the second (symmetric; drops all transports).
    CutLinks(Vec<NodeId>, Vec<NodeId>),
    /// Heal the cuts between the two sets (TCP channels across the
    /// former cut are reset so their windows reopen).
    HealLinks(Vec<NodeId>, Vec<NodeId>),
    /// Set the datagram loss probability.
    SetLoss(f64),
    /// Set the datagram reorder probability.
    SetReorder(f64),
    /// Set the datagram duplication probability.
    SetDuplication(f64),
    /// Multiply every CPU cost on the node by the factor (1.0 heals).
    SlowCpu(NodeId, f64),
    /// Multiply every disk write time on the node by the factor
    /// (1.0 heals).
    SlowDisk(NodeId, f64),
}

/// A timed fault schedule driven over a simulation (module docs).
#[derive(Default)]
pub struct FaultPlan {
    events: Vec<(Time, FaultAction)>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an action at `at` (builder style). Actions need not be
    /// inserted in time order; `run` sorts stably, so same-instant
    /// actions apply in insertion order.
    pub fn at(mut self, at: Time, action: FaultAction) -> FaultPlan {
        self.events.push((at, action));
        self
    }

    /// A crash at `down_at` followed by a respawn (fresh actor over the
    /// stable store) at `up_at`.
    pub fn crash_cycle(self, node: NodeId, down_at: Time, up_at: Time) -> FaultPlan {
        self.at(down_at, FaultAction::Crash(node)).at(up_at, FaultAction::Respawn(node))
    }

    /// A loss burst: probability `p` from `from`, back to zero at
    /// `until`.
    pub fn loss_burst(self, from: Time, until: Time, p: f64) -> FaultPlan {
        self.at(from, FaultAction::SetLoss(p)).at(until, FaultAction::SetLoss(0.0))
    }

    /// A reorder burst over `[from, until)`.
    pub fn reorder_burst(self, from: Time, until: Time, p: f64) -> FaultPlan {
        self.at(from, FaultAction::SetReorder(p)).at(until, FaultAction::SetReorder(0.0))
    }

    /// A duplication burst over `[from, until)`.
    pub fn duplication_burst(self, from: Time, until: Time, p: f64) -> FaultPlan {
        self.at(from, FaultAction::SetDuplication(p)).at(until, FaultAction::SetDuplication(0.0))
    }

    /// A link partition between node sets `a` and `b` over
    /// `[from, until)`, healed (with TCP resets) at `until`.
    pub fn partition_burst(self, from: Time, until: Time, a: &[NodeId], b: &[NodeId]) -> FaultPlan {
        self.at(from, FaultAction::CutLinks(a.to_vec(), b.to_vec()))
            .at(until, FaultAction::HealLinks(a.to_vec(), b.to_vec()))
    }

    /// A CPU straggler: `node` runs `factor`× slower over
    /// `[from, until)`.
    pub fn straggler(self, node: NodeId, from: Time, until: Time, factor: f64) -> FaultPlan {
        self.at(from, FaultAction::SlowCpu(node, factor)).at(until, FaultAction::SlowCpu(node, 1.0))
    }

    /// A disk straggler: `node`'s writes take `factor`× longer over
    /// `[from, until)`.
    pub fn disk_straggler(self, node: NodeId, from: Time, until: Time, factor: f64) -> FaultPlan {
        self.at(from, FaultAction::SlowDisk(node, factor))
            .at(until, FaultAction::SlowDisk(node, 1.0))
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(Time, FaultAction)] {
        &self.events
    }

    /// Runs `sim` through every scheduled action (in time order, stable
    /// for ties) and on to `until`. `respawn` is invoked for
    /// [`FaultAction::Respawn`] events after the node is marked up; it
    /// must install the fresh actor (typically `sim.replace_actor` with
    /// a recovery-enabled process sharing the node's stable store).
    pub fn run(mut self, sim: &mut Sim, until: Time, mut respawn: impl FnMut(&mut Sim, NodeId)) {
        self.step(sim, until, &mut respawn);
    }

    /// Applies (and consumes) every action scheduled at or before `t`,
    /// running the simulation to each action's instant and then on to
    /// `t`; later actions stay queued. Call once per trace bucket to
    /// interleave a fault schedule with measurement — the `bench`
    /// failover figures sample delivered bytes between steps.
    pub fn step(&mut self, sim: &mut Sim, t: Time, respawn: &mut impl FnMut(&mut Sim, NodeId)) {
        self.events.sort_by_key(|&(at, _)| at);
        let rest = self.events.split_off(self.events.partition_point(|&(at, _)| at <= t));
        for (at, action) in std::mem::replace(&mut self.events, rest) {
            sim.run_until(at);
            apply(sim, action, respawn);
        }
        sim.run_until(t);
    }
}

/// Applies one action to the simulation at the current instant.
fn apply(sim: &mut Sim, action: FaultAction, respawn: &mut impl FnMut(&mut Sim, NodeId)) {
    match action {
        FaultAction::Crash(n) => sim.set_node_up(n, false),
        FaultAction::Recover(n) => sim.set_node_up(n, true),
        FaultAction::Restart(n) => sim.restart_node(n),
        FaultAction::Respawn(n) => {
            sim.set_node_up(n, true);
            respawn(sim, n);
        }
        FaultAction::CutLinks(a, b) => set_cut(sim, &a, &b, true),
        FaultAction::HealLinks(a, b) => set_cut(sim, &a, &b, false),
        FaultAction::SetLoss(p) => sim.set_random_loss(p),
        FaultAction::SetReorder(p) => sim.set_random_reorder(p),
        FaultAction::SetDuplication(p) => sim.set_random_duplication(p),
        FaultAction::SlowCpu(n, f) => sim.set_cpu_slowdown(n, f),
        FaultAction::SlowDisk(n, f) => sim.set_disk_slowdown(n, f),
    }
}

fn set_cut(sim: &mut Sim, a: &[NodeId], b: &[NodeId], cut: bool) {
    for &x in a {
        for &y in b {
            if x != y {
                sim.set_link_cut(x, y, cut);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::prelude::*;
    use std::sync::Arc;
    use std::sync::Mutex;

    struct Recorder(Arc<Mutex<Vec<u32>>>);
    impl Actor for Recorder {
        fn on_message(&mut self, env: &Envelope, _ctx: &mut Ctx) {
            self.0.lock().unwrap().push(*env.payload.downcast_ref::<u32>().expect("u32"));
        }
    }
    struct Quiet;
    impl Actor for Quiet {
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }

    /// A periodic UDP sender, so traffic exists across the plan's
    /// whole schedule without driver intervention.
    struct Ticker {
        dst: NodeId,
        n: u32,
    }
    impl Actor for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(Dur::micros(500), TimerToken(0));
        }
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
            ctx.udp_send(self.dst, self.n, 256);
            self.n += 1;
            ctx.set_timer(Dur::micros(500), TimerToken(0));
        }
    }

    #[test]
    fn partition_burst_cuts_and_heals_udp() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default());
        let b = NodeId(1);
        let a = sim.add_node(Box::new(Ticker { dst: b, n: 0 }));
        let b = sim.add_node(Box::new(Recorder(log.clone())));
        FaultPlan::new()
            .partition_burst(Time::from_millis(10), Time::from_millis(20), &[a], &[b])
            .run(&mut sim, Time::from_millis(30), |_, _| {});
        assert!(sim.metrics().counter(b, "net.part_drop") > 0, "cut dropped datagrams");
        // Sequence numbers delivered: a gap where the cut was, traffic
        // on both sides of it.
        let got = log.lock().unwrap();
        let max = *got.last().expect("deliveries");
        assert!((got.len() as u32) < max, "some datagrams were cut");
        assert!(max > 40, "traffic resumed after the heal");
    }

    #[test]
    fn link_cut_drops_tcp_and_heal_resets_channel() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut cfg = SimConfig::default();
        cfg.tcp_window_bytes = 64 * 1024;
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder(log.clone())));
        sim.set_link_cut(a, b, true);
        sim.with_ctx(a, |ctx| {
            for i in 0..20u32 {
                ctx.tcp_send(b, i, 32 * 1024);
            }
        });
        sim.run_until(Time::from_millis(10));
        assert!(log.lock().unwrap().is_empty(), "nothing crosses a cut link");
        assert!(sim.metrics().counter(b, "net.part_drop") > 0);
        sim.set_link_cut(a, b, false);
        assert!(
            sim.metrics().counter(a, "net.tcp_reset_bytes") > 0,
            "healing writes off segments lost in the cut"
        );
        sim.with_ctx(a, |ctx| {
            for i in 100..105u32 {
                ctx.tcp_send(b, i, 32 * 1024);
            }
        });
        sim.run_to_idle();
        assert_eq!(*log.lock().unwrap(), (100..105).collect::<Vec<_>>(), "post-heal traffic flows");
    }

    #[test]
    fn cpu_straggler_slows_then_heals() {
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node(Box::new(Quiet));
        sim.set_cpu_slowdown(n, 4.0);
        sim.with_ctx(n, |ctx| ctx.charge_cpu(0, Dur::millis(1)));
        assert_eq!(sim.cpu_busy(n, 0), Dur::millis(4));
        sim.set_cpu_slowdown(n, 1.0);
        sim.with_ctx(n, |ctx| ctx.charge_cpu(0, Dur::millis(1)));
        assert_eq!(sim.cpu_busy(n, 0), Dur::millis(5));
    }

    #[test]
    fn reorder_knob_delivers_out_of_order_and_counts() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut cfg = SimConfig::default();
        cfg.random_reorder = 0.2;
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder(log.clone())));
        sim.with_ctx(a, |ctx| {
            for i in 0..200u32 {
                ctx.udp_send(b, i, 256);
            }
        });
        sim.run_to_idle();
        let got = log.lock().unwrap();
        assert_eq!(got.len(), 200, "reordering loses nothing");
        assert!(got.windows(2).any(|w| w[0] > w[1]), "some pair arrived out of order");
        assert!(sim.metrics().counter(b, "net.reordered") > 0);
    }

    #[test]
    fn duplication_knob_delivers_extra_copies_and_counts() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut cfg = SimConfig::default();
        cfg.random_duplication = 0.2;
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder(log.clone())));
        sim.with_ctx(a, |ctx| {
            for i in 0..200u32 {
                ctx.udp_send(b, i, 256);
            }
        });
        sim.run_to_idle();
        let dups = sim.metrics().counter(b, "net.duplicated");
        assert!(dups > 0, "some datagrams duplicated");
        assert_eq!(log.lock().unwrap().len() as u64, 200 + dups, "every copy was delivered");
    }

    #[test]
    fn knob_bursts_apply_and_clear() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node(Box::new(Quiet));
        let _b = sim.add_node(Box::new(Quiet));
        FaultPlan::new()
            .loss_burst(Time::from_millis(1), Time::from_millis(2), 0.5)
            .straggler(a, Time::from_millis(1), Time::from_millis(2), 3.0)
            .run(&mut sim, Time::from_millis(3), |_, _| {});
        assert_eq!(sim.config().random_loss, 0.0);
    }
}
