//! Simulation configuration.
//!
//! The defaults model the paper's testbed: Dell SC1435 nodes (2× dual-core
//! AMD Opteron 2.0 GHz, 4 GB RAM) connected by an HP ProCurve 2900-48G
//! gigabit switch with a 0.1 ms round-trip time, and OCZ-VERTEX3 SSDs for
//! the experiments with disk writes. The CPU cost constants are calibrated
//! so that (a) a single sender saturates a gigabit link, (b) the M-Ring
//! Paxos coordinator peaks near 88% CPU at ~900 Mbps (thesis Table 3.3),
//! and (c) synchronous 32 KB disk writes sustain ~270 Mbps (§3.5.5).

use crate::time::Dur;

/// Cluster-wide simulation parameters. Construct with [`SimConfig::default`]
/// and override individual fields per experiment.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the simulation's deterministic random number generator.
    pub seed: u64,
    /// Full-duplex link bandwidth of every node, in bits per second.
    pub link_bandwidth_bps: u64,
    /// One-way network latency (propagation plus switch transit).
    pub one_way_latency: Dur,
    /// Maximum transmission unit of the network, in bytes.
    pub mtu_bytes: u32,
    /// Per-MTU-frame header overhead on the wire (Ethernet + IP + UDP).
    pub frame_overhead_bytes: u32,
    /// Number of CPU cores per node.
    pub cores_per_node: usize,
    /// CPU cost of one send system call (per datagram, regardless of size).
    pub send_syscall_cost: Dur,
    /// CPU cost per KiB on the send path (copy + fragmentation + UDP stack).
    pub send_ns_per_kib: u64,
    /// CPU cost of receiving one MTU frame (interrupt + kernel path).
    pub recv_frame_cost: Dur,
    /// CPU cost per KiB on the receive path.
    pub recv_ns_per_kib: u64,
    /// Capacity of each UDP socket receive buffer, in bytes.
    pub udp_socket_buffer: u32,
    /// Effective TCP window per connection, in bytes (models the socket
    /// buffer size divided by the congestion-control headroom).
    pub tcp_window_bytes: u32,
    /// Buffer of the switch egress port feeding each node's downlink, in
    /// bytes. Datagrams arriving when the port queue exceeds this are
    /// dropped (tail drop). TCP traffic is exempt (flow controlled).
    pub switch_port_buffer: u32,
    /// Probability that any UDP datagram copy is lost in transit, for
    /// failure-injection experiments. Zero by default.
    pub random_loss: f64,
    /// Probability that any UDP datagram copy is held back in the switch
    /// for a few extra latencies, arriving *after* datagrams sent later
    /// (reorder injection). Zero by default.
    pub random_reorder: f64,
    /// Probability that the switch delivers an extra copy of a UDP
    /// datagram (duplication injection). Zero by default.
    pub random_duplication: f64,
    /// Raw sequential bandwidth of the node-local SSD, in bits per second.
    pub disk_bandwidth_bps: u64,
    /// Fixed per-operation latency of a disk write (seek/flush overhead).
    pub disk_op_latency: Dur,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed,
            link_bandwidth_bps: 1_000_000_000,
            one_way_latency: Dur::micros(50),
            mtu_bytes: 1500,
            frame_overhead_bytes: 66,
            cores_per_node: 4,
            send_syscall_cost: Dur::micros(5),
            send_ns_per_kib: 2_816, // ~2.75 ns/byte: 8 KiB send ~= 27.5 us
            recv_frame_cost: Dur::nanos(1_200),
            recv_ns_per_kib: 973, // ~0.95 ns/byte: 8 KiB recv ~= 15 us
            udp_socket_buffer: 16 * 1024 * 1024,
            tcp_window_bytes: 16 * 1024 * 1024,
            switch_port_buffer: 8 * 1024 * 1024,
            random_loss: 0.0,
            random_reorder: 0.0,
            random_duplication: 0.0,
            disk_bandwidth_bps: 450_000_000,
            disk_op_latency: Dur::micros(390),
        }
    }
}

impl SimConfig {
    /// Payload bytes that fit in one MTU frame.
    pub fn mtu_payload(&self) -> u32 {
        self.mtu_bytes - self.frame_overhead_bytes
    }

    /// Number of MTU frames needed to carry `bytes` of payload.
    pub fn frames_for(&self, bytes: u32) -> u32 {
        let per = self.mtu_payload().max(1);
        bytes.div_ceil(per).max(1)
    }

    /// Bytes actually occupying the wire for `bytes` of payload,
    /// including per-frame header overhead.
    pub fn wire_bytes(&self, bytes: u32) -> u64 {
        bytes as u64 + self.frames_for(bytes) as u64 * self.frame_overhead_bytes as u64
    }

    /// Time to serialize `bytes` of payload onto a link. A zero
    /// `link_bandwidth_bps` means infinite bandwidth: zero transfer
    /// delay, not a division crash.
    pub fn tx_time(&self, bytes: u32) -> Dur {
        if self.link_bandwidth_bps == 0 {
            return Dur::ZERO;
        }
        let bits = self.wire_bytes(bytes) * 8;
        Dur::nanos(bits.saturating_mul(1_000_000_000) / self.link_bandwidth_bps)
    }

    /// CPU cost of sending one datagram of `bytes` payload.
    pub fn send_cost(&self, bytes: u32) -> Dur {
        self.send_syscall_cost + Dur::nanos(bytes as u64 * self.send_ns_per_kib / 1024)
    }

    /// CPU cost of receiving one datagram of `bytes` payload.
    pub fn recv_cost(&self, bytes: u32) -> Dur {
        self.recv_frame_cost * self.frames_for(bytes) as u64
            + Dur::nanos(bytes as u64 * self.recv_ns_per_kib / 1024)
    }

    /// Time for the disk to persist one write of `bytes`. A zero
    /// `disk_bandwidth_bps` means infinite bandwidth: only the
    /// per-operation latency remains.
    pub fn disk_write_time(&self, bytes: u32) -> Dur {
        if self.disk_bandwidth_bps == 0 {
            return self.disk_op_latency;
        }
        let bits = bytes as u64 * 8;
        self.disk_op_latency
            + Dur::nanos(bits.saturating_mul(1_000_000_000) / self.disk_bandwidth_bps)
    }

    /// Time to persist `bytes` when the writer coalesces small appends
    /// into `unit`-sized device writes (the paper batches votes into
    /// 32 KB units, §3.5.5): the per-operation latency is amortized over
    /// the share of the unit this write occupies.
    pub fn disk_write_time_coalesced(&self, bytes: u32, unit: u32) -> Dur {
        let bits = bytes as u64 * 8;
        // Zero disk bandwidth means infinite: no transfer delay.
        let xfer = bits
            .saturating_mul(1_000_000_000)
            .checked_div(self.disk_bandwidth_bps)
            .map_or(Dur::ZERO, Dur::nanos);
        let unit = unit.max(1) as u64;
        let amortized_op =
            Dur::nanos(self.disk_op_latency.as_nanos().saturating_mul(bytes as u64) / unit);
        xfer + amortized_op
    }

    /// Queue occupancy, in bytes, implied by a link that is busy for
    /// `backlog` more time at this configuration's bandwidth. With zero
    /// (infinite) bandwidth nothing ever queues.
    ///
    /// Runs on the switch tail-drop path for every contended datagram,
    /// so the nanoseconds → bytes conversion uses [`div_1e9`] instead of
    /// a 64-bit hardware division.
    pub fn backlog_bytes(&self, backlog: Dur) -> u64 {
        div_1e9(backlog.as_nanos().saturating_mul(self.link_bandwidth_bps / 8))
    }
}

/// Exact `x / 1_000_000_000` for every `u64`, as a multiply-shift —
/// no runtime division.
///
/// Correctness: `1e9 = 2^9 · 5^9`, so `x / 1e9 = y / 5^9` with
/// `y = x >> 9 < 2^55`. Taking `M = ceil(2^76 / 5^9)`, the classic
/// round-up-reciprocal condition says `floor(y·M / 2^76) = floor(y / 5^9)`
/// for all `y < 2^55` provided `M·5^9 - 2^76 ≤ 2^(76-55)`; here
/// `M·5^9 - 2^76 < 5^9 = 1_953_125 < 2^21`, so the identity is exact over
/// the full domain (the unit tests sweep the rounding boundaries and the
/// `u64` edges).
#[inline]
fn div_1e9(x: u64) -> u64 {
    const M: u128 = (1u128 << 76) / 1_953_125 + 1; // ceil(2^76 / 5^9)
    (((x >> 9) as u128 * M) >> 76) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_of_8k_packet_is_about_67_us() {
        let cfg = SimConfig::default();
        // 8192 payload bytes -> 6 frames -> 8192 + 6*66 = 8588 wire bytes
        // at 1 Gbps -> 68.7 us.
        let t = cfg.tx_time(8192);
        assert!(t >= Dur::micros(65) && t <= Dur::micros(72), "{t:?}");
    }

    #[test]
    fn frames_round_up() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.frames_for(1), 1);
        assert_eq!(cfg.frames_for(cfg.mtu_payload()), 1);
        assert_eq!(cfg.frames_for(cfg.mtu_payload() + 1), 2);
    }

    #[test]
    fn sync_disk_write_sustains_about_270_mbps() {
        let cfg = SimConfig::default();
        let unit = 32 * 1024;
        let t = cfg.disk_write_time(unit);
        let mbps = unit as f64 * 8.0 / t.as_secs_f64() / 1e6;
        assert!((250.0..300.0).contains(&mbps), "measured {mbps} Mbps");
    }

    #[test]
    fn send_cost_scales_with_bytes() {
        let cfg = SimConfig::default();
        assert!(cfg.send_cost(8192) > cfg.send_cost(256));
        // 8 KiB send: 5us syscall + ~22.5us copy ~= 27.5us.
        let c = cfg.send_cost(8192);
        assert!(c >= Dur::micros(26) && c <= Dur::micros(29), "{c:?}");
        // 8 KiB receive: 6 frames * 1.2us + ~7.8us ~= 15us.
        let r = cfg.recv_cost(8192);
        assert!(r >= Dur::micros(13) && r <= Dur::micros(17), "{r:?}");
    }

    #[test]
    fn zero_bandwidth_means_zero_delay_not_a_panic() {
        // The "infinite bandwidth" config: both bandwidths zero.
        let mut cfg = SimConfig::default();
        cfg.link_bandwidth_bps = 0;
        cfg.disk_bandwidth_bps = 0;
        assert_eq!(cfg.tx_time(8192), Dur::ZERO);
        assert_eq!(cfg.tx_time(u32::MAX / 2), Dur::ZERO);
        assert_eq!(cfg.disk_write_time(32 * 1024), cfg.disk_op_latency);
        let coalesced = cfg.disk_write_time_coalesced(4096, 32 * 1024);
        assert!(coalesced < cfg.disk_op_latency, "only the amortized op latency remains");
        assert_eq!(cfg.backlog_bytes(Dur::secs(5)), 0, "an infinite link never queues");
    }

    #[test]
    fn zero_bandwidth_simulation_still_delivers() {
        use crate::sim::{Actor, Ctx, Envelope, Sim};
        use std::sync::Arc;
        use std::sync::Mutex;

        struct Recorder(Arc<Mutex<u32>>);
        impl Actor for Recorder {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {
                *self.0.lock().unwrap() += 1;
            }
        }
        struct Quiet;
        impl Actor for Quiet {
            fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
        }

        let mut cfg = SimConfig::default();
        cfg.link_bandwidth_bps = 0;
        cfg.disk_bandwidth_bps = 0;
        let got = Arc::new(Mutex::new(0));
        let mut sim = Sim::new(cfg);
        let a = sim.add_node(Box::new(Quiet));
        let b = sim.add_node(Box::new(Recorder(got.clone())));
        sim.with_ctx(a, |ctx| {
            for i in 0..10u32 {
                ctx.udp_send(b, i, 8192);
            }
        });
        sim.run_to_idle();
        assert_eq!(*got.lock().unwrap(), 10);
    }

    #[test]
    fn backlog_magic_divide_matches_hardware_divide() {
        // The multiply-shift must agree with `/ 1_000_000_000` exactly
        // across a bandwidth × backlog config sweep, including the
        // saturating product and the u64 edges.
        let mut cfg = SimConfig::default();
        let bandwidths = [0u64, 8, 1_000, 100_000_000, 1_000_000_000, 10_000_000_000, u64::MAX];
        let backlogs =
            [0u64, 1, 999_999_999, 1_000_000_000, 123_456_789_012, u64::MAX / 3, u64::MAX];
        for &bw in &bandwidths {
            cfg.link_bandwidth_bps = bw;
            for &b in &backlogs {
                let product = b.saturating_mul(bw / 8);
                assert_eq!(
                    cfg.backlog_bytes(Dur::nanos(b)),
                    product / 1_000_000_000,
                    "bw={bw} backlog={b}"
                );
            }
        }
        // Dense sweeps around the low and high rounding boundaries.
        for x in (0u64..5_000_000_000).step_by(999_983) {
            assert_eq!(super::div_1e9(x), x / 1_000_000_000, "x={x}");
        }
        for x in (u64::MAX - 10_000_000_000..u64::MAX).step_by(999_983) {
            assert_eq!(super::div_1e9(x), x / 1_000_000_000, "x={x}");
        }
    }

    #[test]
    fn backlog_bytes_inverts_tx_time() {
        let cfg = SimConfig::default();
        let t = cfg.tx_time(8192);
        let b = cfg.backlog_bytes(t);
        let wire = cfg.wire_bytes(8192);
        assert!((b as i64 - wire as i64).unsigned_abs() < 20, "{b} vs {wire}");
    }
}
