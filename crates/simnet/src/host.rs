//! Host layer: the per-node machine — CPU cores, NIC link clocks, socket
//! buffer occupancy, and the local disk — plus the completion events a
//! host schedules for itself (timers, pinned-core work, disk writes).
//!
//! # Layer boundary
//!
//! This module owns [`Node`] and every operation whose effects stay on
//! one node: charging CPU, arming timers, issuing disk writes. It knows
//! nothing about datagrams or TCP (the `net` layer) and nothing about
//! actors (the `dispatch` layer); it files completions into the owning
//! shard's event queue through [`crate::sim::SimInner::push_to_node`].
//!
//! # Shard-safety invariant
//!
//! `Node` structs sit in one flat arena (`SimInner::nodes[id]` — the
//! hottest load in the engine, kept a single index away), but each is
//! *owned* by exactly one shard: every event this layer schedules
//! targets the same node that pays the cost, so host completions never
//! cross a shard boundary and a threaded executor can hand workers
//! disjoint subsets of the arena. The one read the `net` layer performs
//! on a foreign node (`Node::up`, peer liveness) is documented at its
//! call sites.

use crate::ids::{NodeId, TimerToken};
use crate::sim::SimInner;
use crate::stats::mid;
use crate::time::{Dur, Time};

/// One CPU core: a busy-until clock plus cumulative busy time.
#[derive(Clone)]
pub(crate) struct Core {
    pub(crate) free_at: Time,
    pub(crate) busy: Dur,
}

/// One simulated machine. Every field is a busy-until resource clock or
/// a buffer occupancy; the actor running on the node lives in [`crate::sim::Sim`].
/// `Clone` serves the threaded executor's worker split: each worker gets
/// a full copy of the arena, writes only the nodes its shards own, and
/// the owners' copies are merged back (foreign entries are frozen reads).
#[derive(Clone)]
pub(crate) struct Node {
    pub(crate) up: bool,
    pub(crate) uplink_free: Time,
    pub(crate) downlink_free: Time,
    pub(crate) socket_used: u64,
    pub(crate) cores: Vec<Core>,
    pub(crate) disk_free: Time,
    /// Per-node overrides of cluster-wide defaults (0 = use SimConfig).
    pub(crate) udp_socket_buffer: u32,
    /// Straggler injection: every CPU cost on this node is multiplied by
    /// this factor (1.0 = healthy, the exact pre-injection arithmetic).
    pub(crate) cpu_slowdown: f64,
    /// Straggler injection for the local disk: write times are
    /// multiplied by this factor (1.0 = healthy).
    pub(crate) disk_slowdown: f64,
}

/// Scales a cost by a straggler factor. The factor-1.0 fast path keeps
/// healthy nodes on the exact integer arithmetic (golden traces).
#[inline]
pub(crate) fn scaled(cost: Dur, factor: f64) -> Dur {
    if factor == 1.0 {
        cost
    } else {
        Dur::nanos((cost.as_nanos() as f64 * factor).round() as u64)
    }
}

impl Node {
    pub(crate) fn new(cores: usize) -> Node {
        Node {
            up: true,
            uplink_free: Time::ZERO,
            downlink_free: Time::ZERO,
            socket_used: 0,
            cores: (0..cores).map(|_| Core { free_at: Time::ZERO, busy: Dur::ZERO }).collect(),
            disk_free: Time::ZERO,
            udp_socket_buffer: 0,
            cpu_slowdown: 1.0,
            disk_slowdown: 1.0,
        }
    }
}

impl SimInner {
    /// The node struct behind `id`.
    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to the node struct behind `id`.
    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Charges `cost` of CPU on `core` of `node` starting no earlier than
    /// `start`, returning the completion time.
    #[inline]
    pub(crate) fn charge_core(
        &mut self,
        node: NodeId,
        core: usize,
        start: Time,
        cost: Dur,
    ) -> Time {
        let n = self.node_mut(node);
        let cost = scaled(cost, n.cpu_slowdown);
        let c = &mut n.cores[core];
        let begin = c.free_at.max(start);
        c.free_at = begin + cost;
        c.busy += cost;
        c.free_at
    }

    /// Schedules `token` to fire on `node` after `delay`.
    pub fn set_timer_on(&mut self, node: NodeId, delay: Dur, token: TimerToken) {
        let at = self.now() + delay;
        self.push_to_node(node, at, crate::dispatch::EventKind::Timer { node, token });
    }

    /// Issues a disk write of `bytes` on `node`; `token` fires on the
    /// node's actor when the write is durable.
    pub fn disk_write_on(&mut self, node: NodeId, bytes: u32, token: TimerToken) {
        let t = self.config().disk_write_time(bytes);
        self.disk_push(node, bytes, t, token);
    }

    /// Issues a disk write of `bytes` that the writer coalesces into
    /// `unit`-sized device operations (amortized op latency).
    pub fn disk_write_coalesced_on(
        &mut self,
        node: NodeId,
        bytes: u32,
        unit: u32,
        token: TimerToken,
    ) {
        let t = self.config().disk_write_time_coalesced(bytes, unit);
        self.disk_push(node, bytes, t, token);
    }

    fn disk_push(&mut self, node: NodeId, bytes: u32, t: Dur, token: TimerToken) {
        let now = self.now();
        let n = self.node_mut(node);
        let t = scaled(t, n.disk_slowdown);
        let done = n.disk_free.max(now) + t;
        n.disk_free = done;
        self.metrics.add_id(node, mid::DISK_WRITTEN_BYTES, bytes as u64);
        self.push_to_node(node, done, crate::dispatch::EventKind::DiskDone { node, token });
    }

    /// Outstanding work queued on `node`'s disk.
    pub fn disk_backlog_of(&self, node: NodeId) -> Dur {
        self.node(node).disk_free.saturating_since(self.now())
    }

    /// Charges CPU on a specific core of `node`, returning completion time.
    pub fn charge_cpu_on(&mut self, node: NodeId, core: usize, cost: Dur) -> Time {
        let now = self.now();
        self.charge_core(node, core, now, cost)
    }

    /// Schedules `token` to fire once `core` of `node` has executed `cost`
    /// of work (models handing a task to a pinned thread).
    pub fn run_on_core(&mut self, node: NodeId, core: usize, cost: Dur, token: TimerToken) {
        let now = self.now();
        let done = self.charge_core(node, core, now, cost);
        self.push_to_node(node, done, crate::dispatch::EventKind::Timer { node, token });
    }

    /// Earliest time `core` of `node` becomes idle.
    pub fn core_free_at(&self, node: NodeId, core: usize) -> Time {
        self.node(node).cores[core].free_at
    }

    /// Cumulative busy time of `core` of `node`.
    pub fn cpu_busy(&self, node: NodeId, core: usize) -> Dur {
        self.node(node).cores[core].busy
    }
}
