//! Threaded shard executor (fast mode): conservative-window parallel
//! execution over the [`crate::shard`] scaffold.
//!
//! # Shape
//!
//! [`Sim::run_until`] routes here when fast mode is on and more than one
//! worker is eligible. The run splits into `min(threads, shards)`
//! workers; worker `w` owns every shard `sh` with `sh % workers == w`.
//! Each worker receives a complete private [`SimInner`] — its owned
//! [`crate::shard::ShardState`]s moved in, foreign slots left empty, a
//! full clone of the flat node-clock arena (owner-written, foreign
//! entries frozen reads), private TCP index copies, and a zeroed
//! [`crate::stats::Metrics`] fork — plus the actors of its nodes. The
//! workers then run a two-barrier round protocol until quiescence:
//!
//! 1. **Flush**: each worker moves the handoffs it generated (staged in
//!    its *foreign* shards' inboxes, which double as outboxes) into the
//!    shared per-destination-shard exchange cells. *Barrier.*
//! 2. **Drain + post**: each worker drains its own shards' exchange
//!    cells and same-worker inboxes — sorted by `(time, origin shard,
//!    origin seq)` and re-sequenced with fresh local seqs, which is what
//!    makes the schedule independent of the worker count — then posts
//!    its local minimum event time. *Barrier.*
//! 3. **Window**: every worker independently computes the identical
//!    global minimum `gmin`; if `gmin` exceeds the deadline (or nothing
//!    is queued anywhere) all workers break in lockstep. Otherwise each
//!    advances its shards through `[gmin, gmin + safe_window())`,
//!    dispatching through the exact serial handlers.
//!
//! The lookahead bound guarantees every handoff generated inside a
//! window lands at or beyond the *next* window's start, so one exchange
//! per round cannot lose or late-deliver an event
//! ([`SimInner::assert_lookahead`] checks this at every drain in debug
//! builds).
//!
//! # Merge
//!
//! After the scope joins, owned shards, node clocks, actors, and RNG
//! streams move back; `events`/`dispatches` deltas are summed; metric
//! forks fold together (commutative, so totals are schedule-independent);
//! the TCP index tables merge cell-wise (each cell has exactly one
//! writing worker) and rx halves that never saw a delivery are
//! reconciled against their tx epoch. The merged `Sim` is
//! indistinguishable from one that ran serially in fast mode — runs can
//! freely alternate executors between control-plane phases.
//!
//! # What fast mode trades away
//!
//! See the [`crate::shard`] module docs ("Executor modes") for the
//! precise guarantees. In short: full engine accuracy and per-`(seed,
//! partition)` reproducibility at any thread count, but not the global
//! cross-shard interleaving of determinism mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::dispatch::EventKind;
use crate::shard::CrossShardEvent;
use crate::sim::{Sim, SimInner};
use crate::time::{Dur, Time};

/// Executor selection for [`Sim::run_until`] (see [`crate::shard`]
/// module docs, "Executor modes").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Serial global-min merge: golden traces, RNG draws, and counter
    /// checksums bit-identical under any partition and thread count.
    /// The default, and what CI gates on.
    Determinism,
    /// Conservative-window thread pool: wall-parallel shards, schedule a
    /// pure function of `(seed, partition)` — identical at any thread
    /// count — but not the serial global interleaving.
    Fast,
}

/// A staged cross-shard handoff: `(origin shard, event)`.
type Handoff = (u32, CrossShardEvent);

impl Sim {
    /// Whether `run_until` should use the thread pool: fast mode, at
    /// least two workers' worth of shards and threads, and a finite
    /// non-zero lookahead window (a zero-latency config has no
    /// conservative window to exploit; a single shard has no one to
    /// trade handoffs with).
    pub(crate) fn threaded_eligible(&self) -> bool {
        if self.mode != ExecMode::Fast || self.threads < 2 {
            return false;
        }
        if self.inner.partition.shards() < 2 {
            return false;
        }
        let w = self.safe_window();
        w > Dur::ZERO && w != Dur::MAX
    }

    /// Runs the fast-mode thread pool until `deadline` (inclusive for
    /// event dispatch; the caller advances `now` to the deadline after).
    pub(crate) fn run_threaded(&mut self, deadline: Time) {
        // Freeze the TCP index layout so every worker's private copy
        // stays cell-aligned with the original through the merge.
        self.inner.ensure_tcp_layout();
        let k = self.inner.partition.shards();
        let workers = self.threads.min(k);
        let window = self.safe_window();
        debug_assert!(workers >= 2);

        let mut wsims = self.split_workers(workers);
        let exchange: Vec<Mutex<Vec<Handoff>>> = (0..k).map(|_| Mutex::new(Vec::new())).collect();
        let mins: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect();
        let barrier = Barrier::new(workers);
        std::thread::scope(|s| {
            for (w, ws) in wsims.iter_mut().enumerate() {
                let (exchange, mins, barrier) = (&exchange, &mins, &barrier);
                s.spawn(move || {
                    ws.worker_loop(w, workers, deadline, window, exchange, mins, barrier)
                });
            }
        });
        self.merge_workers(wsims, workers);
    }

    /// Splits this simulation into `workers` private worker copies.
    /// Owned state *moves* (shard arenas, actors); shared-but-frozen
    /// state is cloned (node clocks, partition, TCP indexes, config);
    /// accumulators start at zero so the merge sums pure deltas.
    fn split_workers(&mut self, workers: usize) -> Vec<Sim> {
        let k = self.inner.partition.shards();
        let n = self.inner.nodes.len();
        (0..workers)
            .map(|w| {
                let shards = (0..k)
                    .map(|sh| {
                        if sh % workers == w {
                            std::mem::take(&mut self.inner.shards[sh])
                        } else {
                            Default::default()
                        }
                    })
                    .collect();
                let actors = (0..n)
                    .map(|i| {
                        if self.inner.partition.assignment()[i] as usize % workers == w {
                            self.actors[i].take()
                        } else {
                            None
                        }
                    })
                    .collect();
                Sim {
                    inner: SimInner {
                        config: self.inner.config.clone(),
                        now: self.inner.now,
                        seq: self.inner.seq,
                        events: 0,
                        dispatches: 0,
                        dispatched_msgs: 0,
                        shards,
                        nodes: self.inner.nodes.clone(),
                        partition: self.inner.partition.clone(),
                        lookahead: self.inner.lookahead.clone(),
                        cross_shard_events: 0,
                        groups: self.inner.groups.clone(),
                        mcast_scratch: Vec::new(),
                        tcp_tx_index: self.inner.tcp_tx_index.clone(),
                        tcp_rx_index: self.inner.tcp_rx_index.clone(),
                        tcp_nodes: self.inner.tcp_nodes,
                        cut_links: self.inner.cut_links.clone(),
                        exec_fast: true,
                        first_event: self.inner.first_event.clone(),
                        probe_mask: self.inner.probe_mask,
                        probe_capacity: self.inner.probe_capacity,
                        // Zeroed fork: the merge sums handoff deltas.
                        probe_handoffs: vec![0; self.inner.probe_handoffs.len()],
                        metrics: self.inner.metrics.fork_zeroed(),
                    },
                    actors,
                    started: self.started.clone(),
                    inbox: Vec::new(),
                    mode: ExecMode::Determinism,
                    threads: 1,
                    exec_telemetry: Vec::new(),
                }
            })
            .collect()
    }

    /// Folds the worker copies back into this simulation after the
    /// scope joins. See the module docs ("Merge") for why each piece is
    /// conflict-free.
    fn merge_workers(&mut self, wsims: Vec<Sim>, workers: usize) {
        let k = self.inner.partition.shards();
        for (w, mut ws) in wsims.into_iter().enumerate() {
            let mut sh = w;
            while sh < k {
                self.inner.shards[sh] = std::mem::take(&mut ws.inner.shards[sh]);
                sh += workers;
            }
            for (i, owner) in self.inner.partition.assignment().iter().enumerate() {
                if *owner as usize % workers == w {
                    self.inner.nodes[i] = ws.inner.nodes[i].clone();
                    self.actors[i] = ws.actors[i].take();
                }
            }
            self.inner.events += ws.inner.events;
            self.inner.dispatches += ws.inner.dispatches;
            self.inner.dispatched_msgs += ws.inner.dispatched_msgs;
            self.inner.cross_shard_events += ws.inner.cross_shard_events;
            self.inner.seq = self.inner.seq.max(ws.inner.seq);
            self.inner.now = self.inner.now.max(ws.inner.now);
            self.inner.metrics.merge_from(&ws.inner.metrics);
            // Each index cell has exactly one writing worker (the tx
            // cell's owner is src's worker; the rx cell's, dst's) and
            // values only appear, never change — cell-wise max merges.
            for (main, wv) in self.inner.tcp_tx_index.iter_mut().zip(&ws.inner.tcp_tx_index) {
                *main = (*main).max(*wv);
            }
            for (main, wv) in self.inner.tcp_rx_index.iter_mut().zip(&ws.inner.tcp_rx_index) {
                *main = (*main).max(*wv);
            }
            // Handoff-matrix deltas sum element-wise (commutative, so
            // the merged matrix is thread-count invariant); worker
            // telemetry accumulates per worker index across runs.
            for (main, wv) in self.inner.probe_handoffs.iter_mut().zip(&ws.inner.probe_handoffs) {
                *main += *wv;
            }
            for t in &ws.exec_telemetry {
                match self.exec_telemetry.iter_mut().find(|e| e.worker == t.worker) {
                    Some(e) => {
                        e.rounds += t.rounds;
                        e.events += t.events;
                        e.window_ns += t.window_ns;
                        e.busy += t.busy;
                        e.barrier_wait += t.barrier_wait;
                    }
                    None => self.exec_telemetry.push(*t),
                }
            }
        }
        self.reconcile_tcp_rx();
    }

    /// Creates the rx half of any channel whose tx half exists but whose
    /// segments were all still in flight at the end of the run (the
    /// fast-mode lazy rx creation never fired). Pairing it to the tx
    /// epoch preserves the `tx.epoch == rx.epoch` invariant the serial
    /// engine's control plane asserts.
    fn reconcile_tcp_rx(&mut self) {
        use crate::ids::NodeId;
        let n = self.inner.tcp_nodes;
        for src in 0..n {
            for dst in 0..n {
                let cell = src * n + dst;
                let tx = self.inner.tcp_tx_index[cell];
                if tx != 0 && self.inner.tcp_rx_index[cell] == 0 {
                    let ss = self.inner.shard_idx(NodeId(src));
                    let epoch = self.inner.shards[ss].tcp_tx[tx as usize - 1].epoch;
                    self.inner.tcp_rx_create(NodeId(src), NodeId(dst), epoch);
                }
            }
        }
    }

    /// One worker's life: the two-barrier round protocol from the module
    /// docs. `self` here is the worker's private `Sim` copy.
    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        &mut self,
        w: usize,
        workers: usize,
        deadline: Time,
        window: Dur,
        exchange: &[Mutex<Vec<Handoff>>],
        mins: &[AtomicU64],
        barrier: &Barrier,
    ) {
        let k = self.inner.shards.len();
        // Telemetry is wall-clock measurement of the host, kept outside
        // the deterministic probe stream; armed by the EXEC category.
        let telemetry = self.inner.probe_on(crate::probe::category::EXEC);
        let run_start = telemetry.then(std::time::Instant::now);
        let mut barrier_wait = std::time::Duration::ZERO;
        let mut rounds = 0u64;
        let mut window_ns = 0u128;
        let mut timed_wait = |barrier: &Barrier| {
            if telemetry {
                let t0 = std::time::Instant::now();
                barrier.wait();
                barrier_wait += t0.elapsed();
            } else {
                barrier.wait();
            }
        };
        loop {
            rounds += 1;
            // 1. Flush outboxes: handoffs this worker generated last
            //    window, staged in its foreign shards' inbox slots.
            for (sh, cell) in exchange.iter().enumerate() {
                if sh % workers != w && !self.inner.shards[sh].inbox.is_empty() {
                    let mut out = std::mem::take(&mut self.inner.shards[sh].inbox);
                    cell.lock().unwrap().append(&mut out);
                    self.inner.shards[sh].inbox = out;
                }
            }
            timed_wait(barrier);

            // 2. Drain own shards (cross-worker exchange cells plus
            //    same-worker staged handoffs), then post the local min.
            //    The barrier above ordered every flush before every
            //    drain; the barrier below orders every drain and post
            //    before any read of `mins` — and, round over round,
            //    keeps a fast worker from re-posting before a slow one
            //    has read the previous round's minima.
            let mut sh = w;
            while sh < k {
                let mut incoming = std::mem::take(&mut *exchange[sh].lock().unwrap());
                incoming.append(&mut self.inner.shards[sh].inbox);
                self.drain_worker_handoffs(sh, incoming);
                sh += workers;
            }
            let mut lmin = u64::MAX;
            let mut sh = w;
            while sh < k {
                if let Some(pos) = self.inner.shards[sh].queue.find_min() {
                    lmin = lmin.min(pos.time.as_nanos());
                }
                sh += workers;
            }
            mins[w].store(lmin, Ordering::Relaxed);
            timed_wait(barrier);

            // 3. Window: everyone computes the same global minimum and
            //    either breaks in lockstep or advances one window.
            let gmin = mins.iter().map(|m| m.load(Ordering::Relaxed)).min().unwrap_or(u64::MAX);
            if gmin == u64::MAX || gmin > deadline.as_nanos() {
                break;
            }
            let wend = gmin.saturating_add(window.as_nanos());
            // Realized window width: the virtual span this worker's
            // dispatches actually covered within [gmin, wend).
            let mut round_last = gmin;
            let mut dispatched = false;
            let mut sh = w;
            while sh < k {
                while let Some(pos) = self.inner.shards[sh].queue.find_min() {
                    if pos.time.as_nanos() >= wend || pos.time > deadline {
                        break;
                    }
                    let (time, kind) = self.inner.shards[sh].queue.take_at(pos);
                    self.inner.now = time;
                    self.inner.events += 1;
                    self.dispatch(sh, time, kind);
                    if telemetry {
                        round_last = round_last.max(time.as_nanos());
                        dispatched = true;
                    }
                }
                sh += workers;
            }
            if dispatched {
                window_ns += (round_last - gmin) as u128;
            }
        }
        if let Some(start) = run_start {
            let total = start.elapsed();
            self.exec_telemetry.push(crate::probe::WorkerTelemetry {
                worker: w,
                rounds,
                events: self.inner.events,
                window_ns,
                busy: total.saturating_sub(barrier_wait),
                barrier_wait,
            });
        }
    }

    /// Folds one barrier's worth of handoffs into shard `sh`'s queue.
    /// Sorted by `(time, origin shard, origin seq)` — a total order on
    /// handoffs that every worker assignment produces identically — and
    /// re-sequenced with fresh local seqs so queue keys stay unique
    /// per-worker. Receiver-side seq assignment is what makes the
    /// fast-mode schedule thread-count invariant: relative queue order
    /// depends only on *which barrier* a handoff drained at, never on
    /// which worker staged it.
    fn drain_worker_handoffs(&mut self, sh: usize, mut incoming: Vec<Handoff>) {
        if incoming.is_empty() {
            return;
        }
        incoming.sort_by_key(|(origin, ev)| (ev.time(), *origin, ev.seq()));
        for (origin, ev) in incoming {
            self.inner.assert_lookahead(sh, origin, ev.time(), self.inner.now);
            let seq = self.inner.next_seq();
            match ev {
                CrossShardEvent::Arrive { time, env, .. } => {
                    let id = self.inner.shards[sh].envs.insert(env);
                    self.inner.shards[sh].queue.push(time, seq, EventKind::HostArrive(id));
                }
                CrossShardEvent::Switch { time, env, arrive, hold, dup, .. } => {
                    let id = self.inner.shards[sh].envs.insert(env);
                    self.inner.shards[sh].queue.push(
                        time,
                        seq,
                        EventKind::SwitchArrive { id, arrive, hold, dup },
                    );
                }
                CrossShardEvent::Event { time, kind, .. } => {
                    self.inner.shards[sh].queue.push(time, seq, kind);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::ids::{NodeId, TimerToken};
    use crate::shard::Partition;
    use crate::sim::{Actor, Ctx, Envelope};

    /// Ring worker: every timer tick, send one UDP datagram to the next
    /// node and one TCP segment to the node after that, then re-arm.
    /// Exercises the datagram path, the TCP tx/lazy-rx/ack-handoff path,
    /// and timers, with traffic crossing every shard boundary.
    struct RingSender {
        next: NodeId,
        tcp_to: NodeId,
        period: Dur,
        ticks: u32,
    }
    impl Actor for RingSender {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(self.period, TimerToken(1));
        }
        fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
            // Count one app-level delivery per message, tagged by size so
            // UDP and TCP arrivals checksum separately.
            if env.wire_bytes > 900 {
                ctx.counter_add("app.tcp_in", 1);
            } else {
                ctx.counter_add("app.udp_in", 1);
            }
        }
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
            ctx.udp_send(self.next, self.ticks, 700);
            ctx.tcp_send(self.tcp_to, self.ticks, 1200);
            self.ticks += 1;
            if self.ticks < 40 {
                ctx.set_timer(self.period, TimerToken(1));
            }
        }
    }

    fn build(shards: usize, threads: usize, fast: bool) -> Sim {
        let mut sim = Sim::with_partition(SimConfig::default(), Partition::modulo(0, shards));
        let n = 8;
        for i in 0..n {
            // Stagger periods so ticks interleave across nodes.
            let period = Dur::micros(150 + 17 * i as u64);
            sim.add_node(Box::new(RingSender {
                next: NodeId((i + 1) % n),
                tcp_to: NodeId((i + 2) % n),
                period,
                ticks: 0,
            }));
        }
        if fast {
            sim.set_exec_mode(ExecMode::Fast);
            sim.set_threads(threads);
        }
        sim
    }

    fn observe(sim: &Sim) -> (Time, u64, Vec<(usize, String, u64)>) {
        let mut counters = Vec::new();
        sim.metrics().for_each_counter(|node, name, v| {
            counters.push((node.0, name.to_string(), v));
        });
        (sim.now(), sim.events_processed(), counters)
    }

    #[test]
    fn fast_mode_is_thread_count_invariant() {
        let run = |threads| {
            let mut sim = build(4, threads, true);
            sim.run_until(Time::from_millis(30));
            observe(&sim)
        };
        let two = run(2);
        let three = run(3);
        let four = run(4);
        assert_eq!(two, three);
        assert_eq!(two, four);
        // The workload really crossed shard boundaries.
        assert!(two.2.iter().any(|(_, name, _)| name == "app.udp_in"));
        assert!(two.2.iter().any(|(_, name, _)| name == "app.tcp_in"));
    }

    #[test]
    fn fast_mode_matches_determinism_totals_without_contention() {
        // Staggered single-packet chains: no two packets contend for the
        // same egress port at the same instant, so fast mode's
        // arrival-order port serialization coincides with determinism
        // mode's global order and every counter total must agree.
        let mut serial = build(4, 1, false);
        serial.run_until(Time::from_millis(30));
        let mut fast = build(4, 4, true);
        fast.run_until(Time::from_millis(30));
        assert_eq!(observe(&serial).2, observe(&fast).2);
    }

    #[test]
    fn fast_mode_resumes_cleanly_across_runs() {
        // Alternate threaded windows with control-plane pauses; state
        // merged back must keep the engine consistent (TCP reconcile,
        // seq/now advance, queued tails surviving the merge).
        let mut sim = build(3, 2, true);
        for step in 1..=6 {
            sim.run_until(Time::from_millis(5 * step));
        }
        let (_, events, counters) = observe(&sim);
        let mut whole = build(3, 2, true);
        whole.run_until(Time::from_millis(30));
        let (_, events_whole, counters_whole) = observe(&whole);
        assert_eq!(events, events_whole);
        assert_eq!(counters, counters_whole);
    }

    #[test]
    fn determinism_mode_ignores_thread_count() {
        let mut serial = build(2, 1, false);
        serial.run_until(Time::from_millis(20));
        let mut threaded_config = build(2, 1, false);
        threaded_config.set_threads(4); // no-op without fast mode
        threaded_config.run_until(Time::from_millis(20));
        assert_eq!(observe(&serial), observe(&threaded_config));
    }
}
