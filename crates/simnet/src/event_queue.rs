//! The future event set: a calendar queue with *sorted* buckets and a
//! binary-heap overflow for far-future timers.
//!
//! # Layer boundary
//!
//! This module knows nothing about the simulation: it stores opaque
//! payloads of type `T` keyed by `(Time, seq)` and pops them in exact key
//! order. Each [`crate::shard::ShardState`] owns one `EventQueue`, so the
//! type must be (and is) free of shared or global state — the shard
//! executor merges per-shard minima by key, and a future worker thread
//! can own a whole queue without synchronization.
//!
//! # Why a calendar
//!
//! Every simulated packet passes through its shard's queue twice (host
//! arrival, delivery). A binary heap pays an O(log n) sift on every push
//! and pop; a calendar queue [Brown 1988] files each event in the bucket
//! covering its timestamp — `buckets[(time >> BUCKET_SHIFT) & BUCKET_MASK]`
//! — making both operations O(1) amortized at simulation event densities.
//!
//! # Intra-bucket order: O(1) pop
//!
//! Buckets are kept sorted ascending by `(time, seq)` *on push* behind a
//! consumed-prefix cursor ([`Bucket::head`]): push binary-searches the
//! live region (an append when keys arrive in order, which is the common
//! case — same-instant bursts carry increasing `seq`), and pop takes the
//! bucket head without scanning. This replaces the per-pop
//! minimum-of-bucket scan *and* the "hot bucket" extract-and-sort side
//! stack the previous design needed for same-timestamp bursts: a burst
//! of k co-located events now costs k appends and k O(1) pops, and the
//! rewind path (a driver injecting work behind a parked scan) is just a
//! scan-position reset — sorted buckets need no flush protocol.
//!
//! # Bucket-width heuristic
//!
//! The width must sit between two failure modes: too wide and every event
//! lands in one bucket, too narrow and pops spin over empty buckets. The
//! engine's event horizon is dominated by the datagram pipeline — CPU
//! costs (1–30 µs), link serialization (~12 µs/KB at 1 Gbps), and the
//! 50 µs one-way latency — so pending packet events live 10–200 µs ahead
//! of `now`. A 4.096 µs bucket spreads that horizon over ~10–50 buckets,
//! keeping per-bucket occupancy at a few events even with tens of
//! thousands of packets in flight, while ms-scale protocol timers still
//! fall inside the ~33.6 ms "year". Only rare long timers (suspicion,
//! GC, heartbeats) overflow to the heap, whose O(log n) cost is then
//! paid per *timer*, not per packet.
//!
//! # Determinism
//!
//! Keys are unique (`seq` increments per push, globally across shards),
//! and [`EventQueue::find_min`] always returns the minimum `(time, seq)`
//! key in this queue: events with the current scan slot's timestamp can
//! only live at that slot's bucket head, earlier slots have been
//! drained, and the overflow heap is migrated into the calendar before
//! it can hold anything within the active year. Bucket layout is
//! therefore unobservable, and any run is bit-for-bit reproducible from
//! its seed.

use std::collections::BinaryHeap;

use crate::time::Time;

/// Recycling slab with a free list: the storage pattern behind both the
/// event queue's payloads and the engine's per-shard `Envelope` bodies
/// (see `sim` module docs, "Envelope slab"). Slot indices are dense
/// `u32`s and freed slots are reused immediately.
pub(crate) struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

// Manual impl: `derive` would needlessly require `T: Default`.
impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab { slots: Vec::new(), free: Vec::new() }
    }
}

impl<T> Slab<T> {
    #[inline]
    pub(crate) fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(value);
                id
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Borrows a filed value (peeks).
    #[inline]
    pub(crate) fn get(&self, id: u32) -> &T {
        self.slots[id as usize].as_ref().expect("filed slab entry present")
    }

    /// Removes a filed value, recycling its slot.
    #[inline]
    pub(crate) fn take(&mut self, id: u32) -> T {
        let value = self.slots[id as usize].take().expect("filed slab entry present");
        self.free.push(id);
        value
    }

    /// Whether no values are currently filed.
    pub(crate) fn is_empty(&self) -> bool {
        self.slots.len() == self.free.len()
    }
}

/// Compact ordering key for one queued event. The payload lives in the
/// queue's slab; only these 24 bytes move within buckets.
#[derive(Clone, Copy)]
struct EventKey {
    time: Time,
    seq: u64,
    slot: u32,
}

impl EventKey {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &EventKey) -> bool {
        self.key() == other.key()
    }
}

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &EventKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &EventKey) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Position of the minimum queued event, as located by
/// [`EventQueue::find_min`] or [`EventQueue::find_same_time`]. Valid
/// until the next `push` or `take_at`; the event sits at the head of the
/// current scan slot's bucket. `seq` is exposed so the shard executor
/// can merge minima from several queues in exact global key order.
#[derive(Clone, Copy)]
pub(crate) struct MinPos {
    pub(crate) time: Time,
    pub(crate) seq: u64,
    /// Slab slot of the event's payload (for peeking).
    pub(crate) slot: u32,
}

/// Virtual-time width of one calendar bucket, as a power of two:
/// `1 << BUCKET_SHIFT` nanoseconds (4.096 µs).
const BUCKET_SHIFT: u32 = 12;
/// Number of calendar buckets (a power of two). One "year" —
/// `BUCKET_COUNT << BUCKET_SHIFT` — spans ~33.6 ms of virtual time.
const BUCKET_COUNT: usize = 1 << 13;
const BUCKET_MASK: u64 = BUCKET_COUNT as u64 - 1;

/// One calendar bucket: entries in `items[head..]` sorted ascending by
/// `(time, seq)`; `items[..head]` is the consumed prefix, compacted away
/// once it dominates the allocation.
#[derive(Default)]
struct Bucket {
    items: Vec<EventKey>,
    head: usize,
}

impl Bucket {
    #[inline]
    fn peek(&self) -> Option<&EventKey> {
        self.items.get(self.head)
    }

    /// Files `e` keeping the live region sorted. Appends when `e` is the
    /// new maximum (the common case: co-located bursts push increasing
    /// `seq`, and a bucket's events are mostly created in time order);
    /// otherwise binary-searches the live region.
    #[inline]
    fn insert(&mut self, e: EventKey) {
        if self.items.last().is_none_or(|last| last.key() < e.key()) {
            self.items.push(e);
            return;
        }
        let pos = self.items[self.head..].partition_point(|x| x.key() < e.key());
        self.items.insert(self.head + pos, e);
    }

    /// Removes and returns the bucket minimum (the head). O(1); the
    /// consumed prefix is dropped lazily once it is at least half the
    /// vector, keeping compaction cost amortized constant.
    #[inline]
    fn pop_head(&mut self) -> EventKey {
        let e = self.items[self.head];
        self.head += 1;
        if self.head == self.items.len() {
            self.items.clear();
            self.head = 0;
        } else if self.head >= 64 && self.head * 2 >= self.items.len() {
            self.items.drain(..self.head);
            self.head = 0;
        }
        e
    }
}

/// A calendar queue of `(Time, seq)`-keyed events over a slab of opaque
/// payloads, with a binary-heap overflow for far-future entries. See the
/// module docs for the design rationale.
pub(crate) struct EventQueue<T> {
    /// Calendar buckets; `buckets[vslot & BUCKET_MASK]` holds events
    /// whose `time >> BUCKET_SHIFT == vslot` for vslots within roughly
    /// one year of the scan position (older years sort first, so the
    /// bucket head is always the bucket minimum).
    buckets: Vec<Bucket>,
    /// Current scan slot: no bucketed event's vslot is below it.
    cur_vslot: u64,
    /// Events currently filed in the calendar.
    in_buckets: usize,
    /// Far-future events (≥ one year ahead at push time), ordered by
    /// `(time, seq)`; migrated into the calendar as the scan approaches.
    overflow: BinaryHeap<std::cmp::Reverse<EventKey>>,
    /// Memoized result of the last [`EventQueue::find_min`], so the run
    /// loop's peek-then-maybe-pop pattern (delivery-run coalescing, the
    /// shard executor's per-step merge) never re-walks the scan.
    /// Invalidated by any push or take.
    memo: Option<MinPos>,
    /// The queued events' payloads; bucket entries carry slot indices.
    slab: Slab<T>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue {
            buckets: (0..BUCKET_COUNT).map(|_| Bucket::default()).collect(),
            cur_vslot: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            memo: None,
            slab: Slab::default(),
        }
    }
}

impl<T> EventQueue<T> {
    #[inline]
    fn vslot(time: Time) -> u64 {
        time.as_nanos() >> BUCKET_SHIFT
    }

    /// Whether no events are queued (calendar and overflow both empty).
    pub(crate) fn is_empty(&self) -> bool {
        self.in_buckets == 0 && self.overflow.is_empty()
    }

    #[inline]
    pub(crate) fn push(&mut self, time: Time, seq: u64, kind: T) {
        self.memo = None;
        let slot = self.slab.insert(kind);
        let entry = EventKey { time, seq, slot };
        let vslot = Self::vslot(time);
        if vslot >= self.cur_vslot + BUCKET_COUNT as u64 {
            self.overflow.push(std::cmp::Reverse(entry));
            return;
        }
        // An event behind the scan position (possible when a driver
        // injects work after `run_until` parked the scan on a far-future
        // timer, or when another shard hands off an event while this
        // shard's scan sits ahead): rewind so the scan cannot miss it.
        // Buckets stay sorted, so unlike the earlier extract-and-sort
        // design there is no side state to flush — the reset alone
        // restores the scan invariant. Buckets may then transiently hold
        // more than one year's vslots, which the scan-time vslot check
        // in `find_min` handles.
        if vslot < self.cur_vslot {
            self.cur_vslot = vslot;
        }
        self.buckets[(vslot & BUCKET_MASK) as usize].insert(entry);
        self.in_buckets += 1;
    }

    /// Migrates overflow events that now fall within one year of the scan
    /// position into the calendar.
    fn drain_overflow(&mut self) {
        let horizon = self.cur_vslot + BUCKET_COUNT as u64;
        while let Some(std::cmp::Reverse(top)) = self.overflow.peek() {
            if Self::vslot(top.time) >= horizon {
                return;
            }
            let std::cmp::Reverse(e) = self.overflow.pop().expect("peeked");
            self.buckets[(Self::vslot(e.time) & BUCKET_MASK) as usize].insert(e);
            self.in_buckets += 1;
        }
    }

    /// Pops the earliest event if its time is at or before `deadline`;
    /// returns `None` (leaving the event queued) otherwise.
    #[cfg(test)]
    pub(crate) fn pop_due(&mut self, deadline: Time) -> Option<(Time, T)> {
        let pos = self.find_min()?;
        if pos.time > deadline {
            return None; // stays queued
        }
        Some(self.take_at(pos))
    }

    /// Locates the minimum `(time, seq)` queued event without removing
    /// it, advancing the scan position (and migrating newly-near
    /// overflow events) as a side effect. The returned position is valid
    /// until the next `push` or `take_at`. O(1) when the minimum's slot
    /// is already under the scan: sorted buckets put it at the head.
    pub(crate) fn find_min(&mut self) -> Option<MinPos> {
        if let Some(pos) = self.memo {
            return Some(pos);
        }
        if self.in_buckets == 0 {
            // Calendar empty: jump the scan straight to the earliest
            // far-future event instead of sweeping empty years.
            let std::cmp::Reverse(top) = self.overflow.peek()?;
            self.cur_vslot = Self::vslot(top.time);
        }
        self.drain_overflow();
        debug_assert!(self.in_buckets > 0);
        let mut scanned = 0usize;
        loop {
            let cur = self.cur_vslot;
            // The bucket head is the bucket minimum; it belongs to the
            // scan slot unless every entry here is from a later year
            // (later years have strictly larger keys, so they can never
            // shadow a current-year entry).
            if let Some(&e) = self.buckets[(cur & BUCKET_MASK) as usize].peek() {
                if Self::vslot(e.time) == cur {
                    let pos = MinPos { time: e.time, seq: e.seq, slot: e.slot };
                    self.memo = Some(pos);
                    return Some(pos);
                }
            }
            self.advance_slot(&mut scanned);
        }
    }

    /// The payload of the event `find_min` located (peek; no removal).
    #[inline]
    pub(crate) fn kind_at(&self, pos: MinPos) -> &T {
        self.slab.get(pos.slot)
    }

    /// Locates the minimum-seq event queued at exactly `time`, given
    /// that the minimum at `time` was just popped. Equal times share one
    /// calendar slot, so only the current bucket's head can hold a match
    /// — this is the delivery-run coalescing probe, and unlike
    /// `find_min` it never advances the scan or migrates overflow when
    /// there is nothing to coalesce. Sound because every remaining
    /// event's time is ≥ `time`: an exact match (minimal seq) *is* this
    /// queue's minimum.
    pub(crate) fn find_same_time(&mut self, time: Time) -> Option<MinPos> {
        if Self::vslot(time) != self.cur_vslot {
            return None; // a push rewound the scan below `time`
        }
        let e = self.buckets[(self.cur_vslot & BUCKET_MASK) as usize].peek()?;
        (e.time == time).then_some(MinPos { time: e.time, seq: e.seq, slot: e.slot })
    }

    /// Removes the event `find_min`/`find_same_time` located, recycling
    /// its slab slot. O(1): the located event is the current bucket head.
    #[inline]
    pub(crate) fn take_at(&mut self, pos: MinPos) -> (Time, T) {
        self.memo = None;
        let e = self.buckets[(self.cur_vslot & BUCKET_MASK) as usize].pop_head();
        debug_assert_eq!((e.time, e.seq, e.slot), (pos.time, pos.seq, pos.slot));
        self.in_buckets -= 1;
        (e.time, self.slab.take(e.slot))
    }

    /// Advances the scan one slot, migrating newly-near overflow events
    /// and taking the sparse-queue jump when a whole year scanned empty.
    fn advance_slot(&mut self, scanned: &mut usize) {
        self.cur_vslot += 1;
        self.drain_overflow();
        *scanned += 1;
        if *scanned > BUCKET_COUNT {
            // Sparse queue: a whole year of empty slots. Jump to the
            // earliest event — bucketed *or* still parked in the
            // overflow heap (jumping past the overflow minimum would
            // pop a later bucketed event first and run time backwards).
            // Bucket heads are bucket minima, so heads suffice.
            let min_bucketed = self
                .buckets
                .iter()
                .filter_map(Bucket::peek)
                .map(|e| Self::vslot(e.time))
                .min()
                .expect("in_buckets > 0");
            let min_overflow = self.overflow.peek().map(|std::cmp::Reverse(e)| Self::vslot(e.time));
            self.cur_vslot = min_overflow.map_or(min_bucketed, |o| min_bucketed.min(o));
            self.drain_overflow();
            *scanned = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;
    use proptest::prelude::*;

    /// Same-timestamp bursts and the plain scan must both pop in exact
    /// `(time, seq)` order, including pushes interleaved with pops into
    /// the slot being drained.
    #[test]
    fn pops_co_located_bursts_in_seq_order() {
        let mut q: EventQueue<u64> = EventQueue::default();
        let t = Time::ZERO + Dur::micros(1); // all in one bucket
        let mut seq = 0u64;
        for _ in 0..1000 {
            seq += 1;
            q.push(t, seq, seq);
        }
        let mut popped = Vec::new();
        for round in 0..500 {
            let (time, token) = q.pop_due(Time::MAX).expect("queued");
            assert_eq!(time, t);
            popped.push(token);
            // Interleave same-slot pushes while the burst drains.
            if round % 7 == 0 {
                seq += 1;
                q.push(t, seq, seq);
            }
        }
        while let Some((_, token)) = q.pop_due(Time::MAX) {
            popped.push(token);
        }
        let mut want = popped.clone();
        want.sort_unstable();
        assert_eq!(popped, want, "pops must follow seq order");
        assert_eq!(popped.len(), 1000 + 500usize.div_ceil(7));
    }

    /// A push behind the scan position must rewind the scan; with sorted
    /// buckets there is no side state to repair, but the rewound region
    /// must still pop before anything the scan was parked on.
    #[test]
    fn rewind_pops_near_events_first() {
        let mut q: EventQueue<u64> = EventQueue::default();
        let far = Time::ZERO + Dur::millis(30);
        for seq in 1..=40u64 {
            q.push(far, seq, seq);
        }
        // Park the scan on the far slot without popping.
        assert!(q.pop_due(Time::ZERO).is_none());
        // Rewind with a near burst plus one timer between the two.
        let near = Time::ZERO + Dur::micros(1);
        for seq in 100..140u64 {
            q.push(near, seq, seq);
        }
        q.push(Time::ZERO + Dur::millis(1), 200, 200);
        let mut popped = Vec::new();
        while let Some((time, _)) = q.pop_due(Time::MAX) {
            popped.push(time);
        }
        assert_eq!(popped.len(), 81, "no event lost or duplicated");
        assert!(popped.windows(2).all(|w| w[0] <= w[1]), "popped out of order: {popped:?}");
    }

    /// Virtual-time width of one calendar "year".
    const YEAR: Dur = Dur::nanos((BUCKET_COUNT as u64) << BUCKET_SHIFT);

    /// Co-located events over the old hot-bucket threshold, to keep the
    /// proptest exercising dense same-timestamp bursts.
    const BURST: usize = 36;

    proptest::proptest! {
        /// Model-based check of the calendar queue against a
        /// `BinaryHeap` reference under arbitrary interleavings of
        /// near-future pushes, same-timestamp bursts, far-overflow
        /// timers (multiple calendar years out), deadline-limited pops,
        /// and scan parks followed by behind-the-scan pushes (rewind).
        /// Both structures must agree on the exact `(time, seq)` pop
        /// order.
        #[test]
        fn event_queue_matches_reference_heap(
            ops in proptest::collection::vec((0u8..6u8, proptest::any::<u32>()), 0..120)
        ) {
            let mut q: EventQueue<u64> = EventQueue::default();
            let mut model: BinaryHeap<std::cmp::Reverse<(Time, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            // Lower bound for new pushes: the engine never schedules
            // below `now`, but a parked scan may sit far above it.
            let mut cursor = Time::ZERO;
            let push = |q: &mut EventQueue<u64>,
                            model: &mut BinaryHeap<std::cmp::Reverse<(Time, u64)>>,
                            seq: &mut u64,
                            at: Time| {
                *seq += 1;
                q.push(at, *seq, *seq);
                model.push(std::cmp::Reverse((at, *seq)));
            };
            let pop_and_check = |q: &mut EventQueue<u64>,
                                     model: &mut BinaryHeap<std::cmp::Reverse<(Time, u64)>>,
                                     deadline: Time|
             -> Result<Option<Time>, proptest::test_runner::TestCaseError> {
                let got = q.pop_due(deadline);
                let want = match model.peek() {
                    Some(&std::cmp::Reverse((t, _))) if t <= deadline => {
                        let std::cmp::Reverse((t, s)) = model.pop().expect("peeked");
                        Some((t, s))
                    }
                    _ => None,
                };
                match (got, want) {
                    (None, None) => Ok(None),
                    (Some((t, token)), Some((wt, ws))) => {
                        prop_assert_eq!((t, token), (wt, ws), "pop order diverged");
                        Ok(Some(t))
                    }
                    (got, want) => {
                        let got = got.map(|(t, _)| t);
                        let want = want.map(|(t, _)| t);
                        prop_assert_eq!(got, want, "one side popped, the other did not");
                        Ok(None)
                    }
                }
            };
            for &(op, arg) in &ops {
                let jitter = Dur::nanos((arg % 500_000) as u64);
                match op {
                    // Near-future push (within the scan's first years).
                    0 => push(&mut q, &mut model, &mut seq, cursor + jitter),
                    // Same-timestamp burst.
                    1 => {
                        let t = cursor + Dur::nanos((arg % 100_000) as u64);
                        for _ in 0..BURST {
                            push(&mut q, &mut model, &mut seq, t);
                        }
                    }
                    // Far-overflow push, one to three calendar years out.
                    2 => {
                        let years = 1 + (arg % 3) as u64;
                        push(&mut q, &mut model, &mut seq, cursor + YEAR * years + jitter);
                    }
                    // Park the scan on the earliest event's slot without
                    // popping it (deadline below every queued event),
                    // then push behind the parked position: the rewind
                    // path.
                    3 => {
                        let _ = pop_and_check(&mut q, &mut model, cursor)?;
                        push(&mut q, &mut model, &mut seq, cursor + Dur::nanos((arg % 4_000) as u64));
                    }
                    // Bounded-deadline pops.
                    4 => {
                        let deadline = cursor + jitter;
                        for _ in 0..8 {
                            if let Some(t) = pop_and_check(&mut q, &mut model, deadline)? {
                                cursor = cursor.max(t);
                            } else {
                                break;
                            }
                        }
                    }
                    // Unbounded pops (a few).
                    _ => {
                        for _ in 0..4 {
                            if let Some(t) = pop_and_check(&mut q, &mut model, Time::MAX)? {
                                cursor = cursor.max(t);
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
            // Drain both completely; the full residual order must match.
            loop {
                let t = pop_and_check(&mut q, &mut model, Time::MAX)?;
                match t {
                    Some(t) => cursor = cursor.max(t),
                    None => break,
                }
            }
            prop_assert!(model.is_empty());
            prop_assert_eq!(q.in_buckets, 0);
            prop_assert!(q.is_empty());
        }
    }
}
