//! End-to-end tests of the DSN 2011 techniques: replication cost,
//! speculative execution, and state partitioning.

use hpsmr_core::deploy::{deploy_cs, deploy_smr, PartitionOptions, SmrOptions};
use hpsmr_core::{SMR_COMPLETED, SMR_LATENCY, SMR_SPEC_EXEC};
use simnet::prelude::*;
use workload::WorkloadKind;

fn completed(sim: &Sim, clients: &[NodeId]) -> u64 {
    clients.iter().map(|&c| sim.metrics().counter(c, SMR_COMPLETED)).sum()
}

fn run_cs(workload: WorkloadKind, n_clients: usize, secs: u64) -> (f64, Dur) {
    let mut sim = Sim::new(SimConfig::default());
    let d = deploy_cs(&mut sim, n_clients, workload, None);
    sim.run_until(Time::from_secs(secs));
    let done = completed(&sim, &d.clients);
    let lat = sim.metrics().latency(SMR_LATENCY).mean;
    (done as f64 / secs as f64, lat)
}

fn run_smr(opts: SmrOptions, secs: u64) -> (f64, Dur, u64) {
    let mut sim = Sim::new(SimConfig::default());
    let d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_secs(secs));
    let done = completed(&sim, &d.clients);
    let lat = sim.metrics().latency(SMR_LATENCY).mean;
    let retries: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, "smr.retries")).sum();
    (done as f64 / secs as f64, lat, retries)
}

#[test]
fn cs_baseline_reaches_paper_plateaus() {
    // Fig 4.3: CS queries plateau ~3.5 Kcps; single updates ~55 Kcps.
    let (q_tput, _) = run_cs(WorkloadKind::Queries, 40, 2);
    assert!((2_000.0..5_000.0).contains(&q_tput), "CS query throughput {q_tput:.0} cps");
    let (u_tput, _) = run_cs(WorkloadKind::InsDelSingle, 100, 2);
    assert!((30_000.0..90_000.0).contains(&u_tput), "CS update throughput {u_tput:.0} cps");
}

#[test]
fn replication_adds_latency_over_cs() {
    // Fig 4.1 left: at light load (neither system saturated), SMR
    // latency exceeds CS latency — the cost of ordering.
    let (_, cs_lat) = run_cs(WorkloadKind::Queries, 2, 2);
    let opts = SmrOptions {
        n_replicas: 2,
        n_clients: 2,
        workload: WorkloadKind::Queries,
        ..SmrOptions::default()
    };
    let (_, smr_lat, retries) = run_smr(opts, 2);
    assert_eq!(retries, 0, "no client should have needed a retry");
    assert!(smr_lat > cs_lat, "SMR latency {smr_lat:?} should exceed CS latency {cs_lat:?}");
    assert!(smr_lat < cs_lat + Dur::millis(5), "ordering overhead implausibly large");
}

#[test]
fn replicas_deliver_identical_orders() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = SmrOptions {
        n_replicas: 4,
        n_clients: 30,
        workload: WorkloadKind::InsDelSingle,
        ..SmrOptions::default()
    };
    let d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_secs(2));
    let log = d.log.lock().unwrap();
    assert!(log.total_deliveries() > 1000);
    log.check_total_order().expect("replicas must agree on the command order");
}

#[test]
fn speculation_reduces_latency_not_correctness() {
    // Fig 4.5/4.6: speculative replicas answer sooner; throughput gains
    // follow from Little's law.
    let base = SmrOptions {
        n_replicas: 2,
        n_clients: 40,
        workload: WorkloadKind::InsDelBatch,
        ..SmrOptions::default()
    };
    let plain = SmrOptions { speculative: false, ..base.clone() };
    let spec = SmrOptions { speculative: true, ..base };
    let (plain_tput, plain_lat, _) = run_smr(plain, 2);
    let (spec_tput, spec_lat, _) = run_smr(spec, 2);
    assert!(spec_lat < plain_lat, "speculation should cut latency: {spec_lat:?} vs {plain_lat:?}");
    assert!(
        spec_tput >= plain_tput * 0.95,
        "speculation must not lose throughput: {spec_tput:.0} vs {plain_tput:.0}"
    );
}

#[test]
fn speculative_replicas_actually_speculate_and_agree() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = SmrOptions {
        n_replicas: 2,
        n_clients: 20,
        workload: WorkloadKind::Queries,
        speculative: true,
        ..SmrOptions::default()
    };
    let d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_secs(2));
    let spec: u64 = d.all_replicas().iter().map(|&r| sim.metrics().counter(r, SMR_SPEC_EXEC)).sum();
    assert!(spec > 500, "replicas speculated only {spec} commands");
    d.log.lock().unwrap().check_total_order().expect("order preserved under speculation");
    // In stable runs the coordinator never changes, so the paper's claim
    // holds: the speculated order is always confirmed.
    let rollbacks: u64 =
        d.all_replicas().iter().map(|&r| sim.metrics().counter(r, hpsmr_core::SMR_ROLLBACKS)).sum();
    assert_eq!(rollbacks, 0, "stable-coordinator runs must not roll back");
}

#[test]
fn partitioning_scales_query_throughput() {
    // Fig 4.7: 2 partitions ~2x, 4 partitions ~4x over full replication.
    let full = SmrOptions {
        n_replicas: 2,
        n_clients: 150,
        workload: WorkloadKind::Queries,
        ..SmrOptions::default()
    };
    let (full_tput, _, _) = run_smr(full.clone(), 2);
    let two = SmrOptions {
        partitions: Some(PartitionOptions { n: 2, replicas_per: 2, cross_pct: 0 }),
        ..full.clone()
    };
    let (two_tput, _, _) = run_smr(two, 2);
    let four = SmrOptions {
        partitions: Some(PartitionOptions { n: 4, replicas_per: 2, cross_pct: 0 }),
        ..full
    };
    let (four_tput, _, _) = run_smr(four, 2);
    assert!(
        two_tput > 1.5 * full_tput,
        "2 partitions should ~double throughput: {full_tput:.0} -> {two_tput:.0}"
    );
    assert!(
        four_tput > 2.5 * full_tput,
        "4 partitions should scale further: {full_tput:.0} -> {four_tput:.0}"
    );
}

#[test]
fn cross_partition_queries_merge_and_preserve_order() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = SmrOptions {
        n_clients: 60,
        workload: WorkloadKind::Queries,
        partitions: Some(PartitionOptions { n: 2, replicas_per: 2, cross_pct: 50 }),
        ..SmrOptions::default()
    };
    let d = deploy_smr(&mut sim, &opts);
    sim.run_until(Time::from_secs(2));
    let done = completed(&sim, &d.clients);
    assert!(done > 2000, "only {done} cross-partition commands completed");
    // §4.2.2's state-partitioning ordering: common (cross-partition)
    // commands appear in the same relative order at every partition.
    d.log.lock().unwrap().check_partial_order().expect("acyclic cross-partition order");
    let retries: u64 = d.clients.iter().map(|&c| sim.metrics().counter(c, "smr.retries")).sum();
    assert_eq!(retries, 0);
}

#[test]
fn speculation_plus_partitioning_compose() {
    // Fig 4.10: both techniques together still work and cut latency.
    let base = SmrOptions {
        n_clients: 60,
        workload: WorkloadKind::Queries,
        partitions: Some(PartitionOptions { n: 2, replicas_per: 2, cross_pct: 25 }),
        ..SmrOptions::default()
    };
    let (_, plain_lat, _) = run_smr(SmrOptions { speculative: false, ..base.clone() }, 2);
    let (_, spec_lat, _) = run_smr(SmrOptions { speculative: true, ..base }, 2);
    assert!(
        spec_lat <= plain_lat,
        "speculation should not hurt partitioned latency: {spec_lat:?} vs {plain_lat:?}"
    );
}

#[test]
fn deterministic_deployments() {
    let run = || {
        let mut sim = Sim::new(SimConfig::default());
        let opts = SmrOptions { n_clients: 10, ..SmrOptions::default() };
        let d = deploy_smr(&mut sim, &opts);
        sim.run_until(Time::from_secs(1));
        completed(&sim, &d.clients)
    };
    assert_eq!(run(), run());
}
