//! Session-tier gates (ISSUE 10): the open-loop arrival sequence is a
//! pure function of `(seed, partition)` at any thread count, and mass
//! sessions ride out a coordinator failover injected by a [`FaultPlan`].

use hpsmr_core::deploy::{deploy_smr_sessions, SessionDeployment, SessionOptions};
use simnet::prelude::*;
use workload::{
    SESSIONS_ARRIVAL_US, SESSIONS_COMPLETED, SESSIONS_RETRIES, SESSIONS_SHED, SESSIONS_SUBMITTED,
    SESSION_LATENCY,
};

fn options() -> SessionOptions {
    SessionOptions {
        n_tables: 2,
        sessions_per_table: 1_000,
        rate_per_table: 5_000.0,
        stop_at: Some(Time::from_millis(300)),
        ..SessionOptions::default()
    }
}

fn build(shards: usize, threads: usize, fast: bool) -> (Sim, SessionDeployment) {
    let mut sim = Sim::with_partition(SimConfig::default(), Partition::modulo(0, shards));
    let d = deploy_smr_sessions(&mut sim, &options());
    if fast {
        sim.set_exec_mode(ExecMode::Fast);
        sim.set_threads(threads);
    }
    (sim, d)
}

/// The arrival pin: per-table `(submitted, Σ arrival µs)`. Together
/// these commit to the whole arrival sequence — a single arrival moved,
/// added, or dropped changes the sum.
fn arrival_pin(sim: &Sim, d: &SessionDeployment) -> Vec<(u64, u64)> {
    d.tables
        .iter()
        .map(|&t| {
            (
                sim.metrics().counter(t, SESSIONS_SUBMITTED),
                sim.metrics().counter(t, SESSIONS_ARRIVAL_US),
            )
        })
        .collect()
}

fn counters(sim: &Sim) -> Vec<(usize, String, u64)> {
    let mut v = Vec::new();
    sim.metrics().for_each_counter(|node, name, val| v.push((node.0, name.to_string(), val)));
    v
}

fn run(shards: usize, threads: usize, fast: bool) -> (Sim, SessionDeployment) {
    let (mut sim, d) = build(shards, threads, fast);
    sim.run_until(Time::from_millis(400));
    (sim, d)
}

#[test]
fn open_loop_arrivals_are_pure_in_seed_and_partition() {
    let (det1, d1) = run(1, 1, false);
    let (det4, d4) = run(4, 1, false);
    let (fast2, f2) = run(4, 2, true);
    let (fast4, f4) = run(4, 4, true);

    let pin = arrival_pin(&det1, &d1);
    assert!(pin.iter().all(|&(sub, _)| sub > 500), "arrivals must flow: {pin:?}");
    for (label, s, d) in [("det/4", &det4, &d4), ("fast/2", &fast2, &f2), ("fast/4", &fast4, &f4)] {
        // No arrival may be shed (a shed skips the generator's RNG
        // draws, which would legitimately fork the stream).
        let shed: u64 = d.tables.iter().map(|&t| s.metrics().counter(t, SESSIONS_SHED)).sum();
        assert_eq!(shed, 0, "{label}: shedding would perturb the pin");
        assert_eq!(pin, arrival_pin(s, d), "{label}: arrival sequence diverged");
    }

    // Determinism mode is bit-identical under any partition: the whole
    // counter surface matches, not just the node-local arrival pin.
    assert_eq!(counters(&det1), counters(&det4));
    // Fast mode is a pure function of (seed, partition): thread count
    // must not show anywhere.
    assert_eq!(counters(&fast2), counters(&fast4));
}

#[test]
fn sessions_ride_out_coordinator_failover() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = SessionOptions {
        n_tables: 2,
        sessions_per_table: 10_000,
        rate_per_table: 5_000.0,
        stop_at: Some(Time::from_millis(1800)),
        ..SessionOptions::default()
    };
    let d = deploy_smr_sessions(&mut sim, &opts);
    let completed = |sim: &Sim| -> u64 {
        d.tables.iter().map(|&t| sim.metrics().counter(t, SESSIONS_COMPLETED)).sum()
    };

    sim.run_until(Time::from_millis(500));
    let at_crash = completed(&sim);
    assert!(at_crash > 0, "requests must flow before the crash");

    // Scheduled mid-run crash of the ring coordinator: suspicion
    // (200 ms) + M-Ring takeover + the tables' retry rotation across
    // surviving ring members must get requests completing again.
    FaultPlan::new().at(Time::from_millis(500), FaultAction::Crash(d.coordinator())).run(
        &mut sim,
        Time::from_millis(2500),
        |_, _| {},
    );

    let after = completed(&sim);
    assert!(
        after > at_crash + 500,
        "sessions must re-find the leader and keep completing: {at_crash} -> {after}"
    );
    let retries: u64 = d.tables.iter().map(|&t| sim.metrics().counter(t, SESSIONS_RETRIES)).sum();
    assert!(retries > 0, "the outage must have triggered deadline retries");

    // The latency histogram backs p50/p99/p999 reporting.
    for frac in [0.50, 0.99, 0.999] {
        assert!(
            sim.metrics().percentile(SESSION_LATENCY, frac).is_some(),
            "missing p{frac} of session latency"
        );
    }
    let (p50, p99) = (
        sim.metrics().percentile(SESSION_LATENCY, 0.50).unwrap(),
        sim.metrics().percentile(SESSION_LATENCY, 0.99).unwrap(),
    );
    assert!(p50 <= p99, "quantiles must be monotone: {p50:?} > {p99:?}");
}
