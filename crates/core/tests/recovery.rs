//! End-to-end service-state recovery: a U-Ring learner applying
//! delivered values to the B⁺-tree service crashes mid-load, is
//! respawned over its stable store, restores the tree from its durable
//! checkpoint, replays only the decided suffix — and ends with exactly
//! the same tree as a learner that never crashed.

use std::any::Any;
use std::sync::Arc;
use std::sync::Mutex;

use btree::TreeService;
use hpsmr_core::snapshot::{ServiceApp, Snapshot};
use recovery::RecoveredApp;
use ringpaxos::cluster::{
    deploy_uring_recoverable, respawn_uring, URingOptions, URingRecoveryOptions,
};
use simnet::prelude::*;

/// A shared handle over the service app so the test can inspect the
/// tree after the run (the actor owns its `RecoveredApp` box).
#[derive(Clone)]
struct Shared(Arc<Mutex<ServiceApp<TreeService>>>);

impl Shared {
    fn new() -> Shared {
        Shared(Arc::new(Mutex::new(ServiceApp::tree())))
    }
}

impl RecoveredApp for Shared {
    fn apply(&mut self, proposer: u64, seq: u64, bytes: u32) {
        self.0.lock().unwrap().apply(proposer, seq, bytes);
    }
    fn snapshot(&mut self) -> (u64, Option<Arc<dyn Any + Send + Sync>>) {
        self.0.lock().unwrap().snapshot()
    }
    fn restore(&mut self, state: Option<&Arc<dyn Any + Send + Sync>>) {
        self.0.lock().unwrap().restore(state);
    }
}

#[test]
fn recovered_tree_service_matches_uninterrupted_replica() {
    let victim_pos = 4usize;
    let witness_pos = 3usize;
    let witness = Shared::new();
    let original = Shared::new();
    let w2 = witness.clone();
    let o2 = original.clone();

    let mut sim = Sim::new(SimConfig::default());
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: vec![0, 1, 2],
        proposer_rate_bps: 50_000_000,
        msg_bytes: 16 * 1024,
        proposer_stop: Some(Time::from_millis(2000)),
        ..URingOptions::default()
    };
    let rec = URingRecoveryOptions { checkpoint_interval: 128, ..Default::default() };
    let ru = deploy_uring_recoverable(
        &mut sim,
        &opts,
        rec,
        |_| {},
        move |pos| {
            if pos == witness_pos {
                Some(Box::new(w2.clone()))
            } else if pos == victim_pos {
                Some(Box::new(o2.clone()))
            } else {
                None
            }
        },
    );

    sim.run_until(Time::from_millis(1000));
    sim.set_node_up(ru.d.ring[victim_pos], false);
    sim.run_until(Time::from_millis(1300));

    // The respawned incarnation gets a *fresh* app: everything it ends
    // up holding must come from the checkpoint restore plus the suffix.
    let recovered = Shared::new();
    let r2 = recovered.clone();
    respawn_uring(&mut sim, &ru, victim_pos, Some(Box::new(r2)));
    sim.run_until(Time::from_secs(6));

    ru.d.log.lock().unwrap().check_crash_agreement(&[0, 1, 2, 3, 4]).expect("agreement");

    let witness_state = witness.0.lock().unwrap().service().snapshot();
    let recovered_state = recovered.0.lock().unwrap().service().snapshot();
    assert!(!witness_state.is_empty(), "the witness applied real load");
    assert_eq!(
        recovered_state, witness_state,
        "the recovered tree equals the uninterrupted replica's"
    );
    // The checkpoint carried real tree state, not just metadata.
    let cp = ru.stores[victim_pos].lock().unwrap().checkpoint.clone().expect("checkpointed");
    assert!(cp.state.is_some());
    assert!(cp.state_bytes > 4096, "snapshot grows with the tree ({} bytes)", cp.state_bytes);
    // The crashed incarnation's app kept only its pre-crash state; the
    // recovered one moved past it.
    assert!(original.0.lock().unwrap().service().snapshot().len() <= witness_state.len());
}
