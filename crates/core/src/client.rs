//! Closed-loop clients: each client keeps exactly one command
//! outstanding, as in the paper's latency/throughput experiments.

use std::collections::HashMap;

use abcast::MsgId;
use btree::{Partitioning, TreeCommand};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringpaxos::msg::MMsg;
use ringpaxos::value::{Value, ALL_PARTITIONS};
use simnet::prelude::*;
use workload::{RetryDecision, RetryPolicy, Session, WorkloadGen};

use crate::msg::{CsRequest, SmrResponse};
use crate::replica::{SMR_COMPLETED, SMR_LATENCY};
use crate::service::{Registry, StoredCommand};

const T_RETRY: u64 = 41 << 56;

/// The retry behaviour this client has always had, expressed as a
/// [`RetryPolicy`]: resubmit a command outstanding longer than 400 ms on
/// each 500 ms check, with no backoff growth and no abandonment (the
/// paper's proposers "submit new requests and re-submit pending
/// requests", §3.5.8).
fn resubmit_policy() -> RetryPolicy {
    RetryPolicy {
        base: Dur::millis(400),
        cap: Dur::millis(400),
        tick: Dur::millis(500),
        max_attempts: u32::MAX,
    }
}

/// Where the client sends its commands.
#[derive(Clone, Copy, Debug)]
pub enum Target {
    /// Directly to a stand-alone server (the CS baseline, Fig. 4.1).
    ClientServer {
        /// The server node.
        server: NodeId,
    },
    /// Through the ordering layer (state-machine replication).
    Replicated {
        /// The Ring Paxos coordinator.
        coordinator: NodeId,
    },
}

/// A closed-loop client issuing the B⁺-tree workloads.
pub struct SmrClient {
    me: NodeId,
    target: Target,
    registry: Registry<TreeCommand>,
    workload: WorkloadGen,
    rng: SmallRng,
    partitioning: Option<Partitioning>,
    /// Outstanding command and the replies still expected from partitions.
    expected: HashMap<MsgId, u32>,
    policy: RetryPolicy,
    outstanding: Option<Session>,
    next_seq: u64,
    stop_at: Option<Time>,
}

impl SmrClient {
    /// Creates a client for node `me` with its own deterministic RNG.
    pub fn new(
        me: NodeId,
        target: Target,
        registry: Registry<TreeCommand>,
        workload: WorkloadGen,
        partitioning: Option<Partitioning>,
        seed: u64,
        stop_at: Option<Time>,
    ) -> SmrClient {
        SmrClient {
            me,
            target,
            registry,
            workload,
            rng: SmallRng::seed_from_u64(seed),
            partitioning,
            expected: HashMap::new(),
            policy: resubmit_policy(),
            outstanding: None,
            next_seq: 0,
            stop_at,
        }
    }

    fn send_next(&mut self, ctx: &mut Ctx) {
        if self.stop_at.is_some_and(|t| ctx.now() >= t) {
            self.outstanding = None;
            return;
        }
        let raw_ops = self.workload.next_command(&mut self.rng);
        let kind = self.workload.kind();
        // Pre-split into per-partition sub-commands (§4.2.2): a
        // cross-partition query is cut at the boundary, each partition
        // executing its slice; updates always land in one partition.
        let (ops, mask, replies) = match self.partitioning {
            Some(p) => {
                let mut ops = Vec::new();
                let mut mask = 0u32;
                for op in &raw_ops {
                    for (part, sub) in p.split(*op) {
                        ops.push((1u32 << part, sub));
                        mask |= 1 << part;
                    }
                }
                (ops, mask, mask.count_ones())
            }
            None => {
                (raw_ops.into_iter().map(|op| (ALL_PARTITIONS, op)).collect(), ALL_PARTITIONS, 1)
            }
        };
        let id = MsgId(((self.me.0 as u64) << 40) | self.next_seq);
        self.next_seq += 1;
        self.registry
            .put(id, StoredCommand { ops, client: self.me, mask, reply_bytes: kind.reply_bytes() });
        self.expected.insert(id, replies);
        self.outstanding = Some(Session::open(id, ctx.now(), &self.policy));
        self.submit(id, mask, kind.command_bytes(), ctx);
        ctx.counter_add("smr.submitted", 1);
    }

    fn submit(&mut self, id: MsgId, mask: u32, bytes: u32, ctx: &mut Ctx) {
        match self.target {
            Target::ClientServer { server } => {
                ctx.udp_send(server, CsRequest { id }, bytes);
            }
            Target::Replicated { coordinator } => {
                let v = Value {
                    id,
                    proposer: self.me,
                    seq: id.0 & 0xff_ffff_ffff,
                    bytes,
                    submitted: ctx.now(),
                    mask,
                };
                ctx.udp_send(coordinator, MMsg::Propose(v), bytes);
            }
        }
    }
}

impl Actor for SmrClient {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.send_next(ctx);
        ctx.set_timer(self.policy.tick, TimerToken(T_RETRY));
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(&SmrResponse { id, .. }) = env.payload.downcast_ref::<SmrResponse>() else {
            return;
        };
        let Some(remaining) = self.expected.get_mut(&id) else { return };
        *remaining = remaining.saturating_sub(1);
        if *remaining > 0 {
            return;
        }
        self.expected.remove(&id);
        self.registry.remove(id);
        if let Some(s) = self.outstanding.take() {
            if s.id == id {
                // The reply strictly follows the request; `since`
                // debug-asserts that instead of masking an inversion.
                ctx.record_latency(SMR_LATENCY, ctx.now().since(s.started));
                ctx.counter_add(SMR_COMPLETED, 1);
            }
        }
        self.send_next(ctx);
    }

    fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
        // Re-submit a command that has been outstanding implausibly long
        // (its proposal was dropped by an overloaded coordinator — the
        // paper's proposers "submit new requests and re-submit pending
        // requests", §3.5.8). The policy never abandons, so `poll` only
        // ever answers Wait or Resubmit here.
        let policy = self.policy;
        if let Some(s) = self.outstanding.as_mut() {
            if let RetryDecision::Resubmit { .. } = s.poll(ctx.now(), &policy) {
                let id = s.id;
                if let Some(cmd) = self.registry.get(id) {
                    ctx.counter_add("smr.retries", 1);
                    let kind = self.workload.kind();
                    self.submit(id, cmd.mask, kind.command_bytes(), ctx);
                }
            }
        } else if self.stop_at.is_none_or(|t| ctx.now() < t) && self.expected.is_empty() {
            // Closed loop stalled (should not happen): restart it.
            self.send_next(ctx);
        }
        ctx.set_timer(self.policy.tick, TimerToken(T_RETRY));
    }
}
