//! Deployment builders for the ch. 4 experiment topologies: the CS
//! baseline, full state-machine replication (plain or speculative), and
//! partitioned SMR over the modified M-Ring Paxos.

use abcast::{shared_log, SharedLog};
use btree::{Partitioning, TreeCommand, TreeService, WorkloadGen, WorkloadKind};
use ringpaxos::mring::MRingProcess;
use ringpaxos::{MRingConfig, StorageMode};
use simnet::prelude::*;

use crate::client::{SmrClient, Target};
use crate::cs::CsServer;
use crate::replica::{ReplicaConfig, SmrReplica};
use crate::service::Registry;

struct Idle;
impl Actor for Idle {
    fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
}

/// Tuples pre-loaded into each partition's tree. The paper loads 12 M
/// keys; the simulation's cost model is size-independent, so a smaller
/// population keeps deployment fast while preserving behaviour.
pub const POPULATE_COUNT: u64 = 12_000;

/// Partitioned-deployment options (§4.2.2).
#[derive(Clone, Copy, Debug)]
pub struct PartitionOptions {
    /// Number of partitions.
    pub n: u32,
    /// Replicas per partition.
    pub replicas_per: usize,
    /// Percentage of queries that cross a partition boundary.
    pub cross_pct: u32,
}

/// Options for [`deploy_smr`].
#[derive(Clone, Debug)]
pub struct SmrOptions {
    /// Replicas (full replication) — ignored when `partitions` is set.
    pub n_replicas: usize,
    /// Ring acceptors, coordinator included.
    pub ring_size: usize,
    /// The client workload.
    pub workload: WorkloadKind,
    /// Closed-loop clients.
    pub n_clients: usize,
    /// Execute speculatively on payload arrival (§4.2.1).
    pub speculative: bool,
    /// State partitioning (§4.2.2); `None` = full replication.
    pub partitions: Option<PartitionOptions>,
    /// Stop issuing commands at this time.
    pub stop_at: Option<Time>,
    /// Acceptor storage.
    pub storage: StorageMode,
}

impl Default for SmrOptions {
    fn default() -> Self {
        SmrOptions {
            n_replicas: 2,
            ring_size: 3,
            workload: WorkloadKind::Queries,
            n_clients: 20,
            speculative: false,
            partitions: None,
            stop_at: None,
            storage: StorageMode::InMemory,
        }
    }
}

/// A deployed SMR system.
pub struct SmrDeployment {
    /// Ring acceptors (last = coordinator).
    pub ring: Vec<NodeId>,
    /// Replicas, grouped by partition (one group when unpartitioned).
    pub replicas: Vec<Vec<NodeId>>,
    /// Clients.
    pub clients: Vec<NodeId>,
    /// The shared command registry.
    pub registry: Registry<TreeCommand>,
    /// The ring's delivery log (per replica, in `cfg.learners` order).
    pub log: SharedLog,
    /// Key partitioning, when enabled.
    pub partitioning: Option<Partitioning>,
    /// The ring configuration.
    pub cfg: MRingConfig,
}

impl SmrDeployment {
    /// The ring coordinator.
    pub fn coordinator(&self) -> NodeId {
        self.cfg.coordinator()
    }

    /// All replica nodes, flattened.
    pub fn all_replicas(&self) -> Vec<NodeId> {
        self.replicas.iter().flatten().copied().collect()
    }
}

/// Deploys state-machine replication per `opts`.
pub fn deploy_smr(sim: &mut Sim, opts: &SmrOptions) -> SmrDeployment {
    let n_partitions = opts.partitions.map(|p| p.n).unwrap_or(1);
    let replicas_per = opts.partitions.map(|p| p.replicas_per).unwrap_or(opts.n_replicas);

    let ring: Vec<NodeId> = (0..opts.ring_size).map(|_| sim.add_node(Box::new(Idle))).collect();
    let replicas: Vec<Vec<NodeId>> = (0..n_partitions)
        .map(|_| (0..replicas_per).map(|_| sim.add_node(Box::new(Idle))).collect())
        .collect();
    let clients: Vec<NodeId> = (0..opts.n_clients).map(|_| sim.add_node(Box::new(Idle))).collect();

    // Groups: the base group (heartbeats, NewRing) plus, when
    // partitioned, one group per partition and the decision group.
    let base_group = sim.add_group();
    let flat_replicas: Vec<NodeId> = replicas.iter().flatten().copied().collect();
    let mut cfg = MRingConfig::new(ring.clone(), flat_replicas.clone(), base_group);
    cfg.storage = opts.storage;
    // The single-update workload is not batched in the paper (§4.4.2);
    // batching into 8 KB packets is specific to Ins/Del (batch). Queries
    // (256 B commands) also go one per instance.
    cfg.packet_bytes = match opts.workload {
        WorkloadKind::InsDelBatch => 8192,
        _ => 256,
    };
    cfg.batch_timeout = Dur::micros(100);

    for &n in ring.iter().chain(&flat_replicas) {
        sim.subscribe(n, base_group);
    }

    let partitioning = opts.partitions.map(|p| Partitioning::new(p.n));
    if let Some(p) = opts.partitions {
        let groups: Vec<GroupId> = (0..p.n).map(|_| sim.add_group()).collect();
        let decision_group = sim.add_group();
        for &a in &ring {
            for &g in &groups {
                sim.subscribe(a, g);
            }
            sim.subscribe(a, decision_group);
        }
        let mut learner_masks = Vec::new();
        for (pi, part) in replicas.iter().enumerate() {
            for &r in part {
                sim.subscribe(r, groups[pi]);
                sim.subscribe(r, decision_group);
                learner_masks.push(1u32 << pi);
            }
        }
        cfg.partitions =
            Some(ringpaxos::config::PartitionConfig { groups, decision_group, learner_masks });
    }

    let log = shared_log(flat_replicas.len());
    for &a in &ring {
        sim.replace_actor(a, Box::new(MRingProcess::new(cfg.clone(), a, None, None)));
    }

    let registry: Registry<TreeCommand> = Registry::new();
    let span = Partitioning::new(n_partitions.max(1)).span;
    let mut log_index = 0;
    for (pi, part) in replicas.iter().enumerate() {
        for &r in part {
            let inner = MRingProcess::new(cfg.clone(), r, None, Some(log.clone()));
            let service = TreeService::populated(pi as u64 * span, span, POPULATE_COUNT);
            let rcfg = ReplicaConfig {
                partition: pi as u32,
                mask: if opts.partitions.is_some() {
                    1 << pi
                } else {
                    ringpaxos::value::ALL_PARTITIONS
                },
                peers: part.clone(),
                speculative: opts.speculative,
                ..ReplicaConfig::default()
            };
            let actor =
                SmrReplica::new(inner, log.clone(), log_index, r, service, registry.clone(), rcfg);
            sim.replace_actor(r, Box::new(actor));
            log_index += 1;
        }
    }

    let coordinator = cfg.coordinator();
    let key_space = span * n_partitions as u64;
    for (ci, &c) in clients.iter().enumerate() {
        let mut workload = WorkloadGen::new(opts.workload, key_space);
        if let (Some(p), Some(po)) = (partitioning, opts.partitions) {
            workload = workload.with_partitions(p, po.cross_pct);
        }
        let client = SmrClient::new(
            c,
            Target::Replicated { coordinator },
            registry.clone(),
            workload,
            partitioning,
            0xc11e47 + ci as u64,
            opts.stop_at,
        );
        sim.replace_actor(c, Box::new(client));
    }

    SmrDeployment { ring, replicas, clients, registry, log, partitioning, cfg }
}

/// A deployed client-server baseline.
pub struct CsDeployment {
    /// The stand-alone server.
    pub server: NodeId,
    /// Clients.
    pub clients: Vec<NodeId>,
    /// Shared command registry.
    pub registry: Registry<TreeCommand>,
}

/// Deploys the non-replicated baseline: one server, `n_clients`
/// closed-loop clients.
pub fn deploy_cs(
    sim: &mut Sim,
    n_clients: usize,
    workload: WorkloadKind,
    stop_at: Option<Time>,
) -> CsDeployment {
    let server = sim.add_node(Box::new(Idle));
    let clients: Vec<NodeId> = (0..n_clients).map(|_| sim.add_node(Box::new(Idle))).collect();
    let registry: Registry<TreeCommand> = Registry::new();
    let span = Partitioning::new(1).span;
    let service = TreeService::populated(0, span, POPULATE_COUNT);
    sim.replace_actor(server, Box::new(CsServer::new(service, registry.clone())));
    for (ci, &c) in clients.iter().enumerate() {
        let workload = WorkloadGen::new(workload, span);
        let client = SmrClient::new(
            c,
            Target::ClientServer { server },
            registry.clone(),
            workload,
            None,
            0xc5 + ci as u64,
            stop_at,
        );
        sim.replace_actor(c, Box::new(client));
    }
    CsDeployment { server, clients, registry }
}
