//! Deployment builders for the ch. 4 experiment topologies: the CS
//! baseline, full state-machine replication (plain or speculative), and
//! partitioned SMR over the modified M-Ring Paxos.

use abcast::{shared_log, SharedLog};
use btree::{Partitioning, TreeCommand, TreeService};
use ringpaxos::mring::MRingProcess;
use ringpaxos::{MRingConfig, StorageMode};
use simnet::prelude::*;
use workload::{
    Arrival, KeyedWorkload, Poisson, RetryPolicy, SessionTable, SessionTableConfig, WorkloadGen,
    WorkloadKind,
};

use crate::client::{SmrClient, Target};
use crate::cs::CsServer;
use crate::replica::{ReplicaConfig, SmrReplica};
use crate::service::Registry;
use crate::session::TreeSessionDriver;

struct Idle;
impl Actor for Idle {
    fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
}

/// Tuples pre-loaded into each partition's tree. The paper loads 12 M
/// keys; the simulation's cost model is size-independent, so a smaller
/// population keeps deployment fast while preserving behaviour.
pub const POPULATE_COUNT: u64 = 12_000;

/// Partitioned-deployment options (§4.2.2).
#[derive(Clone, Copy, Debug)]
pub struct PartitionOptions {
    /// Number of partitions.
    pub n: u32,
    /// Replicas per partition.
    pub replicas_per: usize,
    /// Percentage of queries that cross a partition boundary.
    pub cross_pct: u32,
}

/// Options for [`deploy_smr`].
#[derive(Clone, Debug)]
pub struct SmrOptions {
    /// Replicas (full replication) — ignored when `partitions` is set.
    pub n_replicas: usize,
    /// Ring acceptors, coordinator included.
    pub ring_size: usize,
    /// The client workload.
    pub workload: WorkloadKind,
    /// Closed-loop clients.
    pub n_clients: usize,
    /// Execute speculatively on payload arrival (§4.2.1).
    pub speculative: bool,
    /// State partitioning (§4.2.2); `None` = full replication.
    pub partitions: Option<PartitionOptions>,
    /// Stop issuing commands at this time.
    pub stop_at: Option<Time>,
    /// Acceptor storage.
    pub storage: StorageMode,
}

impl Default for SmrOptions {
    fn default() -> Self {
        SmrOptions {
            n_replicas: 2,
            ring_size: 3,
            workload: WorkloadKind::Queries,
            n_clients: 20,
            speculative: false,
            partitions: None,
            stop_at: None,
            storage: StorageMode::InMemory,
        }
    }
}

/// A deployed SMR system.
pub struct SmrDeployment {
    /// Ring acceptors (last = coordinator).
    pub ring: Vec<NodeId>,
    /// Replicas, grouped by partition (one group when unpartitioned).
    pub replicas: Vec<Vec<NodeId>>,
    /// Clients.
    pub clients: Vec<NodeId>,
    /// The shared command registry.
    pub registry: Registry<TreeCommand>,
    /// The ring's delivery log (per replica, in `cfg.learners` order).
    pub log: SharedLog,
    /// Key partitioning, when enabled.
    pub partitioning: Option<Partitioning>,
    /// The ring configuration.
    pub cfg: MRingConfig,
}

impl SmrDeployment {
    /// The ring coordinator.
    pub fn coordinator(&self) -> NodeId {
        self.cfg.coordinator()
    }

    /// All replica nodes, flattened.
    pub fn all_replicas(&self) -> Vec<NodeId> {
        self.replicas.iter().flatten().copied().collect()
    }
}

/// The server half of an SMR deployment: ring, replicas, and the extra
/// (still-Idle) nodes reserved for whichever client tier the caller
/// installs — dedicated closed-loop clients or session tables.
struct ServerSide {
    ring: Vec<NodeId>,
    replicas: Vec<Vec<NodeId>>,
    /// Client-tier nodes, allocated after the replicas so node-id order
    /// matches the historical `deploy_smr` layout exactly.
    extras: Vec<NodeId>,
    registry: Registry<TreeCommand>,
    log: SharedLog,
    partitioning: Option<Partitioning>,
    cfg: MRingConfig,
}

/// Brings up the ordering ring and the replicated B⁺-tree service.
/// Node-id allocation order (ring, then replicas, then `n_extra` client
/// nodes, then groups) is shared by every deployment flavour so golden
/// traces of existing configs are unaffected by the factoring.
fn deploy_servers(
    sim: &mut Sim,
    partitions: Option<PartitionOptions>,
    n_replicas: usize,
    ring_size: usize,
    storage: StorageMode,
    speculative: bool,
    packet_bytes: u32,
    n_extra: usize,
) -> ServerSide {
    let n_partitions = partitions.map(|p| p.n).unwrap_or(1);
    let replicas_per = partitions.map(|p| p.replicas_per).unwrap_or(n_replicas);

    let ring: Vec<NodeId> = (0..ring_size).map(|_| sim.add_node(Box::new(Idle))).collect();
    let replicas: Vec<Vec<NodeId>> = (0..n_partitions)
        .map(|_| (0..replicas_per).map(|_| sim.add_node(Box::new(Idle))).collect())
        .collect();
    let extras: Vec<NodeId> = (0..n_extra).map(|_| sim.add_node(Box::new(Idle))).collect();

    // Groups: the base group (heartbeats, NewRing) plus, when
    // partitioned, one group per partition and the decision group.
    let base_group = sim.add_group();
    let flat_replicas: Vec<NodeId> = replicas.iter().flatten().copied().collect();
    let mut cfg = MRingConfig::new(ring.clone(), flat_replicas.clone(), base_group);
    cfg.storage = storage;
    cfg.packet_bytes = packet_bytes;
    cfg.batch_timeout = Dur::micros(100);

    for &n in ring.iter().chain(&flat_replicas) {
        sim.subscribe(n, base_group);
    }

    let partitioning = partitions.map(|p| Partitioning::new(p.n));
    if let Some(p) = partitions {
        let groups: Vec<GroupId> = (0..p.n).map(|_| sim.add_group()).collect();
        let decision_group = sim.add_group();
        for &a in &ring {
            for &g in &groups {
                sim.subscribe(a, g);
            }
            sim.subscribe(a, decision_group);
        }
        let mut learner_masks = Vec::new();
        for (pi, part) in replicas.iter().enumerate() {
            for &r in part {
                sim.subscribe(r, groups[pi]);
                sim.subscribe(r, decision_group);
                learner_masks.push(1u32 << pi);
            }
        }
        cfg.partitions =
            Some(ringpaxos::config::PartitionConfig { groups, decision_group, learner_masks });
    }

    let log = shared_log(flat_replicas.len());
    for &a in &ring {
        sim.replace_actor(a, Box::new(MRingProcess::new(cfg.clone(), a, None, None)));
    }

    let registry: Registry<TreeCommand> = Registry::new();
    let span = Partitioning::new(n_partitions.max(1)).span;
    let mut log_index = 0;
    for (pi, part) in replicas.iter().enumerate() {
        for &r in part {
            let inner = MRingProcess::new(cfg.clone(), r, None, Some(log.clone()));
            let service = TreeService::populated(pi as u64 * span, span, POPULATE_COUNT);
            let rcfg = ReplicaConfig {
                partition: pi as u32,
                mask: if partitions.is_some() { 1 << pi } else { ringpaxos::value::ALL_PARTITIONS },
                peers: part.clone(),
                speculative,
                ..ReplicaConfig::default()
            };
            let actor =
                SmrReplica::new(inner, log.clone(), log_index, r, service, registry.clone(), rcfg);
            sim.replace_actor(r, Box::new(actor));
            log_index += 1;
        }
    }

    ServerSide { ring, replicas, extras, registry, log, partitioning, cfg }
}

/// Deploys state-machine replication per `opts`.
pub fn deploy_smr(sim: &mut Sim, opts: &SmrOptions) -> SmrDeployment {
    // The single-update workload is not batched in the paper (§4.4.2);
    // batching into 8 KB packets is specific to Ins/Del (batch). Queries
    // (256 B commands) also go one per instance.
    let packet_bytes = match opts.workload {
        WorkloadKind::InsDelBatch => 8192,
        _ => 256,
    };
    let ServerSide { ring, replicas, extras: clients, registry, log, partitioning, cfg } =
        deploy_servers(
            sim,
            opts.partitions,
            opts.n_replicas,
            opts.ring_size,
            opts.storage,
            opts.speculative,
            packet_bytes,
            opts.n_clients,
        );
    let n_partitions = opts.partitions.map(|p| p.n).unwrap_or(1);
    let span = Partitioning::new(n_partitions.max(1)).span;

    let coordinator = cfg.coordinator();
    let key_space = span * n_partitions as u64;
    for (ci, &c) in clients.iter().enumerate() {
        let mut workload = WorkloadGen::new(opts.workload, key_space);
        if let (Some(p), Some(po)) = (partitioning, opts.partitions) {
            workload = workload.with_partitions(p, po.cross_pct);
        }
        let client = SmrClient::new(
            c,
            Target::Replicated { coordinator },
            registry.clone(),
            workload,
            partitioning,
            0xc11e47 + ci as u64,
            opts.stop_at,
        );
        sim.replace_actor(c, Box::new(client));
    }

    SmrDeployment { ring, replicas, clients, registry, log, partitioning, cfg }
}

/// Options for [`deploy_smr_sessions`] — the opt-in mass-session tier
/// (ch. 10): the ch. 4 server side driven by [`SessionTable`] actors
/// instead of one actor per closed-loop client.
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Replicas (full replication) — ignored when `partitions` is set.
    pub n_replicas: usize,
    /// Ring acceptors, coordinator included.
    pub ring_size: usize,
    /// The command shape generated per session interaction.
    pub kind: WorkloadKind,
    /// Zipf exponent for key selection; `0.0` = uniform keys.
    pub zipf_s: f64,
    /// Session-table actors (each its own node; spread them to spread
    /// client-side submission work across sim shards).
    pub n_tables: usize,
    /// Simulated sessions hosted *per table*.
    pub sessions_per_table: u64,
    /// Aggregate open-loop arrival rate *per table* (requests/s); `0.0`
    /// runs the tables closed-loop instead.
    pub rate_per_table: f64,
    /// State partitioning (§4.2.2); `None` = full replication.
    pub partitions: Option<PartitionOptions>,
    /// Retry/backoff knobs shared by every session.
    pub policy: RetryPolicy,
    /// Per-table in-flight ceiling; open-loop arrivals beyond it shed.
    pub max_in_flight: u32,
    /// Stop issuing new requests at this time.
    pub stop_at: Option<Time>,
    /// Acceptor storage.
    pub storage: StorageMode,
    /// Execute speculatively on payload arrival (§4.2.1).
    pub speculative: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            n_replicas: 2,
            ring_size: 3,
            kind: WorkloadKind::InsDelSingle,
            zipf_s: 0.99,
            n_tables: 4,
            sessions_per_table: 250_000,
            rate_per_table: 25_000.0,
            partitions: None,
            policy: RetryPolicy::default(),
            max_in_flight: 1 << 20,
            stop_at: None,
            storage: StorageMode::InMemory,
            speculative: false,
        }
    }
}

/// A deployed mass-session SMR system.
pub struct SessionDeployment {
    /// Ring acceptors (last = coordinator).
    pub ring: Vec<NodeId>,
    /// Replicas, grouped by partition (one group when unpartitioned).
    pub replicas: Vec<Vec<NodeId>>,
    /// Session-table nodes (read `workload`'s `sessions.*` metrics and
    /// the [`workload::SESSION_LATENCY`] histogram here).
    pub tables: Vec<NodeId>,
    /// The shared command registry.
    pub registry: Registry<TreeCommand>,
    /// The ring's delivery log (per replica, in `cfg.learners` order).
    pub log: SharedLog,
    /// Key partitioning, when enabled.
    pub partitioning: Option<Partitioning>,
    /// The ring configuration.
    pub cfg: MRingConfig,
}

impl SessionDeployment {
    /// The ring coordinator.
    pub fn coordinator(&self) -> NodeId {
        self.cfg.coordinator()
    }
}

/// Deploys the session-table client tier over the ch. 4 server side.
/// Opt-in: [`deploy_smr`] and its traces are untouched by this path.
pub fn deploy_smr_sessions(sim: &mut Sim, opts: &SessionOptions) -> SessionDeployment {
    // Mass-session traffic is coordinator-bound; 8 KB packets let the
    // ring batch many 256 B commands per instance (§3.5.4).
    let ServerSide { ring, replicas, extras: tables, registry, log, partitioning, cfg } =
        deploy_servers(
            sim,
            opts.partitions,
            opts.n_replicas,
            opts.ring_size,
            opts.storage,
            opts.speculative,
            8192,
            opts.n_tables,
        );
    let n_partitions = opts.partitions.map(|p| p.n).unwrap_or(1);
    let key_space = Partitioning::new(n_partitions.max(1)).span * n_partitions as u64;

    let coordinator = cfg.coordinator();
    let members = cfg.ring.clone();
    for &t in &tables {
        let workload = if opts.zipf_s > 0.0 {
            KeyedWorkload::zipfian(opts.kind, key_space, opts.zipf_s)
        } else {
            KeyedWorkload::uniform(opts.kind, key_space)
        };
        let driver = TreeSessionDriver::new(
            t,
            coordinator,
            members.clone(),
            registry.clone(),
            workload,
            partitioning,
        );
        let tcfg = SessionTableConfig {
            sessions: opts.sessions_per_table,
            arrival: if opts.rate_per_table > 0.0 {
                Arrival::Poisson(Poisson::with_rate(opts.rate_per_table))
            } else {
                Arrival::Closed
            },
            policy: opts.policy,
            max_in_flight: opts.max_in_flight,
            stop_at: opts.stop_at,
        };
        sim.replace_actor(t, Box::new(SessionTable::new(t, tcfg, driver)));
    }

    SessionDeployment { ring, replicas, tables, registry, log, partitioning, cfg }
}

/// A deployed client-server baseline.
pub struct CsDeployment {
    /// The stand-alone server.
    pub server: NodeId,
    /// Clients.
    pub clients: Vec<NodeId>,
    /// Shared command registry.
    pub registry: Registry<TreeCommand>,
}

/// Deploys the non-replicated baseline: one server, `n_clients`
/// closed-loop clients.
pub fn deploy_cs(
    sim: &mut Sim,
    n_clients: usize,
    workload: WorkloadKind,
    stop_at: Option<Time>,
) -> CsDeployment {
    let server = sim.add_node(Box::new(Idle));
    let clients: Vec<NodeId> = (0..n_clients).map(|_| sim.add_node(Box::new(Idle))).collect();
    let registry: Registry<TreeCommand> = Registry::new();
    let span = Partitioning::new(1).span;
    let service = TreeService::populated(0, span, POPULATE_COUNT);
    sim.replace_actor(server, Box::new(CsServer::new(service, registry.clone())));
    for (ci, &c) in clients.iter().enumerate() {
        let workload = WorkloadGen::new(workload, span);
        let client = SmrClient::new(
            c,
            Target::ClientServer { server },
            registry.clone(),
            workload,
            None,
            0xc5 + ci as u64,
            stop_at,
        );
        sim.replace_actor(c, Box::new(client));
    }
    CsDeployment { server, clients, registry }
}
