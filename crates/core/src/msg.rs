//! Client ↔ server messages of the SMR layer.

use abcast::MsgId;

/// A direct request in the non-replicated client-server baseline.
#[derive(Clone, Copy, Debug)]
pub struct CsRequest {
    /// Command id (contents in the [`crate::service::Registry`]).
    pub id: MsgId,
}

/// A reply from a server or replica to the issuing client.
#[derive(Clone, Copy, Debug)]
pub struct SmrResponse {
    /// Command id being answered.
    pub id: MsgId,
    /// The responding partition (0 when unpartitioned).
    pub partition: u32,
}
