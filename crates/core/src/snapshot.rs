//! Service snapshots: the durability extension of [`Service`].
//!
//! A [`Snapshot`] service can externalize its whole state as a cloneable
//! blob with a modelled on-disk size. The recovery subsystem checkpoints
//! that blob periodically (paying the disk write through the simulated
//! device) and restores it on a process restart; a recovering replica
//! then needs only the decided suffix above the checkpoint watermark
//! instead of a full replay. Implemented by the paper's B⁺-tree service
//! and by [`NullService`] (pure ordering benchmarks: no state at all).
//!
//! [`ServiceApp`] bridges any [`Snapshot`] service onto
//! [`recovery::RecoveredApp`], the hook recovery-enabled learners drive:
//! it derives a deterministic command from each delivered value's
//! identity, so every incarnation of every learner reaches the same
//! state from the same delivery sequence.

use std::any::Any;
use std::sync::Arc;

use btree::{TreeCommand, TreeService};
use recovery::RecoveredApp;
use simnet::time::Dur;

use crate::service::Service;

/// A [`Service`] whose full state can be checkpointed and restored.
pub trait Snapshot: Service {
    /// The externalized state. `Default` is the empty (fresh) state.
    type State: Clone + Default + Send + Sync + 'static;

    /// Captures the current state.
    fn snapshot(&self) -> Self::State;

    /// Replaces the current state with `state` (discarding any undo log —
    /// a restore is by definition a committed point).
    fn restore(&mut self, state: &Self::State);

    /// Modelled on-disk size of `state`, in bytes — what a checkpoint
    /// write is charged and what a state transfer puts on the wire.
    fn state_bytes(state: &Self::State) -> u64;
}

impl Snapshot for TreeService {
    /// The tree's entries in key order.
    type State = Vec<(u64, u64)>;

    fn snapshot(&self) -> Vec<(u64, u64)> {
        self.tree().range(0, u64::MAX)
    }

    fn restore(&mut self, state: &Vec<(u64, u64)>) {
        let mut fresh = TreeService::new();
        for &(k, v) in state {
            fresh.apply(TreeCommand::Insert { key: k, value: v });
        }
        fresh.commit();
        *self = fresh;
    }

    fn state_bytes(state: &Vec<(u64, u64)>) -> u64 {
        // 16 bytes per entry plus a page-sized header.
        state.len() as u64 * 16 + 4096
    }
}

/// The null service: commands carry no state change and a fixed
/// execution cost. The paper's pure-ordering experiments (ch. 3) are
/// exactly this service replicated.
#[derive(Clone, Copy, Debug)]
pub struct NullService {
    /// Modelled execution cost per command.
    pub op_cost: Dur,
}

impl Default for NullService {
    fn default() -> NullService {
        NullService { op_cost: Dur::ZERO }
    }
}

impl Service for NullService {
    type Command = u64;

    fn execute(&mut self, _cmd: &u64) -> Dur {
        self.op_cost
    }

    fn is_update(_cmd: &u64) -> bool {
        false
    }

    fn commit(&mut self) {}

    fn rollback(&mut self, _n: usize) {}
}

impl Snapshot for NullService {
    type State = ();

    fn snapshot(&self) {}

    fn restore(&mut self, _state: &()) {}

    fn state_bytes(_state: &()) -> u64 {
        // The checkpoint still persists its metadata footer.
        64
    }
}

/// Bridges a [`Snapshot`] service onto [`recovery::RecoveredApp`]: each
/// delivered value is turned into a deterministic command via `derive`
/// and executed-and-committed in delivery order.
pub struct ServiceApp<S: Snapshot> {
    service: S,
    derive: fn(proposer: u64, seq: u64, bytes: u32) -> S::Command,
}

impl<S: Snapshot> ServiceApp<S> {
    /// Creates a bridge over `service`.
    pub fn new(
        service: S,
        derive: fn(proposer: u64, seq: u64, bytes: u32) -> S::Command,
    ) -> ServiceApp<S> {
        ServiceApp { service, derive }
    }

    /// The wrapped service (for inspection in tests).
    pub fn service(&self) -> &S {
        &self.service
    }
}

impl ServiceApp<TreeService> {
    /// The B⁺-tree bridge: value `(proposer, seq)` inserts a key spread
    /// over the keyspace by a Fibonacci-hash of its identity — a
    /// deterministic, collision-scattered update per delivered value.
    pub fn tree() -> ServiceApp<TreeService> {
        ServiceApp::new(TreeService::new(), |p, s, _b| TreeCommand::Insert {
            key: (p << 40 | s).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            value: s,
        })
    }
}

impl ServiceApp<NullService> {
    /// The stateless bridge.
    pub fn null() -> ServiceApp<NullService> {
        ServiceApp::new(NullService::default(), |p, s, _b| p << 40 | s)
    }
}

impl<S: Snapshot> RecoveredApp for ServiceApp<S> {
    fn apply(&mut self, proposer: u64, seq: u64, bytes: u32) {
        let cmd = (self.derive)(proposer, seq, bytes);
        self.service.execute(&cmd);
        self.service.commit();
    }

    fn snapshot(&mut self) -> (u64, Option<Arc<dyn Any + Send + Sync>>) {
        let state = self.service.snapshot();
        (S::state_bytes(&state), Some(Arc::new(state)))
    }

    fn restore(&mut self, state: Option<&Arc<dyn Any + Send + Sync>>) {
        match state {
            Some(blob) => {
                let state = blob
                    .downcast_ref::<S::State>()
                    .expect("checkpoint blob must match the service's state type");
                self.service.restore(state);
            }
            None => self.service.restore(&S::State::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_snapshot_roundtrip() {
        let mut s = TreeService::new();
        for i in 0..100u64 {
            s.apply(TreeCommand::Insert { key: i * 7, value: i });
        }
        s.commit();
        let snap = s.snapshot();
        assert_eq!(snap.len(), 100);
        assert!(TreeService::state_bytes(&snap) > 100 * 16);
        let mut restored = TreeService::new();
        Snapshot::restore(&mut restored, &snap);
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.undo_depth(), 0, "restore lands at a committed point");
    }

    #[test]
    fn restore_discards_divergent_state() {
        let mut a = TreeService::new();
        a.apply(TreeCommand::Insert { key: 1, value: 1 });
        let snap = a.snapshot();
        a.apply(TreeCommand::Insert { key: 2, value: 2 });
        Snapshot::restore(&mut a, &snap);
        assert_eq!(a.tree().len(), 1);
        assert_eq!(a.tree().get(1), Some(1));
        assert_eq!(a.tree().get(2), None);
    }

    #[test]
    fn null_service_snapshots_are_metadata_only() {
        let mut n = NullService::default();
        assert_eq!(NullService::state_bytes(&()), 64);
        Snapshot::restore(&mut n, &());
        assert_eq!(<NullService as Service>::execute(&mut n, &7), Dur::ZERO);
        assert!(!<NullService as Service>::is_update(&7));
    }

    #[test]
    fn service_app_applies_deterministically_and_restores() {
        let mut a = ServiceApp::tree();
        let mut b = ServiceApp::tree();
        for seq in 0..50 {
            a.apply(3, seq, 512);
            b.apply(3, seq, 512);
        }
        let (bytes_a, blob_a) = RecoveredApp::snapshot(&mut a);
        let (bytes_b, _) = RecoveredApp::snapshot(&mut b);
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(a.service().tree().len(), 50);

        // A fresh incarnation restored from a's blob equals a.
        let mut c = ServiceApp::tree();
        RecoveredApp::restore(&mut c, blob_a.as_ref());
        assert_eq!(c.service().snapshot(), a.service().snapshot());

        // restore(None) is the empty state.
        RecoveredApp::restore(&mut c, None);
        assert_eq!(c.service().tree().len(), 0);

        // The null bridge snapshots to metadata only.
        let mut n = ServiceApp::null();
        n.apply(1, 1, 1);
        let (bytes, blob) = RecoveredApp::snapshot(&mut n);
        assert_eq!(bytes, 64);
        assert!(blob.is_some());
    }
}
