//! The B⁺-tree service's [`SessionDriver`]: the service-specific half
//! of a [`workload::SessionTable`], carrying the keyed command
//! generator, the command registry, partition pre-splitting (§4.2.2),
//! and sticky leader re-lookup across ring members.
//!
//! This is the mass-session counterpart of [`crate::client::SmrClient`]:
//! the same submission path (registry entry + `MMsg::Propose` + per-
//! partition reply counting), but with per-request state held by the
//! table's slab instead of a dedicated actor per client.

use std::collections::HashMap;

use abcast::MsgId;
use btree::{Partitioning, TreeCommand};
use ringpaxos::msg::MMsg;
use ringpaxos::value::{Value, ALL_PARTITIONS};
use simnet::prelude::*;
use workload::{rotation_pick, KeyedWorkload, SessionDriver};

use crate::msg::SmrResponse;
use crate::service::{Registry, StoredCommand};

/// Drives B⁺-tree commands from a session table through the ordering
/// layer to the replicated service.
pub struct TreeSessionDriver {
    me: NodeId,
    /// Deployment-time ring coordinator (rotation cursor 0).
    coordinator: NodeId,
    /// Full ring membership, for failover retry rotation.
    members: Vec<NodeId>,
    /// Sticky submission cursor: advanced on every blown deadline and
    /// kept on success, so after a coordinator failover new requests go
    /// straight to a live member (see [`rotation_pick`]).
    cursor: usize,
    registry: Registry<TreeCommand>,
    workload: KeyedWorkload,
    partitioning: Option<Partitioning>,
    /// Per-request `(replies still expected, proposal seq)`: a pre-split
    /// cross-partition command answers once per involved partition.
    expected: HashMap<MsgId, (u32, u64)>,
    /// Next proposal sequence. Learner-side duplicate detection keeps a
    /// contiguous-sequence watermark per proposer, so proposals must be
    /// stamped with this counter — the slot/generation request id is
    /// *not* contiguous and would blow the tracker's overflow window.
    next_seq: u64,
}

impl TreeSessionDriver {
    /// Creates a driver submitting from node `me`.
    pub fn new(
        me: NodeId,
        coordinator: NodeId,
        members: Vec<NodeId>,
        registry: Registry<TreeCommand>,
        workload: KeyedWorkload,
        partitioning: Option<Partitioning>,
    ) -> TreeSessionDriver {
        TreeSessionDriver {
            me,
            coordinator,
            members,
            cursor: 0,
            registry,
            workload,
            partitioning,
            expected: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Requests awaiting replies (final-state inspection).
    pub fn outstanding(&self) -> usize {
        self.expected.len()
    }

    fn propose(&self, id: MsgId, seq: u64, mask: u32, bytes: u32, ctx: &mut Ctx) {
        let v = Value { id, proposer: self.me, seq, bytes, submitted: ctx.now(), mask };
        let dst = rotation_pick(self.coordinator, &self.members, self.cursor);
        ctx.udp_send(dst, MMsg::Propose(v), bytes);
    }
}

impl SessionDriver for TreeSessionDriver {
    fn submit(&mut self, id: MsgId, ctx: &mut Ctx) {
        let raw_ops = self.workload.next_command(ctx.rng());
        let kind = self.workload.kind();
        // Pre-split into per-partition sub-commands (§4.2.2), exactly as
        // the closed-loop client does.
        let (ops, mask, replies) = match self.partitioning {
            Some(p) => {
                let mut ops = Vec::new();
                let mut mask = 0u32;
                for op in &raw_ops {
                    for (part, sub) in p.split(*op) {
                        ops.push((1u32 << part, sub));
                        mask |= 1 << part;
                    }
                }
                (ops, mask, mask.count_ones())
            }
            None => {
                (raw_ops.into_iter().map(|op| (ALL_PARTITIONS, op)).collect(), ALL_PARTITIONS, 1)
            }
        };
        self.registry
            .put(id, StoredCommand { ops, client: self.me, mask, reply_bytes: kind.reply_bytes() });
        let seq = self.next_seq;
        self.next_seq += 1;
        self.expected.insert(id, (replies, seq));
        self.propose(id, seq, mask, kind.command_bytes(), ctx);
    }

    fn resubmit(&mut self, id: MsgId, _attempt: u32, ctx: &mut Ctx) {
        // Rotate the submission point before re-proposing: leader
        // re-lookup after a coordinator failover. The registry keeps the
        // command payload, so only the (id, seq, mask) proposal is
        // re-sent — under the *original* seq, so a late delivery of the
        // first copy dedups the retry instead of double-executing.
        self.cursor += 1;
        let Some(&(_, seq)) = self.expected.get(&id) else { return };
        let Some(cmd) = self.registry.get(id) else { return };
        self.propose(id, seq, cmd.mask, self.workload.kind().command_bytes(), ctx);
    }

    fn on_response(&mut self, env: &Envelope, _ctx: &mut Ctx) -> Option<MsgId> {
        let &SmrResponse { id, .. } = env.payload.downcast_ref::<SmrResponse>()?;
        let (remaining, _) = self.expected.get_mut(&id)?;
        *remaining = remaining.saturating_sub(1);
        if *remaining > 0 {
            return None;
        }
        self.expected.remove(&id);
        Some(id)
    }

    fn finish(&mut self, id: MsgId) {
        self.expected.remove(&id);
        self.registry.remove(id);
    }
}
