//! The SMR replica: an M-Ring Paxos learner feeding a deterministic
//! service, with optional speculative execution (§4.2.1).
//!
//! The replica mirrors the paper's server organization (§4.4.2): network
//! delivery runs on core 0 (shared with the protocol), command execution
//! on a pinned execution core, and response marshalling on a response
//! core — the two threads whose CPU split Fig. 4.8 reports.
//!
//! # Speculation
//!
//! A speculative replica executes a command when its Phase 2A payload
//! *arrives*, before the decision confirms its order. The response is
//! released once both the execution has finished and the order is
//! confirmed — `max(Δe, Δo)` instead of `Δe + Δo` (§4.2.1). If the
//! confirmed order disagrees with the arrival order (coordinator
//! replacement), the speculated updates are rolled back through the
//! service's undo log and re-executed in the confirmed order.

use std::collections::{HashMap, HashSet, VecDeque};

use abcast::{MsgId, SharedLog};
use ringpaxos::mring::MRingProcess;
use ringpaxos::msg::MMsg;
use ringpaxos::value::ALL_PARTITIONS;
use simnet::prelude::*;

use crate::msg::SmrResponse;
use crate::service::{Registry, Service, StoredCommand};

/// Latency samples recorded at clients.
pub const SMR_LATENCY: &str = "smr.latency";
/// Commands completed (all expected replies received), per client.
pub const SMR_COMPLETED: &str = "smr.completed";
/// Commands executed speculatively, per replica.
pub const SMR_SPEC_EXEC: &str = "smr.spec_exec";
/// Updates rolled back after a speculation mis-order, per replica.
pub const SMR_ROLLBACKS: &str = "smr.rollbacks";

const T_RESP: u64 = 40 << 56;
const KIND_MASK: u64 = 0xff << 56;

/// Per-replica configuration.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// This replica's partition (0 when unpartitioned).
    pub partition: u32,
    /// Partition mask (`ALL_PARTITIONS` when unpartitioned).
    pub mask: u32,
    /// The replicas of this partition, in a fixed order shared by all —
    /// determines which replica answers which command.
    pub peers: Vec<NodeId>,
    /// Execute commands on payload arrival (speculation, §4.2.1).
    pub speculative: bool,
    /// Core running the execution thread.
    pub exec_core: usize,
    /// Core running the response thread.
    pub resp_core: usize,
    /// Per-delivered-instance dispatch cost on the execution core.
    pub dispatch: Dur,
    /// Response marshalling cost per reply on the response core.
    pub marshal: Dur,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            partition: 0,
            mask: ALL_PARTITIONS,
            peers: Vec::new(),
            speculative: false,
            exec_core: 1,
            resp_core: 2,
            dispatch: Dur::micros(10),
            marshal: Dur::micros(4),
        }
    }
}

/// A state-machine-replication replica over service `S`.
pub struct SmrReplica<S: Service> {
    inner: MRingProcess,
    log: SharedLog,
    log_index: usize,
    cursor: usize,
    me: NodeId,
    service: S,
    registry: Registry<S::Command>,
    rcfg: ReplicaConfig,
    // Speculation state.
    spec_q: VecDeque<(MsgId, usize)>,
    spec_done: HashMap<MsgId, Time>,
    spec_executed: HashSet<MsgId>,
    // Responses awaiting their virtual completion time.
    resp_q: VecDeque<(Time, MsgId, NodeId, u32)>,
}

impl<S: Service> SmrReplica<S> {
    /// Creates a replica wrapping the given ring learner. `log` must be
    /// the same delivery log handed to `inner`, and `log_index` the
    /// learner index of this node in the ring configuration.
    pub fn new(
        inner: MRingProcess,
        log: SharedLog,
        log_index: usize,
        me: NodeId,
        service: S,
        registry: Registry<S::Command>,
        rcfg: ReplicaConfig,
    ) -> SmrReplica<S> {
        SmrReplica {
            inner,
            log,
            log_index,
            cursor: 0,
            me,
            service,
            registry,
            rcfg,
            spec_q: VecDeque::new(),
            spec_done: HashMap::new(),
            spec_executed: HashSet::new(),
            resp_q: VecDeque::new(),
        }
    }

    /// Whether this replica answers command `id` (one replica per
    /// partition responds, chosen deterministically — §4.4.2).
    fn is_designated(&self, id: MsgId) -> bool {
        if self.rcfg.peers.is_empty() {
            return true;
        }
        let idx = (id.0 as usize) % self.rcfg.peers.len();
        self.rcfg.peers[idx] == self.me
    }

    /// The operations of `cmd` this replica's partition must run.
    fn my_ops<'a>(&self, cmd: &'a StoredCommand<S::Command>) -> Vec<&'a S::Command> {
        cmd.ops.iter().filter(|(m, _)| m & self.rcfg.mask != 0).map(|(_, op)| op).collect()
    }

    /// Whether this replica executes the command: updates run everywhere
    /// (state must stay identical); queries only on the designated
    /// replica ("only one replica executes the command and responds").
    fn should_execute(&self, cmd: &StoredCommand<S::Command>, id: MsgId) -> bool {
        let any_update = self.my_ops(cmd).into_iter().any(S::is_update);
        any_update || self.is_designated(id)
    }

    /// Speculative path: execute on Phase 2A arrival (§4.2.1).
    fn speculate(&mut self, batch: &ringpaxos::Batch, ctx: &mut Ctx) {
        for v in batch.iter() {
            if v.mask & self.rcfg.mask == 0 || self.spec_executed.contains(&v.id) {
                continue;
            }
            let Some(cmd) = self.registry.get(v.id) else { continue };
            if !self.should_execute(&cmd, v.id) {
                continue; // not executed here: no speculation to track
            }
            self.spec_executed.insert(v.id);
            let mut cost = self.rcfg.dispatch;
            let mut updates = 0;
            let ops: Vec<S::Command> = self.my_ops(&cmd).into_iter().cloned().collect();
            for op in &ops {
                cost += self.service.execute(op);
                if S::is_update(op) {
                    updates += 1;
                }
            }
            ctx.charge_cpu(self.rcfg.exec_core, cost);
            self.spec_done.insert(v.id, ctx.core_free_at(self.rcfg.exec_core));
            self.spec_q.push_back((v.id, updates));
            ctx.counter_add(SMR_SPEC_EXEC, 1);
        }
    }

    /// Processes newly confirmed (ordered) commands from the ring log.
    fn drain(&mut self, ctx: &mut Ctx) {
        loop {
            let next = {
                let log = self.log.lock().unwrap();
                let seq = log.sequence(self.log_index);
                if self.cursor >= seq.len() {
                    break;
                }
                seq[self.cursor]
            };
            self.cursor += 1;
            self.confirm(next, ctx);
        }
    }

    fn confirm(&mut self, id: MsgId, ctx: &mut Ctx) {
        let Some(cmd) = self.registry.get(id) else { return };
        if self.rcfg.speculative {
            if self.spec_q.front().map(|&(sid, _)| sid) == Some(id) {
                // The speculation matched the decided order: release the
                // response at max(execution done, order known).
                self.spec_q.pop_front();
                self.service.commit();
                let done = self.spec_done.remove(&id).unwrap_or(ctx.now());
                self.queue_response(id, &cmd, done.max(ctx.now()), ctx);
                return;
            }
            // A confirmed command that was never speculated overtakes the
            // speculated ones in the decided order. Speculation stays
            // valid only if neither side mutates shared state: the
            // overtaker executes no updates here, and — when the
            // overtaker executes at all — no speculated updates could
            // have polluted what it reads (§4.2.1).
            let spec_has_updates = self.spec_q.iter().any(|&(_, u)| u > 0);
            let my_ops = self.my_ops(&cmd);
            let overtaker_updates = my_ops.into_iter().any(S::is_update);
            let overtaker_executes = self.should_execute(&cmd, id);
            let conflict = self.spec_executed.contains(&id)
                || overtaker_updates
                || (overtaker_executes && spec_has_updates);
            if conflict && (!self.spec_q.is_empty() || self.spec_executed.contains(&id)) {
                // Mis-ordered speculation (rare: coordinator change or a
                // lost payload): roll everything back and fall through
                // to in-order execution (§4.2.1).
                let undo: usize = self.spec_q.iter().map(|&(_, u)| u).sum();
                self.service.rollback(undo);
                ctx.counter_add(SMR_ROLLBACKS, self.spec_q.len() as u64);
                for (sid, _) in self.spec_q.drain(..) {
                    self.spec_done.remove(&sid);
                    self.spec_executed.remove(&sid);
                }
                self.spec_executed.remove(&id);
            }
        }
        // In-order (non-speculative) execution.
        let mut cost = self.rcfg.dispatch;
        if self.should_execute(&cmd, id) {
            let ops: Vec<S::Command> = self.my_ops(&cmd).into_iter().cloned().collect();
            for op in &ops {
                cost += self.service.execute(op);
            }
            self.service.commit();
        }
        ctx.charge_cpu(self.rcfg.exec_core, cost);
        let done = ctx.core_free_at(self.rcfg.exec_core);
        self.queue_response(id, &cmd, done, ctx);
    }

    fn queue_response(
        &mut self,
        id: MsgId,
        cmd: &StoredCommand<S::Command>,
        at: Time,
        ctx: &mut Ctx,
    ) {
        if !self.is_designated(id) {
            return;
        }
        self.resp_q.push_back((at, id, cmd.client, cmd.reply_bytes));
        ctx.set_timer(at.saturating_since(ctx.now()), TimerToken(T_RESP));
    }

    fn flush_responses(&mut self, ctx: &mut Ctx) {
        while let Some(&(at, id, client, bytes)) = self.resp_q.front() {
            if at > ctx.now() {
                break;
            }
            self.resp_q.pop_front();
            ctx.charge_cpu(self.rcfg.resp_core, self.rcfg.marshal);
            let partition = self.rcfg.partition;
            ctx.udp_send(client, SmrResponse { id, partition }, bytes);
        }
    }
}

impl<S: Service> Actor for SmrReplica<S> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        if self.rcfg.speculative {
            if let Some(MMsg::Phase2a { batch, .. }) = env.payload.downcast_ref::<MMsg>() {
                let batch = batch.clone();
                self.speculate(&batch, ctx);
            }
        }
        self.inner.on_message(env, ctx);
        self.drain(ctx);
        self.flush_responses(ctx);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        if token.0 & KIND_MASK == T_RESP {
            self.flush_responses(ctx);
            return;
        }
        self.inner.on_timer(token, ctx);
        self.drain(ctx);
        self.flush_responses(ctx);
    }
}
