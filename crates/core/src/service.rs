//! The replicated-service abstraction and the command registry.
//!
//! Replicas execute commands against a deterministic [`Service`]; the
//! same trait powers the stand-alone (client-server) baseline, plain
//! state-machine replication, speculative replicas, and partitioned
//! deployments.
//!
//! Command *contents* travel through a shared [`Registry`]: Ring Paxos
//! models payloads as sized-but-opaque values on the wire, so clients
//! register the structured command under its [`MsgId`] and replicas look
//! it up at delivery. This is simulation plumbing, not a hidden channel —
//! the modelled network carries the command's full byte size.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use abcast::MsgId;
use btree::{TreeCommand, TreeService};
use simnet::ids::NodeId;
use simnet::time::Dur;

/// A deterministic state machine the SMR layer can replicate.
pub trait Service: Send {
    /// Command type.
    type Command: Clone + Send + Sync + 'static;

    /// Executes one command, returning its modelled execution time.
    /// Implementations must be deterministic.
    fn execute(&mut self, cmd: &Self::Command) -> Dur;

    /// Whether `cmd` modifies state (updates need undo records; queries
    /// do not).
    fn is_update(cmd: &Self::Command) -> bool;

    /// Confirms every executed command so far: earlier undo records may
    /// be discarded.
    fn commit(&mut self);

    /// Rolls back the `n` most recent updates (speculative mis-order).
    fn rollback(&mut self, n: usize);
}

impl Service for TreeService {
    type Command = TreeCommand;

    fn execute(&mut self, cmd: &TreeCommand) -> Dur {
        let (_, cost) = self.apply(*cmd);
        cost
    }

    fn is_update(cmd: &TreeCommand) -> bool {
        cmd.is_update()
    }

    fn commit(&mut self) {
        TreeService::commit(self)
    }

    fn rollback(&mut self, n: usize) {
        TreeService::rollback(self, n)
    }
}

/// A registered command: its operations (each tagged with the partitions
/// it touches — cross-partition queries are pre-split into sub-commands,
/// §4.2.2), issuing client, overall partition mask, and reply size.
#[derive(Clone, Debug)]
pub struct StoredCommand<C> {
    /// `(partition mask, operation)` pairs; replicas execute only the
    /// operations intersecting their own partition.
    pub ops: Vec<(u32, C)>,
    /// Issuing client (responses go here).
    pub client: NodeId,
    /// Partitions accessed (bit per partition; `ALL_PARTITIONS` when
    /// unpartitioned).
    pub mask: u32,
    /// Reply size per responding partition, in bytes.
    pub reply_bytes: u32,
}

/// Shared command store keyed by message id.
pub struct Registry<C>(Arc<Mutex<HashMap<MsgId, StoredCommand<C>>>>);

impl<C> Clone for Registry<C> {
    fn clone(&self) -> Self {
        Registry(self.0.clone())
    }
}

impl<C> Default for Registry<C> {
    fn default() -> Self {
        Registry(Arc::new(Mutex::new(HashMap::new())))
    }
}

impl<C: Clone> Registry<C> {
    /// Creates an empty registry.
    pub fn new() -> Registry<C> {
        Registry::default()
    }

    /// Registers `cmd` under `id`.
    pub fn put(&self, id: MsgId, cmd: StoredCommand<C>) {
        self.0.lock().unwrap().insert(id, cmd);
    }

    /// Fetches the command registered under `id`.
    pub fn get(&self, id: MsgId) -> Option<StoredCommand<C>> {
        self.0.lock().unwrap().get(&id).cloned()
    }

    /// Removes a completed command (clients prune after the last reply).
    pub fn remove(&self, id: MsgId) {
        self.0.lock().unwrap().remove(&id);
    }

    /// Number of registered commands.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.0.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let r: Registry<TreeCommand> = Registry::new();
        let id = MsgId(42);
        r.put(
            id,
            StoredCommand {
                ops: vec![(0b01, TreeCommand::Delete { key: 1 })],
                client: NodeId(3),
                mask: 0b01,
                reply_bytes: 256,
            },
        );
        let got = r.get(id).expect("present");
        assert_eq!(got.ops.len(), 1);
        assert_eq!(got.client, NodeId(3));
        r.remove(id);
        assert!(r.get(id).is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn tree_service_implements_service() {
        let mut s = TreeService::new();
        let c1 = TreeCommand::Insert { key: 1, value: 1 };
        let c2 = TreeCommand::Query { lo: 0, hi: 10 };
        let _ = <TreeService as Service>::execute(&mut s, &c1);
        let _ = <TreeService as Service>::execute(&mut s, &c2);
        assert!(<TreeService as Service>::is_update(&c1));
        assert!(!<TreeService as Service>::is_update(&c2));
        <TreeService as Service>::rollback(&mut s, 1);
        assert!(s.tree().is_empty());
    }
}
