//! The non-replicated client-server baseline (the "CS" curves of
//! Figs. 4.1/4.3/4.4): clients talk straight to one stand-alone server,
//! no ordering layer, no replication.

use std::collections::VecDeque;

use abcast::MsgId;
use simnet::prelude::*;

use crate::msg::{CsRequest, SmrResponse};
use crate::service::{Registry, Service};

const T_RESP: u64 = 40 << 56;

/// A stand-alone (non-replicated) server over service `S`.
pub struct CsServer<S: Service> {
    service: S,
    registry: Registry<S::Command>,
    /// Fixed per-request server overhead (parse, dispatch, socket work
    /// beyond the modelled network stack).
    request_overhead: Dur,
    /// Response marshalling cost.
    marshal: Dur,
    exec_core: usize,
    resp_core: usize,
    resp_q: VecDeque<(Time, MsgId, NodeId, u32)>,
}

impl<S: Service> CsServer<S> {
    /// Creates a server.
    pub fn new(service: S, registry: Registry<S::Command>) -> CsServer<S> {
        CsServer {
            service,
            registry,
            request_overhead: Dur::micros(12),
            marshal: Dur::micros(4),
            exec_core: 1,
            resp_core: 2,
            resp_q: VecDeque::new(),
        }
    }

    fn flush(&mut self, ctx: &mut Ctx) {
        while let Some(&(at, id, client, bytes)) = self.resp_q.front() {
            if at > ctx.now() {
                break;
            }
            self.resp_q.pop_front();
            ctx.charge_cpu(self.resp_core, self.marshal);
            ctx.udp_send(client, SmrResponse { id, partition: 0 }, bytes);
        }
    }
}

impl<S: Service> Actor for CsServer<S> {
    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        if let Some(&CsRequest { id }) = env.payload.downcast_ref::<CsRequest>() {
            let Some(cmd) = self.registry.get(id) else { return };
            let mut cost = self.request_overhead;
            for (_, op) in &cmd.ops {
                cost += self.service.execute(op);
            }
            self.service.commit();
            ctx.charge_cpu(self.exec_core, cost);
            let done = ctx.core_free_at(self.exec_core);
            self.resp_q.push_back((done, id, cmd.client, cmd.reply_bytes));
            ctx.set_timer(done.saturating_since(ctx.now()), TimerToken(T_RESP));
        }
        self.flush(ctx);
    }

    fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
        self.flush(ctx);
    }
}
