//! # hpsmr-core — speculation and state partitioning for SMR (DSN 2011)
//!
//! The primary contribution of *High Performance State-Machine
//! Replication* (Marandi, Primi, Pedone — DSN 2011; thesis ch. 4): two
//! techniques that push replicated-service performance toward (and past)
//! a stand-alone server, built on M-Ring Paxos:
//!
//! * **Speculative execution** (§4.2.1) — replicas execute a command when
//!   its payload *arrives*, overlapping execution with ordering; the
//!   response is withheld until the order is confirmed, and mis-ordered
//!   executions are rolled back through the service's undo log. Expected
//!   response-time saving: `min(Δo, Δe)`.
//! * **State partitioning** (§4.2.2) — the service state is split into
//!   sub-states replicated independently; one Ring Paxos coordinator
//!   still totally orders *all* commands (preserving the cross-partition
//!   acyclicity that linearizability needs) but payloads travel only to
//!   the multicast groups of the partitions they touch, and replicas
//!   skip over other partitions' instances.
//!
//! The crate provides the replica ([`replica::SmrReplica`]), the
//! closed-loop client ([`client::SmrClient`]), the non-replicated
//! baseline ([`cs::CsServer`]), and one-call deployments
//! ([`deploy::deploy_smr`], [`deploy::deploy_cs`]) over the paper's
//! B⁺-tree service.
//!
//! ```
//! use simnet::prelude::*;
//! use hpsmr_core::deploy::{deploy_smr, SmrOptions};
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let opts = SmrOptions { n_clients: 5, ..SmrOptions::default() };
//! let d = deploy_smr(&mut sim, &opts);
//! sim.run_until(Time::from_millis(500));
//! let completed: u64 = d
//!     .clients
//!     .iter()
//!     .map(|&c| sim.metrics().counter(c, "smr.completed"))
//!     .sum();
//! assert!(completed > 100);
//! ```

pub mod client;
pub mod cs;
pub mod deploy;
pub mod msg;
pub mod replica;
pub mod service;
pub mod session;
pub mod snapshot;

pub use client::{SmrClient, Target};
pub use cs::CsServer;
pub use deploy::{
    deploy_cs, deploy_smr, deploy_smr_sessions, CsDeployment, PartitionOptions, SessionDeployment,
    SessionOptions, SmrDeployment, SmrOptions,
};
pub use msg::{CsRequest, SmrResponse};
pub use replica::{
    ReplicaConfig, SmrReplica, SMR_COMPLETED, SMR_LATENCY, SMR_ROLLBACKS, SMR_SPEC_EXEC,
};
pub use service::{Registry, Service, StoredCommand};
pub use session::TreeSessionDriver;
pub use snapshot::{NullService, ServiceApp, Snapshot};
