//! Failure behaviour of the comparison protocols — the architectural
//! lessons ch. 7 draws from its EC2 study, pinned as regression tests.

use baselines::{deploy_libpaxos, deploy_pfsb, deploy_spaxos};
use simnet::prelude::*;

use abcast::metric;

#[test]
fn spaxos_survives_a_replica_failure_with_degraded_throughput() {
    // Fig 7.3: S-Paxos keeps running at f failures — dissemination loses
    // the dead replica's share, ordering and stability survive on the
    // f+1 quorum.
    let mut sim = Sim::new(SimConfig::default());
    let (replicas, log) = deploy_spaxos(&mut sim, 1, 150_000_000, 32 * 1024);
    sim.run_until(Time::from_millis(800));
    let before = sim.metrics().counter(replicas[0], metric::DELIVERED_BYTES);
    assert!(before > 0, "no deliveries before the crash");

    sim.set_node_up(replicas[2], false);
    sim.run_until(Time::from_millis(1000)); // settle
    let at = sim.metrics().counter(replicas[0], metric::DELIVERED_BYTES);
    sim.run_until(Time::from_millis(2000));
    let after = sim.metrics().counter(replicas[0], metric::DELIVERED_BYTES);

    let rate = mbps(after - at, Dur::secs(1));
    assert!(rate > 200.0, "S-Paxos should keep running at f failures: {rate:.0} Mbps");
    assert!(rate < 400.0, "the dead replica's dissemination share is gone: {rate:.0} Mbps");
    log.lock().unwrap().check_total_order().expect("order across the failure");
}

#[test]
fn spaxos_leader_failure_halts_ordering() {
    // The flip side the chapter highlights: S-Paxos (like the library it
    // models) has a single ordering leader; losing it stops the system
    // until a view change this model does not implement.
    let mut sim = Sim::new(SimConfig::default());
    let (replicas, _log) = deploy_spaxos(&mut sim, 1, 150_000_000, 32 * 1024);
    sim.run_until(Time::from_millis(500));
    sim.set_node_up(replicas[0], false); // the leader
    sim.run_until(Time::from_millis(700));
    let at = sim.metrics().counter(replicas[1], metric::DELIVERED_BYTES);
    sim.run_until(Time::from_millis(1500));
    let after = sim.metrics().counter(replicas[1], metric::DELIVERED_BYTES);
    assert!(after - at < 100_000, "ordering must stall without the leader");
}

#[test]
fn libpaxos_coordinator_failure_halts_until_nothing_recovers_it() {
    // Libpaxos (as modelled, matching the chapter's observations about
    // the original's default configuration) has no failover: the fixed
    // coordinator is a single point of ordering.
    let mut sim = Sim::new(SimConfig::default());
    let (cfg, learners, _log) = deploy_libpaxos(&mut sim, 1, 2, 2, 100_000_000, 4096);
    sim.run_until(Time::from_millis(500));
    sim.set_node_up(cfg.coordinator, false);
    sim.run_until(Time::from_millis(700));
    let at = sim.metrics().counter(learners[0], metric::DELIVERED_BYTES);
    sim.run_until(Time::from_millis(1500));
    let after = sim.metrics().counter(learners[0], metric::DELIVERED_BYTES);
    assert!(after - at < 100_000, "no recovery without a takeover protocol");
}

#[test]
fn pfsb_star_is_leader_bound() {
    // The OpenReplica-architecture stand-in: all traffic through one
    // leader caps far below wire speed even in steady state.
    let mut sim = Sim::new(SimConfig::default());
    let (learners, log) = deploy_pfsb(&mut sim, 1, 2, 2, 50_000_000, 200);
    sim.run_until(Time::from_secs(2));
    let bytes = sim.metrics().counter(learners[0], metric::DELIVERED_BYTES);
    let rate = mbps(bytes, Dur::secs(2));
    assert!(rate > 1.0, "pfsb should make progress: {rate:.1} Mbps");
    assert!(rate < 100.0, "leader-centric unicast star cannot approach wire speed");
    log.lock().unwrap().check_total_order().expect("total order");
}
