//! Spread/Totem-style privilege-based token ring (the thesis's \[31\]/\[33\]
//! baseline).
//!
//! A small set of daemons relays client traffic; only the daemon holding
//! the rotating token may broadcast, stamping messages with global
//! sequence numbers. Receivers deliver in sequence order once *safe*
//! (the token must complete another rotation so every daemon has seen the
//! message — Totem's safe-delivery, which is why each message waits about
//! two token rotations). Efficiency lands near 18% (Table 3.2): the token
//! rotation idles the broadcaster and daemon relaying burns CPU.

use std::collections::{BTreeMap, VecDeque};

use abcast::{metric, Pacer, SharedLog};
use simnet::prelude::*;

use crate::common::{deliver_value, BValue};

const T_PACE: u64 = 2 << 56;

#[derive(Clone, Debug)]
enum TotMsg {
    /// Client request to the local daemon.
    Submit(BValue),
    /// Token passing daemon-to-daemon; carries the global sequence state
    /// and the all-seen watermark that makes messages safe.
    Token { next_seq: u64, safe_upto: u64 },
    /// Broadcast of a sequenced message to the multicast group.
    Bcast { seq: u64, v: BValue },
    /// Safe watermark announcement to receivers.
    Safe { upto: u64 },
}

/// Deployment description.
#[derive(Clone, Debug)]
pub struct TotemConfig {
    /// The daemons, in token order.
    pub daemons: Vec<NodeId>,
    /// Multicast group of daemons and receivers.
    pub group: GroupId,
    /// Messages a daemon may broadcast per token visit.
    pub max_per_visit: u32,
    /// Per-message daemon processing cost.
    pub per_msg_cost: Dur,
}

/// One Totem daemon or receiver.
pub struct TotemProcess {
    cfg: TotemConfig,
    me: NodeId,
    daemon_index: Option<usize>,
    learner_index: Option<usize>,
    log: Option<SharedLog>,
    pacer: Option<Pacer>,
    next_seq_local: u64,
    /// Daemon: queued client messages awaiting the token.
    queue: VecDeque<BValue>,
    /// Daemon 0 only: last sequence stamped when the previous rotation
    /// started — everything at or below it is safe when the token returns.
    last_rotation_end: u64,
    /// Receiver: sequenced messages waiting for safety + order.
    ready: BTreeMap<u64, BValue>,
    safe_upto: u64,
    next_deliver: u64,
}

impl TotemProcess {
    /// Creates a process; `daemon_index` marks daemons.
    pub fn new(
        cfg: TotemConfig,
        me: NodeId,
        daemon_index: Option<usize>,
        pacer: Option<Pacer>,
        learner_index: Option<usize>,
        log: Option<SharedLog>,
    ) -> TotemProcess {
        TotemProcess {
            cfg,
            me,
            daemon_index,
            learner_index,
            log,
            pacer,
            next_seq_local: 0,
            queue: VecDeque::new(),
            last_rotation_end: 0,
            ready: BTreeMap::new(),
            safe_upto: 0,
            next_deliver: 1,
        }
    }

    fn next_daemon(&self) -> NodeId {
        let i = self.daemon_index.expect("daemon only");
        self.cfg.daemons[(i + 1) % self.cfg.daemons.len()]
    }

    fn try_deliver(&mut self, ctx: &mut Ctx) {
        while self.next_deliver <= self.safe_upto {
            let Some(v) = self.ready.remove(&self.next_deliver) else { return };
            self.next_deliver += 1;
            if let Some(idx) = self.learner_index {
                let me = self.me;
                deliver_value(ctx, &self.log, idx, &v, me);
            }
        }
    }

    fn on_token(&mut self, mut next_seq: u64, token_safe: u64, ctx: &mut Ctx) {
        // Broadcast up to max_per_visit pending messages, stamping them.
        let n = (self.queue.len() as u32).min(self.cfg.max_per_visit);
        for _ in 0..n {
            let v = self.queue.pop_front().expect("len checked");
            let seq = next_seq;
            next_seq += 1;
            ctx.charge_cpu(0, self.cfg.per_msg_cost);
            ctx.counter_add(metric::INSTANCES, 1);
            ctx.mcast(self.cfg.group, TotMsg::Bcast { seq, v }, v.bytes);
            self.ready.insert(seq, v);
        }
        // Safe delivery: when the token returns to daemon 0, everything
        // stamped before the rotation started has been seen by every
        // daemon — Totem's equivalent of uniform agreement (two rotations
        // per message end to end).
        let mut safe = token_safe;
        if self.daemon_index == Some(0) {
            safe = self.last_rotation_end;
            self.last_rotation_end = next_seq.saturating_sub(1);
            if safe > 0 {
                ctx.mcast(self.cfg.group, TotMsg::Safe { upto: safe }, 64);
            }
        }
        self.safe_upto = self.safe_upto.max(safe);
        self.try_deliver(ctx);
        // Pass the token on (small message, but it serializes rotations).
        ctx.udp_send(self.next_daemon(), TotMsg::Token { next_seq, safe_upto: safe }, 128);
    }
}

impl Actor for TotemProcess {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.pacer.is_some() {
            ctx.set_timer(Dur::ZERO, TimerToken(T_PACE));
        }
        if self.daemon_index == Some(0) {
            // Daemon 0 creates the token.
            ctx.set_timer(Dur::micros(100), TimerToken(1));
        }
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(msg) = env.payload.downcast_ref::<TotMsg>() else { return };
        match msg {
            TotMsg::Submit(v) => {
                if self.daemon_index.is_some() && self.queue.len() < 50_000 {
                    self.queue.push_back(*v);
                }
            }
            TotMsg::Token { next_seq, safe_upto } => {
                let (s, w) = (*next_seq, *safe_upto);
                self.on_token(s, w, ctx);
            }
            TotMsg::Bcast { seq, v } => {
                ctx.charge_cpu(0, self.cfg.per_msg_cost / 2);
                self.ready.insert(*seq, *v);
                self.try_deliver(ctx);
            }
            TotMsg::Safe { upto } => {
                self.safe_upto = self.safe_upto.max(*upto);
                self.try_deliver(ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        if token.0 == 1 {
            // Token genesis at daemon 0.
            self.on_token(1, 0, ctx);
            return;
        }
        let Some(p) = self.pacer.as_mut() else { return };
        let due = p.due(ctx.now());
        let bytes = p.msg_bytes();
        let interval = p.interval();
        // Writers submit to their assigned daemon round-robin.
        let daemons = self.cfg.daemons.clone();
        for _ in 0..due {
            let v = BValue::new(self.me, self.next_seq_local, bytes, ctx.now());
            self.next_seq_local += 1;
            ctx.counter_add("bl.proposed", 1);
            let d = daemons[(v.id.0 % daemons.len() as u64) as usize];
            ctx.udp_send(d, TotMsg::Submit(v), bytes);
        }
        ctx.set_timer(interval, TimerToken(T_PACE));
    }
}

/// Deploys `n_daemons` Totem daemons, `n_receivers` readers, and
/// `n_writers` writers. Returns receiver nodes and the delivery log.
pub fn deploy_totem(
    sim: &mut Sim,
    n_daemons: usize,
    n_receivers: usize,
    n_writers: usize,
    rate_bps: u64,
    msg_bytes: u32,
) -> (Vec<NodeId>, SharedLog) {
    struct Idle;
    impl Actor for Idle {
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }
    let daemons: Vec<NodeId> = (0..n_daemons).map(|_| sim.add_node(Box::new(Idle))).collect();
    let receivers: Vec<NodeId> = (0..n_receivers).map(|_| sim.add_node(Box::new(Idle))).collect();
    let writers: Vec<NodeId> = (0..n_writers).map(|_| sim.add_node(Box::new(Idle))).collect();
    let group = sim.add_group();
    for &n in daemons.iter().chain(&receivers).chain(&writers) {
        sim.subscribe(n, group);
    }
    let cfg = TotemConfig {
        daemons: daemons.clone(),
        group,
        max_per_visit: 16,
        per_msg_cost: Dur::micros(300),
    };
    let mut all_learners = receivers.clone();
    all_learners.extend(&writers);
    let log = abcast::shared_log(all_learners.len());
    for (i, &d) in daemons.iter().enumerate() {
        sim.replace_actor(
            d,
            Box::new(TotemProcess::new(cfg.clone(), d, Some(i), None, None, None)),
        );
    }
    for (i, &r) in receivers.iter().enumerate() {
        sim.replace_actor(
            r,
            Box::new(TotemProcess::new(cfg.clone(), r, None, None, Some(i), Some(log.clone()))),
        );
    }
    for (i, &w) in writers.iter().enumerate() {
        let pacer = Pacer::new(rate_bps, msg_bytes, 1);
        sim.replace_actor(
            w,
            Box::new(TotemProcess::new(
                cfg.clone(),
                w,
                None,
                Some(pacer),
                Some(n_receivers + i),
                Some(log.clone()),
            )),
        );
    }
    (all_learners, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totem_orders_with_moderate_throughput() {
        let mut sim = Sim::new(SimConfig::default());
        let (receivers, log) = deploy_totem(&mut sim, 3, 4, 3, 150_000_000, 16 * 1024);
        sim.run_until(Time::from_secs(2));
        let log = log.lock().unwrap();
        log.check_total_order().expect("total order");
        assert!(log.total_deliveries() > 500, "{}", log.total_deliveries());
        drop(log);
        let bytes = sim.metrics().counter(receivers[0], metric::DELIVERED_BYTES);
        let tput = mbps(bytes, Dur::secs(2));
        assert!(tput > 30.0, "totem too slow: {tput:.0} Mbps");
        assert!(tput < 600.0, "totem unexpectedly fast: {tput:.0} Mbps");
    }
}
