//! # baselines — the atomic broadcast protocols Ring Paxos is compared to
//!
//! Message-pattern-faithful models of the five systems in the thesis's
//! Fig. 3.7 / Table 3.2 comparison, each deployed on the same simulated
//! cluster as Ring Paxos:
//!
//! | Protocol | Module | Pattern | Paper efficiency |
//! |---|---|---|---|
//! | LCR | [`lcr`] | ring, payload + commit revolutions | 91% |
//! | U/M-Ring Paxos | (`ringpaxos` crate) | ring + multicast | 90% |
//! | S-Paxos | [`spaxos`] | all-to-all dissemination + id ordering | 31.2% |
//! | Spread/Totem | [`totem`] | privilege token ring via daemons | 18% |
//! | PFSB | [`pfsb`] | unicast star, 200 B messages | 4% |
//! | Libpaxos | [`libpaxos`] | multicast Paxos, no batching | 3% |
//!
//! The models reproduce each system's *resource profile* (who burns CPU,
//! which links carry each payload how many times, what serializes), with
//! per-message protocol costs calibrated once against the published
//! numbers. They are comparison baselines, not ports of the original
//! codebases; safety-critical corner cases (view changes, token loss) are
//! out of scope.

pub mod common;
pub mod lcr;
pub mod libpaxos;
pub mod pfsb;
pub mod spaxos;
pub mod totem;

pub use common::BValue;
pub use lcr::deploy_lcr;
pub use libpaxos::deploy_libpaxos;
pub use pfsb::deploy_pfsb;
pub use spaxos::deploy_spaxos;
pub use totem::deploy_totem;
