//! "Paxos for System Builders" (PFSB, the thesis's \[10\] baseline).
//!
//! Fully unicast Paxos with tiny (200-byte) messages and no batching: the
//! coordinator unicasts Phase 2A to every acceptor, acceptors unicast
//! Phase 2B back, and the coordinator unicasts the decision (with payload)
//! to every learner separately. Per-message costs and the fan-out divide
//! the coordinator's resources across receivers — the 4% efficiency row
//! of Table 3.2.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use abcast::{metric, Pacer, SharedLog};
use paxos::msg::{quorum, InstanceId, Round};
use simnet::prelude::*;

use crate::common::{deliver_value, BValue};

const T_PACE: u64 = 2 << 56;
const T_FLUSH: u64 = 3 << 56;

#[derive(Clone, Debug)]
enum PfMsg {
    Submit(BValue),
    Phase2a { instance: InstanceId, round: Round, v: BValue },
    Phase2b { instance: InstanceId, round: Round },
    Decision { instance: InstanceId, v: BValue },
}

/// Deployment description.
#[derive(Clone, Debug)]
pub struct PfsbConfig {
    /// Coordinator node.
    pub coordinator: NodeId,
    /// Acceptors (2f+1, coordinator included).
    pub acceptors: Vec<NodeId>,
    /// Learners (each receives its own unicast copy of every decision).
    pub learners: Vec<NodeId>,
    /// Outstanding-instance pipeline.
    pub window: u32,
    /// Per-instance protocol CPU at the coordinator.
    pub instance_overhead: Dur,
}

/// One PFSB process.
pub struct PfsbProcess {
    cfg: PfsbConfig,
    me: NodeId,
    round: Round,
    learner_index: Option<usize>,
    log: Option<SharedLog>,
    pacer: Option<Pacer>,
    next_seq: u64,
    pending: VecDeque<BValue>,
    next_instance: InstanceId,
    votes: BTreeMap<InstanceId, usize>,
    voted: BTreeSet<InstanceId>,
    inflight: BTreeMap<InstanceId, BValue>,
    ready: BTreeMap<InstanceId, BValue>,
    next_deliver: InstanceId,
}

impl PfsbProcess {
    /// Creates a process.
    pub fn new(
        cfg: PfsbConfig,
        me: NodeId,
        pacer: Option<Pacer>,
        learner_index: Option<usize>,
        log: Option<SharedLog>,
    ) -> PfsbProcess {
        PfsbProcess {
            cfg,
            me,
            round: Round::new(1, 0),
            learner_index,
            log,
            pacer,
            next_seq: 0,
            pending: VecDeque::new(),
            next_instance: InstanceId(0),
            votes: BTreeMap::new(),
            voted: BTreeSet::new(),
            inflight: BTreeMap::new(),
            ready: BTreeMap::new(),
            next_deliver: InstanceId(0),
        }
    }

    fn is_coordinator(&self) -> bool {
        self.cfg.coordinator == self.me
    }

    fn try_open(&mut self, ctx: &mut Ctx) {
        while (self.inflight.len() as u32) < self.cfg.window {
            let Some(v) = self.pending.pop_front() else { return };
            let instance = self.next_instance;
            self.next_instance = instance.next();
            self.inflight.insert(instance, v);
            self.votes.insert(instance, 1); // own vote
            ctx.charge_cpu(0, self.cfg.instance_overhead);
            ctx.counter_add(metric::INSTANCES, 1);
            let round = self.round;
            let acceptors: Vec<NodeId> =
                self.cfg.acceptors.iter().copied().filter(|&a| a != self.me).collect();
            for a in acceptors {
                ctx.udp_send(a, PfMsg::Phase2a { instance, round, v }, v.bytes.max(200));
            }
        }
    }

    fn decide(&mut self, instance: InstanceId, ctx: &mut Ctx) {
        let Some(v) = self.inflight.remove(&instance) else { return };
        self.votes.remove(&instance);
        let learners: Vec<NodeId> =
            self.cfg.learners.iter().copied().filter(|&l| l != self.me).collect();
        for l in learners {
            ctx.udp_send(l, PfMsg::Decision { instance, v }, v.bytes.max(200));
        }
        self.on_decision(instance, v, ctx);
        self.try_open(ctx);
    }

    fn on_decision(&mut self, instance: InstanceId, v: BValue, ctx: &mut Ctx) {
        if instance >= self.next_deliver {
            self.ready.insert(instance, v);
        }
        while let Some(v) = self.ready.remove(&self.next_deliver) {
            self.next_deliver = self.next_deliver.next();
            if let Some(idx) = self.learner_index {
                let me = self.me;
                deliver_value(ctx, &self.log, idx, &v, me);
            }
        }
    }
}

impl Actor for PfsbProcess {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.pacer.is_some() {
            ctx.set_timer(Dur::ZERO, TimerToken(T_PACE));
        }
        if self.is_coordinator() {
            ctx.set_timer(Dur::millis(1), TimerToken(T_FLUSH));
        }
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(msg) = env.payload.downcast_ref::<PfMsg>() else { return };
        match msg {
            PfMsg::Submit(v) => {
                if self.is_coordinator() && self.pending.len() < 10_000 {
                    self.pending.push_back(*v);
                    self.try_open(ctx);
                }
            }
            PfMsg::Phase2a { instance, round, v } => {
                let (instance, round, v) = (*instance, *round, *v);
                if round == self.round && self.voted.insert(instance) {
                    let _ = v;
                    ctx.udp_send(env.src, PfMsg::Phase2b { instance, round }, 200);
                }
            }
            PfMsg::Phase2b { instance, round } => {
                if *round != self.round || !self.is_coordinator() {
                    return;
                }
                let instance = *instance;
                let n = {
                    let e = self.votes.entry(instance).or_insert(0);
                    *e += 1;
                    *e
                };
                if n == quorum(self.cfg.acceptors.len()) {
                    self.decide(instance, ctx);
                }
            }
            PfMsg::Decision { instance, v } => {
                let (instance, v) = (*instance, *v);
                self.on_decision(instance, v, ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        if token.0 == T_FLUSH {
            self.try_open(ctx);
            ctx.set_timer(Dur::millis(1), TimerToken(T_FLUSH));
            return;
        }
        let Some(p) = self.pacer.as_mut() else { return };
        let due = p.due(ctx.now());
        let bytes = p.msg_bytes();
        let interval = p.interval();
        let coordinator = self.cfg.coordinator;
        for _ in 0..due {
            let v = BValue::new(self.me, self.next_seq, bytes, ctx.now());
            self.next_seq += 1;
            ctx.counter_add("bl.proposed", 1);
            if self.is_coordinator() {
                if self.pending.len() < 10_000 {
                    self.pending.push_back(v);
                    self.try_open(ctx);
                }
            } else {
                ctx.udp_send(coordinator, PfMsg::Submit(v), bytes);
            }
        }
        ctx.set_timer(interval, TimerToken(T_PACE));
    }
}

/// Deploys a PFSB ensemble. Returns learner nodes and the delivery log.
pub fn deploy_pfsb(
    sim: &mut Sim,
    f: usize,
    n_learners: usize,
    n_proposers: usize,
    rate_bps: u64,
    msg_bytes: u32,
) -> (Vec<NodeId>, SharedLog) {
    struct Idle;
    impl Actor for Idle {
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }
    let acceptors: Vec<NodeId> = (0..2 * f + 1).map(|_| sim.add_node(Box::new(Idle))).collect();
    let learners: Vec<NodeId> = (0..n_learners).map(|_| sim.add_node(Box::new(Idle))).collect();
    let proposers: Vec<NodeId> = (0..n_proposers).map(|_| sim.add_node(Box::new(Idle))).collect();
    let mut all_learners = learners.clone();
    all_learners.extend(&proposers);
    let cfg = PfsbConfig {
        coordinator: acceptors[0],
        acceptors: acceptors.clone(),
        learners: all_learners.clone(),
        window: 16,
        instance_overhead: Dur::micros(25),
    };
    let log = abcast::shared_log(all_learners.len());
    for &a in &acceptors {
        sim.replace_actor(a, Box::new(PfsbProcess::new(cfg.clone(), a, None, None, None)));
    }
    for (i, &l) in learners.iter().enumerate() {
        sim.replace_actor(
            l,
            Box::new(PfsbProcess::new(cfg.clone(), l, None, Some(i), Some(log.clone()))),
        );
    }
    for (i, &p) in proposers.iter().enumerate() {
        let pacer = Pacer::new(rate_bps, msg_bytes, 1);
        sim.replace_actor(
            p,
            Box::new(PfsbProcess::new(
                cfg.clone(),
                p,
                Some(pacer),
                Some(n_learners + i),
                Some(log.clone()),
            )),
        );
    }
    (all_learners, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfsb_orders_but_fanout_limits_it() {
        let mut sim = Sim::new(SimConfig::default());
        let (learners, log) = deploy_pfsb(&mut sim, 1, 8, 2, 50_000_000, 200);
        sim.run_until(Time::from_secs(2));
        let log = log.lock().unwrap();
        log.check_total_order().expect("total order");
        assert!(log.total_deliveries() > 1000);
        drop(log);
        let bytes = sim.metrics().counter(learners[0], metric::DELIVERED_BYTES);
        let tput = mbps(bytes, Dur::secs(2));
        assert!(tput < 100.0, "pfsb unexpectedly fast: {tput:.0} Mbps");
    }
}
