//! Libpaxos-style multicast Paxos (the thesis's \[34\] baseline).
//!
//! Classic Paxos over ip-multicast: the coordinator multicasts Phase 2A
//! carrying the *full payload*, every acceptor multicasts its Phase 2B to
//! everyone, and learners decide on a majority. No batching and a small
//! pipeline of outstanding instances — the two properties that hold its
//! measured efficiency at ~3% (Table 3.2) despite using multicast.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use abcast::{metric, Pacer, SharedLog};
use paxos::msg::{quorum, InstanceId, Round};
use simnet::prelude::*;

use crate::common::{deliver_value, BValue};

const T_PACE: u64 = 2 << 56;
const T_FLUSH: u64 = 3 << 56;

#[derive(Clone, Debug)]
enum LpMsg {
    Submit(BValue),
    Phase2a { instance: InstanceId, round: Round, v: BValue },
    Phase2b { instance: InstanceId, round: Round, acceptor: NodeId },
}

/// Shared deployment description.
#[derive(Clone, Debug)]
pub struct LibpaxosConfig {
    /// The coordinator node.
    pub coordinator: NodeId,
    /// Acceptor nodes (2f+1).
    pub acceptors: Vec<NodeId>,
    /// Everyone subscribed to the multicast group.
    pub group: GroupId,
    /// Outstanding instance pipeline (libpaxos keeps this tiny).
    pub window: u32,
    /// Per-instance protocol CPU at the coordinator (event-loop and
    /// instance bookkeeping of the original C implementation).
    pub instance_overhead: Dur,
}

/// One libpaxos-model process (roles by configuration).
pub struct LibpaxosProcess {
    cfg: LibpaxosConfig,
    me: NodeId,
    round: Round,
    is_coordinator: bool,
    is_acceptor: bool,
    learner_index: Option<usize>,
    log: Option<SharedLog>,
    pacer: Option<Pacer>,
    next_seq: u64,
    // Coordinator.
    pending: VecDeque<BValue>,
    next_instance: InstanceId,
    outstanding: BTreeSet<InstanceId>,
    // Acceptor: highest voted instance set (votes implicit: round fixed).
    voted: BTreeSet<InstanceId>,
    // Learner: quorum counting + payload buffer + in-order delivery.
    vote_counts: BTreeMap<InstanceId, BTreeSet<NodeId>>,
    payloads: BTreeMap<InstanceId, BValue>,
    next_deliver: InstanceId,
}

impl LibpaxosProcess {
    /// Creates a process. `learner_index` enables delivery recording.
    pub fn new(
        cfg: LibpaxosConfig,
        me: NodeId,
        pacer: Option<Pacer>,
        learner_index: Option<usize>,
        log: Option<SharedLog>,
    ) -> LibpaxosProcess {
        let is_coordinator = cfg.coordinator == me;
        let is_acceptor = cfg.acceptors.contains(&me);
        LibpaxosProcess {
            cfg,
            me,
            round: Round::new(1, 0),
            is_coordinator,
            is_acceptor,
            learner_index,
            log,
            pacer,
            next_seq: 0,
            pending: VecDeque::new(),
            next_instance: InstanceId(0),
            outstanding: BTreeSet::new(),
            voted: BTreeSet::new(),
            vote_counts: BTreeMap::new(),
            payloads: BTreeMap::new(),
            next_deliver: InstanceId(0),
        }
    }

    fn try_open(&mut self, ctx: &mut Ctx) {
        while (self.outstanding.len() as u32) < self.cfg.window {
            let Some(v) = self.pending.pop_front() else { return };
            let instance = self.next_instance;
            self.next_instance = instance.next();
            self.outstanding.insert(instance);
            ctx.charge_cpu(0, self.cfg.instance_overhead);
            ctx.counter_add(metric::INSTANCES, 1);
            let round = self.round;
            ctx.mcast(self.cfg.group, LpMsg::Phase2a { instance, round, v }, v.bytes);
            // The coordinator is itself acceptor and learner.
            self.on_phase2a(instance, round, v, ctx);
        }
    }

    fn on_phase2a(&mut self, instance: InstanceId, round: Round, v: BValue, ctx: &mut Ctx) {
        // libevent-style per-event processing cost.
        ctx.charge_cpu(0, self.cfg.instance_overhead / 2);
        self.payloads.insert(instance, v);
        if self.is_acceptor && round == self.round && self.voted.insert(instance) {
            let me = self.me;
            ctx.mcast(self.cfg.group, LpMsg::Phase2b { instance, round, acceptor: me }, 64);
            self.on_phase2b(instance, round, me, ctx);
        }
        self.try_deliver(ctx);
    }

    fn on_phase2b(&mut self, instance: InstanceId, round: Round, acceptor: NodeId, ctx: &mut Ctx) {
        if round != self.round {
            return;
        }
        ctx.charge_cpu(0, self.cfg.instance_overhead / 2);
        self.vote_counts.entry(instance).or_default().insert(acceptor);
        self.try_deliver(ctx);
    }

    fn try_deliver(&mut self, ctx: &mut Ctx) {
        let q = quorum(self.cfg.acceptors.len());
        loop {
            let i = self.next_deliver;
            let decided = self.vote_counts.get(&i).is_some_and(|s| s.len() >= q);
            if !decided || !self.payloads.contains_key(&i) {
                return;
            }
            let v = self.payloads.remove(&i).expect("payload checked");
            self.vote_counts.remove(&i);
            self.next_deliver = i.next();
            if self.is_coordinator {
                self.outstanding.remove(&i);
                self.try_open(ctx);
            }
            if let Some(idx) = self.learner_index {
                let me = self.me;
                deliver_value(ctx, &self.log, idx, &v, me);
            }
        }
    }
}

impl Actor for LibpaxosProcess {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.pacer.is_some() {
            ctx.set_timer(Dur::ZERO, TimerToken(T_PACE));
        }
        if self.is_coordinator {
            ctx.set_timer(Dur::millis(1), TimerToken(T_FLUSH));
        }
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(msg) = env.payload.downcast_ref::<LpMsg>() else { return };
        match msg {
            LpMsg::Submit(v) => {
                if self.is_coordinator && self.pending.len() < 10_000 {
                    self.pending.push_back(*v);
                    self.try_open(ctx);
                }
            }
            LpMsg::Phase2a { instance, round, v } => {
                let (instance, round, v) = (*instance, *round, *v);
                self.on_phase2a(instance, round, v, ctx);
            }
            LpMsg::Phase2b { instance, round, acceptor } => {
                let (instance, round, acceptor) = (*instance, *round, *acceptor);
                self.on_phase2b(instance, round, acceptor, ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        match token.0 {
            t if t == T_FLUSH => {
                self.try_open(ctx);
                ctx.set_timer(Dur::millis(1), TimerToken(T_FLUSH));
            }
            _ => {
                let Some(p) = self.pacer.as_mut() else { return };
                let due = p.due(ctx.now());
                let bytes = p.msg_bytes();
                let interval = p.interval();
                let coordinator = self.cfg.coordinator;
                for _ in 0..due {
                    let v = BValue::new(self.me, self.next_seq, bytes, ctx.now());
                    self.next_seq += 1;
                    ctx.counter_add("bl.proposed", 1);
                    if self.is_coordinator {
                        if self.pending.len() < 10_000 {
                            self.pending.push_back(v);
                            self.try_open(ctx);
                        }
                    } else {
                        ctx.udp_send(coordinator, LpMsg::Submit(v), bytes);
                    }
                }
                ctx.set_timer(interval, TimerToken(T_PACE));
            }
        }
    }
}

/// Deploys a libpaxos ensemble: 1 coordinator (also acceptor), `2f`
/// further acceptors, `n_learners` learners, `n_proposers` proposers.
pub fn deploy_libpaxos(
    sim: &mut Sim,
    f: usize,
    n_learners: usize,
    n_proposers: usize,
    rate_bps: u64,
    msg_bytes: u32,
) -> (LibpaxosConfig, Vec<NodeId>, SharedLog) {
    struct Idle;
    impl Actor for Idle {
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }
    let n_acceptors = 2 * f + 1;
    let acceptors: Vec<NodeId> = (0..n_acceptors).map(|_| sim.add_node(Box::new(Idle))).collect();
    let learners: Vec<NodeId> = (0..n_learners).map(|_| sim.add_node(Box::new(Idle))).collect();
    let proposers: Vec<NodeId> = (0..n_proposers).map(|_| sim.add_node(Box::new(Idle))).collect();
    let group = sim.add_group();
    for &n in acceptors.iter().chain(&learners).chain(&proposers) {
        sim.subscribe(n, group);
    }
    let cfg = LibpaxosConfig {
        coordinator: acceptors[0],
        acceptors: acceptors.clone(),
        group,
        window: 1,
        instance_overhead: Dur::micros(320),
    };
    let mut all_learners = learners.clone();
    all_learners.extend(&proposers);
    let log = abcast::shared_log(all_learners.len());
    for &a in &acceptors {
        sim.replace_actor(a, Box::new(LibpaxosProcess::new(cfg.clone(), a, None, None, None)));
    }
    for (i, &l) in learners.iter().enumerate() {
        sim.replace_actor(
            l,
            Box::new(LibpaxosProcess::new(cfg.clone(), l, None, Some(i), Some(log.clone()))),
        );
    }
    for (i, &p) in proposers.iter().enumerate() {
        let pacer = Pacer::new(rate_bps, msg_bytes, 1);
        sim.replace_actor(
            p,
            Box::new(LibpaxosProcess::new(
                cfg.clone(),
                p,
                Some(pacer),
                Some(n_learners + i),
                Some(log.clone()),
            )),
        );
    }
    (cfg, all_learners, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libpaxos_orders_but_is_slow() {
        let mut sim = Sim::new(SimConfig::default());
        let (_cfg, learners, log) = deploy_libpaxos(&mut sim, 1, 2, 2, 100_000_000, 4096);
        sim.run_until(Time::from_secs(2));
        let log = log.lock().unwrap();
        log.check_total_order().expect("total order");
        assert!(log.total_deliveries() > 100);
        drop(log);
        let bytes = sim.metrics().counter(learners[0], metric::DELIVERED_BYTES);
        let tput = mbps(bytes, Dur::secs(2));
        // The point of this baseline: one order of magnitude below
        // Ring Paxos (paper: ~30 Mbps, 3%).
        assert!(tput < 150.0, "libpaxos unexpectedly fast: {tput:.0} Mbps");
        assert!(tput > 5.0, "libpaxos should still make progress: {tput:.1} Mbps");
    }
}
