//! S-Paxos (the thesis's \[32\] baseline).
//!
//! S-Paxos distributes request reception and dissemination over all
//! replicas: a client submits to any replica; the replica forwards the
//! request (batch) to every other replica; replicas acknowledge to all;
//! after `f+1` acks the batch is *stable*, and the leader orders batch
//! ids with Paxos. Delivery needs the id order plus a stable batch.
//!
//! The all-to-all dissemination and acknowledgement traffic makes S-Paxos
//! CPU-intensive (the paper measures ~270% CPU across its threads and a
//! Java GC-induced latency floor above 35 ms) — efficiency 31.2% in
//! Table 3.2. The model charges a JVM cost multiplier on protocol CPU and
//! injects periodic collector pauses.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use abcast::{metric, MsgId, Pacer, SharedLog};
use paxos::msg::{quorum, InstanceId, Round};
use simnet::prelude::*;

use crate::common::{deliver_value, BValue};

const T_PACE: u64 = 2 << 56;
const T_FLUSH: u64 = 3 << 56;
const T_GC_PAUSE: u64 = 4 << 56;

/// A disseminated batch of client requests with a unique id.
#[derive(Clone, Debug)]
struct SBatch {
    id: MsgId,
    values: std::sync::Arc<Vec<BValue>>,
}

#[derive(Clone, Debug)]
enum SpMsg {
    /// Replica-to-replica dissemination of a batch.
    Forward(SBatch),
    /// Acknowledgement of batch receipt.
    Ack { batch: MsgId },
    /// Leader's Phase 2A ordering a batch id into an instance.
    Order { instance: InstanceId, round: Round, batch: MsgId },
    /// Follower's Phase 2B.
    OrderAck { instance: InstanceId, round: Round },
    /// Leader's decision notification.
    Decide { instance: InstanceId, batch: MsgId },
}

/// Deployment description.
#[derive(Clone, Debug)]
pub struct SpaxosConfig {
    /// Replicas (2f+1); index 0 is the leader.
    pub replicas: Vec<NodeId>,
    /// Batch size for dissemination.
    pub batch_bytes: u32,
    /// Flush partial batches after this long.
    pub batch_timeout: Dur,
    /// JVM overhead multiplier on per-message protocol CPU.
    pub jvm_factor: u32,
    /// Interval between garbage-collector pauses.
    pub gc_interval: Dur,
    /// Length of each collector pause.
    pub gc_pause: Dur,
    /// Outstanding ordering instances at the leader.
    pub window: u32,
}

/// One S-Paxos replica.
pub struct SpaxosProcess {
    cfg: SpaxosConfig,
    me: NodeId,
    index: usize,
    round: Round,
    log: Option<SharedLog>,
    pacer: Option<Pacer>,
    next_seq: u64,
    next_batch: u64,
    pending: VecDeque<BValue>,
    pending_bytes: u64,
    /// Batches seen (by id) with their values.
    batches: HashMap<MsgId, SBatch>,
    /// Ack counts per batch.
    acks: HashMap<MsgId, usize>,
    /// Leader: queue of stable batch ids to order; outstanding instances.
    to_order: VecDeque<MsgId>,
    ordered_already: BTreeSet<MsgId>,
    next_instance: InstanceId,
    outstanding: BTreeMap<InstanceId, (MsgId, usize)>,
    /// All: decided id per instance, delivery cursor.
    decided: BTreeMap<InstanceId, MsgId>,
    next_deliver: InstanceId,
}

impl SpaxosProcess {
    /// Creates replica `index`.
    pub fn new(
        cfg: SpaxosConfig,
        index: usize,
        pacer: Option<Pacer>,
        log: Option<SharedLog>,
    ) -> SpaxosProcess {
        let me = cfg.replicas[index];
        SpaxosProcess {
            cfg,
            me,
            index,
            round: Round::new(1, 0),
            log,
            pacer,
            next_seq: 0,
            next_batch: 0,
            pending: VecDeque::new(),
            pending_bytes: 0,
            batches: HashMap::new(),
            acks: HashMap::new(),
            to_order: VecDeque::new(),
            ordered_already: BTreeSet::new(),
            next_instance: InstanceId(0),
            outstanding: BTreeMap::new(),
            decided: BTreeMap::new(),
            next_deliver: InstanceId(0),
        }
    }

    fn is_leader(&self) -> bool {
        self.index == 0
    }

    fn protocol_cpu(&self, ctx: &mut Ctx, base: Dur) {
        ctx.charge_cpu(1, base * self.cfg.jvm_factor as u64);
    }

    fn peers(&self) -> Vec<NodeId> {
        self.cfg.replicas.iter().copied().filter(|&r| r != self.me).collect()
    }

    fn flush_batch(&mut self, ctx: &mut Ctx, force: bool) {
        let full = self.pending_bytes >= self.cfg.batch_bytes as u64;
        if !(full || (force && !self.pending.is_empty())) {
            return;
        }
        let mut vals = Vec::new();
        let mut bytes = 0u64;
        while let Some(v) = self.pending.front() {
            if !vals.is_empty() && bytes + v.bytes as u64 > self.cfg.batch_bytes as u64 {
                break;
            }
            let v = self.pending.pop_front().expect("front checked");
            self.pending_bytes -= v.bytes as u64;
            bytes += v.bytes as u64;
            vals.push(v);
        }
        let id = MsgId(((self.me.0 as u64) << 40) | (1 << 39) | self.next_batch);
        self.next_batch += 1;
        let batch = SBatch { id, values: std::sync::Arc::new(vals) };
        self.batches.insert(id, batch.clone());
        *self.acks.entry(id).or_insert(0) += 1; // self
        self.protocol_cpu(ctx, Dur::micros(30));
        let wire = (bytes.min(u32::MAX as u64) as u32).max(64);
        for p in self.peers() {
            ctx.udp_send(p, SpMsg::Forward(batch.clone()), wire);
        }
    }

    fn on_stable(&mut self, id: MsgId, ctx: &mut Ctx) {
        // The disseminating replica reports stability to the leader via
        // its ack; the leader queues the id for ordering.
        if self.is_leader() && self.ordered_already.insert(id) {
            self.to_order.push_back(id);
            self.try_order(ctx);
        }
    }

    fn try_order(&mut self, ctx: &mut Ctx) {
        while (self.outstanding.len() as u32) < self.cfg.window {
            let Some(id) = self.to_order.pop_front() else { return };
            let instance = self.next_instance;
            self.next_instance = instance.next();
            self.outstanding.insert(instance, (id, 1));
            self.protocol_cpu(ctx, Dur::micros(20));
            ctx.counter_add(metric::INSTANCES, 1);
            let round = self.round;
            for p in self.peers() {
                ctx.udp_send(p, SpMsg::Order { instance, round, batch: id }, 64);
            }
        }
    }

    fn try_deliver(&mut self, ctx: &mut Ctx) {
        let q = quorum(self.cfg.replicas.len());
        loop {
            let i = self.next_deliver;
            let Some(&id) = self.decided.get(&i) else { return };
            let stable = self.acks.get(&id).copied().unwrap_or(0) >= q;
            if !stable || !self.batches.contains_key(&id) {
                return;
            }
            let batch = self.batches.remove(&id).expect("batch checked");
            self.decided.remove(&i);
            self.next_deliver = i.next();
            self.protocol_cpu(ctx, Dur::micros(15));
            for v in batch.values.iter() {
                let me = self.me;
                deliver_value(ctx, &self.log, self.index, v, me);
            }
        }
    }
}

impl Actor for SpaxosProcess {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.pacer.is_some() {
            ctx.set_timer(Dur::ZERO, TimerToken(T_PACE));
        }
        ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_FLUSH));
        ctx.set_timer(self.cfg.gc_interval, TimerToken(T_GC_PAUSE));
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(msg) = env.payload.downcast_ref::<SpMsg>() else { return };
        match msg {
            SpMsg::Forward(batch) => {
                let batch = batch.clone();
                let id = batch.id;
                self.protocol_cpu(ctx, Dur::micros(10));
                self.batches.insert(id, batch);
                let n = {
                    let e = self.acks.entry(id).or_insert(0);
                    // The Forward carries the disseminator's implicit
                    // ack, and this replica's own receipt is an ack too
                    // (it only *sends* acks to peers) — both count
                    // toward the f+1 stability quorum.
                    *e += 2;
                    *e
                };
                // Acknowledge to all replicas.
                for p in self.peers() {
                    ctx.udp_send(p, SpMsg::Ack { batch: id }, 64);
                }
                if n >= quorum(self.cfg.replicas.len()) {
                    self.on_stable(id, ctx);
                }
                self.try_deliver(ctx);
            }
            SpMsg::Ack { batch } => {
                let id = *batch;
                self.protocol_cpu(ctx, Dur::micros(3));
                let n = {
                    let e = self.acks.entry(id).or_insert(0);
                    *e += 1;
                    *e
                };
                if n >= quorum(self.cfg.replicas.len()) {
                    self.on_stable(id, ctx);
                }
                self.try_deliver(ctx);
            }
            SpMsg::Order { instance, round, batch } => {
                if *round == self.round {
                    ctx.udp_send(
                        env.src,
                        SpMsg::OrderAck { instance: *instance, round: *round },
                        64,
                    );
                    // Tentatively record; final on Decide.
                    self.decided.insert(*instance, *batch);
                    self.try_deliver(ctx);
                }
            }
            SpMsg::OrderAck { instance, round } => {
                if *round != self.round || !self.is_leader() {
                    return;
                }
                let instance = *instance;
                let q = quorum(self.cfg.replicas.len());
                let done = {
                    let Some(e) = self.outstanding.get_mut(&instance) else { return };
                    e.1 += 1;
                    e.1 >= q
                };
                if done {
                    let (id, _) = self.outstanding.remove(&instance).expect("present");
                    self.decided.insert(instance, id);
                    for p in self.peers() {
                        ctx.udp_send(p, SpMsg::Decide { instance, batch: id }, 64);
                    }
                    self.try_deliver(ctx);
                    self.try_order(ctx);
                }
            }
            SpMsg::Decide { instance, batch } => {
                self.decided.insert(*instance, *batch);
                self.try_deliver(ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx) {
        match token.0 {
            t if t == T_FLUSH => {
                self.flush_batch(ctx, true);
                ctx.set_timer(self.cfg.batch_timeout, TimerToken(T_FLUSH));
            }
            t if t == T_GC_PAUSE => {
                // Stop-the-world collector pause: both cores blocked.
                ctx.charge_cpu(0, self.cfg.gc_pause);
                ctx.charge_cpu(1, self.cfg.gc_pause);
                ctx.counter_add("bl.gc_pauses", 1);
                ctx.set_timer(self.cfg.gc_interval, TimerToken(T_GC_PAUSE));
            }
            _ => {
                let Some(p) = self.pacer.as_mut() else { return };
                let due = p.due(ctx.now());
                let bytes = p.msg_bytes();
                let interval = p.interval();
                for _ in 0..due {
                    let v = BValue::new(self.me, self.next_seq, bytes, ctx.now());
                    self.next_seq += 1;
                    ctx.counter_add("bl.proposed", 1);
                    if self.pending_bytes < 64 * 1024 * 1024 {
                        self.pending.push_back(v);
                        self.pending_bytes += v.bytes as u64;
                        self.flush_batch(ctx, false);
                    }
                }
                ctx.set_timer(interval, TimerToken(T_PACE));
            }
        }
    }
}

/// Deploys `2f+1` S-Paxos replicas, each fed `rate_bps` of client load.
pub fn deploy_spaxos(
    sim: &mut Sim,
    f: usize,
    rate_bps: u64,
    msg_bytes: u32,
) -> (Vec<NodeId>, SharedLog) {
    struct Idle;
    impl Actor for Idle {
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }
    let n = 2 * f + 1;
    let replicas: Vec<NodeId> = (0..n).map(|_| sim.add_node(Box::new(Idle))).collect();
    let cfg = SpaxosConfig {
        replicas: replicas.clone(),
        batch_bytes: 32 * 1024,
        batch_timeout: Dur::micros(500),
        jvm_factor: 3,
        gc_interval: Dur::millis(250),
        gc_pause: Dur::millis(12),
        window: 16,
    };
    let log = abcast::shared_log(n);
    for i in 0..n {
        let pacer = (rate_bps > 0).then(|| Pacer::new(rate_bps, msg_bytes, 1));
        sim.replace_actor(
            replicas[i],
            Box::new(SpaxosProcess::new(cfg.clone(), i, pacer, Some(log.clone()))),
        );
    }
    (replicas, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaxos_orders_and_has_high_latency() {
        let mut sim = Sim::new(SimConfig::default());
        let (replicas, log) = deploy_spaxos(&mut sim, 2, 60_000_000, 32 * 1024);
        sim.run_until(Time::from_secs(2));
        let log = log.lock().unwrap();
        log.check_total_order().expect("total order");
        assert!(log.total_deliveries() > 200);
        drop(log);
        let bytes = sim.metrics().counter(replicas[2], metric::DELIVERED_BYTES);
        let tput = mbps(bytes, Dur::secs(2));
        assert!(tput > 50.0, "spaxos too slow: {tput:.0} Mbps");
        assert!(tput < 600.0, "spaxos unexpectedly fast: {tput:.0} Mbps");
        // GC pauses must leave a visible latency tail (paper: >35 ms).
        let lat = sim.metrics().latency(metric::LATENCY);
        assert!(lat.p99 > Dur::millis(8), "p99 {:?}", lat.p99);
    }
}
