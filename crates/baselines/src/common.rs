//! Shared plumbing for the baseline protocols.
//!
//! Every baseline is a *message-pattern-faithful* model of the system the
//! paper compares against (Fig. 3.7, Table 3.2): it exchanges the same
//! kinds of messages over the same transports, with per-message protocol
//! CPU costs calibrated to the published efficiency numbers. They are
//! performance baselines, not reimplementations of those codebases.

use abcast::{metric, MsgId, SharedLog};
use simnet::prelude::*;

/// One application message travelling through a baseline protocol.
#[derive(Clone, Copy, Debug)]
pub struct BValue {
    /// Globally unique id.
    pub id: MsgId,
    /// Originating node.
    pub origin: NodeId,
    /// Payload size in bytes.
    pub bytes: u32,
    /// Submission time (latency measurement).
    pub submitted: Time,
}

impl BValue {
    /// Creates the `seq`-th value of `origin`.
    pub fn new(origin: NodeId, seq: u64, bytes: u32, now: Time) -> BValue {
        BValue { id: MsgId(((origin.0 as u64) << 40) | seq), origin, bytes, submitted: now }
    }
}

/// Records one delivery into the metrics and the shared log.
pub fn deliver_value(
    ctx: &mut Ctx,
    log: &Option<SharedLog>,
    learner_index: usize,
    v: &BValue,
    me: NodeId,
) {
    if let Some(log) = log {
        log.lock().unwrap().deliver(learner_index, v.id);
    }
    ctx.counter_add(metric::DELIVERED_BYTES, v.bytes as u64);
    ctx.counter_add(metric::DELIVERED_MSGS, 1);
    if v.origin == me {
        // Delivery strictly follows submission; `since` debug-asserts
        // that instead of masking an inversion as a zero latency.
        ctx.record_latency(metric::LATENCY, ctx.now().since(v.submitted));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_ids_are_unique_per_origin() {
        let a = BValue::new(NodeId(1), 0, 10, Time::ZERO);
        let b = BValue::new(NodeId(1), 1, 10, Time::ZERO);
        let c = BValue::new(NodeId(2), 0, 10, Time::ZERO);
        assert_ne!(a.id, b.id);
        assert_ne!(a.id, c.id);
    }
}
