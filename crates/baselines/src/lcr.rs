//! LCR-style ring broadcast (Guerraoui et al., cited as \[12\] in the
//! thesis).
//!
//! LCR arranges all processes on a logical ring and totally orders
//! messages with vector clocks; payloads make one revolution and an
//! acknowledgement pass makes delivery uniform — two revolutions end to
//! end, one payload copy per link, which is why LCR posts the highest
//! efficiency in Table 3.2 (91%) but needs *perfect* failure detection.
//!
//! This model keeps the communication pattern (payload revolution plus an
//! id-only commit pass seeded at a fixed head node) and the resource
//! profile; the vector-clock machinery is replaced by head-assigned
//! sequence numbers, which yields the same order at every process.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use abcast::{Pacer, SharedLog};
use simnet::prelude::*;

use crate::common::{deliver_value, BValue};

const T_PACE: u64 = 2 << 56;

/// Messages on the LCR ring (all TCP).
#[derive(Clone, Debug)]
enum LcrMsg {
    /// Payload travelling its revolution; the head stamps `seq`.
    Data { v: BValue, seq: Option<u64>, hops_left: u32 },
    /// Commit pass: seq assignments circulating id-only.
    Commit { id_seq: Vec<(BValue, u64)>, hops_left: u32 },
}

/// One LCR process.
pub struct LcrProcess {
    ring: Vec<NodeId>,
    pos: usize,
    log: Option<SharedLog>,
    pacer: Option<Pacer>,
    next_seq_local: u64,
    /// Head-only: next global sequence number.
    next_global: u64,
    /// Sequenced messages waiting for in-order delivery.
    ready: BTreeMap<u64, BValue>,
    next_deliver: u64,
    /// Payloads seen without a sequence yet (before the commit arrives).
    unsequenced: VecDeque<BValue>,
}

impl LcrProcess {
    /// Creates the process at `pos` on `ring`.
    pub fn new(
        ring: Vec<NodeId>,
        pos: usize,
        pacer: Option<Pacer>,
        log: Option<SharedLog>,
    ) -> LcrProcess {
        LcrProcess {
            ring,
            pos,
            log,
            pacer,
            next_seq_local: 0,
            next_global: 0,
            ready: BTreeMap::new(),
            next_deliver: 0,
            unsequenced: VecDeque::new(),
        }
    }

    fn me(&self) -> NodeId {
        self.ring[self.pos]
    }

    fn succ(&self) -> NodeId {
        self.ring[(self.pos + 1) % self.ring.len()]
    }

    fn is_head(&self) -> bool {
        self.pos == 0
    }

    fn try_deliver(&mut self, ctx: &mut Ctx) {
        while let Some(v) = self.ready.remove(&self.next_deliver) {
            let me = self.me();
            deliver_value(ctx, &self.log, self.pos, &v, me);
            self.next_deliver += 1;
        }
    }

    fn sequence_here(&mut self, v: BValue, hops_left: u32, ctx: &mut Ctx) {
        // Head: stamp and start the commit information circulating with
        // the payload.
        let seq = self.next_global;
        self.next_global += 1;
        self.ready.insert(seq, v);
        self.try_deliver(ctx);
        // Commit pass for nodes that saw the payload before the head.
        let n = self.ring.len() as u32;
        let commit_hops = n - 1 - hops_left.min(n - 1);
        if commit_hops > 0 || hops_left > 0 {
            // The payload continues its revolution carrying the seq; the
            // id-only commit covers the prefix the payload already passed.
        }
        if hops_left > 0 {
            ctx.tcp_send(self.succ(), LcrMsg::Data { v, seq: Some(seq), hops_left }, v.bytes);
        }
        if commit_hops > 0 {
            ctx.tcp_send(
                self.succ(),
                LcrMsg::Commit { id_seq: vec![(v, seq)], hops_left: n - 1 },
                32,
            );
        }
    }
}

impl Actor for LcrProcess {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.pacer.is_some() {
            ctx.set_timer(Dur::ZERO, TimerToken(T_PACE));
        }
    }

    fn on_message(&mut self, env: &Envelope, ctx: &mut Ctx) {
        let Some(msg) = env.payload.downcast_ref::<LcrMsg>() else { return };
        match msg {
            LcrMsg::Data { v, seq, hops_left } => {
                let (v, seq, hops_left) = (*v, *seq, *hops_left);
                match seq {
                    Some(s) => {
                        self.ready.insert(s, v);
                        self.try_deliver(ctx);
                        if hops_left > 1 {
                            ctx.tcp_send(
                                self.succ(),
                                LcrMsg::Data { v, seq: Some(s), hops_left: hops_left - 1 },
                                v.bytes,
                            );
                        }
                    }
                    None if self.is_head() => {
                        self.sequence_here(v, hops_left.saturating_sub(1), ctx);
                    }
                    None => {
                        self.unsequenced.push_back(v);
                        if hops_left > 1 {
                            ctx.tcp_send(
                                self.succ(),
                                LcrMsg::Data { v, seq: None, hops_left: hops_left - 1 },
                                v.bytes,
                            );
                        }
                    }
                }
            }
            LcrMsg::Commit { id_seq, hops_left } => {
                let (id_seq, hops_left) = (id_seq.clone(), *hops_left);
                for (v, s) in &id_seq {
                    self.unsequenced.retain(|u| u.id != v.id);
                    self.ready.insert(*s, *v);
                }
                self.try_deliver(ctx);
                if hops_left > 1 {
                    ctx.tcp_send(
                        self.succ(),
                        LcrMsg::Commit { id_seq, hops_left: hops_left - 1 },
                        32,
                    );
                }
            }
        }
    }

    fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
        let Some(p) = self.pacer.as_mut() else { return };
        // Back-pressure like a blocking send: shed while the ring is busy.
        if ctx.tcp_backlog(self.ring[(self.pos + 1) % self.ring.len()]) > 4 * 1024 * 1024 {
            let _ = p.due(ctx.now());
            let interval = p.interval();
            ctx.set_timer(interval, TimerToken(T_PACE));
            return;
        }
        let due = p.due(ctx.now());
        let bytes = p.msg_bytes();
        let interval = p.interval();
        for _ in 0..due {
            let v = BValue::new(self.me(), self.next_seq_local, bytes, ctx.now());
            self.next_seq_local += 1;
            ctx.counter_add("bl.proposed", 1);
            if self.is_head() {
                let n = self.ring.len() as u32;
                self.sequence_here(v, n - 1, ctx);
            } else {
                let n = self.ring.len() as u32;
                ctx.tcp_send(self.succ(), LcrMsg::Data { v, seq: None, hops_left: n - 1 }, bytes);
            }
        }
        ctx.set_timer(interval, TimerToken(T_PACE));
    }
}

/// Deploys an LCR ring of `n` processes, each proposing at `rate_bps`
/// with `msg_bytes` messages. Returns the nodes and the delivery log.
pub fn deploy_lcr(
    sim: &mut Sim,
    n: usize,
    rate_bps: u64,
    msg_bytes: u32,
) -> (Vec<NodeId>, SharedLog) {
    struct Idle;
    impl Actor for Idle {
        fn on_message(&mut self, _env: &Envelope, _ctx: &mut Ctx) {}
    }
    let ring: Vec<NodeId> = (0..n).map(|_| sim.add_node(Box::new(Idle))).collect();
    let log = abcast::shared_log(n);
    for pos in 0..n {
        let pacer = (rate_bps > 0).then(|| Pacer::new(rate_bps, msg_bytes, 1));
        sim.replace_actor(
            ring[pos],
            Box::new(LcrProcess::new(ring.clone(), pos, pacer, Some(log.clone()))),
        );
    }
    (ring, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast::metric;

    #[test]
    fn lcr_orders_and_delivers() {
        let mut sim = Sim::new(SimConfig::default());
        let (ring, log) = deploy_lcr(&mut sim, 5, 100_000_000, 32 * 1024);
        sim.run_until(Time::from_secs(1));
        let log = log.lock().unwrap();
        assert!(log.total_deliveries() > 500);
        log.check_total_order().expect("total order");
        assert!(sim.metrics().counter(ring[3], metric::DELIVERED_MSGS) > 100);
    }

    #[test]
    fn lcr_throughput_is_near_wire_speed() {
        let mut sim = Sim::new(SimConfig::default());
        let (ring, _log) = deploy_lcr(&mut sim, 5, 250_000_000, 32 * 1024);
        sim.run_until(Time::from_secs(2));
        let bytes = sim.metrics().counter(ring[2], metric::DELIVERED_BYTES);
        let tput = mbps(bytes, Dur::secs(2));
        assert!(tput > 800.0, "LCR throughput {tput:.0} Mbps");
    }

    #[test]
    fn lcr_latency_grows_with_ring() {
        let run = |n: usize| {
            let mut sim = Sim::new(SimConfig::default());
            let (_ring, _log) = deploy_lcr(&mut sim, n, 20_000_000, 8192);
            sim.run_until(Time::from_secs(1));
            sim.metrics().latency(metric::LATENCY).mean
        };
        assert!(run(16) > run(4));
    }
}
