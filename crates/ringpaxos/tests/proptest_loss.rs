//! Property test: M-Ring Paxos keeps uniform total order and integrity
//! under arbitrary loss rates and seeds — the protocol's recovery
//! machinery (retransmission, 2A re-multicast, decided-below watermarks)
//! must mask whatever the network does.

use abcast::MsgId;
use proptest::prelude::*;
use ringpaxos::cluster::{deploy_mring, MRingOptions};
use simnet::prelude::*;
use std::collections::HashSet;

proptest! {
    // Each case simulates ~1.2s of cluster time; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn total_order_survives_any_loss_rate(
        seed in 0u64..10_000,
        loss_pm in 0u32..30, // 0..3% per-datagram loss
        ring_size in 2usize..5,
        rate_mbps in 20u64..120,
    ) {
        let mut cfg = SimConfig::default();
        cfg.seed = seed;
        cfg.random_loss = loss_pm as f64 / 1000.0;
        let mut sim = Sim::new(cfg);
        let opts = MRingOptions {
            ring_size,
            n_learners: 2,
            n_proposers: 1,
            proposer_rate_bps: rate_mbps * 1_000_000,
            proposer_stop: Some(Time::from_millis(700)),
            ..MRingOptions::default()
        };
        let d = deploy_mring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_millis(1200));

        let log = d.log.lock().unwrap();
        log.check_total_order().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut broadcast = HashSet::new();
        for &p in &d.proposers {
            for seq in 0..sim.metrics().counter(p, "rp.proposed") {
                broadcast.insert(MsgId(((p.0 as u64) << 40) | seq));
            }
        }
        log.check_integrity(&broadcast)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(log.total_deliveries() > 0, "nothing delivered at all");
    }
}
