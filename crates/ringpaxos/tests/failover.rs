//! U-Ring coordinator failover and ring repair: the acceptance
//! scenarios of the self-healing subsystem (`cfg.suspicion_timeout`).
//!
//! * An *unplanned* coordinator crash is recovered by an epoch-based
//!   takeover: a surviving acceptor bumps the round, reconstructs the
//!   instance allocation from a promise quorum, and the ring resumes —
//!   with zero agreement/ordering violations under the epoch-aware
//!   checker, and with the old coordinator respawnable over its stable
//!   store (the restriction PR 4 had to impose, now lifted).
//! * A *stale* coordinator resumed with its pre-crash state keeps
//!   proposing under the old round; the epoch fence must discard that
//!   traffic at every receiver.
//! * A crashed mid-ring member is spliced out by the repair protocol so
//!   throughput resumes during the outage (Fig. 7.5's lesson), and
//!   spliced back in after it recovers.

use recovery::NullApp;
use ringpaxos::cluster::{
    deploy_uring_recoverable, respawn_uring, RecoverableURing, URingOptions, URingRecoveryOptions,
};
use simnet::prelude::*;

const SUSPICION: Dur = Dur::millis(40);

fn opts(proposers: Vec<usize>) -> URingOptions {
    URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: proposers,
        proposer_rate_bps: 60_000_000,
        msg_bytes: 16 * 1024,
        burst: 1,
        proposer_stop: Some(Time::from_millis(2500)),
    }
}

fn deploy(sim: &mut Sim, proposers: Vec<usize>) -> RecoverableURing {
    deploy_uring_recoverable(
        sim,
        &opts(proposers),
        URingRecoveryOptions::default(),
        |cfg| cfg.suspicion_timeout = Some(SUSPICION),
        |_| Some(Box::new(NullApp::default())),
    )
}

fn delivered(sim: &Sim, ru: &RecoverableURing) -> Vec<u64> {
    ru.d.ring.iter().map(|&n| sim.metrics().counter(n, "abcast.delivered_msgs")).collect()
}

/// The tentpole scenario: the coordinator crashes unplanned, a
/// surviving acceptor takes over via an epoch bump, deliveries resume,
/// and the old coordinator is later respawned over its stable store —
/// rejoining demoted, with full crash-aware agreement at quiescence.
#[test]
fn coordinator_crash_recovers_via_epoch_takeover() {
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy(&mut sim, vec![0, 1, 2]);

    sim.run_until(Time::from_millis(1000));
    let before = delivered(&sim, &ru);
    assert!(before[3] > 0, "load flowed before the crash");
    sim.set_node_up(ru.d.ring[0], false);

    // Suspicion fires within ~2 timeouts at position 1; takeover plus
    // re-proposal is timeout-scale. Give it a comfortable margin.
    sim.run_until(Time::from_millis(1400));
    let during = delivered(&sim, &ru);
    assert!(
        during[3] > before[3] + 100,
        "deliveries must resume under the new epoch during the outage: {} -> {}",
        before[3],
        during[3]
    );
    let takeovers: u64 = sim.metrics().sum("rp.became_coord");
    assert!(takeovers >= 1, "an acceptor must have taken over");

    // The lifted restriction: respawn the dead coordinator over its
    // stable store. It comes back demoted and catches up.
    respawn_uring(&mut sim, &ru, 0, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_secs(6));

    let log = ru.d.log.lock().unwrap();
    log.check_crash_agreement(&[0, 1, 2, 3, 4]).expect("epoch-aware crash agreement");
    // Surviving learners recorded the configuration change(s).
    for l in 1..5 {
        assert!(
            !log.epochs_of(l).is_empty(),
            "learner {l} must have adopted at least one new epoch"
        );
    }
    // The takeover round was durably promised by surviving acceptors.
    let promised = (1..3).map(|p| ru.stores[p].lock().unwrap().promised.counter).max().unwrap_or(0);
    assert!(promised >= 2, "takeover promises must be persisted (got counter {promised})");
}

/// The seeded stale-epoch scenario: the coordinator is paused, a peer
/// takes over, and the old coordinator is resumed *with its pre-crash
/// state* (SIGSTOP/SIGCONT semantics) — it keeps proposing under the
/// old round until it learns of the new epoch. Every receiver must
/// fence that stale 2A/2B traffic; without the round fence the old
/// last acceptor's chain would fabricate decisions without a quorum.
#[test]
fn stale_coordinator_2ab_traffic_is_fenced() {
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy(&mut sim, vec![0, 1, 2]);

    sim.run_until(Time::from_millis(800));
    sim.set_node_up(ru.d.ring[0], false);
    // Let the takeover complete and the ring resume.
    sim.run_until(Time::from_millis(1300));
    assert!(sim.metrics().sum("rp.became_coord") >= 1);

    // Resume the old coordinator with its stale state: it still thinks
    // it leads round 1 and flushes its pending values down the ring.
    sim.restart_node(ru.d.ring[0]);
    sim.run_until(Time::from_secs(6));

    assert!(
        sim.metrics().sum("rp.stale_2ab") > 0,
        "the stale coordinator's round-1 traffic must hit the epoch fence"
    );
    assert!(
        sim.metrics().counter(ru.d.ring[0], "rp.deposed") >= 1,
        "the stale coordinator must learn it was deposed"
    );
    // Zero agreement/ordering violations, epochs monotonic per learner.
    ru.d.log
        .lock()
        .unwrap()
        .check_crash_agreement(&[0, 1, 2, 3, 4])
        .expect("agreement with fencing");
}

/// Ring repair (Fig. 7.5): a crashed mid-ring learner stalls decision
/// circulation; the coordinator's probe splices it out and throughput
/// resumes during the outage instead of staying down until the member
/// returns. After the respawn the member is spliced back in and full
/// agreement holds.
#[test]
fn crashed_member_is_spliced_out_and_rejoins() {
    let victim = 4usize; // learner-only: not an acceptor, not a proposer
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy(&mut sim, vec![0, 1, 2]);

    sim.run_until(Time::from_millis(800));
    let before = delivered(&sim, &ru);
    sim.set_node_up(ru.d.ring[victim], false);

    // Stall detection + probe + reform is a few suspicion timeouts.
    sim.run_until(Time::from_millis(1400));
    let during = delivered(&sim, &ru);
    assert!(sim.metrics().sum("rp.ring_repair") >= 1, "the ring must have been spliced");
    assert!(
        during[0] > before[0] + 100,
        "throughput must resume during the outage: {} -> {}",
        before[0],
        during[0]
    );

    respawn_uring(&mut sim, &ru, victim, Some(Box::new(NullApp::default())));
    sim.run_until(Time::from_secs(6));

    assert!(sim.metrics().sum("rp.joins") >= 1, "the respawned member must rejoin");
    ru.d.log
        .lock()
        .unwrap()
        .check_crash_agreement(&[0, 1, 2, 3, 4])
        .expect("agreement after rejoin");
}

/// Failover machinery is inert when disabled: a config without
/// `suspicion_timeout` runs no suspicion/heartbeat timers, so two
/// identical fault-free runs — one built with the failover-capable
/// binary, one conceptually without — cannot diverge. (The golden-trace
/// test pins the exact event counts; this one asserts the timers'
/// counters stay at zero so a regression points at the right gate.)
#[test]
fn failover_disabled_runs_no_failover_machinery() {
    let mut sim = Sim::new(SimConfig::default());
    let ru = deploy_uring_recoverable(
        &mut sim,
        &opts(vec![0, 1, 2]),
        URingRecoveryOptions::default(),
        |_| {},
        |_| None,
    );
    sim.run_until(Time::from_secs(3));
    assert!(delivered(&sim, &ru)[3] > 0);
    for name in ["rp.takeover", "rp.became_coord", "rp.ring_probe", "rp.ring_repair", "rp.joins"] {
        assert_eq!(sim.metrics().sum(name), 0, "{name} must stay zero with failover disabled");
    }
}
