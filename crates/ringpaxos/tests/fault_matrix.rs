//! The CI fault matrix: short runs of both protocols under composed
//! [`FaultPlan`] schedules — datagram loss, reordering, duplication,
//! link partitions, and CPU stragglers — each checked for zero
//! safety violations at quiescence.
//!
//! M-Ring cells exercise the UDP knobs (its multicast data path is
//! datagram-based); U-Ring cells, whose traffic is all TCP, exercise
//! link cuts and stragglers with the failover subsystem enabled, since
//! a cut longer than the suspicion timeout legitimately triggers ring
//! repair — the point is that repair plus recovery catch-up still
//! converges to agreement.

use abcast::MsgId;
use recovery::NullApp;
use ringpaxos::cluster::{
    deploy_mring, deploy_uring_recoverable, MRingOptions, URingOptions, URingRecoveryOptions,
};
use simnet::prelude::*;
use std::collections::HashSet;

fn mring_broadcast_set(sim: &Sim, proposers: &[NodeId]) -> HashSet<MsgId> {
    let mut out = HashSet::new();
    for &p in proposers {
        for seq in 0..sim.metrics().counter(p, "rp.proposed") {
            out.insert(MsgId(((p.0 as u64) << 40) | seq));
        }
    }
    out
}

/// Runs one M-Ring cell under `plan`, then verifies integrity (no
/// duplicate deliveries despite duplicated datagrams), total order, and
/// agreement at quiescence. Returns total deliveries.
fn run_mring_cell(seed: u64, plan: FaultPlan) -> usize {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    let mut sim = Sim::new(cfg);
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 40_000_000,
        msg_bytes: 8192,
        proposer_stop: Some(Time::from_millis(900)),
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    plan.run(&mut sim, Time::from_millis(2500), |_, _| {});

    let log = d.log.lock().unwrap();
    let all: Vec<usize> = (0..d.all_learners.len()).collect();
    log.check_total_order().expect("total order under faults");
    log.check_agreement_at_quiescence(&all).expect("agreement at quiescence");
    log.check_integrity(&mring_broadcast_set(&sim, &d.proposers)).expect("integrity");
    let total = log.total_deliveries();
    assert!(total > 100, "the cell must make progress (got {total} deliveries)");
    total
}

/// Runs one U-Ring cell (failover on, recovery on) under `plan`, then
/// verifies crash-aware agreement — epoch monotonicity included.
fn run_uring_cell(seed: u64, plan: FaultPlan) {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    let mut sim = Sim::new(cfg);
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: vec![0, 1],
        proposer_rate_bps: 40_000_000,
        msg_bytes: 8192,
        burst: 1,
        proposer_stop: Some(Time::from_millis(900)),
    };
    let ru = deploy_uring_recoverable(
        &mut sim,
        &opts,
        URingRecoveryOptions::default(),
        |cfg| cfg.suspicion_timeout = Some(Dur::millis(40)),
        |_| Some(Box::new(NullApp::default())),
    );
    plan.run(&mut sim, Time::from_secs(4), |_, _| {});

    let log = ru.d.log.lock().unwrap();
    log.check_crash_agreement(&[0, 1, 2, 3, 4]).expect("crash-aware agreement under faults");
    assert!(log.total_deliveries() > 100, "the cell must make progress");
}

#[test]
fn mring_loss_burst() {
    run_mring_cell(
        0xFA01,
        FaultPlan::new().loss_burst(Time::from_millis(200), Time::from_millis(600), 0.005),
    );
}

#[test]
fn mring_reorder_burst() {
    run_mring_cell(
        0xFA02,
        FaultPlan::new().reorder_burst(Time::from_millis(200), Time::from_millis(600), 0.02),
    );
}

/// The DeliveredTracker dedup regression: duplicated datagrams (retried
/// proposals, doubled 2As and decisions) must be absorbed — integrity
/// in `run_mring_cell` fails on any double delivery.
#[test]
fn mring_duplication_burst_is_deduplicated() {
    let mut cfg = SimConfig::default();
    cfg.seed = 0xFA03;
    let mut sim = Sim::new(cfg);
    let opts = MRingOptions {
        ring_size: 3,
        n_learners: 2,
        n_proposers: 2,
        proposer_rate_bps: 40_000_000,
        msg_bytes: 8192,
        proposer_stop: Some(Time::from_millis(900)),
        ..MRingOptions::default()
    };
    let d = deploy_mring(&mut sim, &opts, |_| {});
    FaultPlan::new().duplication_burst(Time::from_millis(100), Time::from_millis(800), 0.02).run(
        &mut sim,
        Time::from_millis(2500),
        |_, _| {},
    );

    let dups: u64 = sim.metrics().sum("net.duplicated");
    assert!(dups > 0, "the duplication knob must have fired");
    let log = d.log.lock().unwrap();
    let all: Vec<usize> = (0..d.all_learners.len()).collect();
    log.check_integrity(&mring_broadcast_set(&sim, &d.proposers))
        .expect("duplicated datagrams must not cause duplicate deliveries");
    log.check_total_order().expect("total order");
    log.check_agreement_at_quiescence(&all).expect("agreement");
}

#[test]
fn mring_loss_with_straggler() {
    // Straggle a mid-ring acceptor (ring nodes are deployed first, so
    // the second acceptor is NodeId(1)) while datagrams are lossy.
    run_mring_cell(
        0xFA04,
        FaultPlan::new()
            .loss_burst(Time::from_millis(200), Time::from_millis(600), 0.005)
            .straggler(NodeId(1), Time::from_millis(300), Time::from_millis(700), 3.0),
    );
}

#[test]
fn uring_partition_burst_heals_via_ring_repair() {
    // Cut the tail learner off the ring for 150 ms: the coordinator
    // splices it out, the cut heals, and it rejoins + catches up.
    run_uring_cell(
        0xFB01,
        FaultPlan::new().partition_burst(
            Time::from_millis(300),
            Time::from_millis(450),
            &[NodeId(4)],
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        ),
    );
}

#[test]
fn uring_straggler_and_partition() {
    run_uring_cell(
        0xFB02,
        FaultPlan::new()
            .straggler(NodeId(3), Time::from_millis(200), Time::from_millis(800), 3.0)
            .partition_burst(
                Time::from_millis(300),
                Time::from_millis(450),
                &[NodeId(4)],
                &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            ),
    );
}
