//! End-to-end tests for U-Ring Paxos on the simulated cluster.

use abcast::{metric, MsgId};
use ringpaxos::cluster::{deploy_uring, URingOptions};
use ringpaxos::StorageMode;
use simnet::prelude::*;
use std::collections::HashSet;

fn broadcast_set(sim: &Sim, ring: &[NodeId]) -> HashSet<MsgId> {
    let mut out = HashSet::new();
    for &p in ring {
        let n = sim.metrics().counter(p, "rp.proposed");
        for seq in 0..n {
            out.insert(MsgId(((p.0 as u64) << 40) | seq));
        }
    }
    out
}

#[test]
fn orders_and_delivers_under_load() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: vec![0, 1, 2, 3, 4],
        proposer_rate_bps: 150_000_000,
        msg_bytes: 32 * 1024,
        ..URingOptions::default()
    };
    let d = deploy_uring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(2));
    let log = d.log.lock().unwrap();
    assert!(log.total_deliveries() > 1000, "only {}", log.total_deliveries());
    log.check_total_order().expect("uniform total order");
    let broadcast = broadcast_set(&sim, &d.ring);
    log.check_integrity(&broadcast).expect("uniform integrity");
}

#[test]
fn every_process_delivers_everything() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = URingOptions {
        ring_len: 6,
        n_acceptors: 3,
        proposer_positions: vec![1, 4],
        proposer_rate_bps: 40_000_000,
        msg_bytes: 8192,
        proposer_stop: Some(Time::from_millis(800)),
        ..URingOptions::default()
    };
    let d = deploy_uring(&mut sim, &opts, |_| {});
    // Run past the stop time so in-flight traffic drains completely.
    sim.run_until(Time::from_secs(2));
    let log = d.log.lock().unwrap();
    let all: Vec<usize> = (0..d.ring.len()).collect();
    log.check_agreement_at_quiescence(&all).expect("all processes deliver equally");
    log.check_total_order().expect("order");
}

#[test]
fn throughput_is_near_wire_speed_with_32k_messages() {
    // Fig 3.7 / Table 3.2: U-Ring Paxos ~0.9 Gbps with 32 KB messages.
    let mut sim = Sim::new(SimConfig::default());
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: vec![0, 1, 2, 3, 4],
        proposer_rate_bps: 250_000_000, // aggregate 1.25 Gbps offered
        msg_bytes: 32 * 1024,
        ..URingOptions::default()
    };
    let d = deploy_uring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_secs(1));
    let before = sim.metrics().counter(d.ring[2], metric::DELIVERED_BYTES);
    sim.run_until(Time::from_secs(3));
    let after = sim.metrics().counter(d.ring[2], metric::DELIVERED_BYTES);
    let tput = mbps(after - before, Dur::secs(2));
    assert!(tput > 700.0, "throughput {tput:.0} Mbps, expected near wire speed");
}

#[test]
fn latency_grows_with_ring_size() {
    let run = |n: usize| -> Dur {
        let mut sim = Sim::new(SimConfig::default());
        let opts = URingOptions {
            ring_len: n,
            n_acceptors: n.div_ceil(2),
            proposer_positions: vec![0],
            proposer_rate_bps: 50_000_000,
            msg_bytes: 8192,
            ..URingOptions::default()
        };
        let _d = deploy_uring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_secs(1));
        sim.metrics().latency(metric::LATENCY).mean
    };
    let small = run(4);
    let large = run(16);
    assert!(
        large > small,
        "latency should grow with ring size: {small:?} (n=4) vs {large:?} (n=16)"
    );
}

#[test]
fn sync_disk_bounds_throughput() {
    let mut sim = Sim::new(SimConfig::default());
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: vec![0, 1, 2, 3, 4],
        proposer_rate_bps: 150_000_000,
        msg_bytes: 32 * 1024,
        ..URingOptions::default()
    };
    let d = deploy_uring(&mut sim, &opts, |cfg| {
        cfg.storage = StorageMode::SyncDisk;
    });
    sim.run_until(Time::from_secs(1));
    let before = sim.metrics().counter(d.ring[4], metric::DELIVERED_BYTES);
    sim.run_until(Time::from_secs(3));
    let after = sim.metrics().counter(d.ring[4], metric::DELIVERED_BYTES);
    let tput = mbps(after - before, Dur::secs(2));
    assert!(
        (150.0..340.0).contains(&tput),
        "sync-disk U-Ring throughput {tput:.0} Mbps, expected ~270"
    );
}

#[test]
fn small_tcp_windows_cap_throughput() {
    // Fig 3.13: socket buffers below ~1 MB throttle U-Ring Paxos.
    let run = |window: u32| -> f64 {
        let mut cfg = SimConfig::default();
        cfg.tcp_window_bytes = window;
        let mut sim = Sim::new(cfg);
        let opts = URingOptions {
            ring_len: 5,
            n_acceptors: 3,
            proposer_positions: vec![0, 1, 2, 3, 4],
            proposer_rate_bps: 250_000_000,
            msg_bytes: 32 * 1024,
            ..URingOptions::default()
        };
        let d = deploy_uring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_secs(2));
        let bytes = sim.metrics().counter(d.ring[2], metric::DELIVERED_BYTES);
        mbps(bytes, Dur::secs(2))
    };
    let tiny = run(64 * 1024);
    let big = run(16 * 1024 * 1024);
    assert!(big > 1.5 * tiny, "window should matter: {tiny:.0} vs {big:.0} Mbps");
}

#[test]
fn deterministic_runs() {
    let run = || {
        let mut sim = Sim::new(SimConfig::default());
        let opts = URingOptions::default();
        let d = deploy_uring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_millis(500));
        d.ring.iter().map(|&n| sim.metrics().counter(n, metric::DELIVERED_MSGS)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn ring_process_failure_stalls_delivery() {
    // The chapter-7 lesson (Fig 7.5): an all-unicast ring moves no
    // traffic once any process on it dies — U-Ring Paxos depends on an
    // external reconfiguration service the thesis's own library used.
    // This repository intentionally leaves that out (DESIGN.md), so the
    // stall itself is the contract.
    let mut sim = Sim::new(SimConfig::default());
    let opts = URingOptions {
        ring_len: 5,
        n_acceptors: 3,
        proposer_positions: (0..5).collect(),
        proposer_rate_bps: 100_000_000,
        ..URingOptions::default()
    };
    let d = deploy_uring(&mut sim, &opts, |_| {});
    sim.run_until(Time::from_millis(500));
    let healthy = sim.metrics().counter(d.ring[1], metric::DELIVERED_MSGS);
    assert!(healthy > 100, "ring should deliver before the crash");

    sim.set_node_up(d.ring[3], false);
    sim.run_until(Time::from_millis(700));
    let at_break = sim.metrics().counter(d.ring[1], metric::DELIVERED_MSGS);
    sim.run_until(Time::from_millis(1500));
    let later = sim.metrics().counter(d.ring[1], metric::DELIVERED_MSGS);
    // A handful of in-flight decisions may still drain right after the
    // crash; after that the ring is dead.
    assert!(later - at_break < 20, "broken ring kept delivering: {at_break} -> {later}");
    // What was delivered remains totally ordered.
    d.log.lock().unwrap().check_total_order().expect("order before the crash holds");
}

#[test]
fn delivery_latency_depends_on_ring_position() {
    // §3.5.4: "latencies vary according to the location of the proposer
    // in the ring", and Table 3.1's worst case "happens when the process
    // that broadcasts the message follows the coordinator in the ring" —
    // its value must travel almost a full revolution before the
    // coordinator even sees it. A proposer just *before* the coordinator
    // reaches it in one hop.
    let run = |position: usize| -> Dur {
        let mut sim = Sim::new(SimConfig::default());
        let opts = URingOptions {
            ring_len: 7,
            n_acceptors: 4,
            proposer_positions: vec![position],
            proposer_rate_bps: 20_000_000,
            ..URingOptions::default()
        };
        let _d = deploy_uring(&mut sim, &opts, |_| {});
        sim.run_until(Time::from_secs(1));
        sim.metrics().latency(metric::LATENCY).mean
    };
    let lat_after_coord = run(1); // the paper's worst case
    let lat_before_coord = run(6); // one hop from the coordinator
    assert!(
        lat_after_coord > lat_before_coord,
        "the proposer following the coordinator should see the worst latency: \
         {lat_after_coord} vs {lat_before_coord}"
    );
}
